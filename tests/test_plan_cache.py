"""Tests for prepared statements and the shared plan cache.

Covers SQL normalization, LRU behaviour, DDL invalidation (the stale-plan
fail-safe), the PREPARE/EXECUTE/DEALLOCATE statements, ``?`` placeholders,
the ``plan_cache_size=0`` equivalence guarantee, and the reconciliation of
the cache's counters with what ``\\metrics`` exposes.
"""

import pytest

import repro
from repro.cache.plan_cache import normalize_sql
from repro.config import DEFAULT_CONFIG
from repro.errors import BindingError


def build(rows=200, **config_changes):
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(**config_changes) if config_changes else DEFAULT_CONFIG,
    )
    conn.execute("create table T (ID int, V int)")
    conn.execute("create index IV on T (V)")
    conn.table("T").insert_many((i, i % 10) for i in range(rows))
    return conn


# -- normalization ----------------------------------------------------------


def test_normalize_collapses_whitespace_and_keyword_case():
    a, _ = normalize_sql("select * from T where V = 3")
    b, _ = normalize_sql("SELECT  *\n  FROM T WHERE V =    3")
    assert a == b


def test_normalize_keeps_identifier_case():
    # identifiers are case-sensitive in this dialect; only keywords fold
    a, _ = normalize_sql("select * from T")
    b, _ = normalize_sql("select * from t")
    assert a != b


def test_normalize_keeps_literals_distinct():
    a, _ = normalize_sql("select * from T where V = 3")
    b, _ = normalize_sql("select * from T where V = 4")
    assert a != b


def test_normalize_unifies_hostvar_spellings_not_values():
    a, _ = normalize_sql("select * from T where V = :X")
    b, _ = normalize_sql("select * from T where V =   :X")
    assert a == b


def test_normalize_counts_placeholders():
    _, n = normalize_sql("select * from T where V between ? and ?")
    assert n == 2
    _, n = normalize_sql("select * from T where V = :X")
    assert n == 0


# -- hit/miss & sharing -----------------------------------------------------


def test_repeated_select_hits_cache():
    conn = build()
    cache = conn.db.plan_cache
    conn.execute("select * from T where V = 3")
    assert (cache.hits, cache.misses) == (0, 1)
    conn.execute("select * from T where V = 3")
    assert (cache.hits, cache.misses) == (1, 1)


def test_formatting_variants_share_one_entry():
    conn = build()
    conn.execute("select * from T where V = :X", {"X": 3})
    conn.execute("SELECT  *  FROM T WHERE V = :X", {"X": 7})
    assert conn.db.plan_cache.size == 1
    assert conn.db.plan_cache.hits == 1


def test_cache_shared_across_sessions():
    conn = build()
    s1, s2 = conn.session("s1"), conn.session("s2")
    s1.execute("select * from T where V = 5")
    s2.execute("select * from T where V = 5")
    assert conn.db.plan_cache.hits == 1


def test_lru_eviction_at_capacity():
    conn = build(plan_cache_size=2)
    cache = conn.db.plan_cache
    for literal in (1, 2, 3):
        conn.execute(f"select * from T where V = {literal}")
    assert cache.size == 2
    assert cache.evictions == 1
    # the oldest entry (V = 1) was evicted; re-running it misses
    misses = cache.misses
    conn.execute("select * from T where V = 1")
    assert cache.misses == misses + 1


def test_executions_counted_per_entry():
    conn = build()
    stmt = conn.prepare("select * from T where V = ?")
    stmt.execute([1])
    stmt.execute([2])
    assert stmt._entry.executions == 2


# -- DDL invalidation -------------------------------------------------------


def test_drop_table_invalidates_dependent_plans():
    conn = build()
    cache = conn.db.plan_cache
    conn.execute("select * from T where V = 3")
    assert cache.size == 1
    conn.execute("drop table T")
    assert cache.size == 0
    assert cache.invalidations == 1


def test_create_index_invalidates_by_schema_version():
    conn = build()
    cache = conn.db.plan_cache
    conn.execute("select * from T where ID = 3")
    conn.execute("create index IID on T (ID)")
    # next execution misses and rebuilds (the new index must be considered)
    conn.execute("select * from T where ID = 3")
    assert cache.hits == 0
    assert cache.misses == 2


def test_drop_index_invalidates():
    conn = build()
    conn.execute("select * from T where V = 3")
    conn.execute("drop index IV on T")
    result = conn.execute("select * from T where V = 3")
    assert len(result.rows) == 20
    assert conn.db.plan_cache.invalidations >= 1


def test_unrelated_table_ddl_keeps_entry_usable():
    conn = build()
    conn.execute("select * from T where V = 3")
    conn.execute("create table U (A int)")
    # the schema version moved, so the entry revalidates (rebuild), but the
    # statement still executes correctly
    result = conn.execute("select * from T where V = 3")
    assert len(result.rows) == 20


def test_stale_prepared_statement_fails_safe_after_drop():
    conn = build()
    stmt = conn.prepare("select * from T where V = ?")
    assert len(stmt.execute([3]).rows) == 20
    conn.execute("drop table T")
    with pytest.raises(BindingError):
        stmt.execute([3])


def test_stale_prepared_statement_revalidates_after_unrelated_ddl():
    conn = build()
    stmt = conn.prepare("select * from T where V = ?")
    stmt.execute([3])
    conn.execute("create table U (A int)")
    assert len(stmt.execute([3]).rows) == 20


# -- prepared statements (API) ---------------------------------------------


def test_prepare_positional_placeholders():
    conn = build()
    stmt = conn.prepare("select * from T where V = ?")
    assert stmt.param_count == 1
    assert stmt.param_names == ("?1",)
    assert len(stmt.execute([3]).rows) == 20
    assert len(stmt.execute([99]).rows) == 0


def test_prepare_named_hostvars_bind_by_mapping():
    conn = build()
    stmt = conn.prepare("select * from T where V = :X")
    assert stmt.param_count == 0
    assert len(stmt.execute({"X": 4}).rows) == 20


def test_prepare_param_count_mismatch_raises():
    conn = build()
    stmt = conn.prepare("select * from T where V between ? and ?")
    with pytest.raises(BindingError):
        stmt.execute([1])


def test_prepare_skips_reparse_on_execute():
    conn = build()
    stmt = conn.prepare("select * from T where V = ?")
    misses = conn.db.plan_cache.misses
    stmt.execute([1])
    stmt.execute([2])
    assert conn.db.plan_cache.misses == misses


def test_prepared_rows_match_adhoc():
    conn = build()
    stmt = conn.prepare("select ID from T where V = ?")
    prepared = stmt.execute([6])
    adhoc = conn.execute("select ID from T where V = 6")
    assert prepared.rows == adhoc.rows


# -- PREPARE / EXECUTE / DEALLOCATE SQL -------------------------------------


def test_sql_prepare_execute_deallocate_round_trip():
    conn = build()
    conn.execute("prepare p1 as select * from T where V = ?")
    result = conn.execute("execute p1 (3)")
    assert len(result.rows) == 20
    result = conn.execute("execute p1 (99)")
    assert len(result.rows) == 0
    conn.execute("deallocate p1")
    with pytest.raises(BindingError):
        conn.execute("execute p1 (3)")


def test_sql_execute_unknown_name_raises():
    conn = build()
    with pytest.raises(BindingError):
        conn.execute("execute nosuch (1)")


def test_sql_execute_param_count_mismatch_raises():
    conn = build()
    conn.execute("prepare p as select * from T where V between ? and ?")
    with pytest.raises(BindingError):
        conn.execute("execute p (1)")


def test_sql_prepare_survives_unrelated_ddl():
    conn = build()
    conn.execute("prepare p as select * from T where V = ?")
    conn.execute("create table U (A int)")
    assert len(conn.execute("execute p (3)").rows) == 20


def test_sql_prepare_fails_safe_after_table_drop():
    conn = build()
    conn.execute("prepare p as select * from T where V = ?")
    conn.execute("drop table T")
    with pytest.raises(BindingError):
        conn.execute("execute p (3)")


# -- disabled cache equivalence ---------------------------------------------


def test_cache_size_zero_rows_and_io_identical():
    queries = [
        ("select ID from T where V = :X", {"X": 3}),
        ("select ID from T where V = :X", {"X": 7}),
        ("select * from T where V between 2 and 4", None),
        ("select * from T where V between 2 and 4", None),
    ]

    def run(conn):
        out = []
        for sql, host_vars in queries:
            conn.db.cold_cache()
            result = conn.execute(sql, host_vars)
            out.append((result.rows, result.total_io))
        return out

    with_cache = run(build())
    without = run(build(plan_cache_size=0))
    assert with_cache == without


def test_cache_size_zero_stores_nothing():
    conn = build(plan_cache_size=0)
    conn.execute("select * from T where V = 3")
    conn.execute("select * from T where V = 3")
    cache = conn.db.plan_cache
    assert not cache.enabled
    assert (cache.size, cache.hits, cache.misses) == (0, 0, 0)


def test_cache_size_zero_prepared_statements_still_work():
    conn = build(plan_cache_size=0)
    stmt = conn.prepare("select * from T where V = ?")
    assert len(stmt.execute([3]).rows) == 20
    conn.execute("prepare p as select * from T where V = ?")
    assert len(conn.execute("execute p (4)").rows) == 20


# -- metrics reconciliation -------------------------------------------------


def test_metrics_format_reconciles_with_cache():
    conn = build()
    conn.execute("select * from T where V = 3")
    conn.execute("select * from T where V = 3")
    conn.execute("drop index IV on T")
    cache = conn.db.plan_cache
    text = conn.metrics.format()
    assert (
        f"plan cache: {cache.size}/{cache.capacity} entries, "
        f"{cache.hits} hits, {cache.misses} misses, "
        f"{cache.evictions} evictions, {cache.invalidations} invalidations"
    ) in text


def test_prometheus_export_reconciles_with_cache_and_feedback():
    conn = build()
    conn.execute("select * from T where V = 3")
    conn.execute("select * from T where V = 3")
    cache, feedback = conn.db.plan_cache, conn.db.feedback
    text = conn.metrics.expose_text()
    assert f"repro_plan_cache_hits_total {cache.hits}" in text
    assert f"repro_plan_cache_misses_total {cache.misses}" in text
    assert f"repro_plan_cache_size {cache.size}" in text
    assert f"repro_plan_cache_capacity {cache.capacity}" in text
    assert f"repro_feedback_records_total {feedback.records}" in text
    assert f"repro_feedback_entries {feedback.size}" in text


def test_lookup_refreshes_lru_recency():
    conn = build(plan_cache_size=2)
    cache = conn.db.plan_cache
    conn.execute("select * from T where V = 1")  # A
    conn.execute("select * from T where V = 2")  # B
    conn.execute("select * from T where V = 1")  # refresh A: B is now oldest
    conn.execute("select * from T where V = 3")  # C evicts B
    hits = cache.hits
    conn.execute("select * from T where V = 1")
    assert cache.hits == hits + 1  # A survived
    misses = cache.misses
    conn.execute("select * from T where V = 2")
    assert cache.misses == misses + 1  # B was evicted

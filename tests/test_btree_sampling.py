"""Tests for B+-tree sampling (Olken acceptance/rejection and pseudo-ranked)."""

import random

import pytest

from repro.btree.sampling import (
    acceptance_rejection_sample,
    pseudo_ranked_sample,
    selectivity_from_sample,
)
from repro.btree.tree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.rid import RID


def make_tree(n, order=8):
    tree = BTree(BufferPool(Pager(), 512), "ix", order=order)
    for i in range(n):
        tree.insert(i, RID(i, 0))
    return tree


def test_empty_tree_samples_nothing():
    tree = make_tree(0)
    rng = random.Random(1)
    assert acceptance_rejection_sample(tree, 5, rng).entries == []
    assert pseudo_ranked_sample(tree, 5, rng).entries == []


def test_acceptance_rejection_yields_requested_size():
    tree = make_tree(500)
    result = acceptance_rejection_sample(tree, 30, random.Random(2))
    assert len(result.entries) == 30
    assert all(weight == 1.0 for weight in result.weights)
    assert result.walks >= 30


def test_acceptance_rejection_respects_walk_budget():
    tree = make_tree(500)
    result = acceptance_rejection_sample(tree, 1000, random.Random(3), max_walks=50)
    assert result.walks <= 50


def test_pseudo_ranked_never_rejects():
    tree = make_tree(500)
    result = pseudo_ranked_sample(tree, 40, random.Random(4))
    assert result.rejections == 0
    assert len(result.entries) == 40
    assert result.walks == 40  # every walk yields a sample on a packed tree


def test_pseudo_ranked_more_walk_efficient():
    tree = make_tree(800, order=16)
    rng_a, rng_b = random.Random(5), random.Random(5)
    olken = acceptance_rejection_sample(tree, 25, rng_a)
    ranked = pseudo_ranked_sample(tree, 25, rng_b)
    assert ranked.walks <= olken.walks
    assert ranked.acceptance_rate >= olken.acceptance_rate


def test_selectivity_estimate_uniform():
    tree = make_tree(1000)
    result = pseudo_ranked_sample(tree, 400, random.Random(6))
    # true selectivity of key < 300 is 0.3
    estimate = selectivity_from_sample(result, lambda key: key[0] < 300)
    assert estimate == pytest.approx(0.3, abs=0.12)


def test_selectivity_estimate_olken():
    tree = make_tree(1000)
    result = acceptance_rejection_sample(tree, 200, random.Random(7))
    estimate = selectivity_from_sample(result, lambda key: key[0] < 500)
    assert estimate == pytest.approx(0.5, abs=0.15)


def test_selectivity_handles_arbitrary_predicates():
    tree = make_tree(600)
    result = pseudo_ranked_sample(tree, 300, random.Random(8))
    # a predicate no range scan could express: key divisible by 3
    estimate = selectivity_from_sample(result, lambda key: key[0] % 3 == 0)
    assert estimate == pytest.approx(1 / 3, abs=0.12)


def test_selectivity_of_empty_sample():
    tree = make_tree(0)
    result = pseudo_ranked_sample(tree, 10, random.Random(9))
    assert selectivity_from_sample(result, lambda key: True) == 0.0


def test_samples_are_valid_entries():
    tree = make_tree(200)
    result = pseudo_ranked_sample(tree, 50, random.Random(10))
    valid = set(tree.entries())
    assert all(entry in valid for entry in result.entries)

"""Tests for the analytic L-shaped cost model and competition arithmetic."""

import numpy as np
import pytest

from repro.competition.model import (
    LShapedCost,
    sequential_switch_expected_cost,
    simultaneous_expected_cost,
    traditional_expected_cost,
)
from repro.errors import CompetitionError


def test_from_c_and_mean_matches_targets():
    dist = LShapedCost.from_c_and_mean(c=10, mean=100)
    assert dist.median() == pytest.approx(10, rel=1e-6)
    assert dist.mean() == pytest.approx(100, rel=1e-6)


def test_from_c_and_mean_requires_l_shape():
    with pytest.raises(CompetitionError):
        LShapedCost.from_c_and_mean(c=60, mean=50)
    with pytest.raises(CompetitionError):
        LShapedCost.from_c_and_mean(c=0, mean=50)


def test_cdf_quantile_inverse():
    dist = LShapedCost.from_c_and_mean(c=5, mean=40)
    for q in (0.1, 0.5, 0.9):
        assert dist.cdf(float(dist.quantile(q))) == pytest.approx(q, abs=1e-9)


def test_cdf_clamps():
    dist = LShapedCost.from_c_and_mean(c=5, mean=40)
    assert float(dist.cdf(-1.0)) == 0.0
    assert float(dist.cdf(dist.H * 2)) == pytest.approx(1.0)


def test_half_mass_below_median():
    dist = LShapedCost.from_c_and_mean(c=7, mean=70)
    assert float(dist.cdf(dist.median())) == pytest.approx(0.5, abs=1e-9)


def test_conditional_mean_below_median_is_small():
    dist = LShapedCost.from_c_and_mean(c=10, mean=100)
    m = dist.conditional_mean_below(dist.median())
    assert 0 < m < dist.median()


def test_conditional_mean_full_range_is_mean():
    dist = LShapedCost.from_c_and_mean(c=10, mean=100)
    assert dist.conditional_mean_below(dist.H) == pytest.approx(dist.mean(), rel=1e-6)


def test_sampling_statistics():
    dist = LShapedCost.from_c_and_mean(c=10, mean=100)
    rng = np.random.default_rng(42)
    samples = dist.sample(rng, 20_000)
    assert samples.mean() == pytest.approx(100, rel=0.05)
    assert np.median(samples) == pytest.approx(10, rel=0.1)
    assert samples.min() >= 0
    assert samples.max() <= dist.H + 1e-9


def test_paper_sequential_arithmetic():
    """(m2 + c2 + M1)/2 'about twice smaller than the traditional M1'."""
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)
    m2 = plan_2.conditional_mean_below(plan_2.median())
    sequential = sequential_switch_expected_cost(m2, plan_2.median(), plan_1.mean())
    traditional = traditional_expected_cost(plan_1.mean())
    assert sequential < 0.62 * traditional  # "about twice smaller"
    assert sequential == pytest.approx((m2 + 8 + 100) / 2, rel=1e-9)


def test_sequential_beats_traditional_generally():
    for c, mean in [(5, 50), (2, 200), (20, 90)]:
        plan = LShapedCost.from_c_and_mean(c=c, mean=mean)
        m = plan.conditional_mean_below(plan.median())
        assert sequential_switch_expected_cost(m, plan.median(), mean) < mean


def test_simultaneous_beats_sequential_on_hyperbolas():
    """Paper: 'a still better approach is to run both plans simultaneously'."""
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)
    m2 = plan_2.conditional_mean_below(plan_2.median())
    sequential = sequential_switch_expected_cost(m2, plan_2.median(), plan_1.mean())
    simultaneous = simultaneous_expected_cost(plan_1, plan_2)
    assert simultaneous < sequential


def test_simultaneous_with_explicit_switch_point():
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)
    at_median = simultaneous_expected_cost(plan_1, plan_2, switch_point=plan_2.median())
    optimal = simultaneous_expected_cost(plan_1, plan_2)
    assert optimal <= at_median + 1e-6


def test_simultaneous_speed_ratio_effect():
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)
    balanced = simultaneous_expected_cost(plan_1, plan_2, speed_a=1, speed_b=1)
    challenger_starved = simultaneous_expected_cost(plan_1, plan_2, speed_a=1, speed_b=0.01)
    # starving the challenger converges to running plan 1 alone (~M1)
    assert challenger_starved > balanced

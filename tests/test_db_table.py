"""Tests for the Table API and Database session."""

import pytest

from repro.db.catalog import Column
from repro.db.session import Database
from repro.errors import CatalogError
from repro.expr.ast import col
from repro.storage.rid import RID


@pytest.fixture
def table(db):
    return db.create_table("T", [("A", "int"), ("B", "str")], rows_per_page=4)


def test_insert_positional_and_mapping(table):
    rid1 = table.insert((1, "x"))
    rid2 = table.insert({"A": 2, "B": "y"})
    assert table.row_count == 2
    assert table.heap.fetch(rid1) == (1, "x")
    assert table.heap.fetch(rid2) == (2, "y")


def test_insert_mapping_missing_column_is_null(table):
    rid = table.insert({"A": 5})
    assert table.heap.fetch(rid) == (5, None)


def test_insert_many_counts(table):
    assert table.insert_many([(i, "r") for i in range(10)]) == 10
    assert table.row_count == 10


def test_create_index_backfills(table):
    table.insert_many([(i, "r") for i in range(20)])
    info = table.create_index("IX_A", ["A"])
    assert info.btree.entry_count == 20
    assert info.btree.search(7) != []


def test_create_index_maintained_by_insert(table):
    info = table.create_index("IX_A", ["A"])
    rid = table.insert((42, "z"))
    assert info.btree.search(42) == [rid]


def test_duplicate_index_rejected(table):
    table.create_index("IX_A", ["A"])
    with pytest.raises(CatalogError):
        table.create_index("IX_A", ["A"])


def test_drop_index(table):
    table.create_index("IX_A", ["A"])
    table.drop_index("IX_A")
    assert "IX_A" not in table.indexes
    with pytest.raises(CatalogError):
        table.drop_index("IX_A")


def test_delete_rid_maintains_indexes(table):
    info = table.create_index("IX_A", ["A"])
    rid = table.insert((9, "q"))
    table.delete_rid(rid)
    assert info.btree.search(9) == []
    assert table.row_count == 0


def test_deleted_rows_not_retrieved(table):
    table.create_index("IX_A", ["A"])
    rids = [table.insert((i, "r")) for i in range(10)]
    table.delete_rid(rids[3])
    result = table.select(where=col("A") >= 0)
    assert len(result.rows) == 9
    assert all(row[0] != 3 for row in result.rows)


def test_analyze_builds_stats(table):
    table.insert_many([(i % 5, "r") for i in range(50)])
    stats = table.analyze()
    assert stats.row_count == 50
    assert stats.columns["A"].distinct == 5
    assert table.stats is stats


def test_context_for_is_sticky(table):
    context = table.context_for("k")
    assert table.context_for("k") is context
    assert table.context_for("other") is not context


def test_bad_rows_rejected(table):
    with pytest.raises(CatalogError):
        table.insert((1,))
    with pytest.raises(CatalogError):
        table.insert(("not-int", "x"))


# -- Database -----------------------------------------------------------------


def test_create_table_column_forms(db):
    table = db.create_table("MIX", [Column("A", "int"), ("B", "str"), "C"])
    assert table.schema.names == ("A", "B", "C")
    assert table.schema.columns[2].type == "int"


def test_duplicate_table_rejected(db):
    db.create_table("T", ["A"])
    with pytest.raises(CatalogError):
        db.create_table("T", ["A"])


def test_table_lookup(db):
    created = db.create_table("T", ["A"])
    assert db.table("T") is created
    with pytest.raises(CatalogError):
        db.table("NOPE")


def test_drop_table(db):
    db.create_table("T", ["A"])
    db.drop_table("T")
    with pytest.raises(CatalogError):
        db.drop_table("T")


def test_interference_tick_disabled_by_default(db):
    db.create_table("T", ["A"]).insert((1,))
    assert db.interference_tick() == 0


def test_interference_tick_evicts(db):
    table = db.create_table("T", ["A"], rows_per_page=4)
    table.insert_many([(i,) for i in range(100)])
    list(table.heap.scan())  # warm the cache
    db.interference_rate = 0.5
    assert db.interference_tick() > 0


def test_cold_cache_forces_reads(db):
    table = db.create_table("T", ["A"], rows_per_page=4)
    table.insert_many([(i,) for i in range(40)])
    list(table.heap.scan())
    db.cold_cache()
    result = table.select()
    assert result.execution_io == table.heap.page_count


def test_shared_buffer_pool_across_tables(db):
    one = db.create_table("ONE", ["A"])
    two = db.create_table("TWO", ["A"])
    assert one.buffer_pool is two.buffer_pool is db.buffer_pool

"""Tests for the LRU buffer pool and cost attribution."""

import random

import pytest

from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager, PageKind


def _fill(pager: Pager, count: int) -> list[int]:
    return [pager.allocate(PageKind.HEAP, payload=i).page_id for i in range(count)]


def test_miss_charges_meter(pager, buffer_pool, meter):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id, meter)
    assert meter.io_reads == 1
    assert meter.buffer_hits == 0


def test_hit_charges_no_io(pager, buffer_pool, meter):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id, meter)
    buffer_pool.get(page_id, meter)
    assert meter.io_reads == 1
    assert meter.buffer_hits == 1


def test_lru_evicts_oldest(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 3)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    pool.get(ids[2])  # evicts ids[0]
    assert ids[0] not in pool
    assert ids[1] in pool and ids[2] in pool


def test_lru_access_refreshes_recency(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 3)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    pool.get(ids[0])  # refresh 0: now 1 is oldest
    pool.get(ids[2])
    assert ids[1] not in pool
    assert ids[0] in pool


def test_capacity_one_works(pager):
    pool = BufferPool(pager, capacity=1)
    ids = _fill(pager, 2)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    assert len(pool) == 1


def test_capacity_zero_rejected(pager):
    with pytest.raises(ValueError):
        BufferPool(pager, capacity=0)


def test_allocation_charges_write(pager, buffer_pool, meter):
    buffer_pool.allocate(PageKind.TEMP, meter=meter)
    assert meter.io_writes == 1


def test_meter_reads_by_kind(pager, buffer_pool, meter):
    heap_page = pager.allocate(PageKind.HEAP)
    index_page = pager.allocate(PageKind.INDEX)
    buffer_pool.clear()
    buffer_pool.get(heap_page.page_id, meter)
    buffer_pool.get(index_page.page_id, meter)
    assert meter.reads_by_kind[PageKind.HEAP] == 1
    assert meter.reads_by_kind[PageKind.INDEX] == 1


def test_evict_random_fraction(pager, buffer_pool):
    ids = _fill(pager, 40)
    for page_id in ids:
        buffer_pool.get(page_id)
    evicted = buffer_pool.evict_random(0.5, random.Random(7))
    assert evicted == 20
    assert len(buffer_pool) == len(ids) - 20


def test_evict_random_on_empty_cache(pager, buffer_pool):
    buffer_pool.clear()
    assert buffer_pool.evict_random(0.5, random.Random(7)) == 0


def test_hit_ratio(pager, buffer_pool):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.hits = buffer_pool.misses = 0
    buffer_pool.get(page_id)
    buffer_pool.get(page_id)
    assert buffer_pool.hit_ratio == pytest.approx(0.5)


def test_meter_merge_and_snapshot():
    a = CostMeter(name="a")
    a.io_reads = 3
    a.charge_cpu(0.5)
    b = CostMeter(name="b")
    b.io_writes = 2
    b.merge(a)
    assert b.io_reads == 3 and b.io_writes == 2
    assert b.total == pytest.approx(5.5)
    snapshot = b.snapshot()
    b.io_reads += 1
    assert snapshot.io_reads == 3


def test_meter_total_mixes_io_and_cpu():
    meter = CostMeter()
    meter.io_reads = 2
    meter.charge_cpu(0.25)
    assert meter.total == pytest.approx(2.25)
    assert meter.io_total == 2


# -- NullMeter ---------------------------------------------------------------


def test_null_meter_counters_stay_zero(pager, buffer_pool):
    from repro.storage.buffer_pool import NULL_METER

    ids = _fill(pager, 8)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)          # miss, default NULL_METER
        buffer_pool.get(page_id)          # hit
    buffer_pool.allocate(PageKind.TEMP)   # write
    NULL_METER.charge_cpu(1.0)
    NULL_METER.merge(CostMeter(io_reads=5))
    assert NULL_METER.io_reads == 0
    assert NULL_METER.io_writes == 0
    assert NULL_METER.buffer_hits == 0
    assert NULL_METER.cpu == 0.0
    assert all(count == 0 for count in NULL_METER.reads_by_kind.values())
    assert NULL_METER.total == 0.0


def test_null_meter_is_a_cost_meter():
    from repro.storage.buffer_pool import NULL_METER, NullMeter

    assert isinstance(NULL_METER, CostMeter)
    assert isinstance(NULL_METER, NullMeter)


# -- get_many / prefetch ------------------------------------------------------


def test_get_many_matches_sequential_gets(pager):
    ids = _fill(pager, 12)
    pool_a = BufferPool(pager, capacity=8)
    pool_b = BufferPool(pager, capacity=8)
    meter_a, meter_b = CostMeter(), CostMeter()
    # same access pattern with a repeat: hits and misses must match exactly
    pattern = ids[:6] + ids[2:8]
    for page_id in pattern:
        pool_a.get(page_id, meter_a)
    pages = pool_b.get_many(pattern, meter_b)
    assert [page.page_id for page in pages] == pattern
    assert meter_b.io_reads == meter_a.io_reads
    assert meter_b.buffer_hits == meter_a.buffer_hits
    assert meter_b.reads_by_kind == meter_a.reads_by_kind
    assert (pool_b.hits, pool_b.misses) == (pool_a.hits, pool_a.misses)


def test_prefetch_loads_only_uncached_pages(pager, buffer_pool, meter):
    ids = _fill(pager, 6)
    buffer_pool.clear()
    buffer_pool.get(ids[1])
    buffer_pool.get(ids[3])
    loaded = buffer_pool.prefetch(ids, meter)
    assert loaded == 4
    assert meter.io_reads == 4
    assert meter.buffer_hits == 0  # cached pages charge nothing
    assert all(page_id in buffer_pool for page_id in ids)
    assert buffer_pool.prefetched == 4


def test_prefetch_respects_window(pager, buffer_pool, meter):
    ids = _fill(pager, 10)
    buffer_pool.clear()
    assert buffer_pool.prefetch(ids, meter, window=3) == 3
    assert meter.io_reads == 3
    assert sum(1 for page_id in ids if page_id in buffer_pool) == 3


def test_prefetch_default_window_is_configurable(pager):
    pool = BufferPool(pager, capacity=32, read_ahead_window=2)
    ids = _fill(pager, 5)
    pool.clear()
    assert pool.prefetch(ids) == 2


def test_prefetched_page_hits_on_subsequent_get(pager, buffer_pool, meter):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.prefetch([page_id], meter)
    buffer_pool.get(page_id, meter)
    assert meter.io_reads == 1
    assert meter.buffer_hits == 1


def test_evict_random_is_uniform_without_key_copy(pager, buffer_pool):
    ids = _fill(pager, 40)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)
    rng = random.Random(11)
    evicted = buffer_pool.evict_random(0.25, rng)
    assert evicted == 10
    assert len(buffer_pool) == 30
    survivors = {page_id for page_id in ids if page_id in buffer_pool}
    assert len(survivors) == 30


# -- pinning ----------------------------------------------------------------


def test_pinned_page_survives_evict_random(pager, buffer_pool):
    ids = _fill(pager, 20)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)
    buffer_pool.pin(ids[0])
    buffer_pool.evict_random(1.0, random.Random(5))
    assert ids[0] in buffer_pool
    assert len(buffer_pool) == 1
    buffer_pool.unpin(ids[0])


def test_evict_random_rate_not_diluted_by_pins(pager, buffer_pool):
    # Regression: victims used to be sampled over *all* cached pages and
    # pinned ones filtered out afterwards, so a long-lived pinned run (a
    # join hash build holding its current read run across quanta) silently
    # shrank the interference tick. Sampling must cover unpinned pages only.
    ids = _fill(pager, 20)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)
    for page_id in ids[:10]:
        buffer_pool.pin(page_id)
    evicted = buffer_pool.evict_random(0.5, random.Random(7))
    assert evicted == 5  # half of the 10 *eligible* pages, exactly
    assert all(page_id in buffer_pool for page_id in ids[:10])
    for page_id in ids[:10]:
        buffer_pool.unpin(page_id)


def test_evict_random_single_unpinned_page_is_found(pager, buffer_pool):
    # With every page but one pinned, the old index-sampling scheme would
    # usually pick only pinned positions and evict nothing; the tick must
    # still land on the one eligible page.
    ids = _fill(pager, 12)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)
    for page_id in ids[1:]:
        buffer_pool.pin(page_id)
    for seed in range(5):
        buffer_pool.get(ids[0])  # re-admit the victim for each round
        assert buffer_pool.evict_random(0.1, random.Random(seed)) == 1
        assert ids[0] not in buffer_pool
    for page_id in ids[1:]:
        buffer_pool.unpin(page_id)


def test_evict_random_all_pinned_evicts_nothing(pager, buffer_pool):
    ids = _fill(pager, 6)
    buffer_pool.clear()
    for page_id in ids:
        buffer_pool.get(page_id)
        buffer_pool.pin(page_id)
    assert buffer_pool.evict_random(1.0, random.Random(3)) == 0
    assert len(buffer_pool) == 6
    for page_id in ids:
        buffer_pool.unpin(page_id)


def test_pinned_page_survives_lru_pressure(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 4)
    pool.clear()
    pool.get(ids[0])
    pool.pin(ids[0])
    pool.get(ids[1])
    pool.get(ids[2])  # would evict ids[0] (LRU) — must take ids[1] instead
    pool.get(ids[3])
    assert ids[0] in pool
    assert len(pool) == 2
    pool.unpin(ids[0])


def test_get_many_run_longer_than_capacity(pager, meter):
    pool = BufferPool(pager, capacity=4)
    ids = _fill(pager, 10)
    pool.clear()
    pages = pool.get_many(ids, meter)
    # every page of the run is returned even though the run exceeds capacity
    assert [page.page_id for page in pages] == ids
    assert meter.io_reads == 10
    # pins released afterwards: the pool shrank back to capacity
    assert len(pool) == pool.capacity
    assert not any(pool.pinned(page_id) for page_id in ids)


def test_transient_over_capacity_shrinks_on_unpin(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 3)
    pool.clear()
    for page_id in ids:  # pin before admission, as the batch read paths do
        pool.pin(page_id)
        pool.get(page_id)
    assert len(pool) == 3  # all pinned: allowed over capacity
    pool.unpin(ids[0])
    assert len(pool) == 2  # last release shrinks the pool back
    assert ids[0] not in pool
    for page_id in ids[1:]:
        pool.unpin(page_id)


def test_pin_is_refcounted(pager, buffer_pool):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id)
    buffer_pool.pin(page_id)
    buffer_pool.pin(page_id)
    buffer_pool.unpin(page_id)
    assert buffer_pool.pinned(page_id)  # one pin still holds
    buffer_pool.unpin(page_id)
    assert not buffer_pool.pinned(page_id)


def test_forcible_evict_clears_pin(pager, buffer_pool):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id)
    buffer_pool.pin(page_id)
    buffer_pool.evict(page_id)  # the DDL path ignores pins
    assert page_id not in buffer_pool
    assert not buffer_pool.pinned(page_id)


def test_evict_random_mid_prefetch_spares_the_run(pager, monkeypatch):
    """An interference tick landing mid-run cannot drop the run's pages."""
    pool = BufferPool(pager, capacity=32)
    ids = _fill(pager, 6)
    pool.clear()
    original_admit = pool._admit
    rng = random.Random(3)

    def admit_and_interfere(page):
        original_admit(page)
        pool.evict_random(1.0, rng)

    monkeypatch.setattr(pool, "_admit", admit_and_interfere)
    pages = pool.get_many(ids)
    assert [page.page_id for page in pages] == ids
    # every page of the in-flight run survived the interference ticks
    # thrown at it while later pages of the same run were admitted
    assert all(page_id in pool for page_id in ids)

"""Tests for the LRU buffer pool and cost attribution."""

import random

import pytest

from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager, PageKind


def _fill(pager: Pager, count: int) -> list[int]:
    return [pager.allocate(PageKind.HEAP, payload=i).page_id for i in range(count)]


def test_miss_charges_meter(pager, buffer_pool, meter):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id, meter)
    assert meter.io_reads == 1
    assert meter.buffer_hits == 0


def test_hit_charges_no_io(pager, buffer_pool, meter):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.get(page_id, meter)
    buffer_pool.get(page_id, meter)
    assert meter.io_reads == 1
    assert meter.buffer_hits == 1


def test_lru_evicts_oldest(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 3)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    pool.get(ids[2])  # evicts ids[0]
    assert ids[0] not in pool
    assert ids[1] in pool and ids[2] in pool


def test_lru_access_refreshes_recency(pager):
    pool = BufferPool(pager, capacity=2)
    ids = _fill(pager, 3)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    pool.get(ids[0])  # refresh 0: now 1 is oldest
    pool.get(ids[2])
    assert ids[1] not in pool
    assert ids[0] in pool


def test_capacity_one_works(pager):
    pool = BufferPool(pager, capacity=1)
    ids = _fill(pager, 2)
    pool.clear()
    pool.get(ids[0])
    pool.get(ids[1])
    assert len(pool) == 1


def test_capacity_zero_rejected(pager):
    with pytest.raises(ValueError):
        BufferPool(pager, capacity=0)


def test_allocation_charges_write(pager, buffer_pool, meter):
    buffer_pool.allocate(PageKind.TEMP, meter=meter)
    assert meter.io_writes == 1


def test_meter_reads_by_kind(pager, buffer_pool, meter):
    heap_page = pager.allocate(PageKind.HEAP)
    index_page = pager.allocate(PageKind.INDEX)
    buffer_pool.clear()
    buffer_pool.get(heap_page.page_id, meter)
    buffer_pool.get(index_page.page_id, meter)
    assert meter.reads_by_kind[PageKind.HEAP] == 1
    assert meter.reads_by_kind[PageKind.INDEX] == 1


def test_evict_random_fraction(pager, buffer_pool):
    ids = _fill(pager, 40)
    for page_id in ids:
        buffer_pool.get(page_id)
    evicted = buffer_pool.evict_random(0.5, random.Random(7))
    assert evicted == 20
    assert len(buffer_pool) == len(ids) - 20


def test_evict_random_on_empty_cache(pager, buffer_pool):
    buffer_pool.clear()
    assert buffer_pool.evict_random(0.5, random.Random(7)) == 0


def test_hit_ratio(pager, buffer_pool):
    (page_id,) = _fill(pager, 1)
    buffer_pool.clear()
    buffer_pool.hits = buffer_pool.misses = 0
    buffer_pool.get(page_id)
    buffer_pool.get(page_id)
    assert buffer_pool.hit_ratio == pytest.approx(0.5)


def test_meter_merge_and_snapshot():
    a = CostMeter(name="a")
    a.io_reads = 3
    a.charge_cpu(0.5)
    b = CostMeter(name="b")
    b.io_writes = 2
    b.merge(a)
    assert b.io_reads == 3 and b.io_writes == 2
    assert b.total == pytest.approx(5.5)
    snapshot = b.snapshot()
    b.io_reads += 1
    assert snapshot.io_reads == 3


def test_meter_total_mixes_io_and_cpu():
    meter = CostMeter()
    meter.io_reads = 2
    meter.charge_cpu(0.25)
    assert meter.total == pytest.approx(2.25)
    assert meter.io_total == 2

"""Tests for the selectivity-distribution grid representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distribution.density import SelectivityDistribution
from repro.errors import DistributionError


def test_uniform_moments():
    uniform = SelectivityDistribution.uniform(256)
    assert uniform.mean() == pytest.approx(0.5, abs=1e-6)
    assert uniform.std() == pytest.approx(1 / np.sqrt(12), abs=0.01)
    assert uniform.median() == pytest.approx(0.5, abs=0.01)
    assert uniform.skewness() == pytest.approx(0.0, abs=1e-6)


def test_point_distribution():
    point = SelectivityDistribution.point(0.3, 100)
    assert point.mean() == pytest.approx(0.3, abs=0.01)
    assert point.std() == pytest.approx(0.0, abs=1e-9)


def test_point_outside_unit_interval_rejected():
    with pytest.raises(DistributionError):
        SelectivityDistribution.point(1.5)


def test_bell_centered_on_mean():
    bell = SelectivityDistribution.bell(0.2, 0.02, 256)
    assert bell.mean() == pytest.approx(0.2, abs=0.01)
    assert bell.std() == pytest.approx(0.02, abs=0.01)


def test_bell_with_zero_std_is_point():
    bell = SelectivityDistribution.bell(0.4, 0.0)
    assert bell.std() == pytest.approx(0.0, abs=1e-9)


def test_weights_normalized():
    dist = SelectivityDistribution([1.0, 2.0, 3.0, 4.0])
    assert dist.weights.sum() == pytest.approx(1.0)


def test_negative_weights_rejected():
    with pytest.raises(DistributionError):
        SelectivityDistribution([0.5, -0.5, 1.0])


def test_all_zero_weights_rejected():
    with pytest.raises(DistributionError):
        SelectivityDistribution([0.0, 0.0])


def test_from_samples():
    dist = SelectivityDistribution.from_samples([0.1] * 90 + [0.9] * 10, bins=10)
    assert dist.mass_below(0.2) == pytest.approx(0.9, abs=0.05)


def test_from_function():
    dist = SelectivityDistribution.from_function(lambda s: 2 * (1 - s), bins=200)
    assert dist.mean() == pytest.approx(1 / 3, abs=0.01)


def test_mass_below_edges():
    uniform = SelectivityDistribution.uniform(100)
    assert uniform.mass_below(0.0) == 0.0
    assert uniform.mass_below(1.0) == 1.0
    assert uniform.mass_below(0.25) == pytest.approx(0.25, abs=0.01)
    assert uniform.mass_above(0.25) == pytest.approx(0.75, abs=0.01)


def test_quantile_median_consistency():
    dist = SelectivityDistribution.bell(0.6, 0.05)
    assert dist.quantile(0.5) == pytest.approx(dist.median())
    assert dist.quantile(0.0) <= dist.quantile(1.0)


def test_quantile_out_of_range():
    with pytest.raises(DistributionError):
        SelectivityDistribution.uniform().quantile(1.5)


def test_mirrored_reverses_mean():
    bell = SelectivityDistribution.bell(0.2, 0.05)
    assert bell.mirrored().mean() == pytest.approx(0.8, abs=0.01)


def test_mirrored_is_involution():
    bell = SelectivityDistribution.bell(0.3, 0.07)
    assert np.allclose(bell.mirrored().mirrored().weights, bell.weights)


def test_rebinned_preserves_mass_and_mean():
    dist = SelectivityDistribution.bell(0.35, 0.1, 256)
    coarse = dist.rebinned(64)
    assert coarse.weights.sum() == pytest.approx(1.0)
    assert coarse.mean() == pytest.approx(dist.mean(), abs=0.01)


def test_rebinned_same_size_is_identity():
    dist = SelectivityDistribution.uniform(64)
    assert dist.rebinned(64) is dist


def test_total_variation_distance():
    uniform = SelectivityDistribution.uniform(128)
    assert uniform.total_variation_distance(uniform) == pytest.approx(0.0)
    point = SelectivityDistribution.point(0.1, 128)
    assert uniform.total_variation_distance(point) > 0.9


@given(st.floats(min_value=0.01, max_value=0.99), st.floats(min_value=0.005, max_value=0.2))
@settings(max_examples=40)
def test_bell_mass_sums_to_one(mean, std):
    bell = SelectivityDistribution.bell(mean, std)
    assert bell.weights.sum() == pytest.approx(1.0)
    assert 0.0 <= bell.mean() <= 1.0

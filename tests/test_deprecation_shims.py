"""The 1.2 deprecation shims: ``Database.execute`` / ``Database.explain``.

Both are thin wrappers over the default connection (the multi-query
scheduler) that return the *legacy* result objects — ``QueryResult`` /
``DdlResult`` for ``execute``, the rendered plan text for ``explain`` —
so pre-connection code keeps working unchanged. The tests pin three
things: the :class:`DeprecationWarning` fires, the legacy shapes come
back intact, and those shapes still round-trip through the shell's
renderer (the oldest downstream consumer of the legacy surface).
"""

import io

import pytest

from repro.db.session import Database
from repro.shell import Shell
from repro.sql.ddl import DdlResult
from repro.sql.executor import QueryResult


def build_db() -> Database:
    db = Database()
    with pytest.deprecated_call():
        db.execute("create table T (ID int, V int)")
    for i in range(20):
        with pytest.deprecated_call():
            db.execute(f"insert into T values ({i}, {i * 3})")
    return db


class TestDatabaseExecuteShim:
    def test_select_warns_and_returns_legacy_query_result(self):
        db = build_db()
        with pytest.deprecated_call():
            result = db.execute("select V from T where ID between 3 and 5")
        assert isinstance(result, QueryResult)
        assert result.columns == ("V",)
        assert result.rows == [(9,), (12,), (15,)]
        assert result.retrievals and result.total_io >= 0

    def test_ddl_warns_and_returns_legacy_ddl_result(self):
        db = Database()
        with pytest.deprecated_call():
            result = db.execute("create table U (ID int)")
        assert isinstance(result, DdlResult)
        assert "U" in result.message

    def test_host_vars_still_bind(self):
        db = build_db()
        with pytest.deprecated_call():
            result = db.execute("select * from T where ID = :K", {"K": 7})
        assert result.rows == [(7, 21)]


class TestDatabaseExplainShim:
    def test_explain_warns_and_returns_text(self):
        db = build_db()
        with pytest.deprecated_call():
            text = db.explain("select * from T where ID >= 5")
        assert isinstance(text, str)
        assert "T" in text


class TestShellRoundTrip:
    def test_legacy_rows_render_through_the_shell(self):
        db = build_db()
        with pytest.deprecated_call():
            legacy = db.execute("select ID, V from T where ID < 3")
        out = io.StringIO()
        shell = Shell(db, out=out)
        shell._print_rows(legacy.columns, legacy.rows)
        text = out.getvalue()
        assert "ID" in text and "V" in text
        assert " 2" in text and " 6" in text

    def test_shell_statement_matches_legacy_rows(self):
        db = build_db()
        with pytest.deprecated_call():
            legacy = db.execute("select * from T where ID between 0 and 4")
        out = io.StringIO()
        shell = Shell(db, out=out)
        shell.feed("select * from T where ID between 0 and 4;")
        rendered = out.getvalue()
        for row in legacy.rows:
            assert str(row[-1]) in rendered

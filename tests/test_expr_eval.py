"""Tests for predicate evaluation."""

import pytest

from repro.errors import BindingError
from repro.expr.ast import ALWAYS_FALSE, ALWAYS_TRUE, col, lit, var
from repro.expr.eval import evaluate, referenced_columns, referenced_host_vars

SCHEMA = {"a": 0, "b": 1, "name": 2}
ROW = (10, 20, "hello")


def test_comparisons():
    assert evaluate(col("a") < 11, ROW, SCHEMA)
    assert not evaluate(col("a") < 10, ROW, SCHEMA)
    assert evaluate(col("a") <= 10, ROW, SCHEMA)
    assert evaluate(col("b") > 19, ROW, SCHEMA)
    assert evaluate(col("b") >= 20, ROW, SCHEMA)
    assert evaluate(col("a").eq(10), ROW, SCHEMA)
    assert evaluate(col("a").ne(11), ROW, SCHEMA)


def test_column_to_column_comparison():
    assert evaluate(col("a") < col("b"), ROW, SCHEMA)
    assert not evaluate(col("a").eq(col("b")), ROW, SCHEMA)


def test_host_variables():
    assert evaluate(col("a") >= var("x"), ROW, SCHEMA, {"x": 5})
    assert not evaluate(col("a") >= var("x"), ROW, SCHEMA, {"x": 50})


def test_unbound_host_variable_raises():
    with pytest.raises(BindingError):
        evaluate(col("a") >= var("missing"), ROW, SCHEMA, {})


def test_unknown_column_raises():
    with pytest.raises(BindingError):
        evaluate(col("zzz") < 1, ROW, SCHEMA)


def test_between():
    assert evaluate(col("a").between(5, 15), ROW, SCHEMA)
    assert evaluate(col("a").between(10, 10), ROW, SCHEMA)
    assert not evaluate(col("a").between(11, 15), ROW, SCHEMA)


def test_in_list():
    assert evaluate(col("a").in_([1, 10, 100]), ROW, SCHEMA)
    assert not evaluate(col("a").in_([1, 2]), ROW, SCHEMA)
    assert evaluate(col("a").in_([var("v")]), ROW, SCHEMA, {"v": 10})


def test_like_patterns():
    assert evaluate(col("name").like("hello"), ROW, SCHEMA)
    assert evaluate(col("name").like("he%"), ROW, SCHEMA)
    assert evaluate(col("name").like("%llo"), ROW, SCHEMA)
    assert evaluate(col("name").like("h_llo"), ROW, SCHEMA)
    assert not evaluate(col("name").like("h_"), ROW, SCHEMA)
    assert not evaluate(col("name").like("world%"), ROW, SCHEMA)


def test_like_on_non_string_is_false():
    assert not evaluate(col("a").like("1%"), ROW, SCHEMA)


def test_like_escapes_regex_metacharacters():
    schema = {"s": 0}
    assert evaluate(col("s").like("a.b%"), ("a.bcd",), schema)
    assert not evaluate(col("s").like("a.b%"), ("axbcd",), schema)


def test_boolean_connectives():
    expr = (col("a").eq(10)) & (col("b").eq(20))
    assert evaluate(expr, ROW, SCHEMA)
    expr = (col("a").eq(99)) | (col("b").eq(20))
    assert evaluate(expr, ROW, SCHEMA)
    assert not evaluate(~(col("a").eq(10)), ROW, SCHEMA)


def test_constants():
    assert evaluate(ALWAYS_TRUE, ROW, SCHEMA)
    assert not evaluate(ALWAYS_FALSE, ROW, SCHEMA)


def test_null_semantics_not_true():
    row = (None, 20, None)
    assert not evaluate(col("a") < 100, row, SCHEMA)
    assert not evaluate(col("a").eq(None), row, SCHEMA)
    assert not evaluate(col("a").between(0, 100), row, SCHEMA)
    assert not evaluate(col("a").in_([None, 1]), row, SCHEMA)
    # NOT of an unknown comparison collapses to TRUE in two-valued logic
    assert evaluate(~(col("a") < 100), row, SCHEMA)


def test_referenced_columns():
    expr = ((col("a") < 1) | col("b").between(var("x"), 9)) & ~col("name").like("z%")
    assert referenced_columns(expr) == {"a", "b", "name"}


def test_referenced_columns_includes_comparison_rhs():
    assert referenced_columns(col("a") < col("b")) == {"a", "b"}


def test_referenced_host_vars():
    expr = (col("a") >= var("lo")) & (col("a") <= var("hi")) & col("b").in_([var("v"), lit(3)])
    assert referenced_host_vars(expr) == {"lo", "hi", "v"}


def test_referenced_host_vars_empty():
    assert referenced_host_vars(col("a") < 5) == frozenset()

"""Integration tests for the retrieval dispatcher: correctness against a
brute-force oracle on randomized workloads, across goals and tactics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.errors import RetrievalError
from repro.expr.ast import ALWAYS_TRUE, col, var
from repro.expr.eval import evaluate


def build_random_table(seed, rows=300):
    db = Database(buffer_capacity=48)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=6,
    )
    rng = np.random.default_rng(seed)
    for _ in range(rows):
        table.insert(
            (int(rng.integers(0, 30)), int(rng.integers(0, 100)), int(rng.integers(0, 10)))
        )
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return db, table


def oracle(table, expr, host_vars={}):
    return sorted(
        row
        for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position, host_vars)
    )


PREDICATES = [
    ALWAYS_TRUE,
    col("A").eq(5),
    col("A") < 3,
    (col("A").eq(5)) & (col("B") < 40),
    (col("A") >= 25) & (col("B").between(10, 60)),
    (col("A").eq(5)) & (col("B") < 40) & (col("C").eq(2)),
    (col("A") < 2) | (col("A") > 28),
    col("B") >= 95,
    col("B") >= 0,
    (col("A").eq(999)) & (col("B") < 40),
]


@pytest.mark.parametrize("expr", PREDICATES)
@pytest.mark.parametrize("goal", [Goal.TOTAL_TIME, Goal.FAST_FIRST])
def test_dynamic_retrieval_matches_oracle(expr, goal):
    db, table = build_random_table(seed=11)
    result = table.select(where=expr, optimize_for=goal)
    assert sorted(result.rows) == oracle(table, expr)
    assert len(result.rids) == len(result.rows)
    assert len(set(result.rids)) == len(result.rids), "duplicate RIDs delivered"


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_randomized_workloads_match_oracle(seed):
    db, table = build_random_table(seed=seed)
    rng = np.random.default_rng(seed + 100)
    for _ in range(8):
        a = int(rng.integers(0, 30))
        b_lo = int(rng.integers(0, 100))
        b_hi = b_lo + int(rng.integers(0, 50))
        expr = (col("A") >= a) & (col("B").between(b_lo, b_hi))
        goal = Goal.FAST_FIRST if rng.random() < 0.5 else Goal.TOTAL_TIME
        result = table.select(where=expr, optimize_for=goal)
        assert sorted(result.rows) == oracle(table, expr), f"mismatch for A>={a}"


def test_limit_honored_all_goals():
    db, table = build_random_table(seed=21)
    for goal in (Goal.TOTAL_TIME, Goal.FAST_FIRST):
        result = table.select(where=col("A") < 20, limit=7, optimize_for=goal)
        assert len(result.rows) == 7
        full = oracle(table, col("A") < 20)
        assert all(tuple(row) in set(full) for row in result.rows)


def test_order_by_with_index():
    db, table = build_random_table(seed=31)
    result = table.select(where=col("B") < 50, order_by=("A",))
    values = [row[0] for row in result.rows]
    assert values == sorted(values)
    assert sorted(result.rows) == oracle(table, col("B") < 50)


def test_order_by_without_index_sorts():
    db, table = build_random_table(seed=41)
    result = table.select(where=col("A") < 10, order_by=("C",))
    values = [row[2] for row in result.rows]
    assert values == sorted(values)


def test_host_variable_rebinding_same_engine():
    db, table = build_random_table(seed=51)
    expr = col("A") >= var("X")
    for x in (0, 10, 29, 100):
        result = table.select(where=expr, host_vars={"X": x})
        assert sorted(result.rows) == oracle(table, expr, {"X": x})


def test_iteration_context_reused():
    db, table = build_random_table(seed=61)
    expr = (col("A").eq(3)) & (col("B") < 50)
    first = table.select(where=expr, context_key="q1")
    context = table.context_for("q1")
    assert context.executions == 1
    assert context.last_order
    second = table.select(where=expr, context_key="q1")
    assert context.executions == 2
    assert sorted(first.rows) == sorted(second.rows)


def test_unknown_column_raises():
    db, table = build_random_table(seed=71)
    with pytest.raises(RetrievalError):
        table.select(where=col("NOPE") < 1)


def test_projection_columns_covered_by_index():
    db, table = build_random_table(seed=81)
    result = table.select(where=col("A").eq(5), columns=("A",))
    assert all(row[0] == 5 for row in result.rows)


def test_empty_result_shortcut_costs_almost_nothing():
    db, table = build_random_table(seed=91)
    db.cold_cache()
    result = table.select(where=col("A").eq(999))
    assert result.rows == []
    assert result.execution_io == 0
    assert result.total_cost < 5  # just the estimation descent


def test_result_metrics_populated():
    db, table = build_random_table(seed=101)
    db.cold_cache()
    result = table.select(where=col("A").eq(5))
    assert result.execution_cost > 0
    assert result.total_cost >= result.execution_cost
    assert result.description
    assert len(result.trace) > 0


def test_stopped_early_flag():
    db, table = build_random_table(seed=111)
    result = table.select(where=ALWAYS_TRUE, limit=2)
    assert result.stopped_early
    full = table.select(where=ALWAYS_TRUE)
    assert not full.stopped_early


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 29),
    st.integers(0, 99),
    st.integers(0, 60),
    st.sampled_from([Goal.TOTAL_TIME, Goal.FAST_FIRST]),
)
def test_property_retrieval_correctness(a, b_lo, width, goal):
    db, table = build_random_table(seed=7)  # deterministic table
    expr = (col("A") >= a) & (col("B").between(b_lo, b_lo + width))
    result = table.select(where=expr, optimize_for=goal)
    assert sorted(result.rows) == oracle(table, expr)


def test_result_summary_mentions_key_facts():
    db, table = build_random_table(seed=121)
    db.cold_cache()
    result = table.select(where=col("A").eq(5))
    text = result.summary()
    assert "strategy" in text and "cost" in text
    assert str(len(result.rows)) in text
    assert result.goal.value in text

"""Tests for optimization-goal inference (Section 4 rules)."""

from repro.engine.goals import OptimizationGoal, goal_for_controller, infer_goals
from repro.sql.plan import (
    Aggregate,
    AggregateItem,
    Distinct,
    Exists,
    Limit,
    Project,
    Retrieve,
    Sort,
)


def _retrieve(table="T", children=()):
    return Retrieve(children=tuple(children), table=table)


def test_limit_controls_fast_first():
    retrieve = _retrieve()
    root = Limit(children=(retrieve,), count=2)
    goals = infer_goals(root)
    assert goals[id(retrieve)] is OptimizationGoal.FAST_FIRST


def test_exists_controls_fast_first():
    retrieve = _retrieve()
    root = Exists(children=(retrieve,))
    assert infer_goals(root)[id(retrieve)] is OptimizationGoal.FAST_FIRST


def test_sort_controls_total_time():
    retrieve = _retrieve()
    root = Sort(children=(retrieve,), keys=("a",), descending=(False,))
    assert infer_goals(root)[id(retrieve)] is OptimizationGoal.TOTAL_TIME


def test_aggregate_controls_total_time():
    retrieve = _retrieve()
    root = Aggregate(children=(retrieve,), items=(AggregateItem("count", None, "n"),))
    assert infer_goals(root)[id(retrieve)] is OptimizationGoal.TOTAL_TIME


def test_distinct_controls_total_time():
    retrieve = _retrieve()
    root = Distinct(children=(retrieve,))
    assert infer_goals(root)[id(retrieve)] is OptimizationGoal.TOTAL_TIME


def test_nearest_controller_wins():
    retrieve = _retrieve()
    inner = Limit(children=(retrieve,), count=1)
    root = Sort(children=(inner,), keys=("a",), descending=(False,))
    # limit is nearer to the retrieve than sort
    assert infer_goals(root)[id(retrieve)] is OptimizationGoal.FAST_FIRST


def test_uncontrolled_uses_request():
    retrieve = _retrieve()
    root = Project(children=(retrieve,), columns=())
    goals = infer_goals(root, OptimizationGoal.FAST_FIRST)
    assert goals[id(retrieve)] is OptimizationGoal.FAST_FIRST


def test_uncontrolled_default_is_total_time():
    retrieve = _retrieve()
    assert infer_goals(retrieve)[id(retrieve)] is OptimizationGoal.TOTAL_TIME


def test_controller_overrides_user_request():
    retrieve = _retrieve()
    root = Limit(children=(retrieve,), count=5)
    goals = infer_goals(root, OptimizationGoal.TOTAL_TIME)
    assert goals[id(retrieve)] is OptimizationGoal.FAST_FIRST


def test_paper_three_table_example():
    """C fast-first (limit), B total-time (distinct), A total-time (request)."""
    retrieve_c = _retrieve("C")
    subquery_c = Project(children=(Limit(children=(retrieve_c,), count=2),), columns=("Z",))
    retrieve_b = _retrieve("B", children=(subquery_c,))
    subquery_b = Project(
        children=(Distinct(children=(retrieve_b,)),), columns=("Y",)
    )
    retrieve_a = _retrieve("A", children=(subquery_b,))
    root = Project(children=(retrieve_a,), columns=())
    goals = infer_goals(root, OptimizationGoal.TOTAL_TIME)
    assert goals[id(retrieve_c)] is OptimizationGoal.FAST_FIRST
    assert goals[id(retrieve_b)] is OptimizationGoal.TOTAL_TIME
    assert goals[id(retrieve_a)] is OptimizationGoal.TOTAL_TIME


def test_goal_for_controller_direct():
    assert goal_for_controller("limit", OptimizationGoal.DEFAULT) is OptimizationGoal.FAST_FIRST
    assert goal_for_controller("sort", OptimizationGoal.DEFAULT) is OptimizationGoal.TOTAL_TIME
    assert goal_for_controller(None, OptimizationGoal.DEFAULT) is OptimizationGoal.TOTAL_TIME
    assert (
        goal_for_controller(None, OptimizationGoal.FAST_FIRST)
        is OptimizationGoal.FAST_FIRST
    )


def test_all_retrieves_get_goals():
    retrieves = [_retrieve(name) for name in "XYZ"]
    root = Project(children=tuple(retrieves), columns=())
    goals = infer_goals(root)
    assert len(goals) == 3

"""Unit tests for UnionScanProcess internals."""

import pytest

from repro.db.session import Database
from repro.engine.metrics import RetrievalTrace
from repro.engine.union_scan import UnionScanProcess
from repro.expr.ast import col
from repro.expr.disjunction import cover_disjuncts
from repro.expr.normalize import conjunction_terms


@pytest.fixture
def setup(db):
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("PAD", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(900):
        table.insert((i % 30, (i * 7) % 90, i))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return db, table


def run_union(table, expr, config=None):
    covered = cover_disjuncts(expr, list(table.indexes.values()))
    assert covered is not None
    trace = RetrievalTrace()
    union = UnionScanProcess(
        covered, table.heap, table.buffer_pool, trace, config or table.config
    )
    while union.active:
        if union.step():
            break
    return union, trace


def test_requires_disjuncts(setup):
    db, table = setup
    with pytest.raises(ValueError):
        UnionScanProcess([], table.heap, table.buffer_pool, RetrievalTrace())


def test_union_result_is_exact_set(setup):
    db, table = setup
    expr = (col("A").eq(3)) | (col("B").eq(70))
    union, _ = run_union(table, expr)
    expected = sorted(
        rid for rid, row in table.heap.scan() if row[0] == 3 or row[1] == 70
    )
    assert union.sorted_result() == expected
    assert not union.tscan_recommended


def test_duplicates_counted_not_stored(setup):
    db, table = setup
    # A == k and B == (k*7)%90 share many rows
    expr = (col("A").eq(3)) | (col("B").eq(21))
    union, _ = run_union(table, expr)
    assert union.duplicates_skipped > 0
    result = union.sorted_result()
    assert len(result) == len(set(result))


def test_scans_ordered_ascending_by_estimate(setup):
    db, table = setup
    expr = (col("A") < 25) | (col("B").eq(70))  # big range vs small equality
    covered = cover_disjuncts(expr, list(table.indexes.values()))
    union = UnionScanProcess(
        covered, table.heap, table.buffer_pool, RetrievalTrace(), table.config
    )
    estimates = [scan.estimate for scan in union._scans]
    assert estimates == sorted(estimates)


def test_abandon_on_huge_union(setup):
    db, table = setup
    expr = (col("A") >= 0) | (col("B").eq(70))
    union, trace = run_union(table, expr)
    assert union.tscan_recommended
    assert union.sorted_result() == []


def test_empty_union(setup):
    db, table = setup
    expr = (col("A").eq(999)) | (col("B").eq(888))
    union, _ = run_union(table, expr)
    assert union.finished and union.empty
    assert union.sorted_result() == []


def test_projection_none_before_min_fraction(setup):
    db, table = setup
    expr = (col("A").eq(3)) | (col("B").eq(70))
    covered = cover_disjuncts(expr, list(table.indexes.values()))
    union = UnionScanProcess(
        covered, table.heap, table.buffer_pool, RetrievalTrace(), table.config
    )
    assert union.projected_final_cost() is None  # nothing scanned yet

"""Tests for processes, the proportional scheduler, and competitions."""

import pytest

from repro.competition.direct import DirectCompetition, TrialThenSwitch
from repro.competition.process import Process, SyntheticProcess
from repro.competition.scheduler import ProportionalScheduler
from repro.competition.two_stage import (
    SwitchCriterion,
    SwitchDecision,
    TwoStageCompetition,
)
from repro.errors import CompetitionError


def test_synthetic_process_completes_at_total_cost():
    process = SyntheticProcess("p", total_cost=3.0, step_cost=1.0)
    assert not process.step()
    assert not process.step()
    assert process.step()
    assert process.finished
    assert process.meter.total == pytest.approx(3.0)


def test_synthetic_process_partial_last_step():
    process = SyntheticProcess("p", total_cost=2.5, step_cost=1.0)
    while not process.step():
        pass
    assert process.meter.total == pytest.approx(2.5)


def test_zero_cost_process_finishes_immediately():
    process = SyntheticProcess("p", total_cost=0.0)
    assert process.step()


def test_step_on_finished_process_raises():
    process = SyntheticProcess("p", total_cost=0.0)
    process.step()
    with pytest.raises(RuntimeError):
        process.step()


def test_abandon_keeps_sunk_cost():
    process = SyntheticProcess("p", total_cost=10.0)
    process.step()
    process.abandon()
    assert process.abandoned and not process.active
    assert process.meter.total == pytest.approx(1.0)


def test_abandon_after_finish_is_noop():
    process = SyntheticProcess("p", total_cost=1.0)
    process.step()
    process.abandon()
    assert process.finished and not process.abandoned


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        SyntheticProcess("p", total_cost=-1)


# -- scheduler ----------------------------------------------------------------


def test_scheduler_requires_processes():
    with pytest.raises(CompetitionError):
        ProportionalScheduler([])


def test_scheduler_validates_weights():
    process = SyntheticProcess("p", 5)
    with pytest.raises(CompetitionError):
        ProportionalScheduler([process], [1.0, 2.0])
    with pytest.raises(CompetitionError):
        ProportionalScheduler([process], [0.0])


def test_scheduler_proportional_costs():
    fast = SyntheticProcess("fast", total_cost=1000)
    slow = SyntheticProcess("slow", total_cost=1000)
    scheduler = ProportionalScheduler([fast, slow], [3.0, 1.0])
    for _ in range(400):
        scheduler.next_process().step()
    assert fast.meter.total == pytest.approx(3 * slow.meter.total, rel=0.05)


def test_scheduler_stops_on_first_finish():
    quick = SyntheticProcess("quick", total_cost=3)
    endless = SyntheticProcess("endless", total_cost=10_000)
    scheduler = ProportionalScheduler([quick, endless])
    winner = scheduler.run(stop_on_first_finish=True)
    assert winner is quick
    assert endless.active


def test_scheduler_until_predicate():
    process = SyntheticProcess("p", total_cost=100)
    scheduler = ProportionalScheduler([process])
    result = scheduler.run(until=lambda: process.meter.total >= 5)
    assert result is None
    assert process.meter.total == pytest.approx(5.0)


def test_scheduler_returns_none_when_all_inactive():
    process = SyntheticProcess("p", total_cost=1)
    process.step()
    scheduler = ProportionalScheduler([process])
    assert scheduler.run() is None


def test_scheduler_total_cost():
    a, b = SyntheticProcess("a", 2), SyntheticProcess("b", 2)
    scheduler = ProportionalScheduler([a, b])
    scheduler.run(stop_on_first_finish=False)
    assert scheduler.total_cost() == pytest.approx(4.0)


# -- trial-then-switch ------------------------------------------------------------


def test_trial_wins_within_budget():
    trial = SyntheticProcess("trial", total_cost=3)
    safe = SyntheticProcess("safe", total_cost=100)
    outcome = TrialThenSwitch(trial, safe, trial_budget=10).run()
    assert outcome.winner is trial
    assert outcome.total_cost == pytest.approx(3.0)
    assert outcome.abandoned == ()
    assert safe.meter.total == 0.0


def test_trial_abandoned_at_budget():
    trial = SyntheticProcess("trial", total_cost=1000)
    safe = SyntheticProcess("safe", total_cost=20)
    outcome = TrialThenSwitch(trial, safe, trial_budget=10).run()
    assert outcome.winner is safe
    assert trial.abandoned
    assert outcome.total_cost == pytest.approx(10 + 20)


def test_trial_budget_validation():
    with pytest.raises(CompetitionError):
        TrialThenSwitch(SyntheticProcess("t", 1), SyntheticProcess("s", 1), -1)


# -- direct competition --------------------------------------------------------------


def test_direct_competition_first_finisher_wins():
    safe = SyntheticProcess("safe", total_cost=50)
    challenger = SyntheticProcess("challenger", total_cost=10)
    outcome = DirectCompetition(safe, [challenger]).run()
    assert outcome.winner is challenger
    assert safe in outcome.abandoned
    # equal speeds: both progressed about equally until the win
    assert outcome.total_cost == pytest.approx(20.0, abs=2.0)


def test_direct_competition_switch_budget():
    safe = SyntheticProcess("safe", total_cost=30)
    challenger = SyntheticProcess("challenger", total_cost=10_000)
    outcome = DirectCompetition(safe, [challenger], switch_budget=5).run()
    assert outcome.winner is safe
    assert challenger.abandoned
    assert challenger.meter.total <= 6.0


def test_direct_competition_requires_challengers():
    with pytest.raises(CompetitionError):
        DirectCompetition(SyntheticProcess("s", 1), [])


def test_direct_competition_speed_ratio():
    safe = SyntheticProcess("safe", total_cost=100)
    challenger = SyntheticProcess("challenger", total_cost=100)
    outcome = DirectCompetition(
        safe, [challenger], safe_speed=4.0, challenger_speed=1.0
    ).run()
    assert outcome.winner is safe
    assert challenger.meter.total == pytest.approx(25.0, abs=2.0)


# -- two-stage competition ----------------------------------------------------------


def test_switch_criterion_projection():
    criterion = SwitchCriterion(threshold=0.95, scan_cost_limit_fraction=0.5)
    assert criterion.evaluate(96.0, 1.0, 100.0) is SwitchDecision.ABANDON_PROJECTED
    assert criterion.evaluate(90.0, 1.0, 100.0) is SwitchDecision.CONTINUE
    assert criterion.evaluate(None, 1.0, 100.0) is SwitchDecision.CONTINUE


def test_switch_criterion_scan_cost():
    criterion = SwitchCriterion(threshold=0.95, scan_cost_limit_fraction=0.5)
    assert criterion.evaluate(None, 50.0, 100.0) is SwitchDecision.ABANDON_SCAN_COST
    assert criterion.evaluate(10.0, 49.0, 100.0) is SwitchDecision.CONTINUE


def test_switch_criterion_zero_guaranteed():
    criterion = SwitchCriterion()
    assert criterion.evaluate(None, 0.0, 0.0) is SwitchDecision.ABANDON_PROJECTED


def test_two_stage_commits_cheap_first_stage():
    stage = SyntheticProcess("stage", total_cost=5)
    competition = TwoStageCompetition(
        stage, projector=lambda p: 10.0, guaranteed_best=lambda: 100.0
    )
    outcome = competition.run()
    assert outcome.committed
    assert outcome.first_stage_cost == pytest.approx(5.0)


def test_two_stage_abandons_on_projection():
    stage = SyntheticProcess("stage", total_cost=1000)
    projections = iter([None, 50.0, 99.0])
    competition = TwoStageCompetition(
        stage,
        projector=lambda p: next(projections, 99.0),
        guaranteed_best=lambda: 100.0,
    )
    outcome = competition.run()
    assert not outcome.committed
    assert outcome.decision is SwitchDecision.ABANDON_PROJECTED
    assert stage.abandoned
    assert outcome.first_stage_cost < 10


def test_two_stage_reacts_to_guaranteed_best_drop():
    """Dynamic readjustment: a falling guaranteed best ends the stage."""
    stage = SyntheticProcess("stage", total_cost=1000)
    guaranteed = {"value": 1000.0}
    competition = TwoStageCompetition(
        stage, projector=lambda p: 100.0, guaranteed_best=lambda: guaranteed["value"]
    )

    class Stepper(Process):
        def _do_step(self) -> bool:
            return True

    # run a few steps with a high guaranteed best, then drop it
    for _ in range(3):
        stage.step()
    guaranteed["value"] = 101.0
    outcome = competition.run()
    assert not outcome.committed
    assert outcome.decision is SwitchDecision.ABANDON_PROJECTED

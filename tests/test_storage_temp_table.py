"""Tests for temp-table spill storage."""

import pytest

from repro.storage.buffer_pool import CostMeter
from repro.storage.rid import RID
from repro.storage.temp_table import TempTable


def test_append_and_scan_roundtrip(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=4)
    rids = [RID(i, 0) for i in range(10)]
    temp.extend(rids)
    assert list(temp.scan()) == rids
    assert len(temp) == 10


def test_pages_flush_at_capacity(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=4)
    temp.extend(RID(i, 0) for i in range(9))
    assert temp.page_count == 2  # 8 flushed, 1 in the tail buffer


def test_writes_charge_meter(buffer_pool):
    meter = CostMeter()
    temp = TempTable(buffer_pool, "t", rids_per_page=2)
    temp.extend((RID(i, 0) for i in range(6)), meter)
    assert meter.io_writes == 3


def test_scan_charges_reads_when_cold(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=2)
    temp.extend(RID(i, 0) for i in range(6))
    buffer_pool.clear()
    meter = CostMeter()
    list(temp.scan(meter))
    assert meter.io_reads == 3


def test_sorted_rids(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=4)
    temp.extend([RID(3, 0), RID(1, 0), RID(2, 0)])
    assert temp.sorted_rids() == [RID(1, 0), RID(2, 0), RID(3, 0)]


def test_release_frees_pages(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=2)
    temp.extend(RID(i, 0) for i in range(6))
    pages_before = len(buffer_pool.pager)
    temp.release()
    assert len(buffer_pool.pager) == pages_before - 3
    assert len(temp) == 0
    with pytest.raises(RuntimeError):
        temp.append(RID(0, 0))


def test_scan_includes_unflushed_tail(buffer_pool):
    temp = TempTable(buffer_pool, "t", rids_per_page=100)
    temp.extend([RID(1, 0), RID(2, 0)])
    assert temp.page_count == 0
    assert list(temp.scan()) == [RID(1, 0), RID(2, 0)]

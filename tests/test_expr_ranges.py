"""Tests for sargable key-range extraction."""

from hypothesis import given, settings, strategies as st

from repro.btree.tree import KeyRange
from repro.expr.ast import col, lit, var
from repro.expr.normalize import conjunction_terms
from repro.expr.eval import evaluate
from repro.expr.ranges import extract_index_restriction


def ranges_of(expr, columns, host_vars={}):
    return extract_index_restriction(conjunction_terms(expr), columns, host_vars)


def test_simple_lower_bound():
    restriction = ranges_of(col("age") >= 30, ["age"])
    assert restriction.matched
    assert restriction.key_range == KeyRange(lo=(30,), hi=None)


def test_simple_upper_bound_exclusive():
    restriction = ranges_of(col("age") < 30, ["age"])
    assert restriction.key_range == KeyRange(lo=None, hi=(30,), hi_inclusive=False)


def test_equality_range():
    restriction = ranges_of(col("age").eq(30), ["age"])
    assert restriction.key_range == KeyRange(lo=(30,), hi=(30,))


def test_between_range():
    restriction = ranges_of(col("age").between(10, 20), ["age"])
    assert restriction.key_range == KeyRange(lo=(10,), hi=(20,))


def test_combined_bounds_narrow():
    expr = (col("age") >= 10) & (col("age") < 50) & (col("age") >= 20)
    restriction = ranges_of(expr, ["age"])
    assert restriction.key_range == KeyRange(lo=(20,), hi=(50,), hi_inclusive=False)


def test_reversed_comparison_flips():
    restriction = ranges_of(lit(30) <= col("age"), ["age"])
    # 30 <= age means age >= 30
    assert restriction.key_range.lo == (30,)


def test_host_var_bound_at_runtime():
    expr = col("age") >= var("A1")
    assert not ranges_of(expr, ["age"], {}).matched
    restriction = ranges_of(expr, ["age"], {"A1": 42})
    assert restriction.key_range.lo == (42,)


def test_unrelated_column_does_not_match():
    restriction = ranges_of(col("salary") > 10, ["age"])
    assert not restriction.matched
    assert restriction.key_range == KeyRange.all()


def test_not_equal_is_not_sargable():
    assert not ranges_of(col("age").ne(5), ["age"]).matched


def test_composite_equality_prefix_plus_range():
    expr = (col("a").eq(5)) & (col("b") > 10)
    restriction = ranges_of(expr, ["a", "b"])
    assert restriction.key_range.lo == (5, 10)
    assert not restriction.key_range.lo_inclusive
    assert restriction.key_range.hi == (5,)
    assert restriction.equality_prefix == 1


def test_composite_all_equalities():
    expr = (col("a").eq(1)) & (col("b").eq(2))
    restriction = ranges_of(expr, ["a", "b"])
    assert restriction.key_range == KeyRange(lo=(1, 2), hi=(1, 2))
    assert restriction.equality_prefix == 2


def test_composite_stops_at_gap():
    # no restriction on leading column: composite index unusable
    expr = col("b").eq(2)
    restriction = ranges_of(expr, ["a", "b"])
    assert not restriction.matched


def test_single_value_in_list_is_equality():
    restriction = ranges_of(col("a").in_([7]), ["a"])
    assert restriction.key_range == KeyRange(lo=(7,), hi=(7,))


def test_multi_value_in_list_not_sargable():
    assert not ranges_of(col("a").in_([1, 2]), ["a"]).matched


def test_like_prefix_range():
    restriction = ranges_of(col("name").like("abc%"), ["name"])
    assert restriction.matched
    assert restriction.key_range.lo == ("abc",)
    assert restriction.key_range.hi[0].startswith("abc")


def test_like_without_prefix_not_sargable():
    assert not ranges_of(col("name").like("%abc"), ["name"]).matched


def test_or_terms_do_not_produce_ranges():
    expr = (col("a") > 5) | (col("a") < 2)
    assert not ranges_of(expr, ["a"]).matched


def test_contributing_terms_recorded():
    expr = (col("a") > 5) & (col("b") < 2)
    restriction = ranges_of(expr, ["a"])
    assert len(restriction.contributing_terms) == 1


@given(
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.lists(st.integers(-25, 25), min_size=1, max_size=50),
)
@settings(max_examples=80)
def test_range_is_sound_overapproximation(a, b, values):
    """Every row satisfying the terms must have its key inside the range."""
    lo, hi = min(a, b), max(a, b)
    expr = (col("x") >= lo) & (col("x") <= hi)
    restriction = ranges_of(expr, ["x"])
    schema = {"x": 0}
    for value in values:
        if evaluate(expr, (value,), schema):
            assert restriction.key_range.contains_key((value,))

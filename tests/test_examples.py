"""Keep the runnable examples green: each must execute end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    # the deliverable promises at least three runnable examples
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{name} produced no output"

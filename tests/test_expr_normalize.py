"""Tests for NOT push-down and AND/OR flattening."""

from hypothesis import given, settings, strategies as st

from repro.expr.ast import (
    ALWAYS_FALSE,
    ALWAYS_TRUE,
    And,
    Comparison,
    Like,
    Not,
    Or,
    col,
)
from repro.expr.eval import evaluate
from repro.expr.normalize import conjunction_terms, normalize

SCHEMA = {"a": 0, "b": 1}


def test_not_comparison_flips_operator():
    assert normalize(~(col("a") < 5)) == Comparison(">=", col("a"), _lit(5))


def _lit(value):
    from repro.expr.ast import Literal

    return Literal(value)


def test_double_negation_cancels():
    expr = ~~(col("a") < 5)
    assert normalize(expr) == normalize(col("a") < 5)


def test_de_morgan_and():
    expr = ~((col("a") < 5) & (col("b") < 5))
    normalized = normalize(expr)
    assert isinstance(normalized, Or)
    assert all(isinstance(child, Comparison) for child in normalized.children)


def test_de_morgan_or():
    expr = ~((col("a") < 5) | (col("b") < 5))
    normalized = normalize(expr)
    assert isinstance(normalized, And)


def test_not_between_becomes_disjunction():
    normalized = normalize(~col("a").between(1, 9))
    assert isinstance(normalized, Or)
    assert len(normalized.children) == 2


def test_not_in_list_becomes_inequalities():
    normalized = normalize(~col("a").in_([1, 2]))
    assert isinstance(normalized, And)
    assert all(child.op == "<>" for child in normalized.children)


def test_not_like_stays_at_leaf():
    normalized = normalize(~col("a").like("x%"))
    assert isinstance(normalized, Not)
    assert isinstance(normalized.child, Like)


def test_flatten_nested_ands():
    expr = ((col("a") < 1) & (col("a") < 2)) & ((col("a") < 3) & (col("a") < 4))
    normalized = normalize(expr)
    assert isinstance(normalized, And)
    assert len(normalized.children) == 4


def test_flatten_drops_true_in_and():
    expr = (col("a") < 1) & ALWAYS_TRUE
    assert normalize(expr) == normalize(col("a") < 1)


def test_false_collapses_and():
    expr = (col("a") < 1) & ALWAYS_FALSE
    assert normalize(expr) == ALWAYS_FALSE


def test_true_collapses_or():
    expr = (col("a") < 1) | ALWAYS_TRUE
    assert normalize(expr) == ALWAYS_TRUE


def test_conjunction_terms_of_simple_and():
    terms = conjunction_terms((col("a") < 1) & (col("b") > 2))
    assert len(terms) == 2


def test_conjunction_terms_of_single_predicate():
    assert len(conjunction_terms(col("a") < 1)) == 1


def test_conjunction_terms_of_true_is_empty():
    assert conjunction_terms(ALWAYS_TRUE) == ()


def test_conjunction_terms_keeps_or_as_single_term():
    terms = conjunction_terms(((col("a") < 1) | (col("b") > 2)) & (col("a") > 0))
    assert len(terms) == 2
    assert any(isinstance(term, Or) for term in terms)


# -- semantic preservation under normalization (property-based) ------------------

_comparison = st.builds(
    lambda op, column, value: Comparison(op, col(column), _lit(value)),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.sampled_from(["a", "b"]),
    st.integers(-5, 5),
)


def _expr_strategy():
    return st.recursive(
        _comparison,
        lambda children: st.one_of(
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Not, children),
        ),
        max_leaves=12,
    )


@given(_expr_strategy(), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=150)
def test_normalize_preserves_semantics(expr, a, b):
    row = (a, b)
    assert evaluate(expr, row, SCHEMA) == evaluate(normalize(expr), row, SCHEMA)


@given(_expr_strategy(), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=100)
def test_conjunction_terms_conjoin_to_original(expr, a, b):
    row = (a, b)
    terms = conjunction_terms(expr)
    conjoined = all(evaluate(term, row, SCHEMA) for term in terms)
    assert conjoined == evaluate(expr, row, SCHEMA)

"""Tests for the dynamic execution metrics (trace + counters)."""

from repro.engine.metrics import EventKind, RetrievalTrace, TraceEvent


def test_emit_and_iterate():
    trace = RetrievalTrace()
    trace.emit(EventKind.SCAN_START, strategy="tscan")
    trace.emit(EventKind.SCAN_COMPLETE, index="IX")
    assert len(trace) == 2
    kinds = [event.kind for event in trace]
    assert kinds == [EventKind.SCAN_START, EventKind.SCAN_COMPLETE]


def test_of_kind_preserves_order():
    trace = RetrievalTrace()
    trace.emit(EventKind.SCAN_START, n=1)
    trace.emit(EventKind.SCAN_COMPLETE)
    trace.emit(EventKind.SCAN_START, n=2)
    starts = trace.of_kind(EventKind.SCAN_START)
    assert [event.detail["n"] for event in starts] == [1, 2]


def test_has():
    trace = RetrievalTrace()
    assert not trace.has(EventKind.SPILL)
    trace.emit(EventKind.SPILL)
    assert trace.has(EventKind.SPILL)


def test_event_str_format():
    event = TraceEvent(EventKind.SCAN_ABANDONED, {"index": "IX", "reason": "x"})
    text = str(event)
    assert "scan-abandoned" in text
    assert "index=IX" in text


def test_format_is_numbered():
    trace = RetrievalTrace()
    trace.emit(EventKind.SCAN_START)
    trace.emit(EventKind.RETRIEVAL_COMPLETE, rows=3)
    lines = trace.format().splitlines()
    assert len(lines) == 2
    assert lines[0].strip().startswith("0.")


def test_counters_default_zero():
    trace = RetrievalTrace()
    assert trace.counters.records_delivered == 0
    assert trace.counters.scans_abandoned == 0

"""Batch-vs-row equivalence suite.

The batching layer (``next_batch`` on every scan strategy, batched tactic
generators, buffer-pool read-ahead) must be an *accounting-transparent*
optimisation: for any retrieval that runs to completion it delivers the
same row sequence, the same ``CostMeter`` totals in physical-I/O units,
and the same competition switch decisions as repeated single ``step``
calls. ``buffer_hits`` is the one documented exception where read-ahead
is involved: a prefetched page charges its miss at prefetch time and a
hit at fetch time (see docs/performance.md).
"""

import pytest

from repro.btree.tree import KeyRange
from repro.config import DEFAULT_CONFIG
from repro.db.session import Database
from repro.engine.initial import run_initial_stage
from repro.engine.jscan import JscanProcess
from repro.engine.metrics import RetrievalTrace
from repro.engine.scans import FscanProcess, SscanProcess, TscanProcess
from repro.engine.union_scan import UnionScanProcess
from repro.expr.ast import ALWAYS_TRUE, col
from repro.expr.disjunction import cover_disjuncts
from repro.storage.buffer_pool import CostMeter

BATCH_SIZES = [1, 2, 64]


class Collector:
    def __init__(self, stop_after=None):
        self.rows = []
        self.rids = []
        self.stop_after = stop_after

    def __call__(self, rid, row):
        self.rids.append(rid)
        self.rows.append(row)
        return self.stop_after is None or len(self.rows) < self.stop_after


def run_steps(process):
    while process.active:
        if process.step():
            break
    return process


def drain_batches(process, batch_size):
    delivered = []
    while True:
        batch = process.next_batch(batch_size)
        if not batch:
            break
        delivered.extend(batch)
    return delivered


def meter_totals(meter: CostMeter) -> dict:
    return {
        "io_reads": meter.io_reads,
        "io_writes": meter.io_writes,
        "cpu": meter.cpu,
        "io_total": meter.io_total,
        "total": meter.total,
    }


def build_db():
    db = Database(buffer_capacity=48)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=6,
    )
    for i in range(400):
        table.insert((i % 30, (i * 7) % 90, i))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.analyze()
    return db, table


# -- per-strategy next_batch equivalence -------------------------------------


class TestNextBatchMatchesSteps:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_tscan(self, batch_size):
        db, table = build_db()
        make = lambda sink: TscanProcess(  # noqa: E731
            table.heap, table.schema, col("B") < 40, {}, sink, RetrievalTrace(),
            config=table.config,
        )
        db.cold_cache()
        reference = run_steps(make(Collector()))
        db.cold_cache()
        batched = make(lambda rid, row: True)
        delivered = drain_batches(batched, batch_size)
        assert [rid for rid, _ in delivered] == reference.sink.rids
        assert [row for _, row in delivered] == reference.sink.rows
        assert meter_totals(batched.meter) == meter_totals(reference.meter)
        assert batched.finished and not batched.stopped_by_consumer

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_sscan(self, batch_size):
        db, table = build_db()
        index = table.indexes["IX_A"]
        make = lambda sink: SscanProcess(  # noqa: E731
            index, KeyRange(lo=(5,), hi=None), table.schema,
            col("A") >= 5, {}, sink, RetrievalTrace(), config=table.config,
        )
        db.cold_cache()
        reference = run_steps(make(Collector()))
        db.cold_cache()
        batched = make(lambda rid, row: True)
        delivered = drain_batches(batched, batch_size)
        assert [row for _, row in delivered] == reference.sink.rows
        assert meter_totals(batched.meter) == meter_totals(reference.meter)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_fscan(self, batch_size):
        db, table = build_db()
        index = table.indexes["IX_B"]
        make = lambda sink: FscanProcess(  # noqa: E731
            index, KeyRange(lo=(60,), hi=None), table.heap, table.schema,
            col("B") >= 60, {}, sink, RetrievalTrace(), config=table.config,
        )
        db.cold_cache()
        reference = run_steps(make(Collector()))
        db.cold_cache()
        batched = make(lambda rid, row: True)
        delivered = drain_batches(batched, batch_size)
        assert [row for _, row in delivered] == reference.sink.rows
        assert [rid for rid, _ in delivered] == reference.sink.rids
        assert meter_totals(batched.meter) == meter_totals(reference.meter)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_jscan(self, batch_size):
        db, table = build_db()
        expr = (col("A").eq(3)) & (col("B") < 40)

        def make(on_keep=None):
            trace = RetrievalTrace()
            arrangement = run_initial_stage(
                list(table.indexes.values()), expr, {},
                frozenset(table.schema.names), (), CostMeter(), trace,
                table.config,
            )
            return JscanProcess(
                arrangement.jscan_candidates, table.heap, table.buffer_pool,
                trace, table.config, on_keep=on_keep,
            )

        # the on_keep tap fires once per kept RID at every scan stage;
        # batch mode must replay the exact same (rid, position) sequence
        reference_kept = []
        db.cold_cache()
        reference = run_steps(
            make(on_keep=lambda rid, pos: reference_kept.append((rid, pos)))
        )
        db.cold_cache()
        batched = make()
        kept = drain_batches(batched, batch_size)
        assert batched.sorted_result() == reference.sorted_result()
        assert kept == reference_kept
        assert meter_totals(batched.meter) == meter_totals(reference.meter)
        assert batched.tscan_recommended == reference.tscan_recommended

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_union_scan(self, batch_size):
        db, table = build_db()
        expr = (col("A").eq(3)) | (col("B").eq(70))
        covered = cover_disjuncts(expr, list(table.indexes.values()))
        assert covered is not None

        def make():
            return UnionScanProcess(
                covered, table.heap, table.buffer_pool, RetrievalTrace(),
                table.config,
            )

        db.cold_cache()
        reference = run_steps(make())
        db.cold_cache()
        batched = make()
        unioned = drain_batches(batched, batch_size)
        assert batched.sorted_result() == reference.sorted_result()
        assert sorted(unioned) == reference.sorted_result()
        assert meter_totals(batched.meter) == meter_totals(reference.meter)

    def test_next_batch_rejects_non_positive(self):
        db, table = build_db()
        process = TscanProcess(
            table.heap, table.schema, ALWAYS_TRUE, {}, lambda r, w: True,
            RetrievalTrace(), config=table.config,
        )
        with pytest.raises(ValueError):
            process.next_batch(0)

    def test_partial_batches_do_not_lose_overshoot(self):
        # asking for fewer rows than a page holds must buffer the overshoot,
        # not drop it, and must not advance the scan further than needed
        db, table = build_db()
        process = TscanProcess(
            table.heap, table.schema, ALWAYS_TRUE, {}, lambda r, w: True,
            RetrievalTrace(), config=table.config,
        )
        first = process.next_batch(3)
        second = process.next_batch(3)
        assert len(first) == len(second) == 3
        all_rows = [row for _, row in table.heap.scan()]
        assert [row for _, row in first + second] == all_rows[:6]


# -- full-retrieval equivalence across batch sizes ---------------------------


PREDICATES = [
    ALWAYS_TRUE,
    col("A").eq(5),
    (col("A").eq(5)) & (col("B") < 40),
    (col("A") >= 25) & (col("B").between(10, 60)),
    (col("A") < 2) | (col("A") > 28),
    col("B") >= 85,
]


def run_retrieval(batch_size, expr, **select_kwargs):
    db = Database(
        buffer_capacity=48, config=DEFAULT_CONFIG.with_(batch_size=batch_size)
    )
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=6,
    )
    for i in range(400):
        table.insert((i % 30, (i * 7) % 90, i))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.analyze()
    db.cold_cache()
    return table.select(where=expr, **select_kwargs)


class TestRetrievalEquivalence:
    @pytest.mark.parametrize("expr", PREDICATES)
    def test_rows_costs_and_switches_match_across_batch_sizes(self, expr):
        reference = run_retrieval(1, expr)
        for batch_size in BATCH_SIZES[1:]:
            result = run_retrieval(batch_size, expr)
            assert result.rows == reference.rows, f"batch={batch_size}"
            assert result.rids == reference.rids
            assert result.execution_io == reference.execution_io
            assert result.execution_cost == pytest.approx(reference.execution_cost)
            assert result.description == reference.description
            switches = result.trace.counters.strategy_switches
            assert switches == reference.trace.counters.strategy_switches
            kinds = [event.kind for event in result.trace.events]
            assert kinds == [event.kind for event in reference.trace.events]

    @pytest.mark.parametrize("expr", PREDICATES)
    def test_fast_first_goal_matches_across_batch_sizes(self, expr):
        from repro.engine.goals import OptimizationGoal

        reference = run_retrieval(1, expr, optimize_for=OptimizationGoal.FAST_FIRST)
        for batch_size in BATCH_SIZES[1:]:
            result = run_retrieval(
                batch_size, expr, optimize_for=OptimizationGoal.FAST_FIRST
            )
            assert result.rows == reference.rows
            assert result.execution_io == reference.execution_io
            assert result.description == reference.description

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_limit_stops_mid_batch(self, batch_size):
        # a limit that lands inside a batch must deliver exactly the same
        # prefix in every batch mode
        reference = run_retrieval(1, col("A") < 20, limit=7)
        result = run_retrieval(batch_size, col("A") < 20, limit=7)
        assert result.rows == reference.rows
        assert len(result.rows) == 7
        assert result.stopped_early == reference.stopped_early


# -- mid-batch cancellation through the scheduler ----------------------------


class TestMidBatchCancellation:
    def _connect(self, batch_size):
        import repro

        conn = repro.connect(
            buffer_capacity=48,
            config=DEFAULT_CONFIG.with_(batch_size=batch_size),
        )
        conn.execute("create table T (ID int, A int)")
        table = conn.table("T")
        table.insert_many((i, i % 40) for i in range(400))
        table.analyze()
        return conn

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_cancel_mid_query_leaves_engine_consistent(self, batch_size):
        conn = self._connect(batch_size)
        handle = conn.submit("select * from T where A >= 0")
        conn.server.step()  # run one quantum (up to batch_size steps)
        handle.cancel(reason="test")
        # the connection answers fresh queries correctly afterwards
        result = conn.execute("select * from T where A = 1")
        assert len(result.rows) == 10

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_deadline_cancellation_by_quanta(self, batch_size):
        from repro.errors import QueryCancelledError

        conn = self._connect(batch_size)
        try:
            conn.execute("select * from T where A >= 0", deadline=2)
            completed = True
        except QueryCancelledError:
            completed = False
        # larger batches finish within the same quantum budget;
        # batch_size=1 cannot cover 400 rows in 2 steps
        if batch_size == 1:
            assert not completed
        # either way the connection stays usable
        assert conn.execute("select * from T where A = 2").rows

"""A larger end-to-end scenario exercising every subsystem together.

One 12k-row table, five indexes (composite, unique, covering), a battery
of query shapes spanning all tactics, all checked against a brute-force
oracle, under a deliberately small buffer pool with cache interference.
"""

import numpy as np
import pytest

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.expr.ast import col, var
from repro.expr.eval import evaluate

ROWS = 12_000


@pytest.fixture(scope="module")
def world():
    db = Database(buffer_capacity=96)
    table = db.create_table(
        "SALES",
        [("SALE", "int"), ("STORE", "int"), ("ITEM", "int"), ("QTY", "int"),
         ("PRICE", "int"), ("DAY", "int")],
        rows_per_page=16, index_order=24,
    )
    rng = np.random.default_rng(2024)
    for i in range(ROWS):
        table.insert((
            i,
            int(rng.integers(0, 60)),
            int(rng.integers(0, 500)),
            int(rng.integers(1, 20)),
            int(rng.integers(1, 1000)),
            20_000 + i // 40,  # clustered day column
        ))
    table.create_index("IX_SALE", ["SALE"], unique=True)
    table.create_index("IX_STORE_DAY", ["STORE", "DAY"])
    table.create_index("IX_ITEM", ["ITEM"])
    table.create_index("IX_DAY", ["DAY"])
    table.create_index("IX_PRICE", ["PRICE"])
    table.analyze()
    db.interference_rate = 0.3
    return db, table


def check(db, table, expr, host_vars={}, **kwargs):
    db.interference_tick()
    result = table.select(where=expr, host_vars=host_vars, **kwargs)
    expected = sorted(
        row for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position, host_vars)
    )
    assert sorted(result.rows) == expected
    assert len(set(result.rids)) == len(result.rids)
    return result


def test_unique_point_lookup(world):
    db, table = world
    result = check(db, table, col("SALE").eq(4217))
    assert len(result.rows) == 1
    assert result.total_cost < 20


def test_three_way_and(world):
    db, table = world
    check(db, table, (col("STORE").eq(7)) & (col("ITEM") < 100) & (col("QTY") > 5))


def test_composite_prefix_plus_range(world):
    db, table = world
    check(db, table, (col("STORE").eq(12)) & (col("DAY").between(20_100, 20_200)))


def test_unselective_switches_to_tscan(world):
    db, table = world
    result = check(db, table, col("PRICE") >= 1)
    assert "tscan" in result.description


def test_or_union_with_interference(world):
    db, table = world
    check(db, table, (col("ITEM").eq(42)) | (col("PRICE").eq(999)))


def test_in_list(world):
    db, table = world
    check(db, table, col("ITEM").in_([5, 105, 205, 305]))


def test_fast_first_with_limit(world):
    db, table = world
    db.interference_tick()
    result = table.select(
        where=col("ITEM") < 50, limit=25, optimize_for=Goal.FAST_FIRST
    )
    assert len(result.rows) == 25
    assert all(row[2] < 50 for row in result.rows)


def test_ordered_retrieval_by_day(world):
    db, table = world
    result = check(
        db, table, (col("STORE") < 5) & (col("DAY") >= 20_250), order_by=("DAY",)
    )
    days = [row[5] for row in result.rows]
    assert days == sorted(days)


def test_covering_query_store_day(world):
    db, table = world
    db.interference_tick()
    result = table.select(
        where=(col("STORE").eq(3)) & (col("DAY") >= 20_000),
        columns=("STORE", "DAY"),
    )
    expected = sum(1 for _, row in table.heap.scan() if row[1] == 3)
    assert len(result.rows) == expected


def test_host_variable_sweep(world):
    db, table = world
    expr = (col("DAY") >= var("lo")) & (col("DAY") < var("hi"))
    for lo, hi in ((20_000, 20_010), (20_100, 20_290), (25_000, 26_000)):
        check(db, table, expr, host_vars={"lo": lo, "hi": hi})


def test_sql_end_to_end(world):
    db, table = world
    result = db.execute(
        "select count(*) as n from SALES where STORE = :s and QTY >= 10",
        {"s": 9},
    )
    expected = sum(1 for _, row in table.heap.scan() if row[1] == 9 and row[3] >= 10)
    assert result.rows == [(expected,)]


def test_total_io_reasonable_for_selective_queries(world):
    db, table = world
    db.cold_cache()
    result = table.select(where=(col("STORE").eq(7)) & (col("ITEM") < 30))
    # a selective conjunction must stay well under the full-scan cost
    assert result.total_cost < 0.8 * table.heap.page_count

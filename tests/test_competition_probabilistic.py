"""Tests for the probabilistic (Bayesian) switch criterion."""

import pytest

from repro.competition.probabilistic import BayesianSwitchCriterion, ScanEvidence
from repro.competition.two_stage import SwitchDecision
from repro.db.session import Database
from repro.expr.ast import col
from repro.expr.eval import evaluate

CRITERION = BayesianSwitchCriterion(heap_pages=200, rows_per_page=8)


def test_zero_guaranteed_abandons():
    evidence = ScanEvidence(scanned=10, kept=5, estimated_total=100, scan_cost=1.0)
    assert CRITERION.evaluate(evidence, 0.0) is SwitchDecision.ABANDON_PROJECTED


def test_scan_cost_guard():
    evidence = ScanEvidence(scanned=10, kept=0, estimated_total=100, scan_cost=60.0)
    assert CRITERION.evaluate(evidence, 100.0) is SwitchDecision.ABANDON_SCAN_COST


def test_no_evidence_continues():
    evidence = ScanEvidence(scanned=0, kept=0, estimated_total=100, scan_cost=0.0)
    assert CRITERION.evaluate(evidence, 100.0) is SwitchDecision.CONTINUE


def test_early_scan_survives_noise():
    # 3 of 4 kept looks bad, but the posterior is wide: keep scanning
    evidence = ScanEvidence(scanned=4, kept=3, estimated_total=1000, scan_cost=0.2)
    assert CRITERION.evaluate(evidence, 100.0) is SwitchDecision.CONTINUE


def test_high_keep_rate_with_strong_evidence_abandons():
    # 900/1000 kept of 1000-entry range: final list ~ whole table; no savings
    evidence = ScanEvidence(scanned=1000, kept=900, estimated_total=1100, scan_cost=20.0)
    assert CRITERION.evaluate(evidence, 150.0) is SwitchDecision.ABANDON_PROJECTED


def test_low_keep_rate_continues():
    evidence = ScanEvidence(scanned=500, kept=10, estimated_total=1000, scan_cost=10.0)
    assert CRITERION.evaluate(evidence, 150.0) is SwitchDecision.CONTINUE


def test_savings_decrease_with_keep_rate():
    low = ScanEvidence(scanned=200, kept=10, estimated_total=1000, scan_cost=5.0)
    high = ScanEvidence(scanned=200, kept=150, estimated_total=1000, scan_cost=5.0)
    assert CRITERION.expected_savings(low, 150.0) > CRITERION.expected_savings(high, 150.0)


def test_remaining_investment_scales():
    early = ScanEvidence(scanned=100, kept=10, estimated_total=1000, scan_cost=5.0)
    late = ScanEvidence(scanned=900, kept=90, estimated_total=1000, scan_cost=45.0)
    assert CRITERION.remaining_investment(early) > CRITERION.remaining_investment(late)


def test_min_fraction_guard():
    criterion = BayesianSwitchCriterion(heap_pages=200, rows_per_page=8, min_fraction=0.5)
    evidence = ScanEvidence(scanned=10, kept=10, estimated_total=1000, scan_cost=1.0)
    assert criterion.evaluate(evidence, 50.0) is SwitchDecision.CONTINUE


# -- end-to-end through Jscan -----------------------------------------------------


def _build(probabilistic: bool):
    db = Database(buffer_capacity=48)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int")], rows_per_page=8, index_order=8
    )
    if probabilistic:
        table.config = table.config.with_(probabilistic_switch=True)
    for i in range(2000):
        table.insert((i % 50, (i * 7) % 500))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return db, table


@pytest.mark.parametrize("expr_index", range(4))
def test_probabilistic_engine_matches_oracle(expr_index):
    expressions = [
        col("A").eq(7),
        (col("A").eq(7)) & (col("B") < 100),
        col("B") >= 0,
        (col("A") < 2) & (col("B") >= 450),
    ]
    expr = expressions[expr_index]
    db, table = _build(probabilistic=True)
    result = table.select(where=expr)
    expected = sorted(
        row for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position)
    )
    assert sorted(result.rows) == expected


def test_probabilistic_switches_to_tscan_on_unselective():
    db, table = _build(probabilistic=True)
    db.cold_cache()
    result = table.select(where=col("B") >= 0)
    assert "tscan" in result.description


def test_probabilistic_costs_comparable_to_deterministic():
    costs = {}
    for probabilistic in (False, True):
        db, table = _build(probabilistic)
        db.cold_cache()
        run = table.select(where=(col("A").eq(7)) & (col("B") < 100))
        costs[probabilistic] = run.total_cost
    # neither rule should be wildly worse on a routine query
    assert costs[True] < 3 * costs[False]
    assert costs[False] < 3 * costs[True]

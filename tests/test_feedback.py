"""Tests for adaptive selectivity feedback.

The store keeps an EWMA correction per (table, index, predicate signature)
learned from observed-vs-estimated cardinalities; the end-to-end tests
assert that a second execution *starts from the observed cardinality*
(``feedback_rids`` in the INITIAL_ESTIMATE event) and that the sharpened
estimate changes a real optimizer decision — the Section 5 small-range
shortcut fires where the raw estimate was too large to allow it.
"""

import pytest

import repro
from repro.cache.feedback import FeedbackStore, predicate_signature
from repro.config import DEFAULT_CONFIG
from repro.engine.metrics import EventKind
from repro.expr.ast import col, lit, var


# -- predicate signatures ---------------------------------------------------


def test_signature_abstracts_hostvar_values():
    a = predicate_signature(col("V").eq(var("X")))
    b = predicate_signature(col("V").eq(var("Y")))
    assert a == b


def test_signature_keeps_literals_distinct():
    a = predicate_signature(col("V").eq(lit(3)))
    b = predicate_signature(col("V").eq(lit(4)))
    assert a != b


def test_signature_distinguishes_structure():
    a = predicate_signature(col("V").eq(var("X")))
    b = predicate_signature(col("V") >= var("X"))
    assert a != b


# -- FeedbackStore unit behaviour -------------------------------------------


def test_single_sample_adjusts_to_observed():
    store = FeedbackStore()
    pred = col("V").eq(var("X"))
    store.record("T", "IV", pred, estimated=252, actual=2)
    assert store.adjust("T", "IV", pred, estimated=252) == 2


def test_ewma_converges_on_repeated_observations():
    store = FeedbackStore(alpha=0.5)
    pred = col("V").eq(var("X"))
    store.record("T", "IV", pred, estimated=100, actual=10)  # ratio 0.1
    store.record("T", "IV", pred, estimated=100, actual=30)  # ratio -> 0.2
    assert store.adjust("T", "IV", pred, estimated=100) == 20


def test_adjust_unknown_key_returns_none():
    store = FeedbackStore()
    assert store.adjust("T", "IV", col("V").eq(var("X")), estimated=100) is None


def test_disabled_store_is_inert():
    store = FeedbackStore(enabled=False)
    pred = col("V").eq(var("X"))
    store.record("T", "IV", pred, estimated=100, actual=1)
    assert store.size == 0
    assert store.adjust("T", "IV", pred, estimated=100) is None
    assert store.records == 0


def test_invalidate_table_drops_only_that_table():
    store = FeedbackStore()
    pred = col("V").eq(var("X"))
    store.record("T", "IV", pred, estimated=100, actual=1)
    store.record("U", "IU", pred, estimated=100, actual=1)
    assert store.invalidate_table("T") == 1
    assert store.size == 1
    assert store.adjust("U", "IU", pred, estimated=100) == 1


def test_capacity_bound_evicts_lru():
    store = FeedbackStore(capacity=2)
    for table in ("A", "B", "C"):
        store.record(table, "IX", col("V").eq(var("X")), estimated=10, actual=1)
    assert store.size == 2
    assert store.adjust("A", "IX", col("V").eq(var("X")), estimated=10) is None


# -- end to end: second execution starts from observed cardinality ----------


def sparse_connection(**config_changes):
    """4000 rows with V = 10*i: ranges straddling a high B-tree separator
    get large *inexact* estimates while containing almost no actual keys."""
    config = DEFAULT_CONFIG.with_(**config_changes) if config_changes else DEFAULT_CONFIG
    conn = repro.connect(buffer_capacity=512, config=config)
    conn.execute("create table S (ID int, V int)")
    conn.execute("create index IV on S (V)")
    conn.table("S").insert_many((i, i * 10) for i in range(4000))
    return conn


def find_overestimated_window(conn, threshold):
    """A (lo, hi) window whose inexact estimate exceeds ``threshold`` while
    holding at most 2 actual keys — i.e. one the raw estimator gets wrong."""
    from repro.btree.estimate import estimate_range
    from repro.btree.tree import KeyRange

    tree = conn.table("S").indexes["IV"].btree
    for lo in range(0, 40000, 95):
        estimate = estimate_range(tree, KeyRange(lo=(lo,), hi=(lo + 19,)))
        if not estimate.exact and estimate.rids > threshold:
            return lo, lo + 19
    pytest.fail("no overestimated window found in the synthetic key space")


def trace_of(result):
    return result.retrievals[0].result.trace


def test_second_execution_starts_from_observed_cardinality():
    conn = sparse_connection()
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    host_vars = {"L": lo, "H": hi}

    first = conn.execute(sql, host_vars)
    events = trace_of(first).of_kind(EventKind.INITIAL_ESTIMATE)
    assert events and "feedback_rids" not in events[0].detail
    raw_estimate = events[0].detail["rids"]
    actual = len(first.rows)
    assert raw_estimate > actual  # the scenario really is an overestimate
    assert conn.db.feedback.records == 1

    second = conn.execute(sql, host_vars)
    events = trace_of(second).of_kind(EventKind.INITIAL_ESTIMATE)
    assert events[0].detail["rids"] == raw_estimate  # raw estimate unchanged
    assert events[0].detail["feedback_rids"] == float(actual)
    assert conn.db.feedback.adjustments >= 1
    assert second.rows == first.rows


def test_feedback_flips_the_small_range_shortcut():
    conn = sparse_connection()
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    host_vars = {"L": lo, "H": hi}

    first = conn.execute(sql, host_vars)
    assert not trace_of(first).has(EventKind.SHORTCUT_SMALL_RANGE)

    second = conn.execute(sql, host_vars)
    shortcut = trace_of(second).of_kind(EventKind.SHORTCUT_SMALL_RANGE)
    assert shortcut, "sharpened estimate should trigger the OLTP shortcut"
    assert shortcut[0].detail["rids"] <= DEFAULT_CONFIG.shortcut_rid_count
    assert second.rows == first.rows


def test_feedback_shared_across_hostvar_bindings():
    conn = sparse_connection()
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"

    conn.execute(sql, {"L": lo, "H": hi})
    records = conn.db.feedback.records
    assert records >= 1
    # a different binding of the same statement shares the signature, so the
    # second execution applies (and then re-records) the learned correction
    conn.execute(sql, {"L": lo, "H": hi})
    assert conn.db.feedback.adjustments >= 1
    assert conn.db.feedback.size == 1


def test_exact_estimates_are_never_recorded():
    conn = repro.connect(buffer_capacity=128)
    conn.execute("create table T (ID int, V int)")
    conn.execute("create index IV on T (V)")
    conn.table("T").insert_many((i, i) for i in range(50))
    result = conn.execute("select * from T where V between 10 and 14")
    events = trace_of(result).of_kind(EventKind.INITIAL_ESTIMATE)
    assert all(event.detail["exact"] for event in events)
    assert conn.db.feedback.records == 0  # ground truth needs no correction


def test_ddl_drops_learned_corrections():
    conn = sparse_connection()
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    conn.execute(sql, {"L": lo, "H": hi})
    assert conn.db.feedback.size == 1
    conn.execute("create index IID on S (ID)")
    assert conn.db.feedback.size == 0
    # the next execution runs from the raw estimate again, without feedback
    result = conn.execute(sql, {"L": lo, "H": hi})
    events = trace_of(result).of_kind(EventKind.INITIAL_ESTIMATE)
    by_index = {event.detail["index"]: event.detail for event in events}
    assert "feedback_rids" not in by_index["IV"]


def test_feedback_disabled_by_config():
    conn = sparse_connection(selectivity_feedback=False)
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    first = conn.execute(sql, {"L": lo, "H": hi})
    second = conn.execute(sql, {"L": lo, "H": hi})
    assert conn.db.feedback.records == 0
    events = trace_of(second).of_kind(EventKind.INITIAL_ESTIMATE)
    assert "feedback_rids" not in events[0].detail
    assert second.rows == first.rows


def test_feedback_disabled_when_plan_cache_off():
    conn = sparse_connection(plan_cache_size=0)
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    conn.execute(sql, {"L": lo, "H": hi})
    conn.execute(sql, {"L": lo, "H": hi})
    assert not conn.db.feedback.enabled
    assert conn.db.feedback.records == 0


def test_explain_analyze_shows_feedback_rids():
    conn = sparse_connection()
    lo, hi = find_overestimated_window(conn, threshold=DEFAULT_CONFIG.shortcut_rid_count)
    sql = "select * from S where V between :L and :H"
    host_vars = {"L": lo, "H": hi}
    conn.execute(sql, host_vars)
    text = conn.explain(sql, host_vars, analyze=True).text
    assert "feedback_rids=" in text

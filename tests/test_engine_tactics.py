"""Tests for the four Section 7 tactics (via the retrieval dispatcher)."""

import pytest

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.engine.metrics import EventKind
from repro.expr.ast import ALWAYS_TRUE, col


@pytest.fixture
def parts(db):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(800):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


def oracle(table, predicate):
    return sorted(row for _, row in table.heap.scan() if predicate(row))


# -- background-only --------------------------------------------------------------


def test_background_only_selected_for_total_time(parts):
    result = parts.select(where=col("COLOR").eq(3), optimize_for=Goal.TOTAL_TIME)
    tactic = result.trace.of_kind(EventKind.TACTIC_SELECTED)[0]
    assert tactic.detail["tactic"] == "background-only"
    assert sorted(result.rows) == oracle(parts, lambda row: row[1] == 3)


def test_background_only_switches_to_tscan_when_unselective(parts):
    result = parts.select(where=col("WEIGHT") >= 0, optimize_for=Goal.TOTAL_TIME)
    assert "tscan" in result.description
    assert result.trace.has(EventKind.STRATEGY_SWITCH)
    assert len(result.rows) == parts.row_count


def test_background_only_no_duplicates(parts):
    result = parts.select(
        where=(col("COLOR").eq(3)) & (col("SIZE") < 25), optimize_for=Goal.TOTAL_TIME
    )
    assert len(result.rows) == len(set(result.rids))
    assert sorted(result.rows) == oracle(parts, lambda r: r[1] == 3 and r[3] < 25)


# -- fast-first --------------------------------------------------------------------


def test_fast_first_selected(parts):
    result = parts.select(where=col("COLOR").eq(3), optimize_for=Goal.FAST_FIRST)
    tactic = result.trace.of_kind(EventKind.TACTIC_SELECTED)[0]
    assert tactic.detail["tactic"] == "fast-first"
    assert sorted(result.rows) == oracle(parts, lambda row: row[1] == 3)


def test_fast_first_early_termination_is_cheap(parts, db):
    db.cold_cache()
    limited = parts.select(
        where=col("COLOR").eq(3), limit=3, optimize_for=Goal.FAST_FIRST
    )
    assert len(limited.rows) == 3
    assert limited.stopped_early
    db.cold_cache()
    full = parts.select(where=col("COLOR").eq(3), optimize_for=Goal.FAST_FIRST)
    assert limited.total_cost < full.total_cost


def test_fast_first_complete_and_correct_without_termination(parts):
    expr = (col("COLOR").eq(3)) & (col("SIZE") < 25)
    result = parts.select(where=expr, optimize_for=Goal.FAST_FIRST)
    assert sorted(result.rows) == oracle(parts, lambda r: r[1] == 3 and r[3] < 25)
    assert len(result.rows) == len(set(result.rids))  # no duplicate delivery


def test_fast_first_foreground_termination_event(parts):
    # an unselective first index forces the foreground to be out-competed
    result = parts.select(where=col("WEIGHT") >= 0, optimize_for=Goal.FAST_FIRST)
    assert len(result.rows) == parts.row_count
    assert result.trace.has(EventKind.FOREGROUND_TERMINATED) or result.trace.has(
        EventKind.CONSUMER_STOPPED
    )


# -- sorted ------------------------------------------------------------------------


@pytest.fixture
def orders(db):
    table = db.create_table(
        "O", [("ONO", "int"), ("CUST", "int"), ("ODATE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(600):
        table.insert((i, i % 40, 20_000 + (i % 300)))
    table.create_index("IX_DATE", ["ODATE"])
    table.create_index("IX_CUST", ["CUST"])
    return table


def test_sorted_tactic_delivers_in_order(orders):
    expr = (col("CUST").eq(7)) & (col("ODATE") < 20_200)
    result = orders.select(where=expr, order_by=("ODATE",))
    tactic = result.trace.of_kind(EventKind.TACTIC_SELECTED)[0]
    assert tactic.detail["tactic"] == "sorted"
    dates = [row[2] for row in result.rows]
    assert dates == sorted(dates)
    assert sorted(result.rows) == oracle(orders, lambda r: r[1] == 7 and r[2] < 20_200)


def test_sorted_tactic_uses_jscan_filter(orders, db):
    expr = (col("CUST").eq(7)) & (col("ODATE") >= 20_000)
    db.cold_cache()
    result = orders.select(where=expr, order_by=("ODATE",))
    # the filter either installed (strategy switch) or fscan won first
    switches = result.trace.of_kind(EventKind.STRATEGY_SWITCH)
    assert result.trace.counters.rids_filtered_out > 0 or not switches or True
    assert sorted(result.rows) == oracle(orders, lambda r: r[1] == 7)


def test_sorted_tactic_filter_reduces_fetches(orders, db):
    """With the filter, most non-qualifying index entries skip their fetch."""
    expr = (col("CUST").eq(7)) & (col("ODATE") >= 20_000)
    db.cold_cache()
    filtered = orders.select(where=expr, order_by=("ODATE",))
    fetched_with_filter = filtered.trace.counters.records_fetched
    # without the second index there is no filter: every entry is fetched
    orders.drop_index("IX_CUST")
    db.cold_cache()
    unfiltered = orders.select(where=expr, order_by=("ODATE",))
    assert fetched_with_filter < unfiltered.trace.counters.records_fetched


def test_sorted_without_order_index_post_sorts(orders):
    result = orders.select(where=col("CUST").eq(7), order_by=("CUST", "ONO"))
    values = [(row[1], row[0]) for row in result.rows]
    assert values == sorted(values)
    assert "sort" in result.description


def test_order_with_limit_truncates_after_sort(orders):
    result = orders.select(where=ALWAYS_TRUE, order_by=("ONO",), limit=5)
    assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]


# -- index-only -------------------------------------------------------------------


@pytest.fixture
def covered(db):
    table = db.create_table(
        "C", [("K", "int"), ("V", "int"), ("PAD", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(600):
        table.insert((i, i % 60, i))
    table.create_index("IX_KV", ["K", "V"])
    table.create_index("IX_V", ["V"])
    return table


def test_index_only_selected_when_covering(covered):
    result = covered.select(
        where=(col("V").eq(5)) & (col("K") < 900), columns=("K", "V")
    )
    tactic = result.trace.of_kind(EventKind.TACTIC_SELECTED)[0]
    assert tactic.detail["tactic"] == "index-only"
    expected = sorted(
        (row[0], row[1]) for _, row in covered.heap.scan() if row[1] == 5 and row[0] < 900
    )
    assert sorted((row[0], row[1]) for row in result.rows) == expected


def test_index_only_no_heap_fetch_when_sscan_wins(covered, db):
    db.cold_cache()
    result = covered.select(where=col("K") < 50, columns=("K",))
    # pure sscan path: delivered without touching the heap
    assert result.trace.counters.records_fetched == 0


def test_pure_sscan_clear_case(covered):
    covered.drop_index("IX_V")
    result = covered.select(where=col("K").between(10, 20), columns=("K", "V"))
    tactic = result.trace.of_kind(EventKind.TACTIC_SELECTED)[0]
    assert tactic.detail["tactic"] == "sscan"
    assert len(result.rows) == 11


# -- clear cases --------------------------------------------------------------------


def test_tscan_clear_case_no_indexes(db):
    table = db.create_table("N", [("A", "int")], rows_per_page=8)
    for i in range(50):
        table.insert((i,))
    result = table.select(where=col("A") < 10)
    assert result.description == "tscan"
    assert len(result.rows) == 10


def test_empty_table_retrieval(db):
    table = db.create_table("E", [("A", "int")])
    result = table.select(where=col("A").eq(1))
    assert result.rows == []

"""Tests for the B+-tree: structure, scans, deletion, cost accounting."""

import pytest

from repro.btree.tree import BTree, KeyRange
from repro.errors import BTreeError
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager
from repro.storage.rid import RID


def make_tree(order=4) -> BTree:
    return BTree(BufferPool(Pager(), 256), "ix", order=order)


def fill(tree: BTree, keys) -> None:
    for i, key in enumerate(keys):
        tree.insert(key, RID(i, 0))


def test_empty_tree_search():
    tree = make_tree()
    assert tree.search(5) == []
    assert tree.entry_count == 0
    assert tree.height == 1


def test_insert_and_search_single():
    tree = make_tree()
    tree.insert(5, RID(1, 1))
    assert tree.search(5) == [RID(1, 1)]


def test_order_validation():
    with pytest.raises(BTreeError):
        BTree(BufferPool(Pager(), 8), "bad", order=2)


def test_split_grows_height():
    tree = make_tree(order=4)
    fill(tree, range(20))
    assert tree.height >= 2
    tree.check_invariants()


def test_duplicate_keys_supported():
    tree = make_tree()
    tree.insert(7, RID(1, 0))
    tree.insert(7, RID(2, 0))
    tree.insert(7, RID(3, 0))
    assert sorted(tree.search(7)) == [RID(1, 0), RID(2, 0), RID(3, 0)]


def test_composite_keys():
    tree = make_tree()
    tree.insert((1, "a"), RID(0, 0))
    tree.insert((1, "b"), RID(1, 0))
    tree.insert((2, "a"), RID(2, 0))
    rids = [rid for _, rid in tree.scan_range(KeyRange(lo=(1,), hi=(1,)))]
    assert rids == [RID(0, 0), RID(1, 0)]


def test_range_scan_inclusive_bounds():
    tree = make_tree()
    fill(tree, range(50))
    keys = [key[0] for key, _ in tree.scan_range(KeyRange(lo=(10,), hi=(15,)))]
    assert keys == [10, 11, 12, 13, 14, 15]


def test_range_scan_exclusive_bounds():
    tree = make_tree()
    fill(tree, range(50))
    key_range = KeyRange(lo=(10,), hi=(15,), lo_inclusive=False, hi_inclusive=False)
    keys = [key[0] for key, _ in tree.scan_range(key_range)]
    assert keys == [11, 12, 13, 14]


def test_range_scan_open_ended():
    tree = make_tree()
    fill(tree, range(20))
    low_open = [key[0] for key, _ in tree.scan_range(KeyRange(hi=(3,)))]
    assert low_open == [0, 1, 2, 3]
    high_open = [key[0] for key, _ in tree.scan_range(KeyRange(lo=(17,)))]
    assert high_open == [17, 18, 19]


def test_full_scan_range_all():
    tree = make_tree()
    fill(tree, range(33))
    assert len(list(tree.scan_range(KeyRange.all()))) == 33


def test_empty_syntactic_range():
    tree = make_tree()
    fill(tree, range(10))
    assert list(tree.scan_range(KeyRange(lo=(8,), hi=(3,)))) == []
    exclusive_point = KeyRange(lo=(5,), hi=(5,), lo_inclusive=False)
    assert list(tree.scan_range(exclusive_point)) == []


def test_range_between_keys_is_empty():
    tree = make_tree()
    fill(tree, [0, 10, 20, 30])
    assert list(tree.scan_range(KeyRange(lo=(11,), hi=(19,)))) == []


def test_delete_existing():
    tree = make_tree()
    fill(tree, range(30))
    assert tree.delete(7, RID(7, 0))
    assert tree.search(7) == []
    assert tree.entry_count == 29
    tree.check_invariants()


def test_delete_missing_returns_false():
    tree = make_tree()
    fill(tree, range(5))
    assert not tree.delete(3, RID(99, 0))
    assert not tree.delete(42, RID(0, 0))
    assert tree.entry_count == 5


def test_delete_one_duplicate_only():
    tree = make_tree()
    tree.insert(5, RID(1, 0))
    tree.insert(5, RID(2, 0))
    tree.delete(5, RID(1, 0))
    assert tree.search(5) == [RID(2, 0)]


def test_entries_iterator_sorted():
    tree = make_tree()
    fill(tree, [9, 3, 7, 1, 5, 0, 8, 2, 6, 4])
    assert [key[0] for key, _ in tree.entries()] == list(range(10))


def test_count_range_exact():
    tree = make_tree()
    fill(tree, range(100))
    assert tree.count_range_exact(KeyRange(lo=(10,), hi=(19,))) == 10


def test_average_fanout_bounds():
    tree = make_tree(order=8)
    fill(tree, range(200))
    fanout = tree.average_fanout
    assert 2.0 <= fanout <= 200


def test_cursor_counts_consumed():
    tree = make_tree()
    fill(tree, range(40))
    cursor = tree.range_cursor(KeyRange(lo=(5,), hi=(14,)))
    while cursor.next_entry() is not None:
        pass
    assert cursor.consumed == 10
    assert cursor.exhausted
    assert cursor.next_entry() is None


def test_cold_scan_charges_index_reads():
    pool = BufferPool(Pager(), 256)
    tree = BTree(pool, "ix", order=4)
    fill(tree, range(200))
    pool.clear()
    meter = CostMeter()
    list(tree.scan_range(KeyRange.all(), meter))
    # must read at least every leaf once
    assert meter.io_reads >= tree.leaf_count


def test_insert_reverse_and_random_orders_agree():
    forward, backward = make_tree(), make_tree()
    fill(forward, range(64))
    fill(backward, reversed(range(64)))
    assert [k for k, _ in forward.entries()] == [k for k, _ in backward.entries()]
    forward.check_invariants()
    backward.check_invariants()


def test_check_invariants_detects_corruption():
    tree = make_tree()
    fill(tree, range(50))
    # corrupt a leaf deliberately
    node = tree._peek_node(tree._root_id)
    while not node.is_leaf:
        node = tree._peek_node(node.children[0])
    node.entries.reverse()
    with pytest.raises(BTreeError):
        tree.check_invariants()

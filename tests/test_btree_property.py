"""Property-based tests: the B+-tree against a sorted-list oracle."""

from hypothesis import given, settings, strategies as st

from repro.btree.tree import BTree, KeyRange
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.rid import RID

keys = st.lists(st.integers(min_value=-50, max_value=50), max_size=120)


def build(key_list, order=4):
    tree = BTree(BufferPool(Pager(), 512), "ix", order=order)
    entries = []
    for i, key in enumerate(key_list):
        rid = RID(i, 0)
        tree.insert(key, rid)
        entries.append(((key,), rid))
    return tree, sorted(entries)


@given(keys, st.sampled_from([4, 5, 8, 16]))
@settings(max_examples=60)
def test_entries_match_sorted_oracle(key_list, order):
    tree, oracle = build(key_list, order)
    assert list(tree.entries()) == oracle
    tree.check_invariants()


@given(keys, st.integers(-60, 60), st.integers(-60, 60))
@settings(max_examples=60)
def test_range_scan_matches_oracle(key_list, a, b):
    lo, hi = min(a, b), max(a, b)
    tree, oracle = build(key_list)
    got = [(key, rid) for key, rid in tree.scan_range(KeyRange(lo=(lo,), hi=(hi,)))]
    expected = [(key, rid) for key, rid in oracle if lo <= key[0] <= hi]
    assert got == expected


@given(keys, st.integers(-60, 60), st.integers(-60, 60), st.booleans(), st.booleans())
@settings(max_examples=60)
def test_range_scan_bound_flags(key_list, a, b, lo_inc, hi_inc):
    lo, hi = min(a, b), max(a, b)
    tree, oracle = build(key_list)
    key_range = KeyRange(lo=(lo,), hi=(hi,), lo_inclusive=lo_inc, hi_inclusive=hi_inc)
    got = [key[0] for key, _ in tree.scan_range(key_range)]
    expected = [
        key[0]
        for key, _ in oracle
        if (key[0] > lo or (lo_inc and key[0] == lo))
        and (key[0] < hi or (hi_inc and key[0] == hi))
    ]
    assert got == expected


@given(keys)
@settings(max_examples=40)
def test_delete_everything_leaves_empty_tree(key_list):
    tree, oracle = build(key_list)
    for key, rid in oracle:
        assert tree.delete(key, rid)
    assert tree.entry_count == 0
    assert list(tree.entries()) == []


@given(keys, st.data())
@settings(max_examples=40)
def test_interleaved_insert_delete_matches_oracle(key_list, data):
    tree = BTree(BufferPool(Pager(), 512), "ix", order=4)
    live: list = []
    for i, key in enumerate(key_list):
        tree.insert(key, RID(i, 0))
        live.append(((key,), RID(i, 0)))
        if live and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(live))
            live.remove(victim)
            assert tree.delete(victim[0], victim[1])
    assert list(tree.entries()) == sorted(live)


@given(keys)
@settings(max_examples=40)
def test_exact_count_matches_scan(key_list):
    tree, _ = build(key_list)
    key_range = KeyRange(lo=(-10,), hi=(10,))
    assert tree.count_range_exact(key_range) == len(list(tree.scan_range(key_range)))

"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.tokenizer import tokenize


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)][:-1]  # drop end token


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT From WhErE")
    assert [t.kind for t in tokens[:3]] == ["keyword"] * 3
    assert [t.value for t in tokens[:3]] == ["select", "from", "where"]


def test_names_preserve_case():
    assert values("FAMILIES Age_2")[0] == "FAMILIES"
    assert values("FAMILIES Age_2")[1] == "Age_2"


def test_numbers():
    assert values("42 3.14 -7") == ["42", "3.14", "-7"]


def test_negative_number_vs_operator():
    tokens = tokenize("-5")
    assert tokens[0].kind == "number" and tokens[0].value == "-5"


def test_string_literal():
    tokens = tokenize("'hello world'")
    assert tokens[0].kind == "string"
    assert tokens[0].value == "hello world"


def test_string_with_escaped_quote():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"


def test_unterminated_string():
    with pytest.raises(SqlSyntaxError):
        tokenize("'oops")


def test_host_variable():
    tokens = tokenize(":A1 :x_y")
    assert tokens[0].kind == "hostvar" and tokens[0].value == "A1"
    assert tokens[1].value == "x_y"


def test_bare_colon_rejected():
    with pytest.raises(SqlSyntaxError):
        tokenize(": x")


def test_operators_multi_char_first():
    assert values("a<=b") == ["a", "<=", "b"]
    assert values("a<>b") == ["a", "<>", "b"]
    assert values("a!=b") == ["a", "<>", "b"]  # normalized
    assert values("a>=b") == ["a", ">=", "b"]


def test_punctuation():
    assert values("(a, b) * t.c") == ["(", "a", ",", "b", ")", "*", "t", ".", "c"]


def test_comments_skipped():
    assert values("select -- a comment\n x") == ["select", "x"]


def test_unexpected_character():
    with pytest.raises(SqlSyntaxError):
        tokenize("select @")


def test_end_token_present():
    tokens = tokenize("select")
    assert tokens[-1].kind == "end"


def test_float_followed_by_dot_name():
    # "1.x" should be number 1 then . then name (not a malformed float)
    assert values("1.x") == ["1", ".", "x"]

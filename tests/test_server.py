"""Multi-query scheduler: interleaving, admission, cancellation, metrics."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal
from repro.engine.metrics import EventKind
from repro.errors import QueryCancelledError, ServerError
from repro.server import QueryServer, QueryState
from repro.storage.pager import PageKind


# These tests pin batch_size=1 so one scheduling quantum == one engine step,
# preserving the fine-grained interleaving/deadline semantics they assert
# (batch_size=1 is byte-identical to the original one-yield-per-step
# behaviour). Batched-quanta behaviour is covered by TestBatchedQuanta.
STEP_CONFIG = DEFAULT_CONFIG.with_(batch_size=1)


def build_db(buffer_capacity: int = 64, config=STEP_CONFIG) -> Database:
    db = Database(buffer_capacity=buffer_capacity, config=config)
    table = db.create_table("T", [("ID", "int"), ("A", "int"), ("B", "int")])
    for i in range(600):
        table.insert((i, i % 50, (i * 7) % 90))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.analyze()
    return db


QUERIES = [
    "select * from T where A >= 45",
    "select ID from T where B < 8 optimize for fast first",
    "select * from T where A = 3 and B >= 50",
]


def run_workload(scheduling: str):
    db = build_db()
    server = QueryServer(db, max_concurrency=4, scheduling=scheduling)
    handles = [
        server.session(f"s{k}").submit(sql) for k, sql in enumerate(QUERIES)
    ]
    server.run_until_idle()
    return server, handles


class TestInterleaving:
    def test_concurrent_queries_all_complete_with_correct_rows(self):
        db = build_db()
        expected = [db.execute(sql).rows for sql in QUERIES]
        _, handles = run_workload("round-robin")
        for handle, rows in zip(handles, expected):
            assert handle.state is QueryState.DONE
            assert sorted(handle.result.rows) == sorted(rows)

    @pytest.mark.parametrize("scheduling", ["round-robin", "weighted"])
    def test_interleaving_is_deterministic(self, scheduling):
        server_a, handles_a = run_workload(scheduling)
        server_b, handles_b = run_workload(scheduling)
        assert [h.steps for h in handles_a] == [h.steps for h in handles_b]
        assert [h.cache_hits for h in handles_a] == [h.cache_hits for h in handles_b]
        assert server_a.total_steps == server_b.total_steps
        totals_a, totals_b = server_a.metrics.totals(), server_b.metrics.totals()
        assert totals_a.counters == totals_b.counters
        assert totals_a.cache_hits == totals_b.cache_hits

    def test_queries_genuinely_interleave(self):
        """Both queries must still be running after each has stepped."""
        db = build_db()
        server = QueryServer(db, max_concurrency=2)
        h1 = server.submit(QUERIES[0], session="s1")
        h2 = server.submit(QUERIES[1], session="s2")
        for _ in range(8):
            server.step()
        assert h1.steps > 0 and h2.steps > 0
        assert h1.state is QueryState.RUNNING
        assert h2.state is QueryState.RUNNING

    def test_weighted_favours_fast_first(self):
        db = build_db()
        server = QueryServer(db, scheduling="weighted")
        slow = server.submit("select * from T where A >= 0", session="batch")
        fast = server.submit(
            "select * from T where A >= 0", session="browse",
            goal=OptimizationGoal.FAST_FIRST,
        )
        for _ in range(90):
            server.step()
            if slow.done or fast.done:
                break
        # fast-first weight 2.0 => ~2x the steps of the total-time query
        assert fast.steps >= 2 * slow.steps - 2

    def test_single_job_server_matches_direct_execution(self):
        direct_db = build_db()
        direct = direct_db.execute(QUERIES[0])
        server_db = build_db()
        server = QueryServer(server_db)
        result = server.session().execute(QUERIES[0])
        assert result.rows == direct.rows
        assert [info.result.description for info in result.retrievals] == [
            info.result.description for info in direct.retrievals
        ]


class TestAdmission:
    def test_queue_respects_concurrency_limit(self):
        db = build_db()
        server = QueryServer(db, max_concurrency=2)
        handles = [server.submit(QUERIES[k % 3], session=f"s{k}") for k in range(5)]
        assert [h.state for h in handles[:2]] == [QueryState.RUNNING] * 2
        assert [h.state for h in handles[2:]] == [QueryState.QUEUED] * 3
        assert len(server.running) == 2
        assert len(server.queued) == 3
        server.run_until_idle()
        assert all(h.state is QueryState.DONE for h in handles)

    def test_admission_is_fifo(self):
        db = build_db()
        server = QueryServer(db, max_concurrency=1)
        handles = [server.submit(QUERIES[k % 3], session=f"s{k}") for k in range(4)]
        server.run_until_idle()
        admitted = [h.admitted_at for h in handles]
        assert admitted == sorted(admitted)
        # with one slot, each query is admitted only after its predecessor ends
        assert all(a < b for a, b in zip(admitted, admitted[1:]))

    def test_cancelling_queued_query_never_runs_it(self):
        db = build_db()
        server = QueryServer(db, max_concurrency=1)
        server.submit(QUERIES[0], session="s0")
        queued = server.submit(QUERIES[1], session="s1")
        queued.cancel()
        assert queued.state is QueryState.CANCELLED
        assert queued.steps == 0
        server.run_until_idle()
        assert queued.state is QueryState.CANCELLED
        with pytest.raises(QueryCancelledError):
            queued.result

    def test_invalid_configuration_rejected(self):
        db = build_db()
        with pytest.raises(ServerError):
            QueryServer(db, max_concurrency=0)
        with pytest.raises(ServerError):
            QueryServer(db, scheduling="lottery")
        with pytest.raises(ServerError):
            QueryServer(db).submit(QUERIES[0], deadline=0)


class TestCancellation:
    def spilling_db(self) -> Database:
        # tiny RID buffers force every Jscan list through a TEMP spill, and
        # tiny TEMP pages make the spill hit the pager immediately
        config = STEP_CONFIG.with_(
            static_rid_buffer_size=2,
            allocated_rid_buffer_size=8,
            temp_rids_per_page=4,
        )
        return build_db(config=config)

    @staticmethod
    def temp_pages(db: Database) -> list:
        return [
            page for page in db.pager._pages.values() if page.kind is PageKind.TEMP
        ]

    def test_cancel_mid_jscan_releases_temp_tables(self):
        db = self.spilling_db()
        server = QueryServer(db)
        handle = server.submit("select * from T where A >= 5 and B >= 4")
        saw_spill = False
        for _ in range(20_000):
            if not server.step():
                break
            if self.temp_pages(db):
                saw_spill = True
                break
        assert saw_spill, "workload never spilled; cancellation test is vacuous"
        assert handle.state is QueryState.RUNNING
        handle.cancel()
        assert handle.state is QueryState.CANCELLED
        assert self.temp_pages(db) == [], "cancelled query leaked TEMP pages"
        with pytest.raises(QueryCancelledError):
            handle.result

    def test_cancellation_emits_abandon_and_stop_events(self):
        db = self.spilling_db()
        server = QueryServer(db)
        handle = server.submit("select * from T where A >= 5 and B >= 4")
        for _ in range(30):
            server.step()
        handle.cancel()
        assert handle.retrievals, "partial retrieval trace not registered"
        trace = handle.retrievals[0].result.trace
        kinds = [event.kind for event in trace.events]
        assert EventKind.SCAN_ABANDONED in kinds
        assert EventKind.CONSUMER_STOPPED in kinds
        stop = [e for e in trace.events if e.kind is EventKind.CONSUMER_STOPPED][-1]
        assert stop.detail.get("by") == "cancellation"
        assert trace.counters.scans_abandoned > 0

    def test_deadline_cancels_long_query_but_not_short_one(self):
        db = build_db()
        server = QueryServer(db)
        short = server.submit("select * from T where A = 1 and B = 7", deadline=100_000)
        long = server.submit("select * from T where A >= 0", deadline=10)
        server.run_until_idle()
        assert short.state is QueryState.DONE
        assert long.state is QueryState.CANCELLED
        assert long.cancel_reason == "deadline"
        assert long.steps <= 10

    def test_cancel_session_sweeps_its_queries_only(self):
        db = build_db()
        server = QueryServer(db, max_concurrency=2)
        mine = [server.submit(QUERIES[k % 3], session="mine") for k in range(2)]
        other = server.submit(QUERIES[0], session="other")
        cancelled = server.cancel_session("mine")
        assert cancelled == 2
        assert all(h.state is QueryState.CANCELLED for h in mine)
        server.run_until_idle()
        assert other.state is QueryState.DONE

    def test_failed_query_reports_error_and_frees_slot(self):
        db = build_db()
        server = QueryServer(db, max_concurrency=1)
        bad = server.submit("select * from NO_SUCH_TABLE")
        good = server.submit(QUERIES[0])
        server.run_until_idle()
        assert bad.state is QueryState.FAILED
        with pytest.raises(Exception) as excinfo:
            bad.result
        assert "NO_SUCH_TABLE" in str(excinfo.value)
        assert good.state is QueryState.DONE


class TestMetricsRegistry:
    def test_totals_reconcile_with_per_trace_counters(self):
        server, handles = run_workload("round-robin")
        totals = server.metrics.totals()
        # independent ground truth: fold every handle's traces by hand
        fetched = switches = abandons = retrievals = 0
        for handle in handles:
            for info in handle.retrievals:
                retrievals += 1
                fetched += info.result.trace.counters.records_fetched
                switches += info.result.trace.counters.strategy_switches
                abandons += info.result.trace.counters.scans_abandoned
        assert totals.retrievals == retrievals
        assert totals.counters.records_fetched == fetched
        assert totals.counters.strategy_switches == switches
        assert totals.counters.scans_abandoned == abandons
        assert totals.cache_hits == sum(h.cache_hits for h in handles)
        assert totals.cache_misses == sum(h.cache_misses for h in handles)
        assert totals.queries_completed == len(handles)

    def test_per_session_breakdown(self):
        server, handles = run_workload("round-robin")
        per_session = server.metrics.per_session()
        assert set(per_session) == {"s0", "s1", "s2"}
        for k, handle in enumerate(handles):
            metrics = per_session[f"s{k}"]
            assert metrics.queries_completed == 1
            assert metrics.retrievals == len(handle.retrievals)
            assert metrics.cache_hits == handle.cache_hits
            assert metrics.cache_misses == handle.cache_misses

    def test_outcome_counts(self):
        db = build_db()
        server = QueryServer(db)
        server.submit(QUERIES[0], session="s").wait()
        server.submit("select * from MISSING", session="s")
        doomed = server.submit("select * from T where A >= 0", session="s", deadline=3)
        server.run_until_idle()
        metrics = server.metrics.session("s")
        assert metrics.queries_completed == 1
        assert metrics.queries_failed == 1
        assert metrics.queries_cancelled == 1
        assert metrics.queries == 3
        assert doomed.state is QueryState.CANCELLED

    def test_format_is_printable(self):
        server, _ = run_workload("round-robin")
        text = server.metrics.format()
        assert "<all>" in text and "s0" in text and "cache hit rate" in text


class TestBatchedQuanta:
    """Scheduler behaviour at the default (batched) quantum size."""

    def test_batched_results_match_per_step_results(self):
        expected = [build_db().execute(sql).rows for sql in QUERIES]
        db = build_db(config=DEFAULT_CONFIG)
        server = QueryServer(db, max_concurrency=4)
        handles = [
            server.session(f"s{k}").submit(sql) for k, sql in enumerate(QUERIES)
        ]
        server.run_until_idle()
        for handle, rows in zip(handles, expected):
            assert handle.state is QueryState.DONE
            assert sorted(handle.result.rows) == sorted(rows)

    def test_batching_cuts_scheduler_quanta(self):
        batch = DEFAULT_CONFIG.batch_size
        assert batch >= 8

        def total_quanta(config):
            db = build_db(config=config)
            server = QueryServer(db, max_concurrency=4)
            for k, sql in enumerate(QUERIES):
                server.session(f"s{k}").submit(sql)
            server.run_until_idle()
            return server.total_steps

        stepwise = total_quanta(STEP_CONFIG)
        batched = total_quanta(DEFAULT_CONFIG)
        # ~batch_size x fewer generator resumptions (ceil effects per phase)
        assert batched <= stepwise // (batch // 2)

    def test_batched_interleaving_is_deterministic(self):
        def run():
            db = build_db(config=DEFAULT_CONFIG)
            server = QueryServer(db, max_concurrency=4, scheduling="weighted")
            handles = [
                server.session(f"s{k}").submit(sql)
                for k, sql in enumerate(QUERIES)
            ]
            server.run_until_idle()
            return server, handles

        server_a, handles_a = run()
        server_b, handles_b = run()
        assert [h.steps for h in handles_a] == [h.steps for h in handles_b]
        assert server_a.total_steps == server_b.total_steps
        totals_a, totals_b = server_a.metrics.totals(), server_b.metrics.totals()
        assert totals_a.counters == totals_b.counters
        assert totals_a.cache_hits == totals_b.cache_hits

    def test_cancellation_lands_between_batched_quanta(self):
        config = DEFAULT_CONFIG.with_(
            static_rid_buffer_size=2,
            allocated_rid_buffer_size=8,
            temp_rids_per_page=4,
        )
        db = build_db(config=config)
        server = QueryServer(db)
        handle = server.submit("select * from T where A >= 5 and B >= 4")
        server.step()
        assert handle.state is QueryState.RUNNING
        handle.cancel()
        assert handle.state is QueryState.CANCELLED
        temp = [
            page for page in db.pager._pages.values() if page.kind is PageKind.TEMP
        ]
        assert temp == [], "cancelled query leaked TEMP pages"


class TestOwnerAttribution:
    def test_pool_owner_stats_cover_all_scheduled_accesses(self):
        server, handles = run_workload("round-robin")
        pool = server.db.buffer_pool
        assert pool.current_owner is None
        for k, handle in enumerate(handles):
            stats = pool.stats_for(f"s{k}")
            assert stats.hits == handle.cache_hits
            assert stats.misses == handle.cache_misses
            assert 0.0 <= stats.hit_ratio <= 1.0


class _CountingSink:
    def __init__(self):
        self.writes = 0
        self.closes = 0

    def write(self, record):
        self.writes += 1

    def close(self):
        self.closes += 1


class TestShutdown:
    def test_shutdown_cancels_and_closes_sinks_once(self):
        db = build_db()
        trace_sink, flight_sink = _CountingSink(), _CountingSink()
        server = QueryServer(db, trace_sink=trace_sink, flight_sink=flight_sink)
        handle = server.session("s0").submit(QUERIES[0])
        server.step()
        assert handle.state is QueryState.RUNNING
        server.shutdown()
        assert handle.state is QueryState.CANCELLED
        assert (trace_sink.closes, flight_sink.closes) == (1, 1)
        # later calls (Connection.close after an explicit shutdown, an
        # atexit hook) are no-ops: the sinks never re-close
        server.shutdown()
        server.shutdown()
        assert (trace_sink.closes, flight_sink.closes) == (1, 1)

    def test_shutdown_drains_partition_worker_pool(self):
        from repro.db.session import _LIVE_WORKER_POOLS

        db = Database(config=DEFAULT_CONFIG.with_(partition_workers=4))
        pool = db.worker_pool()
        assert pool is not None and db.worker_pool() is pool
        assert pool in _LIVE_WORKER_POOLS
        QueryServer(db).shutdown()
        assert db._worker_pool is None
        assert pool not in _LIVE_WORKER_POOLS
        db.close_worker_pool()  # idempotent

    def test_serial_config_never_creates_a_pool(self):
        db = build_db()
        assert db.worker_pool() is None
        db.close_worker_pool()  # no-op without a pool

    def test_connection_close_is_idempotent(self):
        import repro

        conn = repro.connect()
        conn.execute("create table C (ID int)")
        conn.close()
        conn.close()
        with pytest.raises(ServerError):
            conn.execute("select * from C")

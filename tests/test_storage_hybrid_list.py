"""Tests for the Section 6 hybrid RID list."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig
from repro.storage.buffer_pool import BufferPool
from repro.storage.hybrid_list import HybridRidList, RidListRegion
from repro.storage.pager import Pager
from repro.storage.rid import RID

SMALL = EngineConfig(static_rid_buffer_size=4, allocated_rid_buffer_size=10)


def make_list(config=SMALL) -> HybridRidList:
    pager = Pager()
    return HybridRidList(BufferPool(pager, 32), "l", config)


def rids(n: int) -> list[RID]:
    return [RID(i, i % 7) for i in range(n)]


def test_empty_region():
    hybrid = make_list()
    assert hybrid.region is RidListRegion.EMPTY
    assert len(hybrid) == 0
    assert not hybrid.may_contain(RID(0, 0))


def test_static_region_below_threshold():
    hybrid = make_list()
    hybrid.extend(rids(4))
    assert hybrid.region is RidListRegion.STATIC
    assert hybrid.allocations == 0


def test_promotion_to_allocated():
    hybrid = make_list()
    hybrid.extend(rids(5))
    assert hybrid.region is RidListRegion.ALLOCATED
    assert hybrid.allocations == 1


def test_spill_to_temp_table():
    hybrid = make_list()
    hybrid.extend(rids(11))
    assert hybrid.region is RidListRegion.SPILLED
    assert hybrid.spills == 1
    assert len(hybrid) == 11


def test_membership_exact_in_memory():
    hybrid = make_list()
    hybrid.extend(rids(8))
    assert hybrid.is_exact_filter
    assert hybrid.may_contain(RID(3, 3))
    assert not hybrid.may_contain(RID(100, 0))


def test_membership_no_false_negatives_after_spill():
    hybrid = make_list()
    members = rids(30)
    hybrid.extend(members)
    assert not hybrid.is_exact_filter
    for rid in members:
        assert hybrid.may_contain(rid)


def test_sorted_rids_across_regions():
    for count in (0, 3, 7, 25):
        hybrid = make_list()
        data = [RID(i * 13 % 50, 0) for i in range(count)]
        hybrid.extend(data)
        assert hybrid.sorted_rids() == sorted(data)


def test_iter_unsorted_preserves_insertion_for_static():
    hybrid = make_list()
    data = [RID(3, 0), RID(1, 0), RID(2, 0)]
    hybrid.extend(data)
    assert list(hybrid.iter_unsorted()) == data


def test_refilter_in_memory():
    hybrid = make_list()
    hybrid.extend(rids(8))
    dropped = hybrid.refilter(lambda rid: rid.page % 2 == 0)
    assert dropped == 4
    assert len(hybrid) == 4
    assert all(rid.page % 2 == 0 for rid in hybrid.iter_unsorted())


def test_refilter_spilled_raises():
    hybrid = make_list()
    hybrid.extend(rids(20))
    with pytest.raises(RuntimeError):
        hybrid.refilter(lambda rid: True)


def test_refilter_empty_is_noop():
    hybrid = make_list()
    assert hybrid.refilter(lambda rid: False) == 0


def test_discard_resets_everything():
    hybrid = make_list()
    hybrid.extend(rids(25))
    hybrid.discard()
    assert hybrid.region is RidListRegion.EMPTY
    assert len(hybrid) == 0


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=60))
def test_contents_preserved_across_all_regions(count):
    hybrid = make_list()
    data = [RID(i, 0) for i in range(count)]
    hybrid.extend(data)
    assert sorted(hybrid.sorted_rids()) == sorted(data)
    assert len(hybrid) == count
    for rid in data:
        assert hybrid.may_contain(rid)

"""Tests for heap files."""

import pytest

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.buffer_pool import CostMeter
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


@pytest.fixture
def heap(buffer_pool):
    return HeapFile(buffer_pool, "t", rows_per_page=4)


def test_insert_returns_sequential_rids(heap):
    rids = [heap.insert((i,)) for i in range(6)]
    assert rids[0] == RID(0, 0)
    assert rids[3] == RID(0, 3)
    assert rids[4] == RID(1, 0)  # new page after 4 rows


def test_fetch_roundtrip(heap):
    rid = heap.insert((1, "x"))
    assert heap.fetch(rid) == (1, "x")


def test_fetch_bad_rid_raises(heap):
    heap.insert((1,))
    with pytest.raises(RecordNotFoundError):
        heap.fetch(RID(0, 5))
    with pytest.raises(RecordNotFoundError):
        heap.fetch(RID(9, 0))


def test_scan_returns_all_in_physical_order(heap):
    rows = [(i,) for i in range(10)]
    heap.insert_many(rows)
    scanned = [row for _, row in heap.scan()]
    assert scanned == rows


def test_scan_page_boundaries(heap):
    heap.insert_many([(i,) for i in range(10)])
    assert heap.page_count == 3
    page_rows = [row for _, row in heap.scan_page(1)]
    assert page_rows == [(4,), (5,), (6,), (7,)]


def test_scan_page_out_of_range(heap):
    with pytest.raises(StorageError):
        list(heap.scan_page(0))


def test_delete_hides_row(heap):
    rids = heap.insert_many([(i,) for i in range(5)])
    heap.delete(rids[2])
    assert heap.row_count == 4
    assert [row[0] for _, row in heap.scan()] == [0, 1, 3, 4]
    with pytest.raises(RecordNotFoundError):
        heap.fetch(rids[2])


def test_delete_twice_raises(heap):
    rid = heap.insert((1,))
    heap.delete(rid)
    with pytest.raises(RecordNotFoundError):
        heap.delete(rid)


def test_update_in_place(heap):
    rid = heap.insert((1, "a"))
    heap.update(rid, (1, "b"))
    assert heap.fetch(rid) == (1, "b")


def test_update_deleted_raises(heap):
    rid = heap.insert((1,))
    heap.delete(rid)
    with pytest.raises(RecordNotFoundError):
        heap.update(rid, (2,))


def test_rows_per_page_validation(buffer_pool):
    with pytest.raises(StorageError):
        HeapFile(buffer_pool, "bad", rows_per_page=0)


def test_cold_scan_costs_page_count(heap, buffer_pool):
    heap.insert_many([(i,) for i in range(40)])
    buffer_pool.clear()
    meter = CostMeter()
    list(heap.scan(meter))
    assert meter.io_reads == heap.page_count == 10


def test_cached_scan_costs_nothing(heap, buffer_pool):
    heap.insert_many([(i,) for i in range(12)])
    list(heap.scan())  # warm the cache
    meter = CostMeter()
    list(heap.scan(meter))
    assert meter.io_reads == 0
    assert meter.buffer_hits == heap.page_count


def test_fetch_sorted_page_clustering(heap, buffer_pool):
    rids = heap.insert_many([(i,) for i in range(32)])  # 8 pages
    buffer_pool.clear()
    meter = CostMeter()
    # two RIDs per page, sorted: each page read once
    targets = sorted([rids[0], rids[1], rids[4], rids[5], rids[8], rids[9]])
    got = list(heap.fetch_sorted(targets, meter))
    assert len(got) == 6
    assert meter.io_reads == 3


def test_fetch_sorted_with_keep_filter(heap):
    rids = heap.insert_many([(i,) for i in range(8)])
    got = [row for _, row in heap.fetch_sorted(sorted(rids), keep=lambda r: r[0] % 2 == 0)]
    assert [row[0] for row in got] == [0, 2, 4, 6]

"""Tests for shape metrics and classification."""

import pytest

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import truncated_hyperbola
from repro.distribution.operators import apply_chain
from repro.distribution.shapes import classify_shape, half_mass_width, shape_metrics


def test_uniform_classified_uniform():
    assert classify_shape(SelectivityDistribution.uniform(128)) == "uniform"


def test_bell_classified_bell():
    assert classify_shape(SelectivityDistribution.bell(0.5, 0.05, 128)) == "bell"


def test_sharp_hyperbola_is_l_shape_left():
    assert classify_shape(truncated_hyperbola(0.005, 128)) == "l-shape-left"


def test_mirrored_hyperbola_is_l_shape_right():
    assert classify_shape(truncated_hyperbola(0.005, 128, mirrored=True)) == "l-shape-right"


def test_and_chain_becomes_l_shape():
    uniform = SelectivityDistribution.uniform(128)
    assert classify_shape(apply_chain(uniform, "&&")) == "l-shape-left"


def test_or_chain_becomes_l_shape_right():
    uniform = SelectivityDistribution.uniform(128)
    assert classify_shape(apply_chain(uniform, "||")) == "l-shape-right"


def test_metrics_fields_consistent():
    dist = apply_chain(SelectivityDistribution.uniform(128), "&&")
    metrics = shape_metrics(dist)
    assert metrics.mass_near_zero == pytest.approx(dist.mass_below(0.05))
    assert metrics.median == pytest.approx(dist.median())
    assert 0 <= metrics.hyperbola_error <= 1
    assert not metrics.hyperbola_mirrored


def test_half_mass_width_of_l_shape():
    sharp = truncated_hyperbola(0.01, 256)
    width = half_mass_width(sharp)
    # half the mass sits well inside the left tenth
    assert width < 0.1
    assert half_mass_width(sharp.mirrored(), from_left=False) < 0.1


def test_half_mass_width_of_uniform():
    assert half_mass_width(SelectivityDistribution.uniform(128)) == pytest.approx(0.5, abs=0.01)

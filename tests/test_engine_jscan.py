"""Tests for Jscan (Section 6)."""

import pytest

from repro.config import EngineConfig
from repro.engine.initial import run_initial_stage
from repro.engine.jscan import JscanProcess
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.expr.ast import col
from repro.storage.buffer_pool import CostMeter


def build_parts(db, rows=600):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(rows):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    table.create_index("IX_SIZE", ["SIZE"])
    return table


def arrange(table, expr, config=None, host_vars={}):
    trace = RetrievalTrace()
    arrangement = run_initial_stage(
        list(table.indexes.values()), expr, host_vars,
        frozenset(table.schema.names), (), CostMeter(), trace,
        config or table.config,
    )
    return arrangement, trace


def run_jscan(table, expr, config=None, **kwargs):
    config = config or table.config
    arrangement, trace = arrange(table, expr, config)
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, config,
        **kwargs,
    )
    while jscan.active:
        if jscan.step():
            break
    return jscan, trace


def oracle_rids(table, predicate):
    return sorted(rid for rid, row in table.heap.scan() if predicate(row))


def test_single_index_selective_produces_rid_list(db):
    table = build_parts(db)
    expr = col("COLOR").eq(3)
    jscan, trace = run_jscan(table, expr)
    assert not jscan.tscan_recommended
    assert jscan.result_list is not None
    expected = oracle_rids(table, lambda row: row[1] == 3)
    assert jscan.sorted_result() == expected
    assert trace.has(EventKind.RID_LIST_COMPLETE)


def test_unselective_range_recommends_tscan(db):
    table = build_parts(db)
    expr = col("WEIGHT") >= 0  # everything
    jscan, trace = run_jscan(table, expr)
    assert jscan.tscan_recommended
    assert trace.has(EventKind.TSCAN_RECOMMENDED)
    assert jscan.abandoned_scans >= 1


def test_intersection_of_two_indexes(db):
    table = build_parts(db)
    expr = (col("COLOR").eq(3)) & (col("SIZE") < 10)
    jscan, _ = run_jscan(table, expr, config=table.config.with_(
        simultaneous_adjacent_scans=False))
    if jscan.result_list is not None:
        result = set(jscan.sorted_result())
        expected = set(oracle_rids(table, lambda row: row[1] == 3 and row[3] < 10))
        # the final list is a superset-free exact intersection of the two
        # index restrictions (both scans completed) or the first index only
        assert expected <= result
        assert result <= set(oracle_rids(table, lambda row: row[1] == 3))


def test_completed_intersection_is_exact_when_all_scans_complete(db):
    table = build_parts(db)
    config = table.config.with_(
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )  # criteria disabled: every scan completes
    expr = (col("COLOR").eq(3)) & (col("SIZE") < 10)
    jscan, _ = run_jscan(table, expr, config=config)
    assert jscan.completed_scans == 2
    expected = oracle_rids(table, lambda row: row[1] == 3 and row[3] < 10)
    assert jscan.sorted_result() == expected


def test_empty_intersection_shortcut(db):
    table = build_parts(db)
    # COLOR = 3 implies PNO % 10 == 3; SIZE of such rows never equals 1
    expr = (col("COLOR").eq(3)) & (col("SIZE").eq(1))
    config = table.config.with_(
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )
    jscan, _ = run_jscan(table, expr, config=config)
    assert jscan.empty
    assert jscan.finished


def test_scan_abandonment_records_sunk_cost(db):
    table = build_parts(db)
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") >= 0)
    jscan, trace = run_jscan(table, expr)
    abandoned = trace.of_kind(EventKind.SCAN_ABANDONED)
    if abandoned:
        assert trace.counters.scans_abandoned == len(abandoned)
        assert jscan.meter.total > 0


def test_on_keep_tap_sees_first_index_rids(db):
    table = build_parts(db)
    tapped = []
    expr = col("COLOR").eq(5)
    config = table.config.with_(simultaneous_adjacent_scans=False)
    arrangement, trace = arrange(table, expr, config)
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, config,
        on_keep=lambda rid, position: tapped.append((rid, position)),
    )
    while jscan.active:
        if jscan.step():
            break
    assert tapped
    assert all(position == 0 for _, position in tapped)
    assert [rid for rid, _ in tapped] == sorted(
        rid for rid, row in table.heap.scan() if row[1] == 5
    )


def test_static_threshold_mode(db):
    table = build_parts(db)
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") >= 0)
    jscan, trace = run_jscan(
        table, expr,
        config=table.config.with_(simultaneous_adjacent_scans=False),
        dynamic_guaranteed_best=False,
        projection_enabled=False,
        static_rid_threshold=30.0,
    )
    # COLOR=3 yields 60 rids > 30 threshold: abandoned under static control
    abandoned = trace.of_kind(EventKind.SCAN_ABANDONED)
    assert any(event.detail["reason"] == "static-threshold" for event in abandoned)


def test_simultaneous_pair_mode_emits_events(db):
    table = build_parts(db)
    expr = (col("COLOR").eq(3)) & (col("SIZE") < 25)
    config = table.config.with_(
        simultaneous_adjacent_scans=True,
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
    )
    jscan, trace = run_jscan(table, expr, config=config)
    assert trace.has(EventKind.SIMULTANEOUS_PAIR)
    # result correctness regardless of which scan won
    expected = oracle_rids(table, lambda row: row[1] == 3 and row[3] < 25)
    assert jscan.sorted_result() == expected


def test_pair_reorder_prefers_faster_scan(db):
    """SIZE < 2 finishes long before COLOR's larger range; even if the
    initial order puts COLOR first, the partner should win and reorder."""
    table = build_parts(db, rows=900)
    expr = (col("COLOR") <= 8) & (col("SIZE") < 2)
    config = table.config.with_(
        simultaneous_adjacent_scans=True,
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
    )
    trace = RetrievalTrace()
    arrangement = run_initial_stage(
        list(table.indexes.values()), expr, {},
        frozenset(table.schema.names), (), CostMeter(), trace, config,
    )
    # force the bad order: big range first
    arrangement.jscan_candidates.sort(
        key=lambda c: -(c.estimate.rids if c.estimate else 0)
    )
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, config
    )
    while jscan.active:
        if jscan.step():
            break
    assert jscan.reorders >= 1
    assert trace.has(EventKind.REORDERED)
    expected = oracle_rids(table, lambda row: row[1] <= 8 and row[3] < 2)
    assert jscan.sorted_result() == expected


def test_guaranteed_best_tightens_with_filter(db):
    table = build_parts(db)
    expr = col("COLOR").eq(3)
    arrangement, trace = arrange(table, expr)
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, table.config
    )
    before = jscan.guaranteed_best_cost()
    while jscan.active:
        if jscan.step():
            break
    # a complete 60-RID list retrieves cheaper than a full Tscan
    assert jscan.guaranteed_best_cost() < before


def test_abandon_jscan_releases_lists(db):
    table = build_parts(db)
    expr = col("COLOR").eq(3)
    arrangement, trace = arrange(table, expr)
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, table.config
    )
    jscan.step()
    jscan.abandon()
    assert jscan.abandoned


def test_requires_candidates(db):
    table = build_parts(db)
    with pytest.raises(ValueError):
        JscanProcess([], table.heap, table.buffer_pool, RetrievalTrace(), table.config)

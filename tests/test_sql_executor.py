"""Tests for end-to-end SQL execution."""

import pytest

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal
from repro.errors import BindingError


@pytest.fixture
def db_with_data():
    db = Database(buffer_capacity=64)
    t = db.create_table("T", [("ID", "int"), ("GRP", "int"), ("VAL", "int")],
                        rows_per_page=8, index_order=8)
    for i in range(300):
        t.insert((i, i % 5, (i * 11) % 100))
    t.create_index("IX_GRP", ["GRP"])
    t.create_index("IX_VAL", ["VAL"])
    u = db.create_table("U", [("K", "int"),], rows_per_page=8)
    for k in (1, 3, 5, 7):
        u.insert((k,))
    return db


def test_select_star(db_with_data):
    result = db_with_data.execute("select * from T where GRP = 2")
    assert result.columns == ("ID", "GRP", "VAL")
    assert len(result.rows) == 60
    assert all(row[1] == 2 for row in result.rows)


def test_projection(db_with_data):
    result = db_with_data.execute("select VAL, ID from T where ID < 3")
    assert result.columns == ("VAL", "ID")
    assert sorted(result.rows) == [(0, 0), (11, 1), (22, 2)]


def test_host_vars(db_with_data):
    result = db_with_data.execute("select * from T where VAL >= :lo and VAL < :hi",
                                  {"lo": 10, "hi": 20})
    assert all(10 <= row[2] < 20 for row in result.rows)


def test_order_by_pushes_into_retrieval(db_with_data):
    result = db_with_data.execute("select ID, VAL from T where GRP = 1 order by VAL")
    values = [row[1] for row in result.rows]
    assert values == sorted(values)


def test_order_by_desc(db_with_data):
    result = db_with_data.execute("select ID from T where ID < 10 order by ID desc")
    assert [row[0] for row in result.rows] == list(reversed(range(10)))


def test_limit(db_with_data):
    result = db_with_data.execute("select * from T limit to 4 rows")
    assert len(result.rows) == 4


def test_limit_with_order(db_with_data):
    result = db_with_data.execute("select ID from T order by ID desc limit to 3 rows")
    assert [row[0] for row in result.rows] == [299, 298, 297]


def test_distinct(db_with_data):
    result = db_with_data.execute("select distinct GRP from T")
    assert sorted(row[0] for row in result.rows) == [0, 1, 2, 3, 4]


def test_aggregates(db_with_data):
    result = db_with_data.execute(
        "select count(*) as n, min(VAL) as lo, max(VAL) as hi, avg(GRP) as g from T"
    )
    assert result.columns == ("n", "lo", "hi", "g")
    n, lo, hi, g = result.rows[0]
    assert n == 300 and lo == 0 and hi == 99
    assert g == pytest.approx(2.0)


def test_count_on_empty_result(db_with_data):
    result = db_with_data.execute("select count(*) as n, max(VAL) as m from T where ID > 999")
    assert result.rows == [(0, None)]


def test_in_subquery(db_with_data):
    result = db_with_data.execute("select * from T where GRP in (select K from U) and ID < 20")
    assert all(row[1] in (1, 3) for row in result.rows)  # GRP in {1,3,5,7} ∩ [0,4]
    assert len(result.rows) == 8


def test_in_subquery_empty_inner(db_with_data):
    result = db_with_data.execute("select * from T where GRP in (select K from U where K > 100)")
    assert result.rows == []


def test_exists_true(db_with_data):
    result = db_with_data.execute("select count(*) as n from T where exists (select * from U)")
    assert result.rows[0][0] == 300


def test_exists_false(db_with_data):
    result = db_with_data.execute(
        "select * from T where exists (select * from U where K = 999)"
    )
    assert result.rows == []


def test_exists_subquery_pushed_limit(db_with_data):
    result = db_with_data.execute(
        "select count(*) as n from T where exists (select * from U where K >= 3)"
    )
    # inner retrieval ran with a forced limit of 1
    inner = [info for info in result.retrievals if info.table == "U"][0]
    assert inner.result.stopped_early
    assert inner.goal is OptimizationGoal.FAST_FIRST


def test_goal_inference_in_retrievals(db_with_data):
    result = db_with_data.execute("select ID from T order by ID limit to 2 rows")
    info = [info for info in result.retrievals if info.table == "T"][0]
    # sort is nearer than limit: total-time
    assert info.goal is OptimizationGoal.TOTAL_TIME


def test_statement_goal_overrides_parameter(db_with_data):
    result = db_with_data.execute(
        "select * from T where GRP = 2 optimize for fast first",
        goal=OptimizationGoal.TOTAL_TIME,
    )
    assert result.retrievals[0].goal is OptimizationGoal.FAST_FIRST


def test_unknown_table_raises(db_with_data):
    with pytest.raises(BindingError):
        db_with_data.execute("select * from NOPE")


def test_unknown_column_raises(db_with_data):
    with pytest.raises(BindingError):
        db_with_data.execute("select * from T where NOPE = 1")


def test_explain_output(db_with_data):
    text = db_with_data.explain(
        "select * from T where GRP in (select K from U) order by ID"
    )
    assert "retrieve T" in text
    assert "retrieve U" in text
    assert "goal" in text


def test_total_io_aggregates_retrievals(db_with_data):
    db_with_data.cold_cache()
    result = db_with_data.execute("select * from T where GRP in (select K from U)")
    assert result.total_io > 0
    assert result.total_cost >= result.total_io


def test_like_predicate(db_with_data):
    db = db_with_data
    s = db.create_table("S", [("NAME", "str")], rows_per_page=8)
    for name in ("alpha", "beta", "alphonse", "gamma"):
        s.insert((name,))
    result = db.execute("select * from S where NAME like 'alph%'")
    assert sorted(row[0] for row in result.rows) == ["alpha", "alphonse"]

"""Integration tests pinning the paper's headline claims (fast versions of
the benchmarks — each benchmark in benchmarks/ explores these in depth)."""

import numpy as np
import pytest

from repro.competition.model import (
    LShapedCost,
    sequential_switch_expected_cost,
    simultaneous_expected_cost,
)
from repro.db.session import Database
from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import fit_truncated_hyperbola
from repro.distribution.operators import apply_chain
from repro.distribution.shapes import classify_shape
from repro.engine.goals import OptimizationGoal
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import col, var
from repro.workloads.scenarios import build_families_table


def test_claim_section2_l_shape_dominance():
    """Intermediate selectivity distributions are predominantly L-shaped
    under AND/JOIN dominance, mirror-L under OR dominance."""
    uniform = SelectivityDistribution.uniform(200)
    assert classify_shape(apply_chain(uniform, "&&")) == "l-shape-left"
    assert classify_shape(apply_chain(uniform, "||")) == "l-shape-right"
    bell = SelectivityDistribution.bell(0.2, 0.005, 200)
    assert classify_shape(apply_chain(bell, "&&")) == "l-shape-left"


def test_claim_section2_half_mass_near_zero():
    """(B): ~50% of the distribution concentrates in a small area near zero
    when ANDs dominate."""
    uniform = SelectivityDistribution.uniform(200)
    anded = apply_chain(uniform, "&&")
    assert anded.mass_below(0.1) >= 0.5


def test_claim_section2_hyperbola_fits_improve():
    uniform = SelectivityDistribution.uniform(400)
    errors = [
        fit_truncated_hyperbola(apply_chain(uniform, "&" * n)).relative_error
        for n in (1, 2, 3)
    ]
    assert errors[0] > errors[1] > errors[2]


def test_claim_section3_competition_halves_cost():
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)
    m2 = plan_2.conditional_mean_below(plan_2.median())
    sequential = sequential_switch_expected_cost(m2, plan_2.median(), plan_1.mean())
    assert sequential < 0.62 * plan_1.mean()
    assert simultaneous_expected_cost(plan_1, plan_2) < sequential


@pytest.fixture
def families_db():
    db = Database(buffer_capacity=48)
    table = build_families_table(db, rows=3000)
    return db, table


def test_claim_section4_host_variable_decimal_orders(families_db):
    """The motivating query: a frozen static plan loses by decimal orders on
    its mismatched binding; the dynamic engine adapts per run."""
    db, families = families_db
    expr = col("AGE") >= var("A1")

    optimizer = StaticOptimizer(families)
    static_plan = optimizer.compile(expr)

    costs = {}
    for binding in (0, 200):
        db.cold_cache()
        static_run = optimizer.execute(static_plan, expr, {"A1": binding})
        db.cold_cache()
        dynamic_run = families.select(where=expr, host_vars={"A1": binding})
        assert len(dynamic_run.rows) == len(static_run.rows)
        costs[binding] = (static_run.cost, dynamic_run.total_cost)

    # on at least one binding the static plan pays >10x the dynamic cost
    ratios = [static / max(dynamic, 0.5) for static, dynamic in costs.values()]
    assert max(ratios) > 10


def test_claim_section5_empty_range_is_free(families_db):
    db, families = families_db
    db.cold_cache()
    result = families.select(where=col("AGE") >= var("A1"), host_vars={"A1": 999})
    assert result.rows == []
    assert result.total_cost < 5


def test_claim_section6_jscan_vs_tscan_crossover(families_db):
    """Selective ranges win via RID list; unselective ranges end as Tscan —
    the two-stage competition finds the crossover without a correct prior
    estimate."""
    db, families = families_db
    expr = col("AGE") >= var("A1")
    db.cold_cache()
    selective = families.select(where=expr, host_vars={"A1": 118})
    assert "final-stage" in selective.description
    db.cold_cache()
    unselective = families.select(where=expr, host_vars={"A1": 1})
    assert "tscan" in unselective.description
    assert selective.total_cost < unselective.total_cost


def test_claim_section7_fast_first_early_termination(families_db):
    """Fast-first with a LIMIT beats total-time on time-to-first-rows."""
    db, families = families_db
    expr = col("AGE") >= 60
    db.cold_cache()
    fast = families.select(
        where=expr, limit=5, optimize_for=OptimizationGoal.FAST_FIRST
    )
    db.cold_cache()
    total = families.select(where=expr, optimize_for=OptimizationGoal.TOTAL_TIME)
    assert len(fast.rows) == 5
    assert fast.total_cost < total.total_cost


def test_claim_section4_goal_inference_example(families_db):
    db, _ = families_db
    for name in "ABC":
        table = db.create_table(name, [("ID", "int"), (("XYZ")["ABC".index(name)], "int")])
        for i in range(50):
            table.insert((i, i % 7))
    result = db.execute(
        "select * from A where A.X in ("
        " select distinct Y from B where B.Y in ("
        "  select Z from C limit to 2 rows))"
        " optimize for total time"
    )
    goals = {info.table: info.goal for info in result.retrievals}
    assert goals["C"] is OptimizationGoal.FAST_FIRST
    assert goals["B"] is OptimizationGoal.TOTAL_TIME
    assert goals["A"] is OptimizationGoal.TOTAL_TIME

"""Tests for logical plan nodes and formatting."""

from repro.engine.goals import OptimizationGoal, infer_goals
from repro.sql.plan import (
    Aggregate,
    AggregateItem,
    Distinct,
    Exists,
    Limit,
    Project,
    Retrieve,
    Sort,
    format_plan,
    walk,
)


def test_node_types():
    assert Retrieve(table="T").node_type == "retrieve"
    assert Sort(keys=("a",), descending=(False,)).node_type == "sort"
    assert Distinct().node_type == "distinct"
    assert Limit(count=3).node_type == "limit"
    assert Exists().node_type == "exists"
    assert Aggregate(items=()).node_type == "aggregate"
    assert Project(columns=()).node_type == "project"


def test_describe_lines():
    assert Retrieve(table="T").describe() == "retrieve T"
    assert "limit to 3 rows" == Limit(count=3).describe()
    assert "sort by a desc, b" == Sort(
        keys=("a", "b"), descending=(True, False)
    ).describe()
    assert "aggregate count(*)" == Aggregate(
        items=(AggregateItem("count", None, "n"),)
    ).describe()
    assert "project x, y" == Project(columns=("x", "y")).describe()


def test_walk_depth_first():
    leaf = Retrieve(table="T")
    middle = Limit(children=(leaf,), count=1)
    root = Project(children=(middle,), columns=())
    assert [node.node_type for node in walk(root)] == ["project", "limit", "retrieve"]


def test_format_plan_with_goals():
    leaf = Retrieve(table="T")
    root = Limit(children=(leaf,), count=1)
    goals = infer_goals(root)
    text = format_plan(root, goals)
    assert "limit to 1 rows" in text
    assert "[goal: fast-first]" in text
    assert text.splitlines()[1].startswith("  ")  # indentation


def test_format_plan_without_goals():
    text = format_plan(Retrieve(table="T"))
    assert "goal" not in text

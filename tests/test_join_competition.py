"""Join-order competition: differential correctness, switching, pins.

The differential suite is the join engine's ground truth: every candidate
order (forced one at a time) must produce exactly the same bag of combined
rows as a naive nested-loop reference, on skewed workload data, at batch
sizes 1 and 64, and mid-join cancellation must release every resource.
"""

import random

import numpy as np
import pytest

import repro
from repro.config import DEFAULT_CONFIG
from repro.engine.goals import OptimizationGoal
from repro.engine.join import (
    JoinTableHandle,
    candidate_orders,
    reference_nested_loop,
    run_join_steps,
)
from repro.obs.audit import DecisionKind
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.sql.plan import JoinPlan, walk
from repro.workloads.generators import uniform_ints, zipf_ints

SQL3 = (
    "select * from ORDERS as o "
    "join CUSTOMERS as c on o.CUST = c.CID "
    "join ITEMS as i on o.ITEM = i.IID "
    "where c.REGION = 1 and i.KIND <= 3"
)
SQL2 = (
    "select o.OID, c.REGION from ORDERS as o "
    "join CUSTOMERS as c on o.CUST = c.CID where c.REGION = 2"
)


def build_star(db, orders=600, customers=80, items=40, seed=7):
    """A skewed 3-table star: ORDERS references CUSTOMERS and ITEMS."""
    rng = np.random.default_rng(seed)
    customers_t = db.create_table("CUSTOMERS", [("CID", "int"), ("REGION", "int")])
    customers_t.insert_many((i, i % 5) for i in range(customers))
    customers_t.create_index("IX_CID", ["CID"], unique=True)
    items_t = db.create_table("ITEMS", [("IID", "int"), ("KIND", "int")])
    items_t.insert_many((i, i % 10) for i in range(items))
    items_t.create_index("IX_IID", ["IID"], unique=True)
    orders_t = db.create_table(
        "ORDERS", [("OID", "int"), ("CUST", "int"), ("ITEM", "int")]
    )
    custs = zipf_ints(rng, orders, customers)  # zipf-skewed fan-in
    its = uniform_ints(rng, orders, 0, items - 1)
    orders_t.insert_many((i, custs[i], its[i]) for i in range(orders))
    orders_t.create_index("IX_CUST", ["CUST"])
    for table in (customers_t, items_t, orders_t):
        table.analyze()
    return db


def join_node(db, sql):
    parsed = parse(sql)
    bind(db, parsed.plan)
    for node in walk(parsed.plan):
        if isinstance(node, JoinPlan):
            return node
    raise AssertionError("no join node in plan")


def handles_for(db, node):
    out = {}
    for source in node.sources:
        table = db.table(source.table)
        out[source.alias] = JoinTableHandle(
            name=table.name,
            heap=table.heap,
            schema=table.schema,
            indexes=dict(table.indexes),
            buffer_pool=table.buffer_pool,
            stats=table.stats,
        )
    return out


def drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def db():
    return build_star(repro.Database(buffer_capacity=96))


class TestDifferential:
    """Every candidate order == the nested-loop reference, as a bag."""

    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_every_order_matches_reference_three_tables(self, db, batch_size):
        config = DEFAULT_CONFIG.with_(batch_size=batch_size)
        node = join_node(db, SQL3)
        handles = handles_for(db, node)
        expected = sorted(reference_nested_loop(node, handles, {}))
        assert expected, "test workload must produce join matches"
        orders = candidate_orders(node, handles, {}, config)
        assert len(orders) >= 4
        for order in orders:
            db.cold_cache()
            result = drain(
                run_join_steps(
                    node, handles, {}, OptimizationGoal.TOTAL_TIME, config,
                    force_order=order.key,
                )
            )
            assert sorted(result.rows) == expected, f"order {order.key} diverged"

    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_two_table_join_matches_reference(self, db, batch_size):
        config = DEFAULT_CONFIG.with_(batch_size=batch_size)
        node = join_node(db, SQL2)
        handles = handles_for(db, node)
        expected = sorted(reference_nested_loop(node, handles, {}))
        for order in candidate_orders(node, handles, {}, config):
            result = drain(
                run_join_steps(
                    node, handles, {}, OptimizationGoal.TOTAL_TIME, config,
                    force_order=order.key,
                )
            )
            assert sorted(result.rows) == expected, f"order {order.key} diverged"

    def test_competition_itself_matches_reference(self, db):
        node = join_node(db, SQL3)
        handles = handles_for(db, node)
        expected = sorted(reference_nested_loop(node, handles, {}))
        result = drain(
            run_join_steps(
                node, handles, {}, OptimizationGoal.TOTAL_TIME, DEFAULT_CONFIG
            )
        )
        assert sorted(result.rows) == expected

    def test_null_join_keys_never_match(self):
        db = repro.Database(buffer_capacity=32)
        left = db.create_table("L", [("ID", "int"), ("K", "int")])
        right = db.create_table("R", [("ID", "int"), ("K", "int")])
        left.insert_many([(0, 1), (1, None), (2, 2)])
        right.insert_many([(0, 1), (1, None), (2, 3)])
        left.analyze(), right.analyze()
        node = join_node(db, "select * from L as a join R as b on a.K = b.K")
        handles = handles_for(db, node)
        expected = sorted(reference_nested_loop(node, handles, {}))
        assert expected == [(0, 1, 0, 1)]  # NULLs on both sides match nothing
        for order in candidate_orders(node, handles, {}, DEFAULT_CONFIG):
            result = drain(
                run_join_steps(
                    node, handles, {}, OptimizationGoal.TOTAL_TIME,
                    DEFAULT_CONFIG, force_order=order.key,
                )
            )
            assert sorted(result.rows) == expected


class TestCancellation:
    def test_mid_join_close_releases_pins_and_stays_usable(self, db):
        config = DEFAULT_CONFIG.with_(batch_size=4)
        node = join_node(db, SQL3)
        handles = handles_for(db, node)
        gen = run_join_steps(
            node, handles, {}, OptimizationGoal.TOTAL_TIME, config
        )
        next(gen)
        next(gen)  # a couple of quanta in: hash builds hold pinned runs
        gen.close()
        assert not db.buffer_pool._pinned  # every build pin released
        # the same handles still serve a fresh, complete run
        result = drain(
            run_join_steps(
                node, handles, {}, OptimizationGoal.TOTAL_TIME, config
            )
        )
        assert sorted(result.rows) == sorted(reference_nested_loop(node, handles, {}))

    def test_close_before_first_step_is_clean(self, db):
        node = join_node(db, SQL3)
        handles = handles_for(db, node)
        gen = run_join_steps(
            node, handles, {}, OptimizationGoal.TOTAL_TIME, DEFAULT_CONFIG
        )
        gen.close()  # never started: must not raise or leak
        assert not db.buffer_pool._pinned


class TestPinsUnderInterference:
    def test_join_correct_with_full_interference_each_quantum(self, db):
        # evict_random(1.0) between quanta drops every unpinned page; the
        # hash build's pinned run must survive and the join must still be
        # exactly right — the join-level face of the evict_random/pin fix.
        config = DEFAULT_CONFIG.with_(batch_size=8)
        node = join_node(db, SQL3)
        handles = handles_for(db, node)
        expected = sorted(reference_nested_loop(node, handles, {}))
        gen = run_join_steps(
            node, handles, {}, OptimizationGoal.TOTAL_TIME, config
        )
        rng = random.Random(13)
        result = None
        try:
            quanta = 0
            while True:
                next(gen)
                quanta += 1
                for page_id in list(db.buffer_pool._pinned):
                    assert page_id in db.buffer_pool  # pinned stays cached
                db.buffer_pool.evict_random(1.0, rng)
        except StopIteration as stop:
            result = stop.value
        assert quanta > 1  # interference actually interleaved the race
        assert sorted(result.rows) == expected


class TestSwitching:
    def connect(self, **overrides):
        config = DEFAULT_CONFIG.with_(
            batch_size=8, join_pilot_steps=4, **overrides
        )
        conn = repro.connect(buffer_capacity=96, config=config)
        build_star(conn.db)
        return conn

    def join_records(self, report):
        return [
            record
            for retrieval in report.audit.retrievals
            for record in retrieval.decisions
            if record.kind is DecisionKind.JOIN_ORDER
        ]

    def test_mid_flight_order_switch_is_recorded(self):
        conn = self.connect()
        report = conn.audit(SQL3)
        records = self.join_records(report)
        assert records, "join must log JOIN_ORDER decisions"
        initial = records[0]
        assert initial.alternatives  # the race had rivals
        switches = [r for r in records[1:] if r.inputs.get("switched_from")]
        assert switches, "tiny pilot budget must force a mid-flight switch"
        assert switches[-1].inputs["switched_from"] != switches[-1].chosen

    def test_switch_counter_absorbed_into_server_metrics(self):
        conn = self.connect()
        conn.audit(SQL3)
        decisions = conn.metrics.decisions
        assert decisions.join_depth_hist.count >= 1
        assert decisions.join_order_switches >= 1

    def test_compete_replays_rejected_orders_with_regret(self):
        conn = self.connect()
        report = conn.audit(SQL3)
        selection = None
        for retrieval in report.audit.retrievals:
            selection = selection or retrieval.join_order_selection()
        assert selection is not None
        assert selection.counterfactuals, "rejected orders must be replayed"
        assert selection.regret is not None and selection.regret >= 0
        text = report.to_text()
        assert "join" in text.lower()


class TestJoinThroughConnection:
    def test_sql_join_returns_unified_result(self):
        conn = repro.connect(buffer_capacity=96)
        build_star(conn.db)
        conn.db.cold_cache()
        result = conn.execute(SQL2)
        assert isinstance(result, repro.Result) and result.kind == "rows"
        assert result.columns == ("o.OID", "c.REGION")
        assert result.rowcount == len(result.rows) > 0
        assert all(region == 2 for _, region in result.rows)
        assert result.metrics.total_io > 0

    def test_explain_join_annotates_goal(self):
        conn = repro.connect(buffer_capacity=96)
        build_star(conn.db)
        text = conn.explain(SQL3).text
        assert "join" in text
        assert "ORDERS" in text and "CUSTOMERS" in text and "ITEMS" in text

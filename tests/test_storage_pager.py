"""Tests for the simulated disk."""

import pytest

from repro.errors import PageNotFoundError
from repro.storage.pager import Pager, PageKind


def test_allocate_assigns_sequential_ids(pager):
    first = pager.allocate(PageKind.HEAP, owner="t")
    second = pager.allocate(PageKind.INDEX, owner="t")
    assert (first.page_id, second.page_id) == (0, 1)
    assert len(pager) == 2


def test_allocate_counts_as_write(pager):
    pager.allocate(PageKind.HEAP)
    assert pager.stats.writes == 1
    assert pager.stats.writes_by_kind[PageKind.HEAP] == 1
    assert pager.stats.writes_by_kind[PageKind.INDEX] == 0


def test_read_counts_by_kind(pager):
    page = pager.allocate(PageKind.TEMP, payload=[1, 2])
    got = pager.read(page.page_id)
    assert got.payload == [1, 2]
    assert pager.stats.reads == 1
    assert pager.stats.reads_by_kind[PageKind.TEMP] == 1


def test_read_missing_page_raises(pager):
    with pytest.raises(PageNotFoundError):
        pager.read(42)


def test_write_missing_page_raises(pager):
    page = pager.allocate(PageKind.HEAP)
    pager.free(page.page_id)
    with pytest.raises(PageNotFoundError):
        pager.write(page)


def test_free_then_exists(pager):
    page = pager.allocate(PageKind.HEAP)
    assert pager.exists(page.page_id)
    pager.free(page.page_id)
    assert not pager.exists(page.page_id)


def test_free_is_idempotent(pager):
    page = pager.allocate(PageKind.HEAP)
    pager.free(page.page_id)
    pager.free(page.page_id)  # no error


def test_peek_does_not_count(pager):
    page = pager.allocate(PageKind.HEAP, payload="x")
    before = pager.stats.reads
    assert pager.peek(page.page_id).payload == "x"
    assert pager.stats.reads == before


def test_peek_missing_raises(pager):
    with pytest.raises(PageNotFoundError):
        pager.peek(7)


def test_pages_of_filters_by_owner(pager):
    pager.allocate(PageKind.HEAP, owner="a")
    pager.allocate(PageKind.HEAP, owner="b")
    pager.allocate(PageKind.HEAP, owner="a")
    assert sum(1 for _ in pager.pages_of("a")) == 2


def test_stats_snapshot_is_independent(pager):
    pager.allocate(PageKind.HEAP)
    snapshot = pager.stats.snapshot()
    pager.allocate(PageKind.HEAP)
    assert snapshot.writes == 1
    assert pager.stats.writes == 2

"""Tests for workload generators and scenarios."""

import numpy as np
import pytest

from repro.db.session import Database
from repro.workloads.generators import (
    clustered_permutation,
    correlated_pair,
    normal_ints,
    uniform_ints,
    zipf_ints,
)
from repro.workloads.scenarios import (
    build_families_table,
    build_multi_index_orders,
    build_parts_table,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_uniform_ints_bounds(rng):
    values = uniform_ints(rng, 1000, 5, 9)
    assert min(values) >= 5 and max(values) <= 9
    assert len(set(values)) == 5


def test_zipf_ints_skew(rng):
    values = zipf_ints(rng, 5000, 100, skew=1.5)
    counts = np.bincount(values, minlength=100)
    # the most frequent value dominates the median one heavily
    assert counts[0] > 10 * np.median(counts[counts > 0])
    assert min(values) >= 0 and max(values) < 100


def test_zipf_low_skew_flatter(rng):
    flat = zipf_ints(rng, 5000, 50, skew=0.2)
    sharp = zipf_ints(rng, 5000, 50, skew=2.0)
    flat_top = np.bincount(flat).max() / len(flat)
    sharp_top = np.bincount(sharp).max() / len(sharp)
    assert sharp_top > flat_top


def test_normal_ints_clipped(rng):
    values = normal_ints(rng, 1000, mean=50, std=30, lo=0, hi=100)
    assert min(values) >= 0 and max(values) <= 100
    assert abs(np.mean(values) - 50) < 5


def test_correlated_pair_positive(rng):
    a, b = correlated_pair(rng, 2000, 0, 1000, correlation=0.9)
    measured = np.corrcoef(a, b)[0, 1]
    assert measured > 0.8


def test_correlated_pair_negative(rng):
    a, b = correlated_pair(rng, 2000, 0, 1000, correlation=-0.9)
    assert np.corrcoef(a, b)[0, 1] < -0.8


def test_correlated_pair_zero(rng):
    a, b = correlated_pair(rng, 2000, 0, 1000, correlation=0.0)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.1


def test_correlated_pair_validation(rng):
    with pytest.raises(ValueError):
        correlated_pair(rng, 10, 0, 1, correlation=2.0)


def test_clustered_permutation_full(rng):
    values = uniform_ints(rng, 500, 0, 99)
    clustered = clustered_permutation(rng, values, 1.0)
    assert clustered == sorted(values)


def test_clustered_permutation_none_preserves_multiset(rng):
    values = uniform_ints(rng, 500, 0, 99)
    shuffled = clustered_permutation(rng, values, 0.0)
    assert sorted(shuffled) == sorted(values)
    assert shuffled != sorted(values)  # overwhelmingly likely


def test_clustered_permutation_partial_monotonicity(rng):
    values = list(range(1000))
    half = clustered_permutation(rng, values, 0.7)
    # positively rank-correlated with sorted order, but not perfectly
    correlation = np.corrcoef(half, np.arange(1000))[0, 1]
    assert 0.3 < correlation < 0.999


def test_clustered_permutation_validation(rng):
    with pytest.raises(ValueError):
        clustered_permutation(rng, [1], 2.0)
    assert clustered_permutation(rng, [], 0.5) == []


def test_families_scenario():
    db = Database()
    table = build_families_table(db, rows=500)
    assert table.row_count == 500
    assert "IX_AGE" in table.indexes
    assert table.stats is not None


def test_parts_scenario():
    db = Database()
    table = build_parts_table(db, rows=500)
    assert set(table.indexes) == {"IX_COLOR", "IX_WEIGHT", "IX_SIZE"}
    assert table.row_count == 500


def test_orders_scenario_dates_clustered():
    db = Database()
    table = build_multi_index_orders(db, rows=500)
    dates = [row[2] for _, row in table.heap.scan()]
    assert dates == sorted(dates)
    assert "IX_STATUS_DATE" in table.indexes

"""Tests for truncated hyperbola construction and fitting."""

import numpy as np
import pytest

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import (
    fit_truncated_hyperbola,
    hyperbola_weights,
    truncated_hyperbola,
)
from repro.distribution.operators import apply_chain
from repro.errors import DistributionError


def test_hyperbola_weights_normalized():
    weights = hyperbola_weights(0.1, 128)
    assert weights.sum() == pytest.approx(1.0)
    assert np.all(weights >= 0)


def test_hyperbola_weights_decreasing():
    weights = hyperbola_weights(0.05, 64)
    assert np.all(np.diff(weights) < 0)


def test_mirrored_hyperbola_increasing():
    weights = hyperbola_weights(0.05, 64, mirrored=True)
    assert np.all(np.diff(weights) > 0)


def test_smaller_b_is_more_skewed():
    sharp = truncated_hyperbola(0.01, 128)
    flat = truncated_hyperbola(10.0, 128)
    assert sharp.mass_below(0.05) > flat.mass_below(0.05)
    assert flat.total_variation_distance(SelectivityDistribution.uniform(128)) < 0.05


def test_invalid_b_rejected():
    with pytest.raises(DistributionError):
        hyperbola_weights(0.0, 64)


def test_fit_recovers_exact_hyperbola():
    target = truncated_hyperbola(0.07, 256)
    fit = fit_truncated_hyperbola(target, mirrored=False)
    assert fit.relative_error < 0.01
    assert fit.b == pytest.approx(0.07, rel=0.2)


def test_fit_detects_mirror_orientation():
    target = truncated_hyperbola(0.07, 256, mirrored=True)
    fit = fit_truncated_hyperbola(target)
    assert fit.mirrored
    assert fit.relative_error < 0.01


def test_fit_distribution_roundtrip():
    target = truncated_hyperbola(0.2, 128)
    fit = fit_truncated_hyperbola(target)
    assert fit.distribution(128).total_variation_distance(target) < 0.05


def test_paper_fit_errors_decrease_with_chain_length():
    """Section 2: hyperbolas fit &X, &&X, &&&X with errors ~1/4, 1/7, 1/23 —
    the fit improves as ANDs accumulate."""
    uniform = SelectivityDistribution.uniform(400)
    errors = [
        fit_truncated_hyperbola(apply_chain(uniform, "&" * n)).relative_error
        for n in (1, 2, 3)
    ]
    assert errors[0] > errors[1] > errors[2]
    # &X error ~ 1/4 (paper's figure); allow generous tolerance
    assert errors[0] == pytest.approx(0.25, abs=0.10)
    assert errors[1] == pytest.approx(1 / 7, abs=0.08)


def test_fit_error_formula_definition():
    """Relative error uses max|p-h| / (max p - min p)."""
    target = truncated_hyperbola(0.15, 64)
    fit = fit_truncated_hyperbola(target, mirrored=False)
    h_density = hyperbola_weights(fit.b, 64) * 64
    p_density = target.density
    spread = p_density.max() - p_density.min()
    manual = np.max(np.abs(p_density - h_density)) / spread
    assert fit.relative_error == pytest.approx(manual, rel=1e-6)

"""EXPLAIN / EXPLAIN ANALYZE: parsing, execution, rendering, shell view.

EXPLAIN ANALYZE is the user-facing join of the two observability halves:
it *executes* the statement under a forced tracer and renders the static
plan next to the recorded timeline. The tests pin that the analyze form
really executes (actual rows appear), that the plain form really doesn't,
and that both surface identically through SQL, ``Connection.explain``,
and the shell.
"""

import io

import pytest

import repro
from repro.config import EngineConfig
from repro.expr.ast import col
from repro.shell import Shell
from repro.sql.executor import (
    ExplainResult,
    execute_sql,
    explain_sql,
    is_explain_analyze,
)
from repro.sql.parser import ExplainQuery, parse_any


def build_parts(db, rows=600):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(rows):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


SQL = "select * from P where COLOR = 3 or WEIGHT < 10"


# -- parsing -----------------------------------------------------------------


class TestParsing:
    def test_explain_parses_to_wrapper(self):
        parsed = parse_any("explain select * from P where COLOR = 3")
        assert isinstance(parsed, ExplainQuery)
        assert parsed.analyze is False

    def test_explain_analyze_sets_flag(self):
        parsed = parse_any("EXPLAIN ANALYZE select * from P")
        assert isinstance(parsed, ExplainQuery)
        assert parsed.analyze is True

    def test_is_explain_analyze_sniff(self):
        assert is_explain_analyze("explain analyze select * from P")
        assert is_explain_analyze("  EXPLAIN   ANALYZE select 1")
        assert not is_explain_analyze("explain select * from P")
        assert not is_explain_analyze("select * from P")
        assert not is_explain_analyze("not even ( sql")


# -- execution ---------------------------------------------------------------


class TestExplainExecution:
    def test_plain_explain_does_not_execute(self, db):
        build_parts(db)
        result = execute_sql(db, "explain " + SQL)
        assert isinstance(result, ExplainResult)
        assert result.analyze is False
        assert result.result is None  # nothing ran
        assert "retrieve P" in result.text
        assert "-- execution" not in result.text
        # matches the long-standing explain_sql rendering
        assert result.text == explain_sql(db, SQL)
        assert str(result) == result.text

    def test_explain_analyze_executes_and_annotates(self, db):
        table = build_parts(db)
        result = execute_sql(db, "explain analyze " + SQL)
        assert isinstance(result, ExplainResult)
        assert result.analyze is True
        plain = table.select(where=(col("COLOR").eq(3)) | (col("WEIGHT") < 10))
        assert result.result is not None
        assert len(result.result.rows) == len(plain.rows)
        text = result.text
        for section in ("-- plan", "-- execution", "-- timeline"):
            assert section in text
        assert f"rows returned: {len(plain.rows)}" in text
        assert "retrieval #1 on P" in text
        assert "actual   :" in text and "estimated:" in text
        assert "explain-analyze" in text and "retrieval [" in text

    def test_explain_analyze_timeline_has_strategy_spans(self, db):
        build_parts(db)
        result = execute_sql(db, "explain analyze select * from P where WEIGHT >= 0")
        # the unselective query switches: both the mark and the scans show
        assert "strategy-switch" in result.text
        assert "scan [strategy=" in result.text


# -- through the connection / server -----------------------------------------


class TestConnectionExplain:
    @pytest.fixture
    def conn(self):
        conn = repro.connect(buffer_capacity=64)
        build_parts(conn.db)
        return conn

    def test_explain_static(self, conn):
        result = conn.explain(SQL)
        assert isinstance(result, repro.Result) and result.kind == "explain"
        text = result.text
        assert "retrieve P" in text and "-- timeline" not in text

    def test_explain_analyze_via_api(self, conn):
        text = conn.explain(SQL, analyze=True).text
        assert isinstance(text, str)
        for section in ("-- plan", "-- execution", "-- timeline"):
            assert section in text
        # ran through the scheduler: quantum spans collapse into a summary
        assert "(scheduling:" in text and "quanta" in text
        assert "quantum [" not in text  # pruned from the rendered tree

    def test_explain_analyze_traced_even_at_zero_sample_rate(self):
        conn = repro.connect(
            buffer_capacity=64, config=EngineConfig(trace_sample_rate=0.0)
        )
        build_parts(conn.db)
        plain = conn.submit("select * from P where COLOR = 3")
        analyze = conn.submit("explain analyze select * from P where COLOR = 3")
        conn.server.run_until_idle()
        assert plain.tracer is None  # sampling off
        assert analyze.tracer is not None  # forced by EXPLAIN ANALYZE
        assert "-- timeline" in analyze.result.text

    def test_sql_explain_analyze_result_through_execute(self, conn):
        result = conn.execute("explain analyze " + SQL)
        assert isinstance(result, repro.Result) and result.kind == "explain"
        assert isinstance(result.raw, ExplainResult)
        assert result.rows and result.metrics.retrieval_count

    def test_explain_kind_sniff(self):
        from repro.sql.executor import explain_kind

        assert explain_kind("explain analyze select 1") == "analyze"
        assert explain_kind("  EXPLAIN  COMPETE select 1") == "compete"
        assert explain_kind("explain select 1") is None
        assert explain_kind("select 1") is None
        assert explain_kind("not even ( sql") is None


class TestExplainPlanCache:
    """Regression: EXPLAIN ANALYZE after a plain SELECT must *hit* the plan
    cache and still attach spans and estimate-vs-actual to the cached
    plan's nodes (it used to re-bind from scratch, bypassing the cache)."""

    def test_analyze_hits_warm_cache_with_full_report(self):
        conn = repro.connect(buffer_capacity=64)
        build_parts(conn.db)
        conn.execute(SQL)  # warm the cache with the bare statement text
        cache = conn.db.plan_cache
        hits, size = cache.hits, cache.size
        result = conn.execute("explain analyze " + SQL)
        assert cache.hits == hits + 1
        assert cache.size == size  # no duplicate entry for the explain form
        # ... and the report is as rich as on a cold plan
        for section in ("-- plan", "-- execution", "-- timeline"):
            assert section in result.text
        assert "actual   :" in result.text and "estimated:" in result.text
        assert "retrieval [" in result.text

    def test_analyze_warms_cache_for_later_selects(self):
        conn = repro.connect(buffer_capacity=64)
        build_parts(conn.db)
        conn.execute("explain analyze " + SQL)  # miss: stores the entry
        hits = conn.db.plan_cache.hits
        conn.execute(SQL)  # the bare statement reuses it
        assert conn.db.plan_cache.hits == hits + 1

    def test_analyze_counts_as_execution_for_feedback(self):
        conn = repro.connect(buffer_capacity=64)
        build_parts(conn.db)
        conn.execute(SQL)
        entry, hit = conn.db.plan_cache.entry_for(conn.db, SQL)
        assert hit
        executions = entry.executions
        conn.execute("explain analyze " + SQL)
        assert entry.executions == executions + 1


# -- shell -------------------------------------------------------------------


class TestShell:
    @pytest.fixture
    def shell(self):
        conn = repro.connect(buffer_capacity=64)
        build_parts(conn.db)
        out = io.StringIO()
        return Shell(conn, out=out), out

    def test_explain_analyze_statement_prints_report(self, shell):
        sh, out = shell
        sh.feed("explain analyze select * from P where COLOR = 3;")
        text = out.getvalue()
        assert "-- plan" in text and "-- timeline" in text

    def test_plain_explain_statement_prints_plan_only(self, shell):
        sh, out = shell
        sh.feed("explain select * from P where COLOR = 3;")
        text = out.getvalue()
        assert "retrieve P" in text and "-- timeline" not in text

    def test_metrics_prom_meta_command(self, shell):
        sh, out = shell
        sh.feed("select * from P where COLOR = 3;")
        sh.feed("\\metrics prom")
        text = out.getvalue()
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{session="<all>",outcome="done"} 1' in text

    def test_metrics_meta_command_unchanged(self, shell):
        sh, out = shell
        sh.feed("\\metrics")
        assert "<all>: 0 queries" in out.getvalue()

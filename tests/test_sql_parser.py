"""Tests for the SQL parser and plan construction."""

import pytest

from repro.engine.goals import OptimizationGoal
from repro.errors import SqlSyntaxError
from repro.expr.ast import And, Between, Comparison, HostVar, InList, Like, Not, Or
from repro.sql.parser import parse
from repro.sql.plan import (
    Aggregate,
    Distinct,
    ExistsSubquery,
    InSubquery,
    Limit,
    Project,
    Retrieve,
    Sort,
    walk,
)


def retrieve_of(plan):
    return next(node for node in walk(plan) if isinstance(node, Retrieve))


def test_simple_select_star():
    query = parse("select * from T")
    assert isinstance(query.plan, Project)
    retrieve = retrieve_of(query.plan)
    assert retrieve.table == "T"
    assert retrieve.output_columns is None
    assert query.goal is OptimizationGoal.DEFAULT


def test_select_columns_projection():
    query = parse("select A, B from T")
    assert query.plan.columns == ("A", "B")
    assert retrieve_of(query.plan).output_columns == ("A", "B")


def test_where_comparison():
    query = parse("select * from T where A >= 10")
    restriction = retrieve_of(query.plan).restriction
    assert isinstance(restriction, Comparison)
    assert restriction.op == ">="


def test_where_host_variable():
    query = parse("select * from FAMILIES where AGE >= :A1")
    restriction = retrieve_of(query.plan).restriction
    assert isinstance(restriction.right, HostVar)
    assert restriction.right.name == "A1"


def test_qualified_column_names():
    query = parse("select T.A from T where T.B < 5")
    assert query.plan.columns == ("A",)
    assert retrieve_of(query.plan).restriction.left.name == "B"


def test_mismatched_qualifier_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select * from T where U.B < 5")


def test_and_or_precedence():
    query = parse("select * from T where A = 1 or B = 2 and C = 3")
    restriction = retrieve_of(query.plan).restriction
    assert isinstance(restriction, Or)
    assert isinstance(restriction.children[1], And)


def test_parentheses_override_precedence():
    query = parse("select * from T where (A = 1 or B = 2) and C = 3")
    restriction = retrieve_of(query.plan).restriction
    assert isinstance(restriction, And)


def test_not_between_in_like():
    query = parse(
        "select * from T where not A = 1 and B between 2 and 3 "
        "and C in (1, 2) and D like 'x%' and E not in (5)"
    )
    restriction = retrieve_of(query.plan).restriction
    types = [type(child) for child in restriction.children]
    assert types == [Not, Between, InList, Like, Not]


def test_order_by_asc_desc():
    query = parse("select * from T order by A desc, B asc, C")
    sort = next(node for node in walk(query.plan) if isinstance(node, Sort))
    assert sort.keys == ("A", "B", "C")
    assert sort.descending == (True, False, False)


def test_limit_to_rows():
    query = parse("select * from T limit to 7 rows")
    limit = next(node for node in walk(query.plan) if isinstance(node, Limit))
    assert limit.count == 7


def test_limit_requires_rows_keyword():
    with pytest.raises(SqlSyntaxError):
        parse("select * from T limit to 7")


def test_optimize_for_fast_first():
    assert parse("select * from T optimize for fast first").goal is OptimizationGoal.FAST_FIRST


def test_optimize_for_total_time():
    assert parse("select * from T optimize for total time").goal is OptimizationGoal.TOTAL_TIME


def test_distinct_node():
    query = parse("select distinct A from T")
    assert any(isinstance(node, Distinct) for node in walk(query.plan))


def test_aggregates():
    query = parse("select count(*), max(A) as top, avg(B) from T")
    aggregate = next(node for node in walk(query.plan) if isinstance(node, Aggregate))
    functions = [item.function for item in aggregate.items]
    assert functions == ["count", "max", "avg"]
    assert aggregate.items[1].alias == "top"
    assert aggregate.items[0].argument is None


def test_sum_star_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select sum(*) from T")


def test_in_subquery_plan_attached():
    query = parse("select * from A where X in (select Y from B)")
    retrieve_a = retrieve_of(query.plan)
    assert retrieve_a.table == "A"
    assert len(retrieve_a.children) == 1
    assert isinstance(retrieve_a.restriction, InSubquery)


def test_exists_subquery():
    query = parse("select * from A where exists (select * from B where Z = 1)")
    restriction = retrieve_of(query.plan).restriction
    assert isinstance(restriction, ExistsSubquery)


def test_nested_paper_example_structure():
    query = parse(
        "select * from A where A.X in ("
        " select distinct Y from B where B.Y in ("
        "  select Z from C limit to 2 rows))"
        " optimize for total time"
    )
    assert query.goal is OptimizationGoal.TOTAL_TIME
    tables = [node.table for node in walk(query.plan) if isinstance(node, Retrieve)]
    assert set(tables) == {"A", "B", "C"}
    # C sits under a Limit, B under a Distinct
    limit = next(node for node in walk(query.plan) if isinstance(node, Limit))
    assert retrieve_of(limit).table == "C"
    distinct = next(node for node in walk(query.plan) if isinstance(node, Distinct))
    assert retrieve_of(distinct).table == "B"


def test_trailing_garbage_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select * from T garbage")


def test_missing_from_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select *")


def test_order_keys_added_to_output_columns():
    query = parse("select A from T order by B")
    assert retrieve_of(query.plan).output_columns == ("A", "B")


def test_string_literal_operand():
    query = parse("select * from T where NAME = 'bob'")
    assert retrieve_of(query.plan).restriction.right.value == "bob"


def test_float_literal_operand():
    query = parse("select * from T where X < 2.5")
    assert retrieve_of(query.plan).restriction.right.value == 2.5


def test_mixed_columns_and_aggregates_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select A, count(*) from T")


def test_pure_aggregates_accepted():
    parse("select count(*), max(A) from T")

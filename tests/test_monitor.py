"""Continuous monitoring: time series, health/drift rules, incidents.

Everything time-dependent runs on a :class:`repro.obs.SteppingClock`
threaded through ``connect(clock=...)`` — tests advance the clock instead
of sleeping, so interval sampling, latency SLOs, and drift warmup are
exactly reproducible. The two acceptance scenarios live here: the q-error
drift detector fires on a synthetic data shift (stale analyze-time
statistics) and stays quiet on a steady workload, and a synthetic SLO
breach writes an incident bundle through the flight-recorder sink.
"""

import json

import pytest

import repro
from repro.config import EngineConfig
from repro.obs import (
    DriftRule,
    HealthMonitor,
    HealthReport,
    JsonlSink,
    SteppingClock,
    ThresholdRule,
    delta_percentile,
    sparkline,
)
from repro.obs.hist import BUCKETS, LogHistogram
from repro.shell import Shell


def build_t(conn, rows=400):
    conn.execute("create table T (ID int, AGE int)")
    for i in range(rows):
        conn.execute(f"insert into T values ({i}, {i % 100})")
    conn.execute("create index IX_AGE on T (AGE)")
    conn.execute("analyze T")


# -- primitives --------------------------------------------------------------


class TestSteppingClock:
    def test_auto_advance_and_jump(self):
        clock = SteppingClock(start=10.0, auto=0.5)
        assert clock() == 10.5
        assert clock() == 11.0
        clock.advance(4.0)
        assert clock() == 15.5

    def test_zero_auto_is_frozen(self):
        clock = SteppingClock()
        assert clock() == clock()


class TestDeltaPercentile:
    def test_none_when_interval_empty(self):
        hist = LogHistogram("x")
        hist.record(4.0)
        counts = list(hist.counts)
        assert delta_percentile(counts, counts, 0.5, hist.max) is None

    def test_percentile_of_new_observations_only(self):
        hist = LogHistogram("x")
        hist.record(1.0)
        older = list(hist.counts)
        for _ in range(10):
            hist.record(64.0)
        p50 = delta_percentile(list(hist.counts), older, 0.5, hist.max)
        # the old 1.0 observation is invisible to the interval
        assert p50 == 64.0

    def test_counter_reset_treated_as_empty(self):
        hist = LogHistogram("x")
        hist.record(8.0)
        older = list(hist.counts)
        fresh = [0] * BUCKETS  # a reset: newer < older everywhere
        assert delta_percentile(fresh, older, 0.5, hist.max) is None


class TestSparkline:
    def test_scales_and_renders_none_as_space(self):
        line = sparkline([0.0, None, 4.0])
        assert len(line) == 3
        assert line[1] == " "
        assert line[2] == "█"

    def test_empty_series(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""


# -- rules -------------------------------------------------------------------


class _W:
    """A bare window stub with one attribute per constructed kwarg."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


class TestDriftRule:
    def test_warmup_then_fire_on_spike(self):
        rule = DriftRule("r", lambda w: w.v, factor=2.0, alpha=0.5, warmup=2)
        assert rule.observe(_W(v=1.0)) is None  # warmup 1
        assert rule.observe(_W(v=1.0)) is None  # warmup 2
        assert rule.observe(_W(v=1.1)) is None  # within 2x baseline
        finding = rule.observe(_W(v=10.0))
        assert finding is not None and finding.rule == "r"
        assert rule.breaches == 1

    def test_baseline_adapts_after_breach(self):
        rule = DriftRule("r", lambda w: w.v, factor=2.0, alpha=1.0, warmup=1)
        rule.observe(_W(v=1.0))
        assert rule.observe(_W(v=10.0)) is not None
        # alpha=1 → baseline snapped to 10; the new regime is the new normal
        assert rule.observe(_W(v=10.0)) is None

    def test_none_values_skipped_entirely(self):
        rule = DriftRule("r", lambda w: w.v, warmup=1)
        for _ in range(5):
            assert rule.observe(_W(v=None)) is None
        assert rule.observed == 0 and rule.baseline is None

    def test_down_direction_detects_collapse(self):
        rule = DriftRule("r", lambda w: w.v, factor=2.0, warmup=1, direction="down")
        for _ in range(3):
            rule.observe(_W(v=0.9))
        assert rule.observe(_W(v=0.2)) is not None

    def test_floor_mutes_tiny_absolute_values(self):
        rule = DriftRule("r", lambda w: w.v, factor=2.0, warmup=1, floor=1.2)
        rule.observe(_W(v=0.1))
        rule.observe(_W(v=0.1))
        # 1.0 is 10x the baseline but below the floor — noise, not drift
        assert rule.observe(_W(v=1.0)) is None
        assert rule.observe(_W(v=5.0)) is not None


class TestThresholdRule:
    def test_above_and_below(self):
        above = ThresholdRule("a", lambda w: w.v, 10.0)
        assert above.evaluate(_W(v=9.0)) is None
        assert above.evaluate(_W(v=10.0)) is not None
        below = ThresholdRule("b", lambda w: w.v, 0.5, direction="below")
        assert below.evaluate(_W(v=0.6)) is None
        assert below.evaluate(_W(v=0.4)) is not None
        assert below.evaluate(_W(v=None)) is None


# -- the registry through the server ----------------------------------------


class TestTimeSeries:
    def test_windows_reflect_retired_queries(self):
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(buffer_capacity=64, clock=clock)
        build_t(conn, rows=120)
        monitor = conn.server.monitor
        assert monitor is not None
        before = monitor.samples_taken
        for _ in range(4):
            conn.execute("select * from T where AGE >= :A", {"A": 90})
            clock.advance(0.3)  # past the 0.25s default interval
        conn.execute("select ID from T where AGE = 5")
        window = monitor.sample_now()
        assert monitor.samples_taken > before
        total = sum(w.queries for w in monitor.windows())
        done = conn.metrics.totals().queries_completed
        # every window's query delta sums to the cumulative count seen by
        # sampling (the most recent retirements are in the forced window)
        assert total == done
        assert window.end > window.start
        conn.close()

    def test_kill_switch_creates_no_monitor(self):
        config = EngineConfig(monitor_enabled=False)
        conn = repro.connect(buffer_capacity=32, config=config)
        assert conn.server.monitor is None
        report = conn.health()
        assert report.status == "disabled"
        assert report.healthy
        conn.close()

    def test_window_gauges_and_parity(self):
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(buffer_capacity=64, clock=clock)
        build_t(conn, rows=120)
        conn.execute("select * from T where AGE >= 90")
        clock.advance(0.3)
        conn.health()  # forces a sample so window gauges exist
        text = conn.metrics.expose_text()
        assert "repro_monitor_samples_total" in text
        assert "repro_window_queries" in text
        assert "repro_health_status 0" in text

        # parity: every counter the shell renders appears verbatim in the
        # Prometheus exposition ...
        formatted = conn.metrics.format().splitlines()
        start = formatted.index("counters:")
        rendered = [line.strip() for line in formatted[start + 1:]]
        prom_lines = set(text.splitlines())
        for line in rendered:
            assert line in prom_lines, f"shell counter missing from prom: {line}"

        # ... and every scalar family in the exposition is rendered by the
        # shell (histogram series and their quantile gauges excluded)
        def family(sample_line):
            name = sample_line.split("{")[0].split(" ")[0]
            return name

        prom_families = {
            family(line)
            for line in text.splitlines()
            if line and not line.startswith("#")
            and not family(line).endswith(("_bucket", "_sum", "_count", "_quantile"))
        }
        shell_families = {family(line) for line in rendered}
        assert prom_families == shell_families
        conn.close()


# -- acceptance: drift detection end to end ----------------------------------


def _drift_config():
    # corrections come from the estimator's self-tuning histograms, which
    # learn *absolute* range cardinalities — exactly the state a bulk data
    # change strands. (Signature feedback is ratio-based and would track a
    # uniform shift, so it is disabled to isolate the stale-statistics
    # scenario.)
    return EngineConfig(
        selectivity_feedback=False,
        monitor_interval=0.25,
        drift_min_intervals=3,
    )


def build_events(conn, rows=1200):
    """The estimation workload's table: one covering index plus two
    fetch-needed ones, with the small-range shortcut disabled so every
    arm is estimated (and therefore q-error-tracked)."""
    table = conn.create_table(
        "EVENTS",
        [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=16,
        index_order=16,
    )
    table.insert_many((i, i % 89, (i * 7) % 1000) for i in range(rows))
    table.create_index("IX_AB", ["A", "B"])
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.config = table.config.with_(shortcut_rid_count=0)
    return table


class TestDriftEndToEnd:
    ROWS = 1200

    def run_round(self, conn, clock):
        """One workload pass, then one forced monitor window covering it."""
        for w in range(4):
            lo = w * (self.ROWS // 4)
            conn.execute(
                "select A, B from EVENTS"
                " where A >= :LO and A < :HI and B = :BV",
                {"LO": lo, "HI": lo + self.ROWS // 4, "BV": (w * 37) % 89},
            )
        clock.advance(0.3)
        conn.health()

    def test_qerror_drift_fires_on_data_shift_and_not_on_steady(self):
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(
            buffer_capacity=256, config=_drift_config(), clock=clock
        )
        table = build_events(conn, rows=self.ROWS)
        health = conn.server.health_monitor
        assert health is not None

        # steady phase: histogram-corrected estimates converge onto the
        # observed cardinalities, q-error settles near 1, nothing fires
        for _ in range(10):
            self.run_round(conn, clock)
        assert conn.db.estimator.observations > 0
        assert health.breaches.get("qerror-drift", 0) == 0

        # the shift: multiply every queried range ~8x behind the learned
        # histograms' back — corrected estimates still describe the old
        # cardinalities, so the next round's q-errors jump ~8x
        table.insert_many(
            (i % self.ROWS, (i * 11) % 89, i % 1000)
            for i in range(self.ROWS, self.ROWS * 8)
        )
        for _ in range(3):
            self.run_round(conn, clock)
        assert health.breaches.get("qerror-drift", 0) >= 1
        assert health.incidents >= 1
        # the detector folded the new regime into its baseline (transition
        # detection): the last round's refined estimates are quiet again
        shifted = [
            w.qerror_p50
            for w in conn.server.monitor.windows()
            if w.qerror_observations
        ]
        assert max(shifted) > 4.0
        conn.close()

    def test_steady_workload_stays_quiet(self):
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(
            buffer_capacity=256, config=_drift_config(), clock=clock
        )
        build_events(conn, rows=self.ROWS)
        for _ in range(14):
            self.run_round(conn, clock)
        health = conn.server.health_monitor
        assert health.breaches.get("qerror-drift", 0) == 0
        assert conn.health().status == "ok"
        conn.close()


# -- acceptance: SLO breach writes an incident bundle ------------------------


class TestIncidents:
    def test_slo_breach_writes_incident_through_flight_sink(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        sink = JsonlSink(path)
        # every clock consultation costs 10ms, so every query's measured
        # latency crosses the 1ms SLO
        clock = SteppingClock(auto=0.01)
        config = EngineConfig(slo_p95_latency_ms=1.0)
        conn = repro.connect(
            buffer_capacity=64, config=config, clock=clock, flight_sink=sink
        )
        build_t(conn, rows=80)
        conn.execute("select * from T where AGE >= 50")
        report = conn.health()
        assert report.status == "critical"
        assert any(f.rule == "slo-p95-latency" for f in report.findings)
        assert conn.metrics.incidents >= 1
        conn.close()
        records = [
            json.loads(line) for line in open(path) if line.strip()
        ]
        incidents = [r for r in records if r.get("kind") == "incident"]
        assert incidents
        bundle = incidents[0]
        assert "slo-p95-latency" in bundle["rules"]
        assert bundle["window"] is not None
        assert bundle["recent_windows"]
        assert isinstance(bundle["top_queries"], list)
        assert "decisions" in bundle

    def test_rising_edge_dedup(self):
        # a rule that keeps breaching opens exactly one incident until it
        # clears and breaches again
        config = EngineConfig(slo_p95_latency_ms=1.0)
        clock = SteppingClock(auto=0.01)
        conn = repro.connect(buffer_capacity=64, config=config, clock=clock)
        build_t(conn, rows=80)
        health = conn.server.health_monitor
        conn.execute("select * from T where AGE >= 50")
        conn.health()
        first = health.incidents
        assert first >= 1
        conn.execute("select * from T where AGE >= 50")
        conn.health()  # still breaching: no new incident
        windows_with_queries = [
            w for w in conn.server.monitor.windows() if w.queries
        ]
        # only count rising edges: breach intervals separated by quiet ones
        assert health.incidents <= len(windows_with_queries)
        conn.close()


# -- dashboard rendering ------------------------------------------------------


class TestDashboard:
    def test_top_renders_without_terminal(self, capsys):
        import io

        out = io.StringIO()
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(buffer_capacity=64, clock=clock)
        shell = Shell(conn, out=out)
        shell.feed("create table T (ID int, AGE int);")
        shell.feed("insert into T values (1, 30);")
        shell.feed("select * from T;")
        clock.advance(0.3)
        shell.feed("\\top")
        shell.feed("\\health")
        text = out.getvalue()
        assert "monitor:" in text
        assert "queries/sec" in text
        assert "health:" in text
        conn.close()

    def test_top_reports_disabled_monitor(self):
        import io

        out = io.StringIO()
        config = EngineConfig(monitor_enabled=False)
        conn = repro.connect(buffer_capacity=32, config=config)
        shell = Shell(conn, out=out)
        shell.feed("\\top")
        shell.feed("\\health")
        text = out.getvalue()
        assert "monitoring disabled" in text
        assert "disabled" in text
        conn.close()

    def test_format_top_before_any_sample(self):
        clock = SteppingClock()
        conn = repro.connect(buffer_capacity=32, clock=clock)
        # no samples yet: the dashboard still renders
        assert "monitor:" in conn.server.monitor.format_top()
        conn.close()


# -- sink lifecycle -----------------------------------------------------------


class TestSinkRotation:
    def test_rotation_keeps_n_files_and_counts(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, max_bytes=200, keep=2)
        record = {"name": "q", "payload": "x" * 60}
        for _ in range(12):
            sink.write(record)
        sink.close()
        assert sink.rotations > 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "trace.jsonl" in files and "trace.jsonl.1" in files
        assert "trace.jsonl.3" not in files  # keep=2 drops older shards
        # every retained line is a complete record — rotation never splits
        for name in files:
            for line in open(tmp_path / name):
                assert json.loads(line)["name"] == "q"

    def test_no_rotation_without_cap(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        for _ in range(50):
            sink.write({"a": 1})
        sink.close()
        assert sink.rotations == 0
        assert len(list(tmp_path.iterdir())) == 1

    def test_rotation_counters_exposed(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "f.jsonl"), max_bytes=80, keep=2)
        clock = SteppingClock(auto=0.01)
        config = EngineConfig(slow_query_ms=1.0)
        conn = repro.connect(
            buffer_capacity=64, config=config, clock=clock, flight_sink=sink
        )
        build_t(conn, rows=60)
        for _ in range(4):
            conn.execute("select * from T where AGE >= 50")
        text = conn.metrics.expose_text()
        assert 'repro_sink_records_total{sink="flight"}' in text
        assert 'repro_sink_rotations_total{sink="flight"}' in text
        assert f'repro_sink_rotations_total{{sink="flight"}} {sink.rotations}' in text
        formatted = conn.metrics.format()
        assert f"flight sink: {sink.written} records" in formatted
        conn.close()


class TestShutdownLifecycle:
    def test_shutdown_mid_query_closes_sinks_exactly_once(self, tmp_path):
        closes = []

        class CountingSink(JsonlSink):
            def close(self):
                if not self.closed:
                    closes.append(self)
                super().close()

        trace = CountingSink(str(tmp_path / "t.jsonl"))
        flight = CountingSink(str(tmp_path / "f.jsonl"))
        # batch_size=1: one engine step per quantum, so a 200-row scan is
        # genuinely mid-flight after a few steps
        config = EngineConfig(
            trace_sample_rate=1.0, slow_query_ms=0.0, batch_size=1
        )
        conn = repro.connect(
            buffer_capacity=64, config=config,
            trace_sink=trace, flight_sink=flight,
        )
        build_t(conn, rows=200)
        handle = conn.submit("select * from T where AGE >= 0")
        # a few quanta in, the query is mid-flight
        for _ in range(3):
            conn.server.step()
        assert not handle.done
        conn.close()
        conn.close()  # second close is a no-op
        conn.server.shutdown()  # so is a direct shutdown
        assert closes.count(trace) == 1
        assert closes.count(flight) == 1
        assert trace.closed and flight.closed
        # the cancelled query's partial trace was flushed before the close
        assert trace.written >= 1
        with pytest.raises(ValueError):
            trace.write({"late": True})

    def test_shutdown_takes_final_monitor_sample(self):
        clock = SteppingClock(auto=1e-6)
        conn = repro.connect(buffer_capacity=32, clock=clock)
        conn.execute("create table T (ID int)")
        conn.execute("insert into T values (1)")
        monitor = conn.server.monitor
        before = monitor.samples_taken
        conn.close()
        assert monitor.samples_taken == before + 1


# -- clock plumbing -----------------------------------------------------------


class TestInjectableClock:
    def test_latencies_come_from_injected_clock(self):
        clock = SteppingClock(auto=0.0)
        conn = repro.connect(buffer_capacity=32, clock=clock)
        conn.execute("create table T (ID int)")
        handle = conn.submit("select * from T")
        clock.advance(2.0)
        handle.wait()
        latency = conn.metrics.totals().latency
        # admitted before the jump, retired after: exactly the 2s advance
        assert latency.max == pytest.approx(2.0)
        conn.close()

    def test_span_finish_uses_stored_clock(self):
        from repro.obs import Tracer

        clock = SteppingClock(auto=1.0)
        tracer = Tracer("query", clock=clock)
        span = tracer.begin("child")
        tracer.end(span)
        assert span.duration == pytest.approx(1.0)

    def test_health_report_disabled_shapes(self):
        report = HealthReport([], None, enabled=False)
        assert report.status == "disabled"
        assert "disabled" in report.format_line()
        monitor_free = HealthReport([], None)
        assert monitor_free.status == "ok"
        assert monitor_free.format_line() == "OK"

"""Histograms, registry snapshots, reconciliation, Prometheus export.

The registry's contract is exact accounting: every histogram's ``sum``
reconciles with the flat counter written in the same recording call, the
fetch-run-length histogram reconciles with the pool's ``prefetched``
counter, and snapshots are genuinely immutable — the live-object leak
:meth:`MetricsRegistry.per_session` used to have is pinned here.
"""

import math

import pytest

import repro
from repro.config import EngineConfig
from repro.obs.export import PrometheusText
from repro.obs.hist import BUCKETS, LogHistogram, bucket_index, bucket_upper_bound
from repro.server.metrics import MetricsRegistry


def build_parts(conn, rows=600):
    table = conn.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(rows):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


# -- LogHistogram ------------------------------------------------------------


class TestBuckets:
    def test_upper_bounds_are_inclusive_powers_of_two(self):
        for value in [0.5, 1, 2, 4, 1024]:
            index = bucket_index(value)
            assert bucket_upper_bound(index) == value  # exactly on a boundary
            assert bucket_index(value * 1.01) == index + 1

    def test_monotonic_over_magnitudes(self):
        values = [1e-6, 1e-3, 0.5, 1, 3, 100, 1e6]
        indexes = [bucket_index(v) for v in values]
        assert indexes == sorted(indexes)
        assert all(0 <= i < BUCKETS for i in indexes)

    def test_extremes_clamp(self):
        assert bucket_index(0) == 0
        assert bucket_index(-5) == 0
        assert bucket_index(float("inf")) == BUCKETS - 1


class TestLogHistogram:
    def test_count_sum_mean(self):
        hist = LogHistogram("steps")
        for value in [1, 2, 3, 100]:
            hist.record(value)
        assert hist.count == 4
        assert hist.sum == 106  # exact, not bucket-approximated
        assert hist.mean == pytest.approx(26.5)

    def test_percentiles_ordered_and_clamped(self):
        hist = LogHistogram("lat")
        for value in range(1, 201):
            hist.record(value)
        assert hist.p50 <= hist.p95 <= hist.p99
        # clamped to the observed maximum, not the bucket's upper bound
        assert hist.p99 <= 200
        assert hist.percentile(1.0) == 200

    def test_empty_histogram(self):
        hist = LogHistogram("empty")
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.mean == 0.0 and hist.p50 == 0.0

    def test_merge_and_snapshot_independence(self):
        a = LogHistogram("x")
        b = LogHistogram("x")
        a.record(1)
        b.record(64)
        a.merge(b)
        assert a.count == 2 and a.sum == 65
        snap = a.snapshot()
        a.record(1000)
        assert snap.count == 2 and snap.sum == 65  # unaffected by later records

    def test_empty_percentiles_all_zero(self):
        hist = LogHistogram("empty")
        assert hist.p50 == hist.p95 == hist.p99 == 0.0
        assert hist.max == 0.0 and hist.min == float("inf")  # min sentinel

    def test_single_bucket_percentiles_collapse(self):
        hist = LogHistogram("one")
        for _ in range(10):
            hist.record(5.0)
        assert hist.p50 == hist.p95 == hist.p99 == 5.0
        assert hist.mean == 5.0

    def test_underflow_and_overflow_buckets(self):
        hist = LogHistogram("extreme")
        hist.record(0.0)  # underflow (zero)
        hist.record(-7.0)  # negatives land in underflow too
        hist.record(float("nan"))  # and NaN
        hist.record(2.0 ** 40)  # beyond MAX_EXP: overflow bucket
        assert hist.count == 4
        assert bucket_index(2.0 ** 40) == BUCKETS - 1
        assert bucket_upper_bound(BUCKETS - 1) == float("inf")
        # percentiles stay finite: clamped to the observed maximum
        assert hist.percentile(1.0) == 2.0 ** 40

    def test_merge_with_empty_is_identity(self):
        a = LogHistogram("x")
        a.record(4)
        a.record(9)
        empty = LogHistogram("x")
        a.merge(empty)
        assert a.count == 2 and a.sum == 13
        assert a.max == 9 and a.min == 4
        empty.merge(a)  # and merging into an empty adopts everything
        assert empty.count == 2 and empty.sum == 13
        assert empty.max == 9 and empty.min == 4
        assert empty.percentile(1.0) == a.percentile(1.0)

    def test_buckets_view_and_to_dict(self):
        hist = LogHistogram("x")
        hist.record(3)
        hist.record(3)
        pairs = hist.buckets()
        assert pairs == [(4.0, 2)]  # only non-empty buckets, upper bound 2^2
        exported = hist.to_dict()
        assert exported["count"] == 2 and exported["sum"] == 6


# -- PrometheusText ----------------------------------------------------------


class TestPrometheusText:
    def test_counter_help_type_dedupe(self):
        out = PrometheusText()
        out.counter("queries_total", 1, "Queries.", {"session": "a"})
        out.counter("queries_total", 2, "Queries.", {"session": "b"})
        text = out.render()
        assert text.count("# HELP repro_queries_total") == 1
        assert text.count("# TYPE repro_queries_total counter") == 1
        assert 'repro_queries_total{session="a"} 1' in text
        assert 'repro_queries_total{session="b"} 2' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        hist = LogHistogram("lat")
        for value in [0.5, 0.5, 3]:
            hist.record(value)
        out = PrometheusText()
        out.histogram("lat", hist, "Latency.")
        lines = out.render().splitlines()
        bucket_lines = [l for l in lines if "_bucket" in l]
        counts = [float(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert bucket_lines[-1].startswith('repro_lat_bucket{le="+Inf"}')
        assert counts[-1] == 3
        assert "repro_lat_sum 4" in "\n".join(lines)
        assert "repro_lat_count 3" in "\n".join(lines)


# -- MetricsRegistry ---------------------------------------------------------


class TestRegistry:
    def test_record_completion_reconciles_histogram_with_counter(self):
        registry = MetricsRegistry()
        registry.record_completion("s1", latency_seconds=0.5,
                                   queue_wait_quanta=3, quanta=7)
        registry.record_completion("s1", latency_seconds=0.25,
                                   queue_wait_quanta=0, quanta=5)
        metrics = registry.session("s1")
        assert metrics.quanta == 12
        assert metrics.steps_per_query.sum == metrics.quanta
        assert metrics.queue_wait.sum == 3
        assert metrics.latency.count == 2

    def test_per_session_returns_isolated_snapshots(self):
        registry = MetricsRegistry()
        registry.record_outcome("s1", "done")
        snap = registry.per_session()
        registry.record_outcome("s1", "done")
        registry.record_completion("s1", 0.1, 0, 4)
        assert snap["s1"].queries_completed == 1  # not drifted to 2
        assert snap["s1"].quanta == 0
        assert snap["s1"].steps_per_query.count == 0
        # mutating the snapshot doesn't touch the registry either
        snap["s1"].queries_completed = 99
        snap["s1"].latency.record(1.0)
        assert registry.session("s1").queries_completed == 2
        assert registry.session("s1").latency.count == 1

    def test_totals_merge_sessions_and_histograms(self):
        registry = MetricsRegistry()
        registry.record_completion("a", 0.5, 1, 10)
        registry.record_completion("b", 0.5, 2, 20)
        totals = registry.totals()
        assert totals.quanta == 30
        assert totals.steps_per_query.sum == 30
        assert totals.queue_wait.sum == 3


# -- server integration ------------------------------------------------------


class TestServerReconciliation:
    @pytest.fixture
    def conn(self):
        return repro.connect(
            buffer_capacity=64, config=EngineConfig(trace_sample_rate=1.0)
        )

    def test_quanta_and_fetch_runs_reconcile(self, conn):
        build_parts(conn)
        other = conn.session("other")
        handles = [
            conn.submit("select * from P where COLOR = 3"),
            other.submit("select * from P where WEIGHT >= 0"),
            conn.submit("select PNO from P where COLOR = 7"),
        ]
        conn.server.run_until_idle()
        assert all(handle.done for handle in handles)
        totals = conn.metrics.totals()
        assert totals.steps_per_query.sum == totals.quanta
        assert totals.quanta == sum(handle.steps for handle in handles)
        pool = conn.db.buffer_pool
        assert conn.metrics.fetch_runs.sum == pool.prefetched
        # per-session reconciliation too
        for metrics in conn.metrics.per_session().values():
            assert metrics.steps_per_query.sum == metrics.quanta

    def test_queue_wait_recorded_under_admission_pressure(self):
        conn = repro.connect(
            buffer_capacity=64, max_concurrency=1,
            config=EngineConfig(trace_sample_rate=0.0),
        )
        build_parts(conn)
        first = conn.submit("select * from P where WEIGHT >= 0")
        second = conn.submit("select * from P where COLOR = 3")
        conn.server.run_until_idle()
        assert first.done and second.done
        metrics = conn.metrics.session("main")
        # the second query waited for the first's quanta before admission
        assert metrics.queue_wait.sum >= first.steps
        assert metrics.latency.count == 2

    def test_expose_text_format(self, conn):
        build_parts(conn)
        conn.execute("select * from P where COLOR = 3")
        text = conn.metrics.expose_text()
        assert '# TYPE repro_queries_total counter' in text
        assert 'repro_queries_total{session="<all>",outcome="done"} 1' in text
        assert '# TYPE repro_query_latency_seconds histogram' in text
        assert 'quantile="0.99"' in text
        assert 'repro_fetch_run_length_count' in text
        # counter totals in the exposition reconcile with the registry
        totals = conn.metrics.totals()
        assert f'repro_query_quanta_total{{session="<all>"}} {totals.quanta}' in text

    def test_format_output_stable(self, conn):
        build_parts(conn)
        conn.execute("select * from P where COLOR = 3")
        lines = conn.metrics.format().splitlines()
        assert lines[0].startswith("<all>: 1 queries (1 done, 0 cancelled, 0 failed)")
        assert any(line.startswith("main: ") for line in lines)
        assert "cache hit rate" in lines[0]

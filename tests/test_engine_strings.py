"""End-to-end retrieval over string columns: LIKE-prefix ranges, string
indexes, and string equality through the whole dynamic engine."""

import pytest

from repro.db.session import Database
from repro.expr.ast import col
from repro.expr.eval import evaluate

NAMES = [
    "anderson", "andrews", "appleton", "baker", "barnes", "bennett",
    "carlson", "carter", "chapman", "davies", "dawson", "dixon",
    "edwards", "elliott", "evans", "fisher", "fleming", "foster",
]


@pytest.fixture
def directory(db):
    table = db.create_table(
        "DIRECTORY", [("ID", "int"), ("NAME", "str"), ("CITY", "str")],
        rows_per_page=8, index_order=8,
    )
    cities = ["oslo", "paris", "quito", "rome"]
    for i in range(360):
        table.insert((i, NAMES[i % len(NAMES)] + str(i // len(NAMES)), cities[i % 4]))
    table.create_index("IX_NAME", ["NAME"])
    table.create_index("IX_CITY", ["CITY"])
    return table


def oracle(table, expr):
    return sorted(
        row for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position)
    )


def test_string_equality_via_index(directory):
    expr = col("NAME").eq("baker3")
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)
    assert len(result.rows) == 1


def test_like_prefix_uses_index_range(directory, db):
    expr = col("NAME").like("and%")
    db.cold_cache()
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)
    assert len(result.rows) == 40  # anderson* + andrews*
    # the range scan must beat a full scan
    assert result.execution_io < directory.heap.page_count


def test_like_with_inner_wildcard_still_correct(directory):
    expr = col("NAME").like("a%son_")
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)


def test_string_range_comparison(directory):
    expr = (col("NAME") >= "c") & (col("NAME") < "e")
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)


def test_string_conjunction_two_indexes(directory):
    expr = (col("CITY").eq("paris")) & (col("NAME") < "c")
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)


def test_string_order_by(directory):
    result = directory.select(where=col("CITY").eq("rome"), order_by=("NAME",))
    names = [row[1] for row in result.rows]
    assert names == sorted(names)


def test_string_sql_roundtrip(directory, db):
    result = db.execute(
        "select NAME from DIRECTORY where NAME like 'fle%' order by NAME"
    )
    assert all(name.startswith("fle") for (name,) in result.rows)
    assert len(result.rows) == 20


def test_string_in_list_union(directory, db):
    expr = col("CITY").in_(["oslo", "quito"])
    db.cold_cache()
    result = directory.select(where=expr)
    assert sorted(result.rows) == oracle(directory, expr)
    assert len(result.rows) == 180

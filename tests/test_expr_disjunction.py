"""Tests for disjunctive restriction analysis."""

import pytest

from repro.btree.tree import BTree
from repro.db.catalog import IndexInfo
from repro.expr.ast import ALWAYS_TRUE, Comparison, col, lit, var
from repro.expr.disjunction import cover_disjuncts, disjunction_terms
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def make_index(name, columns, positions):
    tree = BTree(BufferPool(Pager(), 64), name, order=8)
    return IndexInfo(name=name, columns=tuple(columns), btree=tree,
                     positions=tuple(positions))


IX_A = make_index("IX_A", ["A"], [0])
IX_B = make_index("IX_B", ["B"], [1])


def test_single_predicate_is_one_disjunct():
    terms = disjunction_terms(col("A").eq(1))
    assert len(terms) == 1


def test_or_splits():
    terms = disjunction_terms((col("A").eq(1)) | (col("B") < 5) | (col("A") > 9))
    assert len(terms) == 3


def test_in_list_expands_to_equalities():
    terms = disjunction_terms(col("A").in_([1, 2, 3]))
    assert len(terms) == 3
    assert all(isinstance(term, Comparison) and term.op == "=" for term in terms)


def test_in_list_with_host_var_not_expanded():
    terms = disjunction_terms(col("A").in_([lit(1), var("v")]))
    assert len(terms) == 1


def test_nested_and_inside_or():
    expr = ((col("A").eq(1)) & (col("B") < 5)) | (col("B").eq(9))
    terms = disjunction_terms(expr)
    assert len(terms) == 2


def test_cover_all_disjuncts():
    expr = (col("A").eq(1)) | (col("B") < 5)
    covered = cover_disjuncts(expr, [IX_A, IX_B])
    assert covered is not None
    assert [c.index.name for c in covered] == ["IX_A", "IX_B"]


def test_cover_fails_on_unindexed_disjunct():
    expr = (col("A").eq(1)) | (col("C") < 5)
    assert cover_disjuncts(expr, [IX_A, IX_B]) is None


def test_cover_fails_on_true_disjunct():
    assert cover_disjuncts(ALWAYS_TRUE, [IX_A]) is None


def test_cover_prefers_equality_range():
    # disjunct restricts both columns: equality on B should win over range on A
    expr = ((col("A") > 3) & (col("B").eq(7))) | (col("A").eq(0))
    covered = cover_disjuncts(expr, [IX_A, IX_B])
    assert covered is not None
    assert covered[0].index.name == "IX_B"
    assert covered[0].key_range.lo == (7,)


def test_cover_uses_host_vars():
    expr = (col("A") >= var("x")) | (col("B").eq(1))
    assert cover_disjuncts(expr, [IX_A, IX_B], {}) is None
    covered = cover_disjuncts(expr, [IX_A, IX_B], {"x": 10})
    assert covered is not None
    assert covered[0].key_range.lo == (10,)


def test_cover_conjunctive_expression_single_disjunct():
    expr = (col("A").eq(1)) & (col("B") < 5)
    covered = cover_disjuncts(expr, [IX_A, IX_B])
    assert covered is not None
    assert len(covered) == 1


def test_in_list_distributed_over_conjunction():
    expr = (col("A").in_([1, 2])) & (col("C") > 5)
    terms = disjunction_terms(expr)
    assert len(terms) == 2
    covered = cover_disjuncts(expr, [IX_A, IX_B])
    assert covered is not None
    assert [c.key_range.lo for c in covered] == [(1,), (2,)]


def test_only_first_in_list_distributed():
    expr = (col("A").in_([1, 2])) & (col("B").in_([3, 4]))
    terms = disjunction_terms(expr)
    # two disjuncts (from A), each keeping B IN (...) as a residual term
    assert len(terms) == 2

"""Tests for DDL/DML statements through the SQL layer."""

import pytest

from repro.errors import CatalogError, SqlSyntaxError
from repro.sql.ddl import DdlResult


def test_create_table_and_insert(db):
    result = db.execute("create table T (A int, B str)")
    assert isinstance(result, DdlResult)
    assert "created" in result.message
    db.execute("insert into T values (1, 'x'), (2, 'y')")
    query = db.execute("select * from T")
    assert query.rows == [(1, "x"), (2, "y")]


def test_insert_null(db):
    db.execute("create table T (A int, B int)")
    db.execute("insert into T values (1, null)")
    assert db.execute("select * from T").rows == [(1, None)]


def test_insert_negative_and_float(db):
    db.execute("create table T (A int, B float)")
    db.execute("insert into T values (-5, 2.5)")
    assert db.execute("select * from T").rows == [(-5, 2.5)]


def test_create_index_and_use(db):
    db.execute("create table T (A int, B int)")
    for i in range(200):
        db.execute(f"insert into T values ({i}, {i % 10})")
    db.execute("create index IX_B on T (B)")
    assert "IX_B" in db.table("T").indexes
    result = db.execute("select * from T where B = 3")
    assert all(row[1] == 3 for row in result.rows)


def test_create_unique_index(db):
    db.execute("create table T (A int)")
    db.execute("create unique index IX_A on T (A)")
    assert db.table("T").indexes["IX_A"].unique


def test_unique_table_rejected_syntax(db):
    with pytest.raises(SqlSyntaxError):
        db.execute("create unique table T (A int)")


def test_drop_table(db):
    db.execute("create table T (A int)")
    db.execute("drop table T")
    assert "T" not in db.tables


def test_drop_index(db):
    db.execute("create table T (A int)")
    db.execute("create index IX on T (A)")
    db.execute("drop index IX on T")
    assert "IX" not in db.table("T").indexes


def test_analyze_statement(db):
    db.execute("create table T (A int)")
    db.execute("insert into T values (1), (2), (3)")
    result = db.execute("analyze T")
    assert "3 rows" in result.message
    assert db.table("T").stats is not None


def test_duplicate_table_rejected(db):
    db.execute("create table T (A int)")
    with pytest.raises(CatalogError):
        db.execute("create table T (A int)")


def test_bad_column_type_rejected(db):
    with pytest.raises(SqlSyntaxError):
        db.execute("create table T (A blob)")


def test_bad_statement_start(db):
    with pytest.raises(SqlSyntaxError):
        db.execute("update T set A = 1")


def test_multi_row_insert_counts(db):
    db.execute("create table T (A int)")
    result = db.execute("insert into T values (1), (2), (3), (4)")
    assert result.rows_affected == 4

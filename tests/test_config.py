"""Tests for the engine configuration object."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG, EngineConfig


def test_defaults_match_paper_numbers():
    assert DEFAULT_CONFIG.switch_threshold == 0.95  # "e.g. becomes 95%"
    assert DEFAULT_CONFIG.static_rid_buffer_size == 20  # "lists up to 20 RIDs"


def test_with_creates_modified_copy():
    modified = DEFAULT_CONFIG.with_(switch_threshold=0.5)
    assert modified.switch_threshold == 0.5
    assert DEFAULT_CONFIG.switch_threshold == 0.95
    assert modified.static_rid_buffer_size == DEFAULT_CONFIG.static_rid_buffer_size


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_CONFIG.switch_threshold = 0.1  # type: ignore[misc]


def test_with_unknown_field_rejected():
    with pytest.raises(TypeError):
        DEFAULT_CONFIG.with_(nonexistent=1)


def test_custom_config_flows_through_engine():
    from repro.db.session import Database
    from repro.expr.ast import col

    config = EngineConfig(dynamic_estimation=False, simultaneous_adjacent_scans=False)
    db = Database(buffer_capacity=32, config=config)
    table = db.create_table("T", [("A", "int")])
    for i in range(50):
        table.insert((i,))
    table.create_index("IX", ["A"])
    result = table.select(where=col("A") < 10)
    # with dynamic estimation off, no initial-estimate events appear
    from repro.engine.metrics import EventKind

    assert not result.trace.has(EventKind.INITIAL_ESTIMATE)
    assert len(result.rows) == 10

"""Tests for the System R-style static-optimizer baseline."""

import pytest

from repro.engine.static_optimizer import (
    MAGIC_EQ,
    MAGIC_RANGE,
    StaticOptimizer,
)
from repro.expr.ast import ALWAYS_TRUE, col, var
from repro.workloads.scenarios import build_families_table


@pytest.fixture
def families(db):
    return build_families_table(db, rows=1500)


def test_requires_analyze_runs_it(db):
    table = db.create_table("T", [("A", "int")])
    table.insert((1,))
    optimizer = StaticOptimizer(table)
    assert table.stats is not None
    assert optimizer.stats.row_count == 1


def test_literal_range_selectivity_from_histogram(families):
    optimizer = StaticOptimizer(families)
    narrow = optimizer.estimate_selectivity(col("AGE") >= 115)
    wide = optimizer.estimate_selectivity(col("AGE") >= 10)
    assert narrow < wide
    assert 0.0 <= narrow <= 1.0


def test_host_var_uses_magic_number(families):
    optimizer = StaticOptimizer(families)
    selectivity = optimizer.estimate_selectivity(col("AGE") >= var("A1"))
    assert selectivity == pytest.approx(MAGIC_RANGE)


def test_eq_selectivity_uses_ndv(families):
    optimizer = StaticOptimizer(families)
    selectivity = optimizer.estimate_selectivity(col("SIZE").eq(3))
    distinct = families.stats.columns["SIZE"].distinct
    assert selectivity == pytest.approx(1.0 / distinct)


def test_eq_host_var_magic(families):
    optimizer = StaticOptimizer(families)
    assert optimizer.estimate_selectivity(col("AGE").eq(var("X"))) == pytest.approx(MAGIC_EQ)


def test_and_multiplies_or_adds(families):
    optimizer = StaticOptimizer(families)
    a = optimizer.estimate_selectivity(col("AGE") >= 100)
    b = optimizer.estimate_selectivity(col("SIZE").eq(3))
    both = optimizer.estimate_selectivity((col("AGE") >= 100) & (col("SIZE").eq(3)))
    either = optimizer.estimate_selectivity((col("AGE") >= 100) | (col("SIZE").eq(3)))
    assert both == pytest.approx(a * b, rel=1e-6)
    assert either == pytest.approx(a + b - a * b, rel=1e-6)


def test_compile_picks_index_for_selective_literal(families):
    optimizer = StaticOptimizer(families)
    plan = optimizer.compile(col("AGE") >= 118)
    assert plan.strategy == "fscan"
    assert plan.index_name == "IX_AGE"


def test_compile_picks_tscan_for_unselective_literal(families):
    optimizer = StaticOptimizer(families)
    plan = optimizer.compile(col("AGE") >= 0)
    assert plan.strategy == "tscan"


def test_frozen_plan_runs_regardless_of_bindings(families, db):
    """The paper's failure mode: one frozen plan, two very different runs."""
    optimizer = StaticOptimizer(families)
    plan = optimizer.compile(col("AGE") >= var("A1"))
    # whatever the choice, it stays fixed for both bindings
    run_all = optimizer.execute(plan, col("AGE") >= var("A1"), {"A1": 0})
    run_none = optimizer.execute(plan, col("AGE") >= var("A1"), {"A1": 200})
    assert len(run_all.rows) == families.row_count
    assert run_none.rows == []
    assert run_all.plan is plan and run_none.plan is plan


def test_execute_results_match_oracle(families):
    optimizer = StaticOptimizer(families)
    expr = col("AGE").between(30, 40)
    plan = optimizer.compile(expr)
    execution = optimizer.execute(plan, expr)
    expected = sorted(row for _, row in families.heap.scan() if 30 <= row[1] <= 40)
    assert sorted(execution.rows) == expected


def test_execute_honors_limit(families):
    optimizer = StaticOptimizer(families)
    plan = optimizer.compile(ALWAYS_TRUE)
    execution = optimizer.execute(plan, ALWAYS_TRUE, limit=5)
    assert len(execution.rows) == 5


def test_sscan_plan_for_covering_index(db):
    table = db.create_table("T", [("A", "int"), ("B", "int")], rows_per_page=8)
    for i in range(400):
        table.insert((i % 50, i))
    table.create_index("IX_A", ["A"])
    table.analyze()
    optimizer = StaticOptimizer(table)
    plan = optimizer.compile(col("A").eq(7), needed_columns=frozenset({"A"}))
    assert plan.strategy == "sscan"
    execution = optimizer.execute(plan, col("A").eq(7))
    assert all(row[0] == 7 for row in execution.rows)


def test_plan_describe(families):
    plan = StaticOptimizer(families).compile(col("AGE") >= 118)
    text = plan.describe()
    assert "fscan" in text and "IX_AGE" in text

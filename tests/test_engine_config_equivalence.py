"""Property: every engine configuration returns the same rows.

The dynamic optimizer's knobs (thresholds, buffer sizes, pair mode,
estimation on/off) may change *cost*, never *results*. This is the
load-bearing safety property of competition-based optimization: abandoning
a scan mid-run must be invisible to the consumer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.expr.ast import col

CONFIGS = [
    EngineConfig(),  # defaults
    EngineConfig(simultaneous_adjacent_scans=False),
    EngineConfig(dynamic_estimation=False),
    EngineConfig(switch_threshold=0.25),
    EngineConfig(switch_threshold=10.0, scan_cost_limit_fraction=100.0),
    EngineConfig(static_rid_buffer_size=2, allocated_rid_buffer_size=8),
    EngineConfig(shortcut_rid_count=0),
    EngineConfig(foreground_buffer_size=4),
    EngineConfig(foreground_speed=4.0, background_speed=1.0),
]


def build(config):
    db = Database(buffer_capacity=32, config=config)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=6,
    )
    rng = np.random.default_rng(77)
    for _ in range(400):
        table.insert(
            (int(rng.integers(0, 40)), int(rng.integers(0, 120)), int(rng.integers(0, 8)))
        )
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return db, table


PREDICATES = [
    col("A").eq(7),
    (col("A").eq(7)) & (col("B") < 40),
    (col("A") >= 35) & (col("B").between(20, 90)),
    col("B") >= 0,
    (col("A").eq(2)) | (col("B").eq(100)),
    col("A").in_([1, 5, 9]),
    (col("A").eq(999)) & (col("B") < 40),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"cfg{CONFIGS.index(c)}")
@pytest.mark.parametrize("index", range(len(PREDICATES)))
def test_rows_identical_across_configs(config, index):
    expr = PREDICATES[index]
    _, baseline_table = build(EngineConfig())
    baseline = sorted(baseline_table.select(where=expr).rows)
    _, table = build(config)
    for goal in (Goal.TOTAL_TIME, Goal.FAST_FIRST):
        assert sorted(table.select(where=expr, optimize_for=goal).rows) == baseline


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=5.0),
    st.integers(min_value=1, max_value=64),
    st.booleans(),
)
def test_random_configs_preserve_results(threshold, buffer_size, pair_mode):
    config = EngineConfig(
        switch_threshold=threshold,
        static_rid_buffer_size=buffer_size,
        allocated_rid_buffer_size=buffer_size * 4,
        foreground_buffer_size=buffer_size,
        simultaneous_adjacent_scans=pair_mode,
    )
    expr = (col("A").eq(7)) & (col("B") < 60)
    _, baseline_table = build(EngineConfig())
    baseline = sorted(baseline_table.select(where=expr).rows)
    _, table = build(config)
    assert sorted(table.select(where=expr).rows) == baseline

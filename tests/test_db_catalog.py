"""Tests for schemas, index metadata, and histograms."""

import pytest

from repro.btree.tree import BTree
from repro.db.catalog import Column, Histogram, IndexInfo, TableSchema
from repro.errors import CatalogError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def test_column_type_validation():
    Column("A", "int")
    with pytest.raises(CatalogError):
        Column("A", "blob")


def test_schema_requires_columns():
    with pytest.raises(CatalogError):
        TableSchema([])


def test_schema_rejects_duplicates():
    with pytest.raises(CatalogError):
        TableSchema([Column("A"), Column("A")])


def test_schema_positions():
    schema = TableSchema([Column("A"), Column("B"), Column("C")])
    assert schema.index_of("B") == 1
    assert schema.names == ("A", "B", "C")
    assert "B" in schema and "Z" not in schema
    with pytest.raises(CatalogError):
        schema.index_of("Z")


def test_row_from_mapping_fills_none():
    schema = TableSchema([Column("A"), Column("B")])
    assert schema.row_from_mapping({"B": 2}) == (None, 2)
    with pytest.raises(CatalogError):
        schema.row_from_mapping({"X": 1})


def test_validate_row_arity_and_types():
    schema = TableSchema([Column("A", "int"), Column("B", "str"), Column("C", "float")])
    assert schema.validate_row((1, "x", 2.5)) == (1, "x", 2.5)
    assert schema.validate_row((None, None, None)) == (None, None, None)
    assert schema.validate_row((1, "x", 3)) == (1, "x", 3)  # int ok for float
    with pytest.raises(CatalogError):
        schema.validate_row((1, "x"))
    with pytest.raises(CatalogError):
        schema.validate_row(("bad", "x", 1.0))
    with pytest.raises(CatalogError):
        schema.validate_row((1, 2, 1.0))


def _index(columns, positions, unique=False):
    tree = BTree(BufferPool(Pager(), 16), "ix", order=8)
    return IndexInfo("ix", tuple(columns), tree, unique, tuple(positions))


def test_index_key_extraction():
    index = _index(["B", "A"], [1, 0])
    assert index.key_for((10, 20, 30)) == (20, 10)


def test_index_covers():
    index = _index(["A", "B"], [0, 1])
    assert index.covers({"A"})
    assert index.covers({"A", "B"})
    assert not index.covers({"A", "C"})


def test_index_provides_order():
    index = _index(["A", "B"], [0, 1])
    assert index.provides_order(("A",))
    assert index.provides_order(("A", "B"))
    assert not index.provides_order(("B",))
    assert not index.provides_order(())


def test_histogram_selectivity_uniform():
    histogram = Histogram(list(range(1000)), buckets=10)
    assert histogram.selectivity_range(0, 999) == pytest.approx(1.0, abs=0.01)
    assert histogram.selectivity_range(0, 499) == pytest.approx(0.5, abs=0.02)
    assert histogram.selectivity_range(None, 99) == pytest.approx(0.1, abs=0.02)
    assert histogram.selectivity_range(900, None) == pytest.approx(0.1, abs=0.02)


def test_histogram_empty_and_inverted():
    histogram = Histogram([], buckets=10)
    assert histogram.selectivity_range(0, 10) == 0.0
    filled = Histogram([1, 2, 3])
    assert filled.selectivity_range(5, 2) == 0.0


def test_histogram_single_value():
    histogram = Histogram([7] * 100, buckets=10)
    assert histogram.selectivity_range(7, 7) == pytest.approx(1.0)
    assert histogram.selectivity_range(8, 9) == 0.0


def test_histogram_strings():
    histogram = Histogram(["a", "b", "c", "d"] * 25, buckets=4)
    full = histogram.selectivity_range("a", "d")
    assert 0.8 <= full <= 1.0


def test_histogram_ignores_none():
    histogram = Histogram([1, None, 2, None, 3])
    assert histogram.total == 3

"""Decision audit, counterfactual replay, and regret accounting.

The audit is an *observer*: with ``audit_enabled=False`` (the default)
execution must be bit-for-bit what it was before the subsystem existed —
same rows, same cost, same physical I/O. With it on, every optimizer
choice point produces a structured :class:`DecisionRecord`, EXPLAIN
COMPETE replays the rejected strategies on shadow buffer pools, and the
server aggregates per-tactic win rates plus the live Figure 2.1/2.2
L-shape. The Section-7-style acceptance test pins the paper's headline:
competition cost well below the rejected static plan's (ratio <= ~0.6).
"""

import json

import repro
from repro.config import EngineConfig
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.obs.audit import (
    NULL_AUDIT,
    AuditLog,
    DecisionKind,
    DecisionMetrics,
    DecisionRecord,
)
from repro.obs.regret import replay_strategy, run_compete
from repro.obs.trace import Tracer
from repro.shell import Shell


def build_orders(db, rows=3000):
    """Section-7-style table: selective customer index vs a full Tscan."""
    from repro.workloads.scenarios import build_multi_index_orders

    return build_multi_index_orders(db, rows=rows)


def build_parts(db, rows=600):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(rows):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


SELECTIVE = "select * from ORDERS where CUSTOMER between 100 and 120"
UNSELECTIVE = "select * from P where WEIGHT >= 0"


# -- the AuditLog ------------------------------------------------------------


class TestAuditLog:
    def test_null_audit_is_inert(self):
        assert NULL_AUDIT.enabled is False
        NULL_AUDIT.begin_retrieval("T")
        NULL_AUDIT.decision(DecisionKind.TACTIC_SELECTION, "tscan")
        NULL_AUDIT.end_retrieval(None)
        NULL_AUDIT.observe_estimate("IX", 10.0, 12)
        assert NULL_AUDIT.retrievals == []
        assert NULL_AUDIT.query_decisions == []
        assert NULL_AUDIT.max_regret() == 0.0

    def test_tracer_default_audit_is_null(self):
        assert Tracer().audit is NULL_AUDIT
        assert RetrievalTrace().audit is NULL_AUDIT
        audit = AuditLog()
        assert Tracer(audit=audit).audit is audit

    def test_decision_scoping_statement_vs_retrieval(self):
        audit = AuditLog()
        audit.decision(DecisionKind.GOAL_INFERENCE, "total-time")
        audit.begin_retrieval("T")
        audit.decision(DecisionKind.TACTIC_SELECTION, "sscan", ("tscan",), rids=5)
        audit.end_retrieval(None)
        assert [r.retrieval_index for r in audit.records()] == [-1, 0]
        selection = audit.retrievals[0].tactic_selection()
        assert selection.chosen == "sscan"
        assert selection.alternatives == ("tscan",)
        assert selection.inputs == {"rids": 5}

    def test_observe_event_derives_decisions(self):
        audit = AuditLog()
        trace = RetrievalTrace(Tracer(audit=audit))
        audit.begin_retrieval("T")
        trace.emit(EventKind.SHORTCUT_SMALL_RANGE, index="IX", rids=3)
        trace.emit(EventKind.STRATEGY_SWITCH, to="tscan", reason="projected")
        trace.emit(EventKind.TSCAN_RECOMMENDED)
        trace.emit(EventKind.INITIAL_ESTIMATE, index="IX", rids=9.0,
                   feedback_rids=4.5)
        trace.emit(EventKind.INITIAL_ESTIMATE, index="IX2", rids=2.0)  # no feedback
        trace.emit(EventKind.TACTIC_SELECTED, tactic="tscan")  # engine-owned, unmapped
        kinds = [r.kind for r in audit.retrievals[0].decisions]
        assert kinds == [
            DecisionKind.SHORTCUT,
            DecisionKind.STRATEGY_SWITCH,
            DecisionKind.STAGE_TRANSITION,
            DecisionKind.FEEDBACK_APPLICATION,
        ]
        switch = audit.retrievals[0].decisions[1]
        assert switch.chosen == "tscan" and switch.inputs == {"reason": "projected"}

    def test_to_dict_is_json_safe(self, db):
        table = build_parts(db)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("COLOR").eq(3), tracer=tracer)
        exported = tracer.audit.to_dict()
        json.dumps(exported)
        assert exported["retrievals"][0]["complete"] is True


# -- engine decision capture -------------------------------------------------


class TestEngineCapture:
    def run_audited(self, table, expr, **kwargs):
        tracer = Tracer(audit=AuditLog())
        result = table.select(where=expr, tracer=tracer, **kwargs)
        return result, tracer.audit

    def test_tactic_selection_names_replayable_alternatives(self, db):
        table = build_parts(db)
        _, audit = self.run_audited(
            table, repro.col("COLOR").eq(3), optimize_for=Goal.TOTAL_TIME
        )
        selection = audit.retrievals[0].tactic_selection()
        assert selection.chosen == "background-only"
        assert selection.alternatives == ("tscan",)
        assert selection.inputs["tscan_pages"] == table.heap.page_count
        assert selection.inputs["jscan_candidates"] >= 1

    def test_index_ordering_and_estimates_recorded(self, db):
        table = build_parts(db)
        _, audit = self.run_audited(
            table,
            (repro.col("COLOR").eq(3)) & (repro.col("WEIGHT") < 50),
            optimize_for=Goal.TOTAL_TIME,
        )
        retrieval = audit.retrievals[0]
        ordering = [r for r in retrieval.decisions
                    if r.kind is DecisionKind.INDEX_ORDERING]
        assert len(ordering) == 1
        assert ordering[0].chosen in ("IX_COLOR", "IX_WEIGHT")
        # completed scans contribute estimated-vs-actual pairs
        assert retrieval.estimates
        for _, estimated, actual in retrieval.estimates:
            assert estimated > 0 and actual >= 0

    def test_stage_transition_records_abandon_inputs(self, db):
        table = build_parts(db)
        _, audit = self.run_audited(
            table, repro.col("WEIGHT") >= 0, optimize_for=Goal.TOTAL_TIME
        )
        transitions = [r for r in audit.retrievals[0].decisions
                       if r.kind is DecisionKind.STAGE_TRANSITION
                       and r.chosen.startswith("abandon(")]
        assert transitions
        record = transitions[0]
        assert record.inputs["reason"] in ("projected-cost", "scan-cost")
        assert record.inputs["scanned"] > 0
        assert record.inputs["guaranteed"] > 0

    def test_audit_off_execution_identical(self):
        """The observer contract: rows, cost, and I/O are unchanged."""
        results = []
        for audited in (False, True):
            db = Database(buffer_capacity=64)
            table = build_parts(db)
            tracer = Tracer(audit=AuditLog()) if audited else None
            result = table.select(where=repro.col("WEIGHT") >= 0, tracer=tracer)
            results.append(
                (sorted(result.rows), result.total_cost, result.execution_io,
                 [e.kind for e in result.trace.events])
            )
        assert results[0] == results[1]


# -- counterfactual replay ---------------------------------------------------


class TestReplay:
    def test_forced_strategies_run_on_shadow_pool(self, db):
        table = build_orders(db, rows=1500)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("CUSTOMER").between(100, 120), tracer=tracer)
        request = tracer.audit.retrievals[0].request
        hits_before = db.buffer_pool.hits
        misses_before = db.buffer_pool.misses
        chosen = replay_strategy(db, table, request, "background-only", 100_000)
        alt = replay_strategy(db, table, request, "tscan", 100_000)
        assert chosen.failed is None and alt.failed is None
        assert chosen.rows == alt.rows  # both strategies deliver the same set
        assert 0 < chosen.cost < alt.cost
        # the production pool's statistics were never touched
        assert db.buffer_pool.hits == hits_before
        assert db.buffer_pool.misses == misses_before

    def test_unsupported_strategy_fails_as_data_point(self, db):
        table = build_parts(db)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("WEIGHT") >= 0, tracer=tracer)
        request = tracer.audit.retrievals[0].request
        outcome = replay_strategy(db, table, request, "sorted", 100_000)
        assert outcome.failed is not None  # request has no order index
        outcome = replay_strategy(db, table, request, "no-such-tactic", 100_000)
        assert "unknown forced strategy" in outcome.failed

    def test_budget_truncates_hopeless_replays(self, db):
        table = build_orders(db, rows=1500)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("CUSTOMER").between(100, 120), tracer=tracer)
        request = tracer.audit.retrievals[0].request
        outcome = replay_strategy(db, table, request, "tscan",
                                  budget_steps=db.config.batch_size)
        assert outcome.truncated
        full = replay_strategy(db, table, request, "tscan", 1_000_000)
        assert not full.truncated
        assert outcome.cost <= full.cost  # partial cost is a lower bound

    def test_run_compete_annotates_decisions(self, db):
        table = build_orders(db, rows=1500)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("CUSTOMER").between(100, 120), tracer=tracer)
        report = run_compete(db, tracer.audit, budget_steps=1_000_000)
        assert report.replays == 2  # chosen + one alternative
        selection = tracer.audit.retrievals[0].tactic_selection()
        assert selection.regret is not None
        assert set(selection.counterfactuals) == {"background-only", "tscan"}
        compete = report.retrievals[0]
        assert compete.chosen == "background-only"
        assert compete.advantage < 1.0
        json.dumps(report.to_dict())

    def test_realized_regret_when_optimizer_pays_for_uncertainty(self, db):
        """An unselective predicate: the engine starts a Jscan, abandons it,
        and falls back to Tscan — replaying that choice costs more than the
        clean Tscan it rejected, so realized regret is positive."""
        table = build_parts(db)
        tracer = Tracer(audit=AuditLog())
        table.select(where=repro.col("WEIGHT") >= 0, tracer=tracer,
                     optimize_for=Goal.TOTAL_TIME)
        report = run_compete(db, tracer.audit, budget_steps=1_000_000)
        assert report.total_regret > 0
        assert report.retrievals[0].advantage > 1.0


# -- EXPLAIN COMPETE ---------------------------------------------------------


class TestExplainCompete:
    def test_section7_competition_beats_rejected_plan(self):
        """Acceptance gate: on a Section-7-style selective workload the
        chosen strategy's replay cost is <= ~0.6x the rejected plan's."""
        conn = repro.connect(buffer_capacity=128)
        build_orders(conn.db)
        result = conn.execute(f"explain compete {SELECTIVE}")
        report = result.compete
        assert report.replays >= 2
        assert report.advantage is not None and report.advantage <= 0.6
        assert report.competition_cost <= 0.6 * report.rejected_cost
        # per-decision regret is reported in the rendered text
        assert "Competition:" in result.text
        assert "regret" in result.text
        assert "Decisions:" in result.text
        assert "tactic-selection: background-only (over tscan)" in result.text

    def test_compete_without_audit_flag(self):
        """EXPLAIN COMPETE forces its own audit even with auditing off."""
        conn = repro.connect(buffer_capacity=128)
        assert conn.db.config.audit_enabled is False
        build_parts(conn.db)
        result = conn.execute(f"explain compete {UNSELECTIVE}")
        assert result.compete is not None
        assert result.compete.total_regret > 0
        # ... and the server's decision metrics absorbed the outcome
        decisions = conn.metrics.decisions
        assert decisions.replays == result.compete.replays
        assert decisions.regret_hist.count >= 1

    def test_plain_explain_still_static(self):
        conn = repro.connect(buffer_capacity=128)
        build_parts(conn.db)
        result = conn.execute(f"explain {UNSELECTIVE}")
        assert result.kind == "explain" and result.compete is None
        assert result.raw.analyze is False
        assert "retrieve P" in result.text

    def test_connection_audit_api(self):
        conn = repro.connect(buffer_capacity=128)
        build_orders(conn.db, rows=1500)
        report = conn.audit("select * from ORDERS where CUSTOMER between 100 and 120")
        assert report.replays >= 2
        assert report.audit is not None
        assert report.audit.retrievals[0].tactic_selection().counterfactuals
        assert report.advantage < 1.0

    def test_compete_routes_through_plan_cache(self):
        conn = repro.connect(buffer_capacity=128)
        build_orders(conn.db, rows=1500)
        conn.execute(SELECTIVE)
        before = conn.db.plan_cache.hits
        conn.execute(f"explain compete {SELECTIVE}")
        assert conn.db.plan_cache.hits == before + 1


# -- DecisionMetrics ---------------------------------------------------------


class TestDecisionMetrics:
    def test_absorb_counts_kinds_and_tactics(self):
        audit = AuditLog()
        audit.decision(DecisionKind.GOAL_INFERENCE, "total-time")
        audit.begin_retrieval("T")
        record = audit.decision(
            DecisionKind.TACTIC_SELECTION, "sscan", ("tscan",)
        )
        record.regret = 2.5
        audit.observe_estimate("IX", 10.0, 15)
        audit.end_retrieval(None)
        metrics = DecisionMetrics()
        metrics.absorb(audit)
        assert metrics.decisions == {"goal-inference": 1, "tactic-selection": 1}
        assert metrics.tactic_selected == {"sscan": 1}
        assert metrics.regret_hist.count == 1 and metrics.regret_hist.sum == 2.5
        assert metrics.estimate_error_hist.count == 1

    def test_win_rate_and_merge(self):
        a = DecisionMetrics()
        a.tactic_wins["sscan"] = 3
        a.tactic_losses["sscan"] = 1
        a.replays = 4
        a.competition_cost = 10.0
        a.rejected_cost = 40.0
        b = DecisionMetrics()
        b.tactic_wins["sscan"] = 1
        b.replays = 1
        b.merge(a)
        assert b.tactic_wins == {"sscan": 4}
        assert b.win_rate("sscan") == 4 / 5
        assert b.win_rate("never-replayed") == 0.0
        assert b.replays == 5
        assert b.competition_ratio == 0.25

    def test_server_aggregates_lshape_unconditionally(self):
        """Every retired retrieval's cost lands in the L-shape histogram,
        audited or not — the live Figure 2.1/2.2 capture."""
        conn = repro.connect(buffer_capacity=128)
        build_parts(conn.db)
        conn.execute("select * from P where COLOR = 3")
        conn.execute(UNSELECTIVE)
        hist = conn.metrics.decisions.retrieval_cost_hist
        assert hist.count == 2
        assert hist.max > hist.p50  # the skew: one cheap, one expensive

    def test_audit_enabled_feeds_server_metrics(self):
        cfg = EngineConfig(audit_enabled=True)
        conn = repro.connect(buffer_capacity=128, config=cfg)
        build_parts(conn.db)
        conn.execute("select * from P where COLOR = 3")
        decisions = conn.metrics.decisions
        assert decisions.decisions.get("tactic-selection") == 1
        assert decisions.tactic_selected == {"background-only": 1}
        assert decisions.estimate_error_hist.count >= 1

    def test_prometheus_exposes_decision_metrics(self):
        conn = repro.connect(buffer_capacity=128)
        build_orders(conn.db, rows=1500)
        conn.execute(f"explain compete {SELECTIVE}")
        payload = conn.metrics.expose_text()
        assert 'repro_audit_decisions_total{kind="tactic-selection"} 1' in payload
        assert 'repro_tactic_selected_total{tactic="background-only"} 1' in payload
        assert 'repro_tactic_wins_total{tactic="background-only"} 1' in payload
        assert "repro_replays_total 2" in payload
        assert "repro_decision_regret_cost_count 1" in payload
        assert "repro_estimate_error_ratio_count" in payload
        assert "repro_retrieval_cost_bucket" in payload
        assert "repro_flight_records_total 0" in payload

    def test_shell_decisions_command(self):
        import io

        out = io.StringIO()
        conn = repro.connect(buffer_capacity=128)
        build_orders(conn.db, rows=1500)
        shell = Shell(conn, out=out)
        shell.feed(f"explain compete {SELECTIVE};")
        shell.feed("\\decisions")
        text = out.getvalue()
        assert "decision metrics:" in text
        assert "tactic background-only: selected 1, replay record 1W-0L" in text
        assert "replays: 2" in text


# -- the flight recorder -----------------------------------------------------


class _ListSink:
    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True


class TestFlightRecorder:
    def test_slow_query_capture(self):
        cfg = EngineConfig(slow_query_ms=0.0001)  # everything is "slow"
        sink = _ListSink()
        conn = repro.connect(buffer_capacity=128, config=cfg, flight_sink=sink)
        build_parts(conn.db)
        conn.execute("select * from P where COLOR = 3")
        assert len(sink.records) == 1
        record = sink.records[0]
        assert record["reasons"] == ["slow"]
        assert record["sql"] == "select * from P where COLOR = 3"
        assert record["outcome"] == "done"
        assert record["latency_ms"] > 0
        json.dumps(record)
        assert conn.metrics.flight_records == 1

    def test_regret_capture_carries_spans_and_decisions(self):
        cfg = EngineConfig(regret_threshold=0.001)
        sink = _ListSink()
        conn = repro.connect(buffer_capacity=128, config=cfg, flight_sink=sink)
        build_parts(conn.db)
        conn.execute(UNSELECTIVE)  # no audit, no regret: not captured
        assert sink.records == []
        conn.execute(f"explain compete {UNSELECTIVE}")  # positive regret
        assert len(sink.records) == 1
        record = sink.records[0]
        assert record["reasons"] == ["regret"]
        assert record["spans"]["name"] == "query"
        decisions = record["decisions"]["retrievals"][0]["decisions"]
        assert any(d.get("regret", 0) > 0 for d in decisions)

    def test_no_sink_or_no_threshold_captures_nothing(self):
        sink = _ListSink()
        conn = repro.connect(buffer_capacity=128, flight_sink=sink)
        build_parts(conn.db)
        conn.execute("select * from P where COLOR = 3")
        assert sink.records == []  # thresholds default to 0 = disabled

    def test_connection_close_shuts_down_sinks(self):
        trace_sink = _ListSink()
        flight_sink = _ListSink()
        conn = repro.connect(buffer_capacity=128, trace_sink=trace_sink,
                             flight_sink=flight_sink)
        build_parts(conn.db)
        handle = conn.submit("select * from P where COLOR = 3")
        conn.close()  # in-flight query cancelled, sinks closed
        assert handle.done
        assert trace_sink.closed and flight_sink.closed


# -- lazy input capture ------------------------------------------------------


class TestLazyDecisionRecord:
    """The audit-on hot path borrows the engine's detail mapping by
    reference and only materializes (and filters) it on first read."""

    def test_raw_inputs_materialize_on_first_read(self):
        raw = {"est": 12, "cost": 3.5, "to": "tscan"}
        record = DecisionRecord(
            DecisionKind.STRATEGY_SWITCH, "tscan",
            raw_inputs=raw, drop_keys=("to",),
        )
        assert record._inputs is None  # nothing copied yet
        inputs = record.inputs
        assert inputs == {"est": 12, "cost": 3.5}
        assert record.inputs is inputs  # materialized exactly once

    def test_owned_inputs_pass_through(self):
        record = DecisionRecord(
            DecisionKind.TACTIC_SELECTION, "jscan", inputs={"a": 1}
        )
        assert record.inputs == {"a": 1}

    def test_no_inputs_is_empty_dict(self):
        record = DecisionRecord(DecisionKind.GOAL_INFERENCE, "total-time")
        assert record.inputs == {}

    def test_to_dict_includes_lazy_inputs(self):
        record = DecisionRecord(
            DecisionKind.SHORTCUT, "empty", raw_inputs={"reason": "contradiction"}
        )
        payload = record.to_dict()
        assert payload["inputs"] == {"reason": "contradiction"}

    def test_decision_raw_borrows_without_copying(self):
        audit = AuditLog()
        audit.begin_retrieval("T")
        detail = {"from": "jscan", "to": "tscan", "crossover": 41.5}
        audit.decision_raw(
            DecisionKind.STRATEGY_SWITCH, "tscan",
            raw_inputs=detail, drop_keys=("to",),
        )
        record = audit.retrievals[-1].decisions[-1]
        assert record._raw is detail  # borrowed by reference, no copy
        assert record.inputs == {"from": "jscan", "crossover": 41.5}

    def test_observe_event_records_stay_equivalent(self):
        """The event-derived records carry the same payloads as before
        the lazy refactor (detail minus the chosen-value key)."""
        trace = RetrievalTrace(Tracer(audit=AuditLog()))
        trace.audit.begin_retrieval("T")
        trace.emit(
            EventKind.STRATEGY_SWITCH, to="tscan", sunk_cost=2.0, reason="crossover"
        )
        audit = trace.audit
        switches = [
            record
            for retrieval in audit.retrievals
            for record in retrieval.decisions
            if record.kind is DecisionKind.STRATEGY_SWITCH
        ]
        assert switches and switches[-1].chosen == "tscan"
        assert "to" not in switches[-1].inputs
        assert switches[-1].inputs["sunk_cost"] == 2.0

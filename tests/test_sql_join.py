"""Parsing and binding of multi-table JOIN queries."""

import pytest

import repro
from repro.errors import BindingError, SqlSyntaxError
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.sql.plan import JoinPlan, walk


def join_node(sql):
    parsed = parse(sql)
    for node in walk(parsed.plan):
        if isinstance(node, JoinPlan):
            return node
    raise AssertionError("no join node parsed")


class TestJoinParsing:
    def test_two_table_join_with_as_aliases(self):
        node = join_node(
            "select a.X, b.Y from T as a join U as b on a.K = b.K"
        )
        assert [s.alias for s in node.sources] == ["a", "b"]
        assert [s.table for s in node.sources] == ["T", "U"]
        (edge,) = node.edges
        assert (edge.left_alias, edge.left_column) == ("a", "K")
        assert (edge.right_alias, edge.right_column) == ("b", "K")
        assert node.output_columns == ("a.X", "b.Y")

    def test_bare_aliases_and_inner_keyword(self):
        node = join_node(
            "select a.X from T a inner join U b on a.K = b.K where b.V = 1"
        )
        assert [s.alias for s in node.sources] == ["a", "b"]
        assert dict(node.restrictions).keys() == {"b"}

    def test_where_equality_becomes_join_edge(self):
        node = join_node(
            "select a.X, c.Z from T as a join U as b on a.K = b.K "
            "join V as c on b.K = c.K where a.ID = c.ID and a.X >= 3"
        )
        assert len(node.edges) == 3  # two ON edges + one from WHERE
        assert dict(node.restrictions).keys() == {"a"}

    def test_four_tables_parse_five_reject(self):
        sql4 = (
            "select a.X from T a join T2 b on a.K = b.K "
            "join T3 c on b.K = c.K join T4 d on c.K = d.K"
        )
        assert len(join_node(sql4).sources) == 4
        sql5 = sql4 + " join T5 e on d.K = e.K"
        with pytest.raises(SqlSyntaxError, match="at most 4 tables"):
            parse(sql5)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SqlSyntaxError, match="duplicate table alias"):
            parse("select a.X from T a join U a on a.K = a.K")

    def test_unknown_alias_in_on_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unknown table alias"):
            parse("select a.X from T a join U b on a.K = z.K")

    def test_unqualified_column_in_join_rejected(self):
        with pytest.raises(SqlSyntaxError, match="alias-qualified"):
            parse("select X from T a join U b on a.K = b.K")

    def test_subquery_in_join_rejected(self):
        with pytest.raises(SqlSyntaxError, match="subquer"):
            parse(
                "select a.X from T a join U b on a.K = b.K "
                "where a.X in (select Y from W)"
            )

    def test_trailing_garbage_still_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a.X from T a join U b on a.K = b.K garbage")


class TestJoinBinding:
    @pytest.fixture
    def db(self):
        db = repro.Database(buffer_capacity=32)
        for name in ("T", "U", "V"):
            table = db.create_table(name, [("ID", "int"), ("K", "int")])
            table.insert_many((i, i % 4) for i in range(20))
            table.analyze()
        return db

    def bind_sql(self, db, sql):
        parsed = parse(sql)
        bind(db, parsed.plan)
        return parsed

    def test_connected_join_binds(self, db):
        self.bind_sql(
            db, "select a.ID, b.ID from T a join U b on a.K = b.K"
        )

    def test_unknown_table_rejected(self, db):
        with pytest.raises(BindingError):
            self.bind_sql(
                db, "select a.ID, b.ID from T a join NOPE b on a.K = b.K"
            )

    def test_unknown_column_rejected(self, db):
        with pytest.raises(BindingError):
            self.bind_sql(
                db, "select a.ID from T a join U b on a.K = b.MISSING"
            )

    def test_disconnected_join_graph_rejected(self, db):
        # a–b are joined; c hangs free: a left-deep order would need a
        # cross product, which the engine deliberately refuses
        with pytest.raises(BindingError, match="join graph"):
            self.bind_sql(
                db,
                "select a.ID, b.ID, c.ID from T a "
                "join U b on a.K = b.K join V c on c.K = c.K",
            )

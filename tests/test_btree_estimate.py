"""Tests for the Figure 5 descent-to-split-node estimator."""

import pytest

from repro.btree.estimate import estimate_range, estimation_io_cost
from repro.btree.tree import BTree, KeyRange
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager
from repro.storage.rid import RID


def make_tree(n, order=4):
    tree = BTree(BufferPool(Pager(), 512), "ix", order=order)
    for i in range(n):
        tree.insert(i, RID(i, 0))
    return tree


def test_empty_range_detected_exactly():
    tree = make_tree(100)
    estimate = estimate_range(tree, KeyRange(lo=(200,), hi=(300,)))
    assert estimate.is_empty
    assert estimate.exact
    assert estimate.rids == 0


def test_syntactically_empty_range():
    tree = make_tree(50)
    estimate = estimate_range(tree, KeyRange(lo=(30,), hi=(10,)))
    assert estimate.is_empty


def test_small_range_exact_at_leaf():
    tree = make_tree(100)
    # a single-key range almost always resolves inside one leaf
    estimate = estimate_range(tree, KeyRange(lo=(17,), hi=(17,)))
    if estimate.exact:
        assert estimate.rids == 1
    else:
        assert estimate.rids >= 1


def test_estimate_positive_for_nonempty_ranges():
    tree = make_tree(500, order=8)
    for lo, hi in [(0, 10), (100, 200), (250, 499), (0, 499)]:
        estimate = estimate_range(tree, KeyRange(lo=(lo,), hi=(hi,)))
        true_count = hi - lo + 1
        assert estimate.rids > 0
        # within an order of magnitude of truth (it is a coarse estimator)
        assert estimate.rids <= true_count * 10
        assert estimate.rids >= true_count / 10


def test_estimate_monotone_in_range_size_roughly():
    tree = make_tree(1000, order=8)
    small = estimate_range(tree, KeyRange(lo=(0,), hi=(9,))).rids
    large = estimate_range(tree, KeyRange(lo=(0,), hi=(799,))).rids
    assert large > small


def test_estimate_formula_k_times_fanout_power():
    tree = make_tree(300, order=8)
    estimate = estimate_range(tree, KeyRange(lo=(50,), hi=(150,)))
    if not estimate.exact:
        expected = estimate.k * estimate.fanout ** (estimate.split_level - 1)
        assert estimate.rids == pytest.approx(expected)


def test_estimation_cost_bounded_by_height():
    tree = make_tree(2000, order=8)
    tree.buffer_pool.clear()
    meter = CostMeter()
    estimate_range(tree, KeyRange(lo=(900,), hi=(905,)), meter)
    assert meter.io_reads <= estimation_io_cost(tree) == tree.height


def test_estimate_always_fresh_after_inserts():
    tree = make_tree(50)
    before = estimate_range(tree, KeyRange(lo=(100,), hi=(200,)))
    assert before.is_empty
    for i in range(100, 120):
        tree.insert(i, RID(i, 0))
    after = estimate_range(tree, KeyRange(lo=(100,), hi=(200,)))
    assert not after.is_empty
    assert after.rids >= 1


def test_full_range_estimate_near_entry_count():
    tree = make_tree(700, order=8)
    estimate = estimate_range(tree, KeyRange.all())
    assert estimate.rids == pytest.approx(tree.entry_count, rel=0.8)


def test_duplicate_heavy_range():
    tree = BTree(BufferPool(Pager(), 512), "ix", order=4)
    for i in range(60):
        tree.insert(5, RID(i, 0))  # all entries share one key
    estimate = estimate_range(tree, KeyRange(lo=(5,), hi=(5,)))
    assert estimate.rids > 0


def test_paper_worked_example_shape():
    """Figure 5: l=2, k=1, f=3 gives RangeRIDs ~= 3.

    We rebuild the same situation: a split at level 2 with two adjacent
    children containing the range in a fanout-3 tree.
    """
    tree = BTree(BufferPool(Pager(), 512), "ix", order=4)
    for i in range(27):
        tree.insert(i, RID(i, 0))
    # pick a range that straddles exactly two leaves
    node = tree._peek_node(tree._root_id)
    while not node.is_leaf:
        node = tree._peek_node(node.children[0])
    first_leaf_last = node.entries[-1][0][0]
    estimate = estimate_range(
        tree, KeyRange(lo=(first_leaf_last,), hi=(first_leaf_last + 1,))
    )
    if not estimate.exact:
        assert estimate.k >= 1
        assert estimate.rids == pytest.approx(
            estimate.k * estimate.fanout ** (estimate.split_level - 1)
        )

"""Tests for the union joint scan (the Section 8 OR extension)."""

import pytest

from repro.db.session import Database
from repro.engine.metrics import EventKind
from repro.expr.ast import col
from repro.expr.eval import evaluate


@pytest.fixture
def table(db):
    table = db.create_table(
        "P", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(1500):
        table.insert((i % 100, (i * 7) % 300, i))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return table


def oracle(table, expr):
    return sorted(
        row for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position)
    )


def test_selective_or_uses_union(table):
    expr = (col("A").eq(3)) | (col("B").eq(250))
    result = table.select(where=expr)
    assert "union-or" in result.description
    assert sorted(result.rows) == oracle(table, expr)


def test_union_deduplicates_overlap(table):
    # rows satisfying both disjuncts must be delivered once
    expr = (col("A").eq(3)) | (col("B").eq((3 * 7) % 300))
    result = table.select(where=expr)
    assert len(result.rows) == len(set(result.rids))
    assert sorted(result.rows) == oracle(table, expr)


def test_unselective_or_switches_to_tscan(table, db):
    expr = (col("A") >= 5) | (col("B").eq(250))
    db.cold_cache()
    result = table.select(where=expr)
    assert "tscan" in result.description
    assert result.trace.has(EventKind.SCAN_ABANDONED)
    assert sorted(result.rows) == oracle(table, expr)


def test_uncoverable_or_falls_back_to_tscan(table):
    expr = (col("A").eq(3)) | (col("C").eq(5))  # C has no index
    result = table.select(where=expr)
    assert result.description == "tscan"
    assert sorted(result.rows) == oracle(table, expr)


def test_in_list_retrieval_via_union(table, db):
    expr = col("A").in_([3, 7, 11])
    db.cold_cache()
    result = table.select(where=expr)
    assert "union-or" in result.description
    assert "3 disjunct" in result.description
    assert sorted(result.rows) == oracle(table, expr)
    assert result.execution_io < table.heap.page_count


def test_or_with_empty_disjuncts(table):
    expr = (col("A").eq(9999)) | (col("B").eq(8888))
    result = table.select(where=expr)
    assert result.rows == []


def test_or_respects_limit(table):
    expr = (col("A").eq(3)) | (col("B").eq(250))
    result = table.select(where=expr, limit=2)
    assert len(result.rows) == 2
    assert result.stopped_early


def test_or_disjuncts_with_inner_ands(table):
    expr = ((col("A").eq(3)) & (col("C") < 700)) | (col("B").eq(250))
    result = table.select(where=expr)
    assert sorted(result.rows) == oracle(table, expr)


def test_conjunctive_queries_unaffected(table):
    # AND queries must still take the Jscan path, not the union path
    expr = (col("A").eq(3)) & (col("B") < 150)
    result = table.select(where=expr)
    assert "union" not in result.description
    assert sorted(result.rows) == oracle(table, expr)


def test_sql_or_query_end_to_end(table, db):
    result = db.execute("select * from P where A = 3 or B = 250")
    expr = (col("A").eq(3)) | (col("B").eq(250))
    assert sorted(result.rows) == oracle(table, expr)


def test_sql_in_list_end_to_end(table, db):
    result = db.execute("select C from P where A in (1, 2) order by C")
    expected = sorted(row[2] for _, row in table.heap.scan() if row[0] in (1, 2))
    assert [row[0] for row in result.rows] == expected

"""The repro.connect() facade, back-compat shims, and drop cleanup."""

import io

import pytest

import repro
from repro.engine.goals import OptimizationGoal
from repro.errors import QueryCancelledError, ServerError
from repro.shell import Shell
from repro.sql.ddl import DdlResult
from repro.sql.executor import QueryResult


def populated(conn: repro.Connection) -> repro.Connection:
    conn.execute("create table T (ID int, A int)")
    conn.execute("create index IX_A on T (A)")
    table = conn.table("T")
    table.insert_many((i, i % 40) for i in range(400))
    table.analyze()
    return conn


class TestConnect:
    def test_connect_executes_ddl_and_queries(self):
        conn = populated(repro.connect(buffer_capacity=64))
        ddl = conn.execute("create table U (X int)")
        assert isinstance(ddl, repro.Result) and ddl.kind == "ddl"
        assert isinstance(ddl.raw, DdlResult)
        assert "created" in ddl.text
        result = conn.execute("select * from T where A >= :LO", {"LO": 38})
        assert isinstance(result, repro.Result) and result.kind == "rows"
        assert isinstance(result.raw, QueryResult)
        assert len(result.rows) == 20 == result.rowcount
        assert result.columns == ("ID", "A")
        assert result.plan is not None
        assert result.metrics.retrieval_count == 1
        assert result.metrics.total_cost == result.total_cost > 0
        assert result.retrievals

    def test_result_is_iterable_and_renderable(self):
        conn = populated(repro.connect(buffer_capacity=64))
        result = conn.execute("select * from T where A = 7")
        assert sorted(result) == sorted(result.rows)
        assert len(result) == result.rowcount
        assert result  # empty results are still truthy
        text = result.to_text()
        assert "ID" in text and f"({result.rowcount} rows)" in text
        data = result.to_dict()
        assert data["kind"] == "rows" and data["rowcount"] == result.rowcount
        assert data["plan"]["node"] in ("retrieve", "project")

    def test_execute_accepts_goal_and_routes_it(self):
        conn = populated(repro.connect())
        result = conn.execute(
            "select * from T where A >= 38", goal=OptimizationGoal.FAST_FIRST
        )
        assert result.retrievals[0].goal is OptimizationGoal.FAST_FIRST

    def test_execute_deadline_cancels(self):
        # deadlines are budgets of scheduling quanta; batch_size=1 makes one
        # quantum equal one engine step, so a 3-step budget must cancel
        conn = populated(
            repro.connect(config=repro.DEFAULT_CONFIG.with_(batch_size=1))
        )
        with pytest.raises(QueryCancelledError):
            conn.execute("select * from T where A >= 0", deadline=3)
        # the connection stays usable afterwards
        assert conn.execute("select * from T where A = 1").rows

    def test_execute_deadline_counts_quanta(self):
        # at the default batch size a 3-quantum budget covers ~192 engine
        # steps — enough to finish this scan, so no cancellation occurs
        conn = populated(repro.connect())
        assert conn.execute("select * from T where A >= 0", deadline=3).rows

    def test_explain_returns_result_matching_database_shim(self):
        conn = populated(repro.connect())
        sql = "select * from T where A >= 10 optimize for total time"
        result = conn.explain(sql)
        assert isinstance(result, repro.Result) and result.kind == "explain"
        with pytest.deprecated_call():
            assert result.text == conn.db.explain(sql)
        assert str(result) == result.text  # printable as before

    def test_statements_route_through_scheduler(self):
        conn = populated(repro.connect())
        before = conn.metrics.totals().queries
        conn.execute("select * from T where A = 5")
        totals = conn.metrics.totals()
        assert totals.queries == before + 1
        assert conn.metrics.session("main").queries_completed >= 1

    def test_connect_wraps_existing_database(self):
        db = repro.Database(buffer_capacity=32)
        conn = repro.connect(db=db)
        assert conn.db is db
        conn.execute("create table V (X int)")
        assert "V" in db.tables

    def test_concurrent_sessions_share_the_pool(self):
        conn = populated(repro.connect(max_concurrency=4))
        s1, s2 = conn.session("alpha"), conn.session("beta")
        h1 = s1.submit("select * from T where A >= 20")
        h2 = s2.submit("select * from T where A < 20")
        conn.server.run_until_idle()
        assert len(h1.result.rows) + len(h2.result.rows) == 400
        per_session = conn.metrics.per_session()
        assert per_session["alpha"].queries_completed == 1
        assert per_session["beta"].queries_completed == 1

    def test_close_cancels_and_rejects(self):
        conn = populated(repro.connect(max_concurrency=1))
        running = conn.submit("select * from T where A >= 0")
        queued = conn.submit("select * from T where A >= 1")
        conn.close()
        assert running.state is repro.QueryState.CANCELLED
        assert queued.state is repro.QueryState.CANCELLED
        with pytest.raises(ServerError):
            conn.execute("select * from T")
        conn.close()  # idempotent

    def test_context_manager_closes(self):
        with repro.connect() as conn:
            conn.execute("create table W (X int)")
        with pytest.raises(ServerError):
            conn.execute("select * from W")


class TestBackCompatShims:
    def test_database_execute_unchanged_results(self):
        conn = populated(repro.connect())
        db = repro.Database(buffer_capacity=64)
        db.create_table("T", [("ID", "int"), ("A", "int")])
        table = db.table("T")
        table.insert_many((i, i % 40) for i in range(400))
        table.create_index("IX_A", ["A"])
        table.analyze()
        sql = "select * from T where A >= :LO"
        legacy = db.execute(sql, {"LO": 38})
        unified = conn.execute(sql, {"LO": 38})
        assert sorted(legacy.rows) == sorted(unified.rows)
        assert legacy.columns == unified.columns

    def test_database_execute_reuses_one_default_connection(self):
        db = repro.Database()
        db.create_table("T", [("ID", "int")])
        db.execute("select * from T")
        first = db.default_connection()
        db.execute("select * from T")
        assert db.default_connection() is first
        assert first.metrics.session("main").queries_completed == 2

    def test_database_shims_warn_and_return_legacy_objects(self):
        db = repro.Database(buffer_capacity=32)
        db.create_table("T", [("ID", "int"), ("A", "int")])
        db.table("T").insert_many((i, i % 5) for i in range(50))
        with pytest.deprecated_call():
            legacy = db.execute("select * from T where A = 1")
        assert isinstance(legacy, QueryResult)  # not the unified Result
        with pytest.deprecated_call():
            text = db.explain("select * from T where A = 1")
        assert isinstance(text, str) and "retrieve T" in text

    def test_database_execute_propagates_errors(self):
        db = repro.Database()
        with pytest.raises(repro.ReproError):
            db.execute("select * from NOPE")
        with pytest.raises(repro.ReproError):
            db.execute("selec broken syntax")


class TestDropCleanup:
    def build(self):
        db = repro.Database(buffer_capacity=32)
        table = db.create_table("D", [("ID", "int"), ("A", "int")])
        table.insert_many((i, i % 10) for i in range(300))
        table.create_index("IX_A", ["A"])
        return db, table

    @staticmethod
    def owners(db):
        return {page.owner for page in db.pager._pages.values()}

    def test_drop_table_releases_heap_and_index_pages(self):
        db, table = self.build()
        # touch pages so some sit in the buffer pool
        db.execute("select * from D where A = 3")
        assert {"D", "D.IX_A"} <= self.owners(db)
        pages_before = len(db.pager._pages)
        assert pages_before > 0
        db.drop_table("D")
        assert "D" not in db.tables
        assert not {"D", "D.IX_A"} & self.owners(db)
        # nothing of the dropped table lingers on disk
        assert all(
            db.pager._pages[pid].owner not in ("D", "D.IX_A")
            for pid in db.pager._pages
        )
        assert len(db.buffer_pool) <= len(db.pager._pages)

    def test_drop_table_via_sql_releases_pages(self):
        db, table = self.build()
        db.execute("select * from D where A = 3")
        db.execute("drop table D")
        assert not {"D", "D.IX_A"} & self.owners(db)

    def test_drop_index_releases_its_pages_only(self):
        db, table = self.build()
        db.execute("select * from D where A = 3")
        table.drop_index("IX_A")
        owners = self.owners(db)
        assert "D.IX_A" not in owners
        assert "D" in owners  # the heap survives

    def test_dropped_pages_leave_the_buffer_pool(self):
        db, table = self.build()
        db.execute("select * from D where A = 3")
        cached_before = {
            pid for pid in db.pager._pages
            if pid in db.buffer_pool
            and db.pager._pages[pid].owner in ("D", "D.IX_A")
        }
        assert cached_before, "expected dropped table pages in cache"
        db.drop_table("D")
        assert all(pid not in db.buffer_pool for pid in cached_before)


class TestShellUsesConnection:
    def run_shell(self, lines, conn=None):
        out = io.StringIO()
        shell = Shell(conn if conn is not None else repro.connect(), out=out)
        shell.run(lines)
        return out.getvalue()

    def test_shell_metrics_command(self):
        output = self.run_shell(
            [
                "create table S (X int);",
                "insert into S values (1);",
                "select * from S;",
                "\\metrics",
            ]
        )
        assert "<all>" in output
        assert "cache hit rate" in output

    def test_shell_accepts_database_for_back_compat(self):
        db = repro.Database(buffer_capacity=64)
        out = io.StringIO()
        shell = Shell(db, out=out)
        shell.feed("create table S (X int);")
        assert "S" in db.tables
        assert shell.conn is db.default_connection()

"""Fuzz tests: generated SQL must parse+execute correctly or fail cleanly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.session import Database
from repro.errors import ReproError
from repro.sql.parser import parse

_column = st.sampled_from(["A", "B", "C"])
_value = st.integers(min_value=-5, max_value=120)
_op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])

_predicate = st.one_of(
    st.builds(lambda c, o, v: f"{c} {o} {v}", _column, _op, _value),
    st.builds(lambda c, a, b: f"{c} between {min(a, b)} and {max(a, b)}",
              _column, _value, _value),
    st.builds(lambda c, vs: f"{c} in ({', '.join(map(str, vs))})",
              _column, st.lists(_value, min_size=1, max_size=4)),
)

_where = st.recursive(
    _predicate,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} and {b})", inner, inner),
        st.builds(lambda a, b: f"({a} or {b})", inner, inner),
        st.builds(lambda a: f"not ({a})", inner),
    ),
    max_leaves=6,
)

_query = st.builds(
    lambda where, order, limit, goal: (
        "select * from T"
        + (f" where {where}" if where else "")
        + (f" order by {order}" if order else "")
        + (f" limit to {limit} rows" if limit else "")
        + (f" optimize for {goal}" if goal else "")
    ),
    st.one_of(st.none(), _where),
    st.one_of(st.none(), _column),
    st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
    st.one_of(st.none(), st.sampled_from(["fast first", "total time"])),
)


@pytest.fixture(scope="module")
def fuzz_db():
    db = Database(buffer_capacity=32)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=8, index_order=6,
    )
    rng = np.random.default_rng(5)
    for _ in range(250):
        table.insert(
            (int(rng.integers(0, 50)), int(rng.integers(0, 120)), int(rng.integers(0, 10)))
        )
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    return db


@given(_query)
@settings(max_examples=120, deadline=None)
def test_generated_queries_parse(sql):
    parse(sql)  # must not raise


@given(_query)
@settings(max_examples=80, deadline=None)
def test_generated_queries_execute_and_match_bruteforce(fuzz_db, sql):
    result = fuzz_db.execute(sql)
    # brute-force oracle via a plain table rescan with the same restriction
    table = fuzz_db.table("T")
    from repro.expr.eval import evaluate
    from repro.sql.parser import parse as _parse
    from repro.sql.plan import Retrieve, walk

    parsed = _parse(sql)
    retrieve = next(node for node in walk(parsed.plan) if isinstance(node, Retrieve))
    matching = [
        row for _, row in table.heap.scan()
        if retrieve.restriction is None
        or evaluate(retrieve.restriction, row, table.schema.position, {})
    ]
    if "limit" not in sql:
        assert sorted(result.rows) == sorted(matching)
    else:
        assert len(result.rows) <= 20
        assert set(result.rows) <= set(matching)
    if "order by" in sql:
        position = table.schema.index_of(sql.split("order by ")[1].split()[0])
        values = [row[position] for row in result.rows]
        assert values == sorted(values)


@given(st.text(max_size=40))
@settings(max_examples=120, deadline=None)
def test_arbitrary_text_never_crashes_unexpectedly(fuzz_db, text):
    try:
        fuzz_db.execute(f"select * from T where {text}")
    except ReproError:
        pass  # clean, typed failure is the contract

"""Tests for the Section 5 initial stage."""

import pytest

from repro.config import EngineConfig
from repro.engine.initial import IterationContext, run_initial_stage
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.expr.ast import ALWAYS_TRUE, col, var
from repro.storage.buffer_pool import CostMeter


def run_stage(table, restriction, host_vars={}, needed=None, order_by=(),
              config=None, context=None):
    trace = RetrievalTrace()
    meter = CostMeter()
    arrangement = run_initial_stage(
        list(table.indexes.values()),
        restriction,
        host_vars,
        needed if needed is not None else frozenset(table.schema.names),
        order_by,
        meter,
        trace,
        config or table.config,
        context,
    )
    return arrangement, trace


@pytest.fixture
def parts(db):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(400):
        table.insert((i, i % 10, i % 100))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


def test_classifies_fetch_needed(parts):
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 10)
    arrangement, _ = run_stage(parts, expr)
    names = {c.index.name for c in arrangement.jscan_candidates}
    assert names == {"IX_COLOR", "IX_WEIGHT"}
    assert arrangement.best_sscan is None


def test_unmatched_index_excluded(parts):
    expr = col("COLOR").eq(3)
    arrangement, _ = run_stage(parts, expr)
    names = [c.index.name for c in arrangement.jscan_candidates]
    assert names == ["IX_COLOR"]


def test_ascending_estimate_order(parts):
    # WEIGHT < 8 hits ~32 rows; COLOR = 3 hits 40 rows; estimates should
    # put the smaller range first (both estimated, order by estimate)
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 8)
    arrangement, _ = run_stage(parts, expr)
    estimates = [c.estimate.rids for c in arrangement.jscan_candidates if c.estimate]
    assert estimates == sorted(estimates)


def test_empty_range_shortcut(parts):
    expr = col("COLOR").eq(99)  # no such color
    arrangement, trace = run_stage(parts, expr)
    assert arrangement.empty
    assert trace.has(EventKind.SHORTCUT_EMPTY)


def test_small_range_shortcut_skips_estimation(parts):
    config = parts.config.with_(shortcut_rid_count=100)
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 50)
    arrangement, trace = run_stage(parts, expr, config=config)
    assert arrangement.shortcut
    assert trace.has(EventKind.SHORTCUT_SMALL_RANGE)
    # at least one candidate was left unestimated
    assert any(c.estimate is None for c in arrangement.jscan_candidates) or (
        len(arrangement.jscan_candidates) == 1
    )


def test_self_sufficient_detection(parts):
    expr = col("COLOR").eq(3)
    arrangement, _ = run_stage(parts, expr, needed=frozenset({"COLOR"}))
    assert arrangement.best_sscan is not None
    assert arrangement.best_sscan.index.name == "IX_COLOR"


def test_order_index_detection(parts):
    arrangement, _ = run_stage(parts, ALWAYS_TRUE, order_by=("WEIGHT",))
    assert arrangement.order_index is not None
    assert arrangement.order_index.index.name == "IX_WEIGHT"


def test_no_order_index_for_unindexed_column(parts):
    arrangement, _ = run_stage(parts, ALWAYS_TRUE, order_by=("PNO",))
    assert arrangement.order_index is None


def test_host_vars_resolved_at_run_time(parts):
    expr = col("WEIGHT") >= var("W")
    unbound, _ = run_stage(parts, expr, host_vars={})
    assert not unbound.jscan_candidates  # range unknown without the variable
    bound, _ = run_stage(parts, expr, host_vars={"W": 90})
    assert len(bound.jscan_candidates) == 1


def test_context_preorder_used(parts):
    context = IterationContext()
    context.record(["IX_WEIGHT", "IX_COLOR"], {})
    config = parts.config.with_(dynamic_estimation=False)
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 8)
    arrangement, _ = run_stage(parts, expr, config=config, context=context)
    names = [c.index.name for c in arrangement.jscan_candidates]
    assert names == ["IX_WEIGHT", "IX_COLOR"]


def test_static_preorder_prefers_equality(parts):
    config = parts.config.with_(dynamic_estimation=False)
    expr = (col("WEIGHT") < 90) & (col("COLOR").eq(3))
    arrangement, _ = run_stage(parts, expr, config=config)
    names = [c.index.name for c in arrangement.jscan_candidates]
    assert names[0] == "IX_COLOR"  # equality ranked before open range


def test_estimation_cost_recorded(parts):
    db_pool = parts.buffer_pool
    db_pool.clear()
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 8)
    arrangement, _ = run_stage(parts, expr)
    assert arrangement.estimation_cost > 0


def test_events_emitted_in_order(parts):
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 8)
    _, trace = run_stage(parts, expr)
    kinds = [event.kind for event in trace]
    assert kinds.count(EventKind.INITIAL_ESTIMATE) == 2
    assert kinds[-1] is EventKind.INDEXES_ORDERED

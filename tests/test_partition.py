"""Partitioned storage and scatter-gather retrieval.

Covers the partition subsystem end to end: the stable hash / range
partitioners and their candidate pruning, the merge helpers, the
:class:`~repro.db.partitioned.PartitionedTable` surface (routing, DDL
fan-out, statistics), the scatter coordinator's accounting identity
between serial and parallel runs, cancellation (pins released on
abandon), the SQL ``PARTITION BY`` clause, and the scatter-gather
metrics wired through the server registry.
"""

import zlib

import pytest

import repro
from repro.config import DEFAULT_CONFIG
from repro.db.session import Database
from repro.errors import CatalogError, ReproError, RetrievalError
from repro.expr.ast import col, var
from repro.obs.audit import AuditLog, DecisionKind
from repro.obs.trace import Tracer
from repro.partition import (
    HashPartitioner,
    PartitionSpec,
    RangePartitioner,
    bag_union,
    merge_sorted_runs,
    partition_name,
    stable_hash,
)
from repro.partition.partitioner import make_partitioner
from repro.partition.scatter import critical_path
from repro.server import QueryServer
from repro.storage.rid import RID


def make_db(workers=1, partitions=4, rows=400, buffer_capacity=64, **overrides):
    config = DEFAULT_CONFIG.with_(partition_workers=workers, **overrides)
    db = Database(buffer_capacity=buffer_capacity, config=config)
    table = db.create_table(
        "T",
        [("ID", "int"), ("V", "int")],
        rows_per_page=8,
        partition_by=PartitionSpec(column="ID", method="hash", partitions=partitions),
    )
    for i in range(rows):
        table.insert((i, i % 7))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return db, table


# -- partitioners ------------------------------------------------------------


class TestStableHash:
    def test_ints_map_to_themselves(self):
        assert stable_hash(17) == 17
        assert stable_hash(0) == 0

    def test_strings_use_crc32(self):
        assert stable_hash("abc") == zlib.crc32(b"abc")

    def test_none_is_zero(self):
        assert stable_hash(None) == 0

    def test_deterministic(self):
        for value in (3, "x", 2.5, None, True):
            assert stable_hash(value) == stable_hash(value)


class TestPartitionSpec:
    def test_hash_needs_two_partitions(self):
        with pytest.raises(CatalogError):
            PartitionSpec(column="ID", method="hash", partitions=1)

    def test_range_needs_bounds(self):
        with pytest.raises(CatalogError):
            PartitionSpec(column="ID", method="range")

    def test_range_bounds_must_ascend(self):
        with pytest.raises(CatalogError):
            PartitionSpec(column="ID", method="range", bounds=(10, 10))

    def test_range_partition_count_from_bounds(self):
        spec = PartitionSpec(column="ID", method="range", bounds=(100, 200))
        assert spec.partitions == 3

    def test_unknown_method(self):
        with pytest.raises(CatalogError):
            PartitionSpec(column="ID", method="round-robin")

    def test_describe(self):
        spec = PartitionSpec(column="ID", method="hash", partitions=4)
        text = spec.describe()
        assert "hash" in text and "ID" in text and "4" in text


class TestHashPruning:
    def setup_method(self):
        spec = PartitionSpec(column="ID", method="hash", partitions=4)
        self.part = make_partitioner(spec, 0)

    def test_routes_rows(self):
        assert isinstance(self.part, HashPartitioner)
        for i in range(20):
            assert self.part.partition_of_row((i, 0)) == i % 4

    def test_equality_prunes_to_one(self):
        assert self.part.candidate_partitions(col("ID").eq(6), {}) == (2,)

    def test_host_var_equality_prunes(self):
        restriction = col("ID").eq(var("K"))
        assert self.part.candidate_partitions(restriction, {"K": 7}) == (3,)

    def test_in_list_prunes_to_subset(self):
        restriction = col("ID").in_([1, 5, 9])  # all hash to partition 1
        assert self.part.candidate_partitions(restriction, {}) == (1,)

    def test_range_predicate_cannot_prune(self):
        restriction = col("ID").between(0, 10)
        assert self.part.candidate_partitions(restriction, {}) == (0, 1, 2, 3)

    def test_other_column_cannot_prune(self):
        restriction = col("V").eq(3)
        assert (
            HashPartitioner(
                PartitionSpec(column="ID", partitions=4), 0
            ).candidate_partitions(restriction, {})
            == (0, 1, 2, 3)
        )

    def test_contradiction_prunes_everything(self):
        restriction = col("ID").eq(1) & col("ID").eq(2)
        assert self.part.candidate_partitions(restriction, {}) == ()


class TestRangePruning:
    def setup_method(self):
        spec = PartitionSpec(column="ID", method="range", bounds=(100, 200))
        self.part = make_partitioner(spec, 0)

    def test_routes_rows(self):
        assert isinstance(self.part, RangePartitioner)
        assert self.part.partition_of_row((50, 0)) == 0
        assert self.part.partition_of_row((100, 0)) == 1
        assert self.part.partition_of_row((250, 0)) == 2
        assert self.part.partition_of_row((None, 0)) == 0

    def test_band_prunes_to_touching_partitions(self):
        assert self.part.candidate_partitions(col("ID").between(50, 150), {}) == (0, 1)
        assert self.part.candidate_partitions(col("ID").between(210, 500), {}) == (2,)

    def test_open_ranges(self):
        assert self.part.candidate_partitions(col("ID") < 100, {}) == (0,)
        assert self.part.candidate_partitions(col("ID") >= 200, {}) == (2,)


# -- merge helpers -----------------------------------------------------------


class TestMerge:
    def test_bag_union_keeps_partition_order(self):
        runs = [
            ([(3,), (1,)], [RID(0, 0), RID(0, 1)]),
            ([(2,)], [RID(1, 0)]),
        ]
        rows, rids = bag_union(runs)
        assert rows == [(3,), (1,), (2,)]
        assert rids == [RID(0, 0), RID(0, 1), RID(1, 0)]

    def test_merge_sorted_runs_globally_ordered(self):
        runs = [
            ([(1, "a"), (4, "a")], [RID(0, 0), RID(0, 1)]),
            ([(2, "b"), (3, "b"), (9, "b")], [RID(1, 0), RID(1, 1), RID(1, 2)]),
        ]
        rows, rids = merge_sorted_runs(runs, [0])
        assert [row[0] for row in rows] == [1, 2, 3, 4, 9]
        assert len(rids) == 5

    def test_merge_ties_break_by_partition(self):
        runs = [
            ([(5, "p1")], [RID(1, 0)]),
            ([(5, "p0")], [RID(0, 0)]),
        ]
        rows, _ = merge_sorted_runs(runs, [0])
        # equal keys deliver in partition order, never comparing payloads
        assert rows == [(5, "p1"), (5, "p0")]


class TestCriticalPath:
    def test_serial_is_sum(self):
        assert critical_path([1.0, 2.0, 3.0], 1) == 6.0

    def test_balanced_split(self):
        assert critical_path([1.0] * 8, 4) == 2.0
        assert critical_path([1.0] * 8, 8) == 1.0

    def test_skewed_load_is_bounded_by_heaviest(self):
        assert critical_path([10.0, 1.0, 1.0], 3) == 10.0

    def test_empty(self):
        assert critical_path([], 4) == 0.0


# -- the PartitionedTable surface --------------------------------------------


class TestPartitionedTable:
    def test_rows_route_by_hash(self):
        _, table = make_db(rows=40)
        for index, child in enumerate(table.partitions):
            assert child.name == partition_name("T", index)
            for _, row in child.heap.scan():
                assert stable_hash(row[0]) % 4 == index
        assert table.row_count == 40

    def test_partition_column_must_exist(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_table(
                "BAD", [("ID", "int")],
                partition_by=PartitionSpec(column="NOPE", partitions=2),
            )

    def test_index_fanout(self):
        _, table = make_db(rows=20)
        assert all("IX_ID" in child.indexes for child in table.partitions)
        with pytest.raises(CatalogError):
            table.create_index("IX_ID", ["ID"])
        table.drop_index("IX_ID")
        assert all("IX_ID" not in child.indexes for child in table.partitions)

    def test_analyze_builds_table_level_stats(self):
        _, table = make_db(rows=100)
        assert table.stats is not None
        assert table.stats.row_count == 100
        assert table.stats.columns["ID"].distinct == 100

    def test_drop_table_releases_and_allows_recreate(self):
        db, _ = make_db(rows=50)
        db.drop_table("T")
        assert "T" not in db.tables
        table = db.create_table(
            "T", [("ID", "int")],
            partition_by=PartitionSpec(column="ID", partitions=2),
        )
        table.insert((1,))
        assert table.row_count == 1

    def test_cold_cache_clears_partition_pools(self):
        db, table = make_db(rows=100)
        table.select(where=col("ID").between(0, 99))
        assert any(len(child.buffer_pool) for child in table.partitions)
        db.cold_cache()
        assert all(len(child.buffer_pool) == 0 for child in table.partitions)

    def test_joins_degrade_with_a_clear_error(self):
        db, _ = make_db(rows=10)
        other = db.create_table("U", [("ID", "int")])
        other.insert((1,))
        conn = db.default_connection()
        with pytest.raises(RetrievalError, match="partitioned"):
            conn.execute("select a.V from T a join U b on a.ID = b.ID")


# -- scatter-gather ----------------------------------------------------------


class TestScatter:
    def test_equality_scatter_prunes(self):
        _, table = make_db(rows=80)
        result = table.select(where=col("ID").eq(13))
        assert result.rows == [(13, 13 % 7)]
        assert result.scatter is not None
        assert result.scatter.candidates == (stable_hash(13) % 4,)
        assert result.scatter.pruned == 3

    def test_bag_matches_unpartitioned_plan(self):
        db = Database(buffer_capacity=64)
        flat = db.create_table("F", [("ID", "int"), ("V", "int")], rows_per_page=8)
        for i in range(400):
            flat.insert((i, i % 7))
        flat.create_index("IX_ID", ["ID"])
        flat.analyze()
        _, table = make_db(rows=400)
        for where in (col("ID").between(37, 210), col("V").eq(3)):
            expect = flat.select(where=where)
            got = table.select(where=where)
            assert sorted(got.rows) == sorted(expect.rows)

    def test_ordered_merge_is_globally_sorted(self):
        _, table = make_db(rows=200)
        result = table.select(where=col("ID").between(10, 150), order_by=("ID",))
        ids = [row[0] for row in result.rows]
        assert ids == list(range(10, 151))
        assert result.scatter.ordered_merge is True

    def test_limit_truncates_after_merge(self):
        _, table = make_db(rows=200)
        result = table.select(
            where=col("ID").between(0, 150), order_by=("ID",), limit=5
        )
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]

    def test_accounting_identical_serial_vs_parallel(self):
        """The tentpole invariant: worker count changes when pages are
        read, never how many — costs are the exact per-partition sums."""
        outcomes = {}
        for workers in (1, 4):
            db, table = make_db(workers=workers, rows=400)
            db.cold_cache()
            result = table.select(where=col("ID").between(20, 300))
            info = result.scatter
            assert result.total_cost == pytest.approx(
                sum(f.cost for f in info.fetches)
            )
            assert result.execution_io == sum(f.io for f in info.fetches)
            outcomes[workers] = (
                sorted(result.rows),
                round(result.total_cost, 9),
                result.execution_io,
                [f.description for f in info.fetches],
            )
            db.close_worker_pool()
        assert outcomes[1] == outcomes[4]

    def test_effective_workers_capped_by_candidates(self):
        db, table = make_db(workers=8, rows=80)
        spread = table.select(where=col("ID").between(0, 79))
        assert spread.scatter.workers == 4
        pruned = table.select(where=col("ID").eq(3))
        # one candidate -> serial path, no pool involvement
        assert pruned.scatter.workers == 1
        db.close_worker_pool()

    def test_modeled_critical_path_speedup(self):
        db, table = make_db(workers=4, rows=400)
        result = table.select(where=col("ID").between(0, 399))
        info = result.scatter
        assert info.serial_cost / info.critical_path_cost >= 2.5
        db.close_worker_pool()

    def test_cancellation_releases_pins(self, monkeypatch):
        from repro.partition import scatter as scatter_mod

        # zero poll: the parallel coordinator yields right after submitting,
        # before its workers can finish; tiny quanta do the same for serial
        monkeypatch.setattr(scatter_mod, "_POLL_SECONDS", 0.0)
        for workers in (1, 4):
            db, table = make_db(workers=workers, rows=2000, batch_size=4)
            gen = table.select_steps(where=col("ID").between(0, 1999))
            for _ in range(3):
                next(gen)
            gen.close()
            for child in table.partitions:
                assert child.buffer_pool._pinned == {}
            db.close_worker_pool()

    def test_scatter_audit_decision(self):
        _, table = make_db(rows=80)
        audit = AuditLog()
        result = table.select(
            where=col("ID").eq(5), tracer=Tracer(audit=audit)
        )
        assert result.rows == [(5, 5)]
        records = [
            record
            for retrieval in audit.retrievals
            for record in retrieval.decisions
            if record.kind is DecisionKind.SCATTER
        ]
        assert len(records) == 1
        assert records[0].inputs["partitions"] == 4
        assert records[0].inputs["pruned"] == 3

    def test_partition_stats_reconcile(self):
        db, table = make_db(rows=200)
        delivered = 0
        for lo in (0, 50, 100):
            delivered += len(table.select(where=col("ID").between(lo, lo + 40)).rows)
        stats = db.partition_stats
        assert stats.scatters == 3
        assert stats.merge_rows == delivered
        assert stats.partitions_fetched + stats.partitions_pruned == 12


# -- SQL DDL + server metrics ------------------------------------------------


class TestPartitionSql:
    def test_hash_ddl_roundtrip(self):
        conn = repro.connect()
        made = conn.execute(
            "create table M (ID int, V int) partition by hash(ID) partitions 4"
        )
        assert "hash" in made.text.lower()
        for i in range(16):
            conn.execute(f"insert into M values ({i}, {i * 2})")
        result = conn.execute("select V from M where ID = 9")
        assert result.rows == [(18,)]
        table = conn.db.table("M")
        assert table.is_partitioned and table.spec.partitions == 4

    def test_range_ddl_roundtrip(self):
        conn = repro.connect()
        conn.execute(
            "create table R (ID int) partition by range(ID) values (10, 20)"
        )
        table = conn.db.table("R")
        assert table.spec.method == "range"
        assert table.spec.partitions == 3
        for i in (5, 15, 25):
            conn.execute(f"insert into R values ({i})")
        assert [child.row_count for child in table.partitions] == [1, 1, 1]

    def test_ddl_errors(self):
        conn = repro.connect()
        with pytest.raises(ReproError):
            conn.execute("create table B (ID int) partition by hash(ID) partitions 1")
        with pytest.raises(ReproError):
            conn.execute("create table B (ID int) partition by hash(NOPE) partitions 2")
        with pytest.raises(ReproError):
            conn.execute("create table B (ID int) partition by modulo(ID) partitions 2")

    def test_server_metrics_expose_scatter_counters(self):
        db, _ = make_db(rows=120)
        server = QueryServer(db)
        session = server.session("s0")
        handle = session.submit("select * from T where ID between 0 and 99")
        server.run_until_idle()
        rows = handle.result.rows
        text = server.metrics.expose_text()
        assert "repro_partition_scatters_total 1" in text
        assert f"repro_partition_merge_rows_total {len(rows)}" in text
        assert "repro_partition_worker_utilization" in text
        assert "repro_partition_fetch_cost" in text
        human = server.metrics.format()
        assert "scatter" in human
        server.shutdown()

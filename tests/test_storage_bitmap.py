"""Tests for the hashed bitmap filter [Babb79]."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.bitmap import BitmapFilter
from repro.storage.rid import RID

rid_strategy = st.tuples(
    st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=63)
).map(lambda pair: RID(*pair))


def test_added_rid_is_found():
    bitmap = BitmapFilter(1024)
    rid = RID(5, 3)
    bitmap.add(rid)
    assert rid in bitmap
    assert bitmap.may_contain(rid)


def test_empty_bitmap_contains_nothing():
    bitmap = BitmapFilter(1024)
    assert RID(1, 1) not in bitmap


@given(st.lists(rid_strategy, max_size=200))
def test_no_false_negatives(rids):
    bitmap = BitmapFilter(4096)
    bitmap.add_many(rids)
    for rid in rids:
        assert rid in bitmap


def test_false_positive_rate_is_reasonable():
    bitmap = BitmapFilter(1 << 14)
    members = [RID(i, i % 32) for i in range(500)]
    bitmap.add_many(members)
    probes = [RID(100_000 + i, i % 32) for i in range(2000)]
    false_positives = sum(1 for rid in probes if rid in bitmap)
    # fill factor ~ 500/16384 ~ 3%; single-hash FP rate should be near that
    assert false_positives / len(probes) < 0.10


def test_fill_factor_and_population():
    bitmap = BitmapFilter(256)
    for i in range(20):
        bitmap.add(RID(i, 0))
    assert bitmap.population == 20
    assert 0 < bitmap.fill_factor() <= 20 / 256


def test_minimum_size_enforced():
    with pytest.raises(ValueError):
        BitmapFilter(4)


def test_size_for_scales_with_expected():
    small = BitmapFilter.size_for(10)
    large = BitmapFilter.size_for(10_000)
    assert large > small
    assert small >= 64


def test_size_for_zero():
    assert BitmapFilter.size_for(0) == 64


def test_set_bit_count_le_population():
    bitmap = BitmapFilter(64)  # force collisions
    for i in range(200):
        bitmap.add(RID(i, 1))
    assert bitmap.set_bit_count() <= 64
    assert bitmap.population == 200

"""Unit tests for tactic building blocks (ForegroundBuffer, borrowing)."""

from collections import deque

import pytest

from repro.engine.metrics import RetrievalTrace
from repro.engine.tactics import BorrowingFetchProcess, ForegroundBuffer, TacticOutcome
from repro.competition.process import SyntheticProcess
from repro.expr.ast import ALWAYS_TRUE, col
from repro.storage.rid import RID


def test_foreground_buffer_records_until_capacity():
    buffer = ForegroundBuffer(capacity=2)
    assert buffer.add(RID(0, 0))
    assert buffer.add(RID(0, 1))
    assert not buffer.add(RID(0, 2))  # overflow
    assert len(buffer) == 2
    assert RID(0, 0) in buffer and RID(0, 2) not in buffer


def test_foreground_buffer_deduplicates():
    buffer = ForegroundBuffer(capacity=10)
    buffer.add(RID(1, 1))
    buffer.add(RID(1, 1))
    assert len(buffer) == 1


def test_tactic_outcome_cost_sums_processes():
    a = SyntheticProcess("a", 3)
    b = SyntheticProcess("b", 2)
    while not a.step():
        pass
    while not b.step():
        pass
    outcome = TacticOutcome(processes=[a, b])
    assert outcome.total_cost == pytest.approx(5.0)
    assert outcome.total_io == 0  # synthetic processes charge cpu only


@pytest.fixture
def borrow_env(people):
    queue = deque(rid for rid, _ in people.heap.scan())
    delivered = []

    def sink(rid, row):
        delivered.append(row)
        return True

    buffer = ForegroundBuffer(capacity=1000)
    process = BorrowingFetchProcess(
        queue, people.heap, people.schema, ALWAYS_TRUE, {}, sink, buffer,
        RetrievalTrace(),
    )
    return queue, delivered, buffer, process


def test_borrowing_fetches_from_queue(borrow_env):
    queue, delivered, buffer, process = borrow_env
    initial = len(queue)
    process.step()
    assert len(queue) == initial - 1
    assert len(delivered) == 1
    assert len(buffer) == 1


def test_borrowing_idle_step_on_empty_queue(people):
    queue = deque()
    buffer = ForegroundBuffer(10)
    process = BorrowingFetchProcess(
        queue, people.heap, people.schema, ALWAYS_TRUE, {}, lambda r, w: True,
        buffer, RetrievalTrace(),
    )
    assert not process.has_work
    assert not process.step()  # idle, not finished


def test_borrowing_rejects_nonmatching(people):
    queue = deque(rid for rid, _ in people.heap.scan())
    buffer = ForegroundBuffer(1000)
    delivered = []
    process = BorrowingFetchProcess(
        queue, people.heap, people.schema, col("AGE") < 10, {},
        lambda r, w: delivered.append(w) or True, buffer, RetrievalTrace(),
    )
    while process.has_work and not process.step():
        pass
    assert process.rejected > 0
    assert all(row[1] < 10 for row in delivered)
    # only delivered rows enter the foreground buffer
    assert len(buffer) == len(delivered)


def test_borrowing_overflow_terminates(people):
    queue = deque(rid for rid, _ in people.heap.scan())
    buffer = ForegroundBuffer(capacity=3)
    process = BorrowingFetchProcess(
        queue, people.heap, people.schema, ALWAYS_TRUE, {}, lambda r, w: True,
        buffer, RetrievalTrace(),
    )
    finished = False
    while process.has_work and not finished:
        finished = process.step()
    assert process.buffer_overflow
    assert finished


def test_borrowing_consumer_stop(people):
    queue = deque(rid for rid, _ in people.heap.scan())
    buffer = ForegroundBuffer(1000)
    process = BorrowingFetchProcess(
        queue, people.heap, people.schema, ALWAYS_TRUE, {}, lambda r, w: False,
        buffer, RetrievalTrace(),
    )
    assert process.step()
    assert process.stopped_by_consumer

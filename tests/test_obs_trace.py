"""Span tracing: tree shape, event coverage, batch equivalence, sampling.

The tracer is an *observer*: attaching one must never change what the
engine does, and the tree it records must agree with the flat
``RetrievalTrace`` event log it mirrors. The exhaustive-coverage test
pins the contract that every :class:`EventKind` the engine can emit is
actually emitted by some reachable scenario and exports cleanly through
``TraceEvent.to_dict`` — so a new kind without an emitter (or an emitter
with unserializable detail) fails here, not in a user's JSONL sink.
"""

import io
import json

import pytest

from repro.config import EngineConfig
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.engine.initial import run_initial_stage
from repro.engine.jscan import JscanProcess
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.expr.ast import col
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    should_sample,
)
from repro.storage.buffer_pool import CostMeter


def build_parts(db, rows=600):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(rows):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    table.create_index("IX_SIZE", ["SIZE"])
    return table


# -- Tracer mechanics --------------------------------------------------------


class TestTracer:
    def test_begin_end_nesting(self):
        tracer = Tracer("query", session="s1")
        outer = tracer.begin("retrieval", table="T")
        inner = tracer.begin("tactic", tactic="sorted")
        assert tracer.current is inner
        tracer.end(inner)
        assert tracer.current is outer
        tracer.end(outer, rows=3)
        root = tracer.finish()
        assert root.name == "query"
        assert root.children == [outer]
        assert outer.children == [inner]
        assert outer.attrs["rows"] == 3
        assert all(span.finished for span in root.walk())

    def test_end_is_defensive_about_skipped_spans(self):
        tracer = Tracer()
        outer = tracer.begin("retrieval")
        tracer.begin("tactic")  # never explicitly ended (exception path)
        tracer.end(outer)
        assert all(span.finished for span in tracer.root.walk() if span is not tracer.root)
        assert tracer.current is tracer.root

    def test_open_spans_attach_without_pushing(self):
        tracer = Tracer()
        stack = tracer.begin("tactic")
        scan_a = tracer.open("scan", strategy="sscan")
        scan_b = tracer.open("scan", strategy="jscan")
        assert tracer.current is stack  # neither scan joined the stack
        assert stack.children == [scan_a, scan_b]
        scan_b.finish(steps=7)
        assert scan_b.attrs["steps"] == 7
        under_root = tracer.open("quantum", parent=tracer.root, seq=0)
        assert under_root in tracer.root.children

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        trace = RetrievalTrace(tracer)
        span = tracer.begin("tactic")
        trace.emit(EventKind.SCAN_START, strategy="tscan")
        assert [e.kind for e in span.events] == [EventKind.SCAN_START]
        # a strategy switch also marks a zero-duration boundary span
        trace.emit(EventKind.STRATEGY_SWITCH, to="tscan", reason="test")
        marks = span.find("strategy-switch")
        assert len(marks) == 1 and marks[0].attrs["to"] == "tscan"
        assert marks[0].finished

    def test_finish_is_idempotent_and_merges_attrs(self):
        span = Span("x", {}, clock=lambda: 1.0)
        span.finish(clock=lambda: 2.0)
        span.finish(clock=lambda: 9.0, extra=1)
        assert span.end_time == 2.0
        assert span.attrs == {"extra": 1}

    def test_to_dict_and_json_roundtrip(self):
        tracer = Tracer("query", ticket=1)
        trace = RetrievalTrace(tracer)
        tracer.begin("retrieval", table="T")
        trace.emit(EventKind.SCAN_START, strategy="tscan")
        tracer.finish(outcome="done")
        tree = json.loads(tracer.to_json())
        assert tree["name"] == "query"
        assert tree["attrs"]["outcome"] == "done"
        child = tree["children"][0]
        assert child["events"] == [{"kind": "scan-start", "strategy": "tscan"}]

    def test_format_excludes_named_children(self):
        tracer = Tracer()
        tracer.open("quantum", seq=0).finish()
        tracer.begin("retrieval", table="T")
        tracer.finish()
        text = tracer.root.format(exclude=("quantum",))
        assert "retrieval" in text and "quantum" not in text
        assert "quantum" in tracer.root.format()

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.begin("retrieval", table="T")
        assert NULL_TRACER.end(span) is span  # same shared null span
        NULL_TRACER.event(object())
        assert NULL_TRACER.open("scan").finish() is NULL_TRACER.mark("x")
        assert RetrievalTrace().tracer is NULL_TRACER


class TestSampling:
    def test_edge_rates(self):
        assert not any(should_sample(i, 0.0) for i in range(1, 50))
        assert all(should_sample(i, 1.0) for i in range(1, 50))

    def test_fractional_rate_admits_floor_n_rate(self):
        picks = [i for i in range(1, 101) if should_sample(i, 0.25)]
        assert len(picks) == 25
        # evenly spread: consecutive picks 4 apart, and deterministic
        assert all(b - a == 4 for a, b in zip(picks, picks[1:]))
        assert picks == [i for i in range(1, 101) if should_sample(i, 0.25)]

    def test_deterministic_across_sessions(self):
        """Two schedulers assigning the same ticket numbers sample the same
        queries — the decision depends only on (sequence, rate)."""
        for rate in (0.1, 0.25, 0.5, 0.9):
            first = [should_sample(i, rate) for i in range(1, 200)]
            second = [should_sample(i, rate) for i in range(1, 200)]
            assert first == second
            assert sum(first) == sum(int(i * rate) - int((i - 1) * rate)
                                     for i in range(1, 200))


class TestJsonlSink:
    def test_writes_one_line_per_tree(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.write({"name": "query"})
        sink.write({"name": "query2"})
        lines = buf.getvalue().splitlines()
        assert sink.written == 2
        assert [json.loads(line)["name"] for line in lines] == ["query", "query2"]

    def test_path_target_opens_lazily(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlSink(str(path))
        assert not path.exists()
        sink.write({"name": "query"})
        sink.close()
        assert json.loads(path.read_text())["name"] == "query"

    def test_write_after_close_raises(self):
        sink = JsonlSink(io.StringIO())
        sink.write({"name": "query"})
        sink.close()
        assert sink.closed
        with pytest.raises(ValueError):
            sink.write({"name": "late"})

    def test_close_is_idempotent_and_leaves_external_stream_open(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.write({"name": "query"})
        sink.close()
        sink.close()
        assert not buf.closed  # caller-owned stream is flushed, not closed
        assert json.loads(buf.getvalue())["name"] == "query"

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write({"name": "query"})
        assert sink.closed
        assert json.loads(path.read_text())["name"] == "query"

    def test_unserializable_record_leaves_no_partial_line(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        with pytest.raises(TypeError):
            sink.write({"name": "query", "bad": {("tuple", "key"): 1}})
        assert buf.getvalue() == ""  # serialize-then-write: nothing emitted
        assert sink.written == 0
        sink.write({"name": "query"})  # sink still usable
        assert json.loads(buf.getvalue())["name"] == "query"

    def test_flush_pushes_through_to_stream(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlSink(str(path))
        sink.write({"name": "query"})
        sink.flush()
        assert json.loads(path.read_text())["name"] == "query"
        sink.close()


# -- query span trees --------------------------------------------------------


class TestQuerySpanTree:
    def test_competition_query_tree(self, db):
        table = build_parts(db)
        tracer = Tracer("query")
        result = table.select(where=col("WEIGHT") >= 0, tracer=tracer)
        tracer.finish()
        root = tracer.root
        retrievals = root.find("retrieval")
        assert len(retrievals) == 1
        retrieval = retrievals[0]
        assert retrieval.attrs["table"] == "P"
        assert retrieval.attrs["rows"] == len(result.rows)
        assert retrieval.attrs["io"] == result.execution_io
        tactic = root.find("tactic")[0]
        assert "tactic" in tactic.attrs
        # the unselective scan switched to tscan: boundary mark + both scans
        assert root.find("strategy-switch")
        strategies = {span.attrs.get("strategy") for span in root.find("scan")}
        assert "tscan" in strategies
        for span in root.walk():
            assert span.finished
        # every emitted event landed on some span
        attached = [event for span in root.walk() for event in span.events]
        assert len(attached) == len(result.trace.events)

    def test_scan_spans_carry_step_and_cost_attrs(self, db):
        table = build_parts(db)
        tracer = Tracer()
        table.select(where=col("COLOR").eq(3), tracer=tracer,
                     optimize_for=Goal.TOTAL_TIME)
        tracer.finish()
        scans = tracer.root.find("scan")
        assert scans
        for span in scans:
            assert span.attrs["steps"] >= 0
            assert span.attrs["cost"] >= 0
        finals = tracer.root.find("final-stage")
        assert finals and finals[0].attrs["steps"] == finals[0].attrs["rids"]

    def test_untraced_select_unchanged(self, db):
        table = build_parts(db)
        traced_db = Database(buffer_capacity=64)
        traced = build_parts(traced_db)
        tracer = Tracer()
        plain = table.select(where=col("COLOR").eq(3))
        with_spans = traced.select(where=col("COLOR").eq(3), tracer=tracer)
        assert sorted(plain.rows) == sorted(with_spans.rows)
        assert plain.total_cost == with_spans.total_cost
        assert [e.kind for e in plain.trace.events] == [
            e.kind for e in with_spans.trace.events
        ]

    def test_cancellation_finishes_open_spans(self):
        import repro

        cfg = EngineConfig(trace_sample_rate=1.0)
        conn = repro.connect(buffer_capacity=48, config=cfg)
        table = build_parts(conn.db)
        handle = conn.submit("select * from P where WEIGHT >= 0", deadline=2)
        with pytest.raises(repro.QueryCancelledError):
            handle.wait()
        assert handle.tracer is not None
        root = handle.tracer.root
        assert root.attrs["outcome"] == "cancelled"
        for span in root.walk():
            assert span.finished, f"span {span.name!r} left open by cancellation"
        cancelled = root.find("retrieval")
        assert cancelled and cancelled[0].attrs.get("cancelled") is True


# -- batch-size equivalence --------------------------------------------------


class TestBatchEquivalence:
    """Observability must be batching-transparent: the span tree and the
    histograms describe engine work, which batch size does not change."""

    EXPRS = [
        ("jscan", lambda: col("COLOR").eq(3), Goal.TOTAL_TIME),
        ("switch", lambda: col("WEIGHT") >= 0, Goal.TOTAL_TIME),
        ("fast-first", lambda: col("COLOR").eq(3), Goal.FAST_FIRST),
    ]

    @staticmethod
    def run_traced(batch_size, make_expr, goal):
        db = Database(buffer_capacity=64,
                      config=EngineConfig(batch_size=batch_size))
        table = build_parts(db)
        tracer = Tracer()
        result = table.select(where=make_expr(), tracer=tracer, optimize_for=goal)
        tracer.finish()
        return result, tracer

    @staticmethod
    def shape(span):
        """Structure + engine-work attrs, with wall-clock times stripped.

        ``steps`` is excluded: a batched scan may count one extra engine
        step for the completion probe that ends its final batch (the same
        documented accounting exception as ``buffer_hits`` for read-ahead).
        It is compared separately with ±1 tolerance.
        """
        attrs = {
            k: (round(v, 3) if k == "cost" else v)
            for k, v in span.attrs.items()
            if k != "steps"
        }
        return (span.name, tuple(sorted(attrs.items())),
                tuple(str(e) for e in span.events),
                tuple(TestBatchEquivalence.shape(c) for c in span.children))

    @pytest.mark.parametrize("label,make_expr,goal", EXPRS,
                             ids=[e[0] for e in EXPRS])
    def test_span_tree_identical_at_batch_1_and_64(self, label, make_expr, goal):
        result_1, tracer_1 = self.run_traced(1, make_expr, goal)
        result_64, tracer_64 = self.run_traced(64, make_expr, goal)
        assert sorted(result_1.rows) == sorted(result_64.rows)
        assert self.shape(tracer_1.root) == self.shape(tracer_64.root)
        steps_1 = [s.attrs["steps"] for s in tracer_1.root.walk()
                   if "steps" in s.attrs]
        steps_64 = [s.attrs["steps"] for s in tracer_64.root.walk()
                    if "steps" in s.attrs]
        assert len(steps_1) == len(steps_64)
        assert all(abs(a - b) <= 1 for a, b in zip(steps_1, steps_64))

    def test_server_metrics_equivalent_across_batch_size(self):
        import repro

        per_size = {}
        for batch_size in (1, 64):
            cfg = EngineConfig(batch_size=batch_size, trace_sample_rate=1.0)
            conn = repro.connect(buffer_capacity=64, config=cfg)
            build_parts(conn.db)
            conn.execute("select * from P where COLOR = 3")
            conn.execute("select * from P where WEIGHT >= 0")
            totals = conn.metrics.totals()
            # scheduling quanta scale with batch size; engine work must not
            assert totals.steps_per_query.sum == totals.quanta
            per_size[batch_size] = (
                totals.retrievals,
                totals.counters.records_fetched,
                totals.counters.scans_started,
                totals.counters.strategy_switches,
                totals.queries_completed,
            )
        assert per_size[1] == per_size[64]


# -- exhaustive EventKind coverage -------------------------------------------


def _reorder_scenario():
    """REORDERED needs a deliberately mis-ordered candidate list."""
    table = build_parts(Database(buffer_capacity=64), rows=900)
    config = table.config.with_(
        simultaneous_adjacent_scans=True,
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
    )
    trace = RetrievalTrace()
    arrangement = run_initial_stage(
        list(table.indexes.values()), (col("COLOR") <= 8) & (col("SIZE") < 2), {},
        frozenset(table.schema.names), (), CostMeter(), trace, config,
    )
    arrangement.jscan_candidates.sort(
        key=lambda c: -(c.estimate.rids if c.estimate else 0)
    )
    jscan = JscanProcess(
        arrangement.jscan_candidates, table.heap, table.buffer_pool, trace, config
    )
    while jscan.active:
        if jscan.step():
            break
    return trace.events


def _spill_scenario():
    """SPILL needs RID lists overflowing a tiny allocated buffer."""
    config = EngineConfig(
        static_rid_buffer_size=2, allocated_rid_buffer_size=8,
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )
    spill_db = Database(buffer_capacity=64, config=config)
    table = spill_db.create_table(
        "S", [("A", "int"), ("PAD", "int")], rows_per_page=8
    )
    table.config = config
    for i in range(300):
        table.insert((i % 2, i))
    table.create_index("IX_A", ["A"])
    return table.select(where=col("A").eq(0)).trace.events


def _gate_scenario():
    """COMPETITION_SKIPPED needs a warm, trusted estimator on both arms
    of an index-only race."""
    from repro.competition.process import drain
    from repro.estimate import Estimator

    gate_db = Database(buffer_capacity=64)
    table = gate_db.create_table(
        "G", [("A", "int"), ("B", "int"), ("C", "int")], rows_per_page=8
    )
    for i in range(200):
        table.insert((i, i % 10, (i * 3) % 50))
    table.create_index("IX_AB", ["A", "B"])  # covers {A, B}: the Sscan arm
    table.create_index("IX_A", ["A"])  # fetch-needed: the Jscan arms
    table.create_index("IX_B", ["B"])
    # the small-range shortcut would leave a candidate unestimated, and an
    # unestimated arm always competes — turn it off to reach the gate
    table.config = table.config.with_(shortcut_rid_count=0)
    where = (col("A") < 50) & (col("B").eq(3))
    estimator = Estimator()
    for index_name in ("IX_AB", "IX_A", "IX_B"):
        for _ in range(5):
            estimator.record("G", index_name, where, 100, 100)
    result = drain(
        table.select_steps(where=where, columns=("A", "B"), estimator=estimator)
    )
    assert estimator.trusted == 1
    return result.trace.events


def _with_config(table, config, **select_kwargs):
    """Run one select under a temporary engine config."""
    saved = table.config
    table.config = config
    try:
        return table.select(**select_kwargs).trace.events
    finally:
        table.config = saved


def test_every_event_kind_is_emitted_and_exports(db):
    """Every :class:`EventKind` must be reachable and JSON-exportable."""
    table = build_parts(db)
    base = table.config
    scenarios = [
        # selective jscan: estimates, ordering, tactic, scans, final stage
        lambda: table.select(where=col("COLOR").eq(3),
                             optimize_for=Goal.TOTAL_TIME).trace.events,
        # unselective: abandon, switch, tscan recommendation
        lambda: table.select(where=col("WEIGHT") >= 0,
                             optimize_for=Goal.TOTAL_TIME).trace.events,
        # fast-first out-competed foreground
        lambda: table.select(where=col("WEIGHT") >= 0,
                             optimize_for=Goal.FAST_FIRST).trace.events,
        # fast-first with a limit: consumer stops the engine
        lambda: table.select(where=col("COLOR").eq(3), limit=3,
                             optimize_for=Goal.FAST_FIRST).trace.events,
        # sorted tactic builds a filter from the second index
        lambda: table.select(where=(col("COLOR").eq(7)) & (col("WEIGHT") >= 0),
                             order_by=("WEIGHT",)).trace.events,
        # tiny foreground buffer: overflow terminates the foreground
        lambda: _with_config(
            table, base.with_(foreground_buffer_size=4),
            where=col("COLOR") <= 8, optimize_for=Goal.FAST_FIRST,
        ),
        # contradiction: empty-range shortcut
        lambda: table.select(
            where=(col("COLOR") > 5) & (col("COLOR") < 5)
        ).trace.events,
        # small-range shortcut skips estimation
        lambda: _with_config(
            table, base.with_(shortcut_rid_count=100),
            where=(col("COLOR").eq(3)) & (col("WEIGHT") < 50),
        ),
        # simultaneous adjacent pair
        lambda: _with_config(
            table,
            base.with_(
                simultaneous_adjacent_scans=True,
                switch_threshold=10.0, scan_cost_limit_fraction=100.0,
            ),
            where=(col("COLOR").eq(3)) & (col("SIZE") < 25),
        ),
        lambda: _reorder_scenario(),
        lambda: _spill_scenario(),
        # trusted estimates skip the index-only race entirely
        lambda: _gate_scenario(),
    ]
    seen: set[EventKind] = set()
    for scenario in scenarios:
        for event in scenario():
            seen.add(event.kind)
            exported = event.to_dict()
            assert exported["kind"] == event.kind.value
            json.dumps(exported)  # must be JSON-safe as exported
    missing = set(EventKind) - seen
    assert not missing, f"no scenario emits {sorted(k.value for k in missing)}"

"""Tests for the statically-thresholded Jscan baseline [MoHa90]."""

import pytest

from repro.engine.mohan_jscan import run_static_jscan
from repro.expr.ast import ALWAYS_TRUE, col


@pytest.fixture
def parts(db):
    table = db.create_table(
        "P", [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int")],
        rows_per_page=8, index_order=8,
    )
    for i in range(600):
        table.insert((i, i % 10, (i * 7) % 100, (i * 13) % 50))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    return table


def oracle(table, predicate):
    return sorted(row for _, row in table.heap.scan() if predicate(row))


def test_correct_results_on_selective_query(parts):
    expr = (col("COLOR").eq(3)) & (col("WEIGHT") < 30)
    execution = run_static_jscan(parts, expr)
    assert sorted(execution.rows) == oracle(parts, lambda r: r[1] == 3 and r[2] < 30)


def test_falls_back_to_tscan_without_candidates(parts):
    execution = run_static_jscan(parts, ALWAYS_TRUE)
    assert "tscan" in execution.description
    assert len(execution.rows) == parts.row_count


def test_threshold_abandons_large_lists(parts):
    # COLOR=3 keeps 60 rids; a 5% threshold (30 rids) abandons it
    expr = col("COLOR").eq(3)
    execution = run_static_jscan(parts, expr, threshold_fraction=0.05)
    assert "tscan" in execution.description
    assert sorted(execution.rows) == oracle(parts, lambda r: r[1] == 3)


def test_generous_threshold_commits_list(parts):
    expr = col("COLOR").eq(3)
    execution = run_static_jscan(parts, expr, threshold_fraction=0.5)
    assert "final" in execution.description
    assert sorted(execution.rows) == oracle(parts, lambda r: r[1] == 3)


def test_limit_honored(parts):
    execution = run_static_jscan(parts, col("COLOR").eq(3), limit=4)
    assert len(execution.rows) == 4


def test_cost_accounted(parts, db):
    db.cold_cache()
    execution = run_static_jscan(parts, col("COLOR").eq(3))
    assert execution.io > 0
    assert execution.cost >= execution.io

"""The estimation-quality program: q-error tracking, self-tuning
histograms, and the variance-gated competition.

Covers the histogram's edge cases (empty, single bucket, all-duplicate
keys, skewed Zipf refinement), the estimator's LRU/eviction discipline,
the confidence verdict, the accounting identity between recorded
q-errors and the audit log's estimate pairs, and the end-to-end gate:
a warm, trusted signature skips the index-only race and delivers
byte-identical rows.
"""

import math
import random

import pytest

from repro.competition.process import drain
from repro.db.session import Database
from repro.engine.metrics import EventKind
from repro.estimate import Estimator, SelfTuningHistogram, q_error
from repro.expr.ast import col
from repro.obs.audit import AuditLog, DecisionMetrics
from repro.obs.hist import LogHistogram


# -- q-error ------------------------------------------------------------------


class TestQError:
    def test_perfect_estimate_scores_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(100, 10) == pytest.approx(10.0)
        assert q_error(10, 100) == pytest.approx(10.0)

    def test_floors_at_one_row(self):
        # estimating 0 when the truth is 0 is perfect, not undefined
        assert q_error(0, 0) == 1.0
        assert q_error(0, 5) == pytest.approx(5.0)
        assert q_error(5, 0) == pytest.approx(5.0)


# -- self-tuning histogram ----------------------------------------------------


class TestSelfTuningHistogram:
    def test_empty_table_no_evidence(self):
        hist = SelfTuningHistogram()
        assert hist.estimate(0, 100) is None
        assert hist.estimate(None, None) is None

    def test_single_bucket_full_scan(self):
        hist = SelfTuningHistogram()
        hist.observe(None, None, 100)
        assert hist.estimate(None, None) == pytest.approx(100.0)

    def test_all_duplicate_keys(self):
        # equality probes on one key: the zero-width range can't be
        # carved, the containing bucket blends toward the observation
        hist = SelfTuningHistogram(budget=4)
        for _ in range(10):
            hist.observe(7, 7, 500)
        assert hist.observations == 10
        assert len(hist.buckets) <= 4
        estimate = hist.estimate(7, 7)
        assert estimate is not None and estimate > 0

    def test_carve_learns_observed_range_exactly(self):
        hist = SelfTuningHistogram()
        hist.observe(None, None, 1000)
        hist.observe(10, 20, 600)
        assert hist.estimate(10, 20) == pytest.approx(600.0)

    def test_budget_bounds_bucket_count_under_zipf_skew(self):
        rng = random.Random(42)
        hist = SelfTuningHistogram(budget=8)
        keys = [int(1000 / (rank + 1)) for rank in range(200)]
        for _ in range(300):
            lo = rng.choice(keys)
            hi = lo + rng.randint(1, 50)
            hist.observe(lo, hi, (hi - lo) * 3)
            assert len(hist.buckets) <= 8
        assert hist.splits > 0
        assert hist.merges > 0
        # bucket spans stay ordered and non-degenerate
        for left, right in zip(hist.buckets, hist.buckets[1:]):
            assert left.hi is not None and right.lo is not None
            assert left.hi <= right.lo or left.hi == right.lo

    def test_skewed_refinement_improves_hot_range(self):
        hist = SelfTuningHistogram(budget=16)
        hist.observe(None, None, 10_000)  # wildly uniform prior
        for _ in range(5):
            hist.observe(100, 110, 7)  # the hot range is actually tiny
        assert hist.estimate(100, 110) == pytest.approx(7.0)

    def test_mixed_type_keys_are_skipped_not_fatal(self):
        hist = SelfTuningHistogram()
        hist.observe(0, 100, 50)
        before = hist.observations
        hist.observe("a", 5, 10)  # incomparable: skipped
        assert hist.observations == before
        assert hist.estimate(0, 100) is not None

    def test_copy_is_independent(self):
        hist = SelfTuningHistogram(budget=4)
        hist.observe(0, 10, 40)
        clone = hist.copy()
        hist.observe(10, 20, 99)
        assert clone.observations == 1
        assert clone.estimate(10, 20) != hist.estimate(10, 20)


# -- estimator ----------------------------------------------------------------


class TestEstimator:
    def test_cold_signature_never_trusts(self):
        est = Estimator()
        verdict = est.verdict("T", "IX", col("A").eq(1))
        assert not verdict.trust
        assert verdict.score == 0.0

    def test_warm_accurate_signature_trusts(self):
        est = Estimator(min_observations=4, confidence_threshold=0.75)
        where = col("A").eq(1)
        for _ in range(5):
            est.record("T", "IX", where, 100, 100)
        verdict = est.verdict("T", "IX", where)
        assert verdict.trust
        assert verdict.score == pytest.approx(1.0)
        assert verdict.count == 5

    def test_noisy_signature_does_not_trust(self):
        est = Estimator(min_observations=4, confidence_threshold=0.75)
        where = col("A").eq(1)
        for actual in (10, 1000, 10, 1000, 10, 1000):
            est.record("T", "IX", where, 100, actual)
        assert not est.verdict("T", "IX", where).trust

    def test_combined_verdict_is_weakest_link(self):
        est = Estimator(min_observations=4)
        warm, cold = col("A").eq(1), col("B").eq(2)
        for _ in range(5):
            est.record("T", "IX1", warm, 50, 50)
        combined = est.combined_verdict(
            [("T", "IX1", warm), ("T", "IX2", cold)]
        )
        assert not combined.trust
        assert combined.score == 0.0

    def test_lru_eviction_counts(self):
        est = Estimator(capacity=2)
        for column in ("A", "B", "C"):
            est.record("T", "IX", col(column).eq(1), 10, 10)
        assert len(est) == 2
        assert est.evictions == 1

    def test_invalidate_table_drops_state_and_pending_ring(self):
        est = Estimator()
        est.record("T", "IX", col("A").eq(1), 10, 10, lo=1, hi=5)
        est.record("U", "IX", col("A").eq(1), 10, 10)
        est.invalidate_table("T")
        assert est.stats_for("T", "IX", col("A").eq(1)) is None
        assert est.stats_for("U", "IX", col("A").eq(1)) is not None
        assert est.estimate_range("T", "IX", 1, 5) is None

    def test_take_recent_returns_and_clears(self):
        est = Estimator()
        est.record("T", "IX", col("A").eq(1), 10, 20)
        recent = est.take_recent()
        assert recent == [pytest.approx(2.0)]
        assert est.take_recent() == []

    def test_disabled_estimator_records_nothing(self):
        est = Estimator(enabled=False)
        est.record("T", "IX", col("A").eq(1), 10, 10)
        assert est.observations == 0
        assert est.estimate_range("T", "IX", None, None) is None

    def test_histogram_snapshot_is_frozen(self):
        est = Estimator()
        est.record("T", "IX", col("A") < 5, 10, 40, lo=0, hi=5)
        frozen = est.histogram_snapshot("T")
        assert frozen["IX"].estimate(0, 5) == pytest.approx(40.0)
        est.record("T", "IX", col("A") < 5, 10, 900, lo=0, hi=5)
        assert frozen["IX"].estimate(0, 5) == pytest.approx(40.0)


# -- q-error accounting identity ----------------------------------------------


class TestQErrorAccountingIdentity:
    def test_qerror_hist_reconciles_with_audit_estimate_pairs(self):
        """Every (estimated, actual) pair in the audit log lands in the
        q-error histogram exactly once, with the exact q-error value."""
        audit = AuditLog()
        audit.begin_retrieval("T")
        pairs = [(10.0, 20), (100.0, 10), (7.0, 7), (0.5, 3)]
        for estimated, actual in pairs:
            audit.observe_estimate("IX", estimated, actual)
        audit.end_retrieval(None)

        metrics = DecisionMetrics()
        metrics.absorb(audit)

        recorded = [p for p in pairs if p[0] > 0]
        assert metrics.qerror_hist.count == len(recorded)
        assert metrics.estimate_error_hist.count == len(recorded)
        expected = LogHistogram()
        for estimated, actual in recorded:
            expected.record(q_error(estimated, actual))
        assert metrics.qerror_hist.counts == expected.counts
        assert metrics.qerror_hist.sum == pytest.approx(expected.sum)

    def test_identity_holds_end_to_end(self):
        """Through the live engine: the metrics' q-error count equals the
        estimate-error count (same pairs, same filter)."""
        db = Database(buffer_capacity=128)
        table = db.create_table("T", [("A", "int"), ("B", "int")], rows_per_page=8)
        for i in range(300):
            table.insert((i, i % 20))
        table.create_index("IX_A", ["A"])
        table.create_index("IX_B", ["B"])

        metrics = DecisionMetrics()
        for lo in (0, 50, 100):
            from repro.obs.trace import Tracer

            tracer = Tracer("q", audit=AuditLog())
            result = drain(
                table.select_steps(
                    where=(col("A") >= lo) & (col("A") < lo + 40) & (col("B").eq(3)),
                    tracer=tracer,
                )
            )
            assert result.rows is not None
            metrics.absorb(tracer.audit)
        assert metrics.qerror_hist.count == metrics.estimate_error_hist.count
        assert metrics.qerror_hist.count > 0


# -- the variance gate, end to end --------------------------------------------


def _gate_table(db):
    table = db.create_table(
        "G", [("A", "int"), ("B", "int"), ("C", "int")], rows_per_page=8
    )
    for i in range(400):
        table.insert((i, i % 10, (i * 3) % 50))
    table.create_index("IX_AB", ["A", "B"])  # covering: the Sscan arm
    table.create_index("IX_A", ["A"])  # fetch-needed: the Jscan arms
    table.create_index("IX_B", ["B"])
    # the small-range shortcut leaves candidates unestimated, and an
    # unestimated arm always competes
    table.config = table.config.with_(shortcut_rid_count=0)
    return table


class TestVarianceGate:
    def test_cold_estimator_competes(self):
        db = Database(buffer_capacity=128)
        table = _gate_table(db)
        est = Estimator()
        result = drain(
            table.select_steps(
                where=(col("A") < 100) & (col("B").eq(3)),
                columns=("A", "B"),
                estimator=est,
            )
        )
        assert not result.trace.has(EventKind.COMPETITION_SKIPPED)
        assert est.competed == 1
        assert est.trusted == 0

    def test_warm_estimator_skips_competition_with_identical_rows(self):
        db = Database(buffer_capacity=128)
        table = _gate_table(db)
        where = (col("A") < 100) & (col("B").eq(3))

        # the competed baseline (no estimator at all)
        baseline = drain(table.select_steps(where=where, columns=("A", "B")))

        est = Estimator()
        # warm the loop with real executions until the gate trusts
        skipped = None
        for _ in range(8):
            outcome = drain(
                table.select_steps(where=where, columns=("A", "B"), estimator=est)
            )
            if outcome.trace.has(EventKind.COMPETITION_SKIPPED):
                skipped = outcome
                break
        assert skipped is not None, "gate never trusted a stable workload"
        assert est.trusted >= 1
        assert sorted(skipped.rows) == sorted(baseline.rows)
        # the audited skip carries its confidence inputs
        events = skipped.trace.of_kind(EventKind.COMPETITION_SKIPPED)
        assert events[0].detail["confidence"] >= 0.75

    def test_gate_disabled_by_config(self):
        db = Database(buffer_capacity=128)
        table = _gate_table(db)
        table.config = table.config.with_(competition_gate=False)
        where = (col("A") < 100) & (col("B").eq(3))
        est = Estimator()
        for _ in range(8):
            outcome = drain(
                table.select_steps(where=where, columns=("A", "B"), estimator=est)
            )
            assert not outcome.trace.has(EventKind.COMPETITION_SKIPPED)
        assert est.trusted == 0

"""Tests for the Tscan / Sscan / Fscan processes."""

import pytest

from repro.btree.tree import KeyRange
from repro.engine.metrics import RetrievalTrace
from repro.engine.scans import FscanProcess, SscanProcess, TscanProcess, check_self_sufficient
from repro.errors import RetrievalError
from repro.expr.ast import ALWAYS_TRUE, col
from repro.storage.rid import RID


class Collector:
    def __init__(self, stop_after=None):
        self.rows = []
        self.rids = []
        self.stop_after = stop_after

    def __call__(self, rid, row):
        self.rids.append(rid)
        self.rows.append(row)
        return self.stop_after is None or len(self.rows) < self.stop_after


def run(process):
    while process.active:
        if process.step():
            break
    return process


def test_tscan_delivers_all_matching(people):
    sink = Collector()
    process = run(
        TscanProcess(people.heap, people.schema, col("AGE") < 50, {}, sink, RetrievalTrace())
    )
    expected = [row for _, row in people.heap.scan() if row[1] < 50]
    assert sink.rows == expected
    assert process.finished and not process.stopped_by_consumer


def test_tscan_step_is_one_page(people):
    sink = Collector()
    process = TscanProcess(people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace())
    process.step()
    assert len(sink.rows) == people.heap.rows_per_page


def test_tscan_consumer_stop(people):
    sink = Collector(stop_after=3)
    process = run(
        TscanProcess(people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace())
    )
    assert process.stopped_by_consumer
    assert len(sink.rows) == 3


def test_tscan_skip_rids(people):
    all_rids = [rid for rid, _ in people.heap.scan()]
    skip = set(all_rids[:10])
    sink = Collector()
    run(
        TscanProcess(
            people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace(),
            skip_rids=lambda rid: rid in skip,
        )
    )
    assert len(sink.rows) == people.row_count - 10


def test_tscan_cost_is_page_count_cold(people, db):
    db.cold_cache()
    sink = Collector()
    process = run(
        TscanProcess(people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace())
    )
    assert process.meter.io_reads == people.heap.page_count


def test_sscan_delivers_from_index_only(people, db):
    index = people.indexes["IX_AGE"]
    sink = Collector()
    trace = RetrievalTrace()
    process = run(
        SscanProcess(
            index, KeyRange(lo=(50,), hi=None), people.schema,
            col("AGE") >= 50, {}, sink, trace,
        )
    )
    expected = sorted(row[1] for _, row in people.heap.scan() if row[1] >= 50)
    assert [row[1] for row in sink.rows] == expected
    # no heap fetches at all
    assert trace.counters.records_fetched == 0


def test_sscan_rows_have_nones_outside_index(people):
    index = people.indexes["IX_AGE"]
    sink = Collector()
    run(
        SscanProcess(
            index, KeyRange.exact(7), people.schema, col("AGE").eq(7), {}, sink,
            RetrievalTrace(),
        )
    )
    for row in sink.rows:
        assert row[1] == 7  # AGE position filled
        assert row[0] is None and row[2] is None  # ID, NAME not in index


def test_sscan_consumer_stop(people):
    index = people.indexes["IX_AGE"]
    sink = Collector(stop_after=2)
    process = run(
        SscanProcess(
            index, KeyRange.all(), people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace()
        )
    )
    assert process.stopped_by_consumer
    assert len(sink.rows) == 2


def test_fscan_fetches_and_filters(people):
    index = people.indexes["IX_AGE"]
    trace = RetrievalTrace()
    sink = Collector()
    # restriction narrower than the range: some fetches get rejected
    process = run(
        FscanProcess(
            index, KeyRange(lo=(40,), hi=(70,)), people.heap, people.schema,
            (col("AGE") >= 40) & (col("AGE") <= 70) & (col("ID") < 40), {}, sink, trace,
        )
    )
    expected = {row for _, row in people.heap.scan() if 40 <= row[1] <= 70 and row[0] < 40}
    assert set(sink.rows) == expected
    assert process.rejected > 0
    assert trace.counters.fetches_rejected == process.rejected


def test_fscan_delivers_in_index_order(people):
    index = people.indexes["IX_AGE"]
    sink = Collector()
    run(
        FscanProcess(
            index, KeyRange.all(), people.heap, people.schema, ALWAYS_TRUE, {}, sink,
            RetrievalTrace(),
        )
    )
    ages = [row[1] for row in sink.rows]
    assert ages == sorted(ages)


def test_fscan_installable_filter(people):
    index = people.indexes["IX_AGE"]
    allowed = {rid for rid, row in people.heap.scan() if row[0] % 2 == 0}

    class Filter:
        def may_contain(self, rid):
            return rid in allowed

    sink = Collector()
    process = FscanProcess(
        index, KeyRange.all(), people.heap, people.schema, ALWAYS_TRUE, {}, sink,
        RetrievalTrace(),
    )
    process.filter = Filter()
    run(process)
    assert all(row[0] % 2 == 0 for row in sink.rows)
    assert process.filtered_out == people.row_count - len(sink.rows)


def test_fscan_filter_suppresses_fetch_cost(people, db):
    index = people.indexes["IX_AGE"]

    class RejectAll:
        def may_contain(self, rid):
            return False

    db.cold_cache()
    sink = Collector()
    process = FscanProcess(
        index, KeyRange.all(), people.heap, people.schema, ALWAYS_TRUE, {}, sink,
        RetrievalTrace(),
    )
    process.filter = RejectAll()
    run(process)
    assert process.fetched == 0
    assert sink.rows == []


def test_check_self_sufficient(people):
    index = people.indexes["IX_AGE"]
    check_self_sufficient(index, frozenset({"AGE"}))
    with pytest.raises(RetrievalError):
        check_self_sufficient(index, frozenset({"AGE", "NAME"}))

"""Tests for RIDs, sorted RID buffers, and Yao's formula."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.rid import RID, SortedRidBuffer, yao_pages_touched

rid_strategy = st.tuples(
    st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=63)
).map(lambda pair: RID(*pair))


def test_rid_encode_decode_roundtrip():
    rid = RID(12345, 17)
    assert RID.decode(rid.encode()) == rid


@given(rid_strategy)
def test_rid_encode_decode_roundtrip_property(rid):
    assert RID.decode(rid.encode()) == rid


def test_rid_ordering_is_page_major():
    assert RID(1, 9) < RID(2, 0)
    assert RID(1, 2) < RID(1, 3)


def test_sorted_buffer_keeps_order():
    buffer = SortedRidBuffer()
    for rid in [RID(3, 0), RID(1, 2), RID(2, 5), RID(1, 1)]:
        buffer.add(rid)
    assert buffer.to_list() == sorted(buffer.to_list())
    assert len(buffer) == 4


def test_sorted_buffer_membership():
    buffer = SortedRidBuffer([RID(1, 1), RID(2, 2)])
    assert RID(1, 1) in buffer
    assert RID(1, 2) not in buffer


def test_sorted_buffer_intersect():
    a = SortedRidBuffer([RID(1, 1), RID(2, 2), RID(3, 3)])
    b = SortedRidBuffer([RID(2, 2), RID(3, 3), RID(4, 4)])
    assert a.intersect(b).to_list() == [RID(2, 2), RID(3, 3)]


def test_sorted_buffer_union_dedupes():
    a = SortedRidBuffer([RID(1, 1), RID(2, 2)])
    b = SortedRidBuffer([RID(2, 2), RID(3, 3)])
    assert a.union(b).to_list() == [RID(1, 1), RID(2, 2), RID(3, 3)]


@given(st.lists(rid_strategy, max_size=60), st.lists(rid_strategy, max_size=60))
def test_intersect_union_match_set_semantics(lhs, rhs):
    a, b = SortedRidBuffer(lhs), SortedRidBuffer(rhs)
    assert set(a.intersect(b).to_list()) == (set(lhs) & set(rhs))
    assert set(a.union(b).to_list()) == (set(lhs) | set(rhs))
    assert a.union(b).to_list() == sorted(set(lhs) | set(rhs))


def test_distinct_pages():
    buffer = SortedRidBuffer([RID(1, 0), RID(1, 5), RID(2, 0)])
    assert buffer.distinct_pages() == 2


def test_yao_zero_records():
    assert yao_pages_touched(10, 8, 0) == 0.0


def test_yao_all_records_touches_all_pages():
    assert yao_pages_touched(10, 8, 80) == pytest.approx(10.0)
    assert yao_pages_touched(10, 8, 1000) == pytest.approx(10.0)


def test_yao_single_record():
    assert yao_pages_touched(10, 8, 1) == pytest.approx(1.0)


def test_yao_monotone_in_k():
    previous = 0.0
    for k in range(0, 80, 5):
        value = yao_pages_touched(10, 8, k)
        assert value >= previous
        previous = value


def test_yao_bounded_by_k_and_pages():
    for k in (1, 5, 17, 50):
        value = yao_pages_touched(20, 10, k)
        assert value <= min(k, 20) + 1e-9


def test_yao_approximation_matches_exact_for_large_k():
    # the closed form used for k > 1000 should agree with the product form
    exact_like = 50 * (1.0 - (1.0 - 1.0 / 50) ** 1500)
    assert yao_pages_touched(50, 40, 1500) == pytest.approx(exact_like, rel=0.05)


def test_yao_empty_table():
    assert yao_pages_touched(0, 8, 5) == 0.0

"""Tests for AND/OR/NOT/JOIN distribution transformations (Section 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distribution.density import SelectivityDistribution
from repro.distribution.operators import (
    and_c,
    and_unknown,
    apply_chain,
    join_unknown,
    negate,
    or_c,
    or_unknown,
)
from repro.errors import DistributionError

U = SelectivityDistribution.uniform(128)


def test_negate_is_mirror():
    bell = SelectivityDistribution.bell(0.2, 0.05, 128)
    assert negate(bell).mean() == pytest.approx(0.8, abs=0.01)


def test_and_independent_of_points():
    px = SelectivityDistribution.point(0.5, 128)
    py = SelectivityDistribution.point(0.4, 128)
    result = and_c(px, py, 0.0)
    assert result.mean() == pytest.approx(0.2, abs=0.01)


def test_and_plus_one_correlation_is_min():
    px = SelectivityDistribution.point(0.5, 256)
    py = SelectivityDistribution.point(0.3, 256)
    assert and_c(px, py, +1.0).mean() == pytest.approx(0.3, abs=0.01)


def test_and_minus_one_correlation_is_max_overlap():
    px = SelectivityDistribution.point(0.7, 256)
    py = SelectivityDistribution.point(0.6, 256)
    # max(0, 0.7 + 0.6 - 1) = 0.3
    assert and_c(px, py, -1.0).mean() == pytest.approx(0.3, abs=0.01)


def test_and_minus_one_disjoint_when_small():
    px = SelectivityDistribution.point(0.2, 256)
    py = SelectivityDistribution.point(0.3, 256)
    assert and_c(px, py, -1.0).mean() == pytest.approx(0.0, abs=0.01)


def test_intermediate_correlation_interpolates():
    px = SelectivityDistribution.point(0.5, 256)
    py = SelectivityDistribution.point(0.5, 256)
    at_zero = and_c(px, py, 0.0).mean()
    at_half = and_c(px, py, 0.5).mean()
    at_one = and_c(px, py, 1.0).mean()
    assert at_zero < at_half < at_one


def test_or_of_points_independent():
    px = SelectivityDistribution.point(0.5, 128)
    py = SelectivityDistribution.point(0.4, 128)
    # 1 - (1-0.5)(1-0.4) = 0.7
    assert or_c(px, py, 0.0).mean() == pytest.approx(0.7, abs=0.01)


def test_or_is_de_morgan_dual_of_and():
    bell = SelectivityDistribution.bell(0.3, 0.08, 128)
    direct = or_c(bell, bell, 0.0)
    dual = negate(and_c(negate(bell), negate(bell), 0.0))
    assert direct.total_variation_distance(dual) < 1e-9


def test_unknown_correlation_is_mixture():
    bell = SelectivityDistribution.bell(0.4, 0.05, 128)
    unknown = and_unknown(bell, bell)
    low = and_c(bell, bell, -1.0)
    high = and_c(bell, bell, +1.0)
    assert low.mean() - 0.01 <= unknown.mean() <= high.mean() + 0.01
    # mixture is wider than any single-correlation result at the extremes
    assert unknown.std() >= and_c(bell, bell, 0.0).std() - 0.01


def test_join_unknown_aliases_and():
    bell = SelectivityDistribution.bell(0.4, 0.05, 128)
    assert join_unknown(bell, bell).total_variation_distance(and_unknown(bell, bell)) < 1e-12


def test_invalid_correlation_rejected():
    with pytest.raises(DistributionError):
        and_c(U, U, 1.5)


def test_result_is_normalized():
    result = and_unknown(U, U)
    assert result.weights.sum() == pytest.approx(1.0)


def test_anding_uniform_skews_left():
    result = apply_chain(U, "&")
    assert result.mean() < U.mean()
    assert result.median() < 0.25


def test_oring_uniform_skews_right():
    result = apply_chain(U, "|")
    assert result.mean() > U.mean()
    assert result.median() > 0.75


def test_and_or_mirror_symmetry_on_uniform():
    anded = apply_chain(U, "&")
    orred = apply_chain(U, "|")
    assert anded.total_variation_distance(orred.mirrored()) < 0.01


def test_more_ands_more_skew():
    masses = [apply_chain(U, "&" * n).mass_below(0.05) for n in (1, 2, 3)]
    assert masses[0] < masses[1] < masses[2]


def test_lower_correlation_increases_skew():
    skew_high = and_c(U, U, 0.9).mass_below(0.05)
    skew_zero = and_c(U, U, 0.0).mass_below(0.05)
    skew_low = and_c(U, U, -0.9).mass_below(0.05)
    assert skew_high <= skew_zero <= skew_low


def test_balanced_and_or_mix_restores_near_uniform():
    mixed = apply_chain(U, "&|", operand="self")
    assert mixed.total_variation_distance(U) < 0.2


def test_chain_self_mode_grows_faster():
    original = apply_chain(U, "&&", operand="original")
    self_mode = apply_chain(U, "&&", operand="self")
    assert self_mode.mass_below(0.05) > original.mass_below(0.05)


def test_chain_negation_operator():
    result = apply_chain(U, "&~")
    assert result.total_variation_distance(apply_chain(U, "&").mirrored()) < 1e-9


def test_chain_invalid_operator():
    with pytest.raises(DistributionError):
        apply_chain(U, "x")
    with pytest.raises(DistributionError):
        apply_chain(U, "&", operand="bogus")


def test_statement_1_single_and_nullifies_relative_precision():
    """Paper statement (1): one AND/OR makes the spread the same order as
    the distance from the interval end."""
    bell = SelectivityDistribution.bell(0.2, 0.005, 256)
    anded = apply_chain(bell, "&")
    assert anded.std() > 5 * bell.std()
    orred = apply_chain(bell, "|")
    assert orred.std() > 5 * bell.std()


def test_statement_3_disbalance_produces_l_shapes():
    """Paper statement (3): disbalanced chains give L-shapes whose skew
    grows with disbalance."""
    bell = SelectivityDistribution.bell(0.2, 0.01, 256)
    two = apply_chain(bell, "&&")
    four = apply_chain(bell, "&&&&")
    assert two.mass_below(0.05) > 0.4
    assert four.mass_below(0.05) > two.mass_below(0.05)


@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.01, max_value=0.2),
    st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0]),
)
@settings(max_examples=30, deadline=None)
def test_and_mean_never_exceeds_operand_means(mean, std, correlation):
    bell = SelectivityDistribution.bell(mean, std, 64)
    result = and_c(bell, bell, correlation)
    assert result.mean() <= bell.mean() + 0.02
    assert result.weights.sum() == pytest.approx(1.0)


@given(st.sampled_from(["&", "|", "&|", "||", "&&"]))
@settings(max_examples=20, deadline=None)
def test_chains_always_normalized(chain):
    result = apply_chain(SelectivityDistribution.uniform(64), chain)
    assert result.weights.sum() == pytest.approx(1.0)
    assert float(result.weights.min()) >= 0.0

"""Tests for the interactive shell."""

import io

import pytest

from repro.db.session import Database
from repro.shell import Shell, load_demo


@pytest.fixture
def shell():
    return Shell(Database(buffer_capacity=64), out=io.StringIO())


def output_of(shell: Shell) -> str:
    return shell.out.getvalue()


def test_ddl_select_roundtrip(shell):
    shell.run([
        "create table T (A int, B int);",
        "insert into T values (1, 10), (2, 20);",
        "select * from T where A = 2;",
    ])
    text = output_of(shell)
    assert "table T created" in text
    assert "2 row(s) inserted" in text
    assert "20" in text


def test_multiline_statement(shell):
    shell.run([
        "create table T (A int);",
        "select *",
        "from T",
        "where A < 5;",
    ])
    assert "(no rows)" in output_of(shell)


def test_list_and_describe_tables(shell):
    shell.run(["create table T (A int, B str);", "create index IX on T (A);", "\\d", "\\d T"])
    text = output_of(shell)
    assert "T: 0 rows" in text
    assert "A int" in text and "B str" in text
    assert "index IX on (A)" in text


def test_describe_unknown_table(shell):
    shell.feed("\\d NOPE")
    assert "error" in output_of(shell)


def test_host_variable_binding(shell):
    shell.run([
        "create table T (A int);",
        "insert into T values (1), (5), (9);",
        "\\set X 4",
        "select * from T where A >= :X;",
    ])
    text = output_of(shell)
    assert ":X = 4" in text
    assert "5" in text and "9" in text


def test_set_string_variable(shell):
    shell.feed("\\set NAME 'bob'")
    assert shell.host_vars["NAME"] == "bob"


def test_trace_toggle(shell):
    shell.run([
        "create table T (A int);",
        "insert into T values (1);",
        "\\trace on",
        "select * from T;",
    ])
    text = output_of(shell)
    assert "trace on" in text
    assert "retrieval-complete" in text


def test_cold_cache_command(shell):
    shell.feed("\\cold")
    assert "cache dropped" in output_of(shell)


def test_explain_command(shell):
    shell.run(["create table T (A int);", "\\explain select * from T order by A"])
    assert "retrieve T" in output_of(shell)


def test_error_reported_not_raised(shell):
    shell.feed("select * from MISSING;")
    assert "error" in output_of(shell)


def test_unknown_meta_command(shell):
    shell.feed("\\bogus")
    assert "unknown meta command" in output_of(shell)


def test_quit_sets_done(shell):
    shell.run(["\\q", "select * from T;"])
    assert shell.done
    assert "error" not in output_of(shell)


def test_row_limit_ellipsis(shell):
    shell.feed("create table T (A int);")
    for i in range(60):
        shell.feed(f"insert into T values ({i});")
    shell.feed("select * from T;")
    assert "more rows" in output_of(shell)


def test_load_demo_builds_tables():
    db = Database(buffer_capacity=64)
    load_demo(db)
    assert set(db.tables) == {"FAMILIES", "PARTS", "ORDERS"}

"""Tests for plan binding/name resolution."""

import pytest

from repro.errors import BindingError
from repro.sql.binder import bind
from repro.sql.parser import parse


def test_bind_resolves_tables(db):
    db.create_table("T", [("A", "int")])
    parsed = parse("select * from T where A = 1")
    tables = bind(db, parsed.plan)
    assert len(tables) == 1
    assert next(iter(tables.values())).name == "T"


def test_bind_unknown_table(db):
    with pytest.raises(BindingError):
        bind(db, parse("select * from NOPE").plan)


def test_bind_unknown_column_in_where(db):
    db.create_table("T", [("A", "int")])
    with pytest.raises(BindingError):
        bind(db, parse("select * from T where Z = 1").plan)


def test_bind_unknown_column_in_select_list(db):
    db.create_table("T", [("A", "int")])
    with pytest.raises(BindingError):
        bind(db, parse("select Z from T").plan)


def test_bind_subquery_tables_checked(db):
    db.create_table("T", [("A", "int")])
    with pytest.raises(BindingError):
        bind(db, parse("select * from T where A in (select X from MISSING)").plan)


def test_bind_all_subquery_retrieves(db):
    db.create_table("T", [("A", "int")])
    db.create_table("U", [("X", "int")])
    parsed = parse("select * from T where A in (select X from U)")
    tables = bind(db, parsed.plan)
    assert {table.name for table in tables.values()} == {"T", "U"}

"""Tests for the final retrieval stage (Fin)."""

import pytest

from repro.engine.final_stage import FinalStageProcess
from repro.engine.metrics import RetrievalTrace
from repro.expr.ast import ALWAYS_TRUE, col
from repro.storage.buffer_pool import CostMeter
from repro.storage.rid import RID


class Collector:
    def __init__(self, stop_after=None):
        self.rows = []
        self.stop_after = stop_after

    def __call__(self, rid, row):
        self.rows.append(row)
        return self.stop_after is None or len(self.rows) < self.stop_after


def run(process):
    while process.active:
        if process.step():
            break
    return process


def test_delivers_all_rids_in_sorted_order(people):
    rids = [rid for rid, row in people.heap.scan() if row[1] >= 50]
    sink = Collector()
    process = run(
        FinalStageProcess(
            list(reversed(rids)), people.heap, people.schema, ALWAYS_TRUE, {}, sink,
            RetrievalTrace(),
        )
    )
    assert process.rids == sorted(rids)
    assert len(sink.rows) == len(rids)


def test_reevaluates_restriction(people):
    all_rids = [rid for rid, _ in people.heap.scan()]
    sink = Collector()
    process = run(
        FinalStageProcess(
            all_rids, people.heap, people.schema, col("AGE") < 30, {}, sink,
            RetrievalTrace(),
        )
    )
    assert all(row[1] < 30 for row in sink.rows)
    assert process.rejected == len(all_rids) - len(sink.rows)


def test_skip_rids_filter(people):
    rids = [rid for rid, _ in people.heap.scan()][:20]
    skip = set(rids[:5])
    sink = Collector()
    process = run(
        FinalStageProcess(
            rids, people.heap, people.schema, ALWAYS_TRUE, {}, sink,
            RetrievalTrace(), skip_rids=lambda rid: rid in skip,
        )
    )
    assert process.skipped == 5
    assert len(sink.rows) == 15


def test_consumer_stop(people):
    rids = [rid for rid, _ in people.heap.scan()]
    sink = Collector(stop_after=3)
    process = run(
        FinalStageProcess(
            rids, people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace()
        )
    )
    assert process.stopped_by_consumer
    assert len(sink.rows) == 3


def test_empty_rid_list(people):
    sink = Collector()
    process = run(
        FinalStageProcess([], people.heap, people.schema, ALWAYS_TRUE, {}, sink,
                          RetrievalTrace())
    )
    assert process.finished
    assert sink.rows == []


def test_sorted_fetch_is_page_clustered(people, db):
    # many rids on few pages: cost ~ distinct pages, not rid count
    rids = sorted(rid for rid, _ in people.heap.scan())[:32]  # 4 pages x 8 rows
    db.cold_cache()
    sink = Collector()
    process = FinalStageProcess(
        rids, people.heap, people.schema, ALWAYS_TRUE, {}, sink, RetrievalTrace()
    )
    run(process)
    assert process.meter.io_reads == 4


def test_trace_counters(people):
    trace = RetrievalTrace()
    rids = [rid for rid, _ in people.heap.scan()][:10]
    sink = Collector()
    run(
        FinalStageProcess(
            rids, people.heap, people.schema, col("AGE") >= 0, {}, sink, trace
        )
    )
    assert trace.counters.records_fetched == 10
    assert trace.counters.records_delivered == 10

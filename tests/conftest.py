"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.catalog import Column
from repro.db.session import Database
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager


@pytest.fixture
def pager() -> Pager:
    return Pager()


@pytest.fixture
def buffer_pool(pager: Pager) -> BufferPool:
    return BufferPool(pager, capacity=64)


@pytest.fixture
def meter() -> CostMeter:
    return CostMeter(name="test")


@pytest.fixture
def db() -> Database:
    return Database(buffer_capacity=64)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def people(db: Database):
    """A small table with one index, deterministic content."""
    table = db.create_table(
        "PEOPLE",
        [Column("ID", "int"), Column("AGE", "int"), Column("NAME", "str")],
        rows_per_page=8,
        index_order=4,
    )
    names = ["ann", "bob", "cid", "dot", "eve", "fay", "gus", "hal"]
    for i in range(80):
        table.insert((i, (i * 7) % 100, names[i % len(names)]))
    table.create_index("IX_AGE", ["AGE"])
    return table

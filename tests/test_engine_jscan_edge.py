"""Edge-case tests for Jscan: spills, duplicates, composite indexes."""

import pytest

from repro.config import EngineConfig
from repro.db.session import Database
from repro.engine.metrics import EventKind
from repro.expr.ast import col
from repro.expr.eval import evaluate
from repro.storage.hybrid_list import RidListRegion


def oracle(table, expr):
    return sorted(
        row for _, row in table.heap.scan()
        if evaluate(expr, row, table.schema.position)
    )


def test_jscan_spill_path_correct():
    """Tiny buffers force the RID list through the spill region mid-Jscan."""
    config = EngineConfig(
        static_rid_buffer_size=4,
        allocated_rid_buffer_size=16,
        switch_threshold=10.0,            # let scans complete
        scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )
    db = Database(buffer_capacity=64, config=config)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int")], rows_per_page=8, index_order=8
    )
    table.config = config
    for i in range(1200):
        table.insert((i % 4, (i * 3) % 90))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    expr = (col("A").eq(1)) & (col("B") < 60)  # ~200 survivors: must spill
    result = table.select(where=expr)
    assert sorted(result.rows) == oracle(table, expr)
    assert "final-stage" in result.description


def test_jscan_filter_in_spilled_region_no_false_drops():
    """A spilled (bitmap) filter may pass extra RIDs but never drop one."""
    config = EngineConfig(
        static_rid_buffer_size=2,
        allocated_rid_buffer_size=8,
        bitmap_bits=256,                  # tiny bitmap: many false positives
        switch_threshold=10.0,
        scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )
    db = Database(buffer_capacity=64, config=config)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int")], rows_per_page=8, index_order=8
    )
    table.config = config
    for i in range(600):
        table.insert((i % 3, i % 50))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    expr = (col("A").eq(0)) & (col("B") < 25)
    result = table.select(where=expr)
    assert sorted(result.rows) == oracle(table, expr)


def test_jscan_duplicate_heavy_index():
    db = Database(buffer_capacity=64)
    table = db.create_table("T", [("A", "int"), ("B", "int")], rows_per_page=8)
    for i in range(400):
        table.insert((7, i))  # every A identical
    table.create_index("IX_A", ["A"])
    expr = col("A").eq(7)
    result = table.select(where=expr)
    assert len(result.rows) == 400


def test_jscan_composite_index_candidate():
    db = Database(buffer_capacity=64)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int")], rows_per_page=8, index_order=8
    )
    for i in range(800):
        table.insert((i % 10, i % 40, i))
    table.create_index("IX_AB", ["A", "B"])
    expr = (col("A").eq(3)) & (col("B").between(10, 20))
    result = table.select(where=expr)
    assert sorted(result.rows) == oracle(table, expr)
    # the composite range must have been used, not a table scan
    assert "final-stage" in result.description


def test_jscan_single_row_table():
    db = Database(buffer_capacity=16)
    table = db.create_table("T", [("A", "int")], rows_per_page=8)
    table.insert((5,))
    table.create_index("IX_A", ["A"])
    assert table.select(where=col("A").eq(5)).rows == [(5,)]
    assert table.select(where=col("A").eq(6)).rows == []


def test_jscan_all_rows_on_one_page():
    db = Database(buffer_capacity=16)
    table = db.create_table("T", [("A", "int")], rows_per_page=64)
    for i in range(50):
        table.insert((i,))
    table.create_index("IX_A", ["A"])
    result = table.select(where=col("A") < 10)
    assert len(result.rows) == 10


def test_spill_event_emitted_in_trace():
    config = EngineConfig(
        static_rid_buffer_size=2, allocated_rid_buffer_size=8,
        switch_threshold=10.0, scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=False,
    )
    db = Database(buffer_capacity=64, config=config)
    # the PAD column keeps the index fetch-needed (not self-sufficient)
    table = db.create_table("T", [("A", "int"), ("PAD", "int")], rows_per_page=8)
    table.config = config
    for i in range(300):
        table.insert((i % 2, i))
    table.create_index("IX_A", ["A"])
    result = table.select(where=col("A").eq(0))
    # region recorded in the filter-built event shows the spill happened
    built = result.trace.of_kind(EventKind.FILTER_BUILT)
    assert built and built[0].detail["region"] == RidListRegion.SPILLED.value
    assert len(result.rows) == 150


def test_pair_mode_with_spilling_active_and_filtered_partner():
    """Regression: a filtered partner never freezes on kept-count, so it can
    complete while the active list has spilled; the engine must neither
    crash on an out-of-memory refilter nor corrupt the intersection."""
    config = EngineConfig(
        static_rid_buffer_size=2,
        allocated_rid_buffer_size=8,
        switch_threshold=10.0,
        scan_cost_limit_fraction=100.0,
        simultaneous_adjacent_scans=True,
    )
    db = Database(buffer_capacity=96, config=config)
    table = db.create_table(
        "T", [("A", "int"), ("B", "int"), ("C", "int"), ("PAD", "int")],
        rows_per_page=8, index_order=8,
    )
    table.config = config
    for i in range(3000):
        table.insert((i % 3, i % 400, i % 90, i))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.create_index("IX_C", ["C"])
    # A=0: big first filter; B range big with big intersection (active
    # spills); C range smaller, heavily filtered (partner stays unfrozen)
    expr = (col("A").eq(0)) & (col("B") < 300) & (col("C") < 30)
    result = table.select(where=expr)
    assert sorted(result.rows) == oracle(
        table, expr
    )

"""Fold the per-run ``BENCH_*.json`` artifacts into one ``BENCH_trend.json``.

Each benchmark writes an independent JSON report at the repository root
(``BENCH_throughput.json``, ``BENCH_trace_overhead.json``,
``BENCH_prepare.json``, ``BENCH_audit_overhead.json``, ...). CI uploads
them individually, which makes cross-run comparison a download-and-diff
chore. This collector gathers every ``BENCH_*.json`` present into a
single document keyed by benchmark name, with a small headline block per
benchmark (the one number you would plot) so a trend dashboard — or a
human with two artifacts side by side — can diff runs without knowing
each report's internal shape.

Usage::

    python benchmarks/collect_trend.py            # writes BENCH_trend.json
    python benchmarks/collect_trend.py --check    # also exit 1 if none found

The collector never fails on a missing or malformed individual report
(a partial benchmark run still produces a useful trend file); malformed
files are recorded under ``errors``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: per-benchmark headline extractors: name -> (json path, metric label),
#: or a list of such pairs when one report carries several plottable numbers
HEADLINES = {
    "throughput": ("multi_session_4.64.rows_per_sec", "rows/sec @ batch 64"),
    "trace_overhead": (
        "overhead_rate0_vs_reference_pct", "disabled-path overhead %"
    ),
    "audit_overhead": [
        ("overhead_off_vs_reference_pct", "audit-off overhead %"),
        ("overhead_on_vs_off_pct", "audit-on overhead % vs off"),
    ],
    "prepare": ("speedup_at_repeat_16", "prepared/unprepared speedup"),
    "join_competition": (
        "competitive_ratio_vs_worst", "competition cost / worst static order"
    ),
    "partition_scaling": (
        "speedup_at_4_workers", "modeled scatter-gather speedup @ 4 workers"
    ),
    "estimation_quality": (
        "speedup", "variance-gated speedup vs always-compete"
    ),
    "monitor_overhead": [
        ("overhead_pct", "monitoring-on overhead %"),
        ("drift_detector.fired_on_shift", "drift detector fired on shift"),
        ("drift_detector.quiet_on_steady", "drift detector quiet on steady"),
    ],
}


def dig(report: dict, dotted: str):
    """Follow a dotted path through nested dicts; None when absent."""
    node = report
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def headlines(name: str, report: dict) -> list[dict]:
    spec = HEADLINES.get(name)
    if spec is None:
        return []
    specs = spec if isinstance(spec, list) else [spec]
    return [
        {"metric": label, "value": dig(report, path)} for path, label in specs
    ]


def collect(root: str) -> dict:
    trend: dict = {"benchmarks": {}, "errors": {}}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        base = os.path.basename(path)
        if base == "BENCH_trend.json":
            continue
        name = base[len("BENCH_"):-len(".json")]
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as error:
            trend["errors"][name] = str(error)
            continue
        entry = {"file": base, "report": report}
        heads = headlines(name, report)
        if heads:
            entry["headline"] = heads[0]
            if len(heads) > 1:
                entry["headlines"] = heads
        if isinstance(report, dict) and "smoke" in report:
            entry["smoke"] = report["smoke"]
        trend["benchmarks"][name] = entry
    return trend


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=None,
        help="directory holding BENCH_*.json (default: repository root)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_trend.json under --root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when no benchmark reports were found",
    )
    args = parser.parse_args(argv)

    root = args.root or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."
    )
    trend = collect(root)
    out_path = args.out or os.path.join(root, "BENCH_trend.json")
    with open(out_path, "w") as handle:
        json.dump(trend, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, entry in sorted(trend["benchmarks"].items()):
        heads = entry.get("headlines") or (
            [entry["headline"]] if entry.get("headline") else []
        )
        shown = [h for h in heads if h["value"] is not None]
        if shown:
            for head in shown:
                print(f"{name:>16}: {head['value']} ({head['metric']})")
        else:
            print(f"{name:>16}: collected ({entry['file']})")
    for name, error in sorted(trend["errors"].items()):
        print(f"{name:>16}: ERROR {error}", file=sys.stderr)
    print(f"wrote {os.path.normpath(out_path)} "
          f"({len(trend['benchmarks'])} benchmark(s))")

    if args.check and not trend["benchmarks"]:
        print("FAIL: no BENCH_*.json reports found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

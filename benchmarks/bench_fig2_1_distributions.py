"""E1 + E3 — Figure 2.1: AND/OR transformations of the uniform distribution.

Paper claims reproduced here:

* AND chains concentrate ~50% of the mass near zero; OR chains mirror this
  at one (claims (B)/(C) of Section 1).
* Skewness grows with chain length and with falling correlation.
* A balanced AND/OR mix restores a near-uniform shape.
* Truncated hyperbolas fit &X / &&X / &&&X with relative errors about
  1/4, 1/7, 1/23, improving with chain length (Section 2 text).
"""

from _util import Report, run_once

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import fit_truncated_hyperbola
from repro.distribution.operators import and_c, apply_chain
from repro.distribution.shapes import classify_shape, shape_metrics

BINS = 400


def _row(label, dist):
    metrics = shape_metrics(dist)
    return [
        label,
        f"{metrics.median:.3f}",
        f"{metrics.mass_near_zero:.3f}",
        f"{metrics.mass_near_one:.3f}",
        f"{metrics.std:.3f}",
        classify_shape(dist),
    ]


def experiment() -> dict:
    report = Report("fig2_1", "Figure 2.1 — transformations of the uniform distribution")
    uniform = SelectivityDistribution.uniform(BINS)

    rows = [_row("X (uniform)", uniform)]
    for chain in ("&", "&&", "&&&", "|", "||", "|||", "&|", "&&||"):
        rows.append(_row(chain + "X", apply_chain(uniform, chain)))
    report.line("\nAND/OR chains under the unknown-correlation assumption:")
    report.table(["chain", "median", "mass<=.05", "mass>=.95", "std", "shape"], rows)

    report.line("\nsingle AND under explicit correlation assumptions:")
    rows = [
        _row(f"&[c={c:+.1f}]X", and_c(uniform, uniform, c))
        for c in (1.0, 0.5, 0.0, -0.5, -0.9, -1.0)
    ]
    report.table(["corr", "median", "mass<=.05", "mass>=.95", "std", "shape"], rows)
    report.line("\npaper: skew increases 'upon correlation decrease, and upon")
    report.line("adding more operators of the same kind'; '&|' restores symmetry.")

    report.line("\nE3 — truncated-hyperbola fit errors (paper: 1/4, 1/7, 1/23):")
    fits = []
    checks = {}
    for n, paper in ((1, "1/4"), (2, "1/7"), (3, "1/23")):
        fit = fit_truncated_hyperbola(apply_chain(uniform, "&" * n))
        checks[n] = fit.relative_error
        fits.append([
            "&" * n + "X", paper,
            f"{fit.relative_error:.4f} (~1/{1/fit.relative_error:.1f})",
            f"{fit.b:.4f}",
        ])
    report.table(["chain", "paper error", "measured error", "fitted b"], fits)

    # headline assertions
    anded = apply_chain(uniform, "&&")
    assert anded.mass_below(0.1) >= 0.5, "claim (B): half mass near zero"
    orred = apply_chain(uniform, "||")
    assert orred.mass_above(0.9) >= 0.5, "claim (C): mirror concentration"
    assert checks[1] > checks[2] > checks[3], "fit error falls with chain length"
    mixed = apply_chain(uniform, "&|", operand="self")
    assert mixed.total_variation_distance(uniform) < 0.2, "balanced mix ~ uniform"

    report.line("\nassertions: (B) mass<=0.1 of &&X >= 0.5; (C) mirror for ||X;")
    report.line("fit error decreases with chain length; '&|' near-uniform  [all hold]")
    report.save()
    return checks


def test_fig2_1_distribution_shapes(benchmark):
    checks = run_once(benchmark, experiment)
    assert checks[1] > checks[2] > checks[3]

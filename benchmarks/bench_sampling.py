"""E11 — Section 5's sampling hook: pseudo-ranked vs acceptance/rejection.

The paper points past descent estimation toward B+-tree sampling and cites
[Ant92] as "significantly superseding" the Olken/Rotem acceptance/rejection
method [OlRo89]. Reproduced: on trees with uneven fanouts, the pseudo-ranked
sampler needs far fewer root-to-leaf walks per useful sample while keeping
estimates unbiased, including for predicates no range scan can express.
"""

import random

import numpy as np

from _util import Report, run_once

from repro.btree.sampling import (
    acceptance_rejection_sample,
    pseudo_ranked_sample,
    selectivity_from_sample,
)
from repro.btree.tree import BTree
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager
from repro.storage.rid import RID

SAMPLE = 200


def build_tree(n=20_000, order=32) -> BTree:
    tree = BTree(BufferPool(Pager(), 8192), "ix", order=order)
    rng = np.random.default_rng(17)
    keys = rng.integers(0, 1_000_000, size=n)
    for i, key in enumerate(keys):
        tree.insert(int(key), RID(i, 0))
    return tree


def experiment() -> dict:
    report = Report("sampling", "Section 5 — random sampling from B+-trees")
    tree = build_tree()
    report.line(f"\ntree: {tree.entry_count} entries, height {tree.height}, "
                f"order {tree.order}")

    rows = []
    stats = {}
    for label, sampler in (
        ("acceptance/rejection [OlRo89]", acceptance_rejection_sample),
        ("pseudo-ranked [Ant92]", pseudo_ranked_sample),
    ):
        rng = random.Random(23)
        tree.buffer_pool.clear()
        meter = CostMeter()
        result = sampler(tree, SAMPLE, rng, meter)
        # estimate a range selectivity and an arithmetic predicate
        range_est = selectivity_from_sample(result, lambda key: key[0] < 250_000)
        mod_est = selectivity_from_sample(result, lambda key: key[0] % 2 == 0)
        stats[label] = {
            "walks": result.walks,
            "range": range_est,
        }
        rows.append([
            label, len(result.entries), result.walks,
            f"{result.acceptance_rate:.2f}",
            f"{range_est:.3f}", f"{mod_est:.3f}",
        ])
    report.line()
    report.table(
        ["method", "samples", "walks", "accept rate", "P(k<250k) est (true .25)",
         "P(even) est (true .50)"],
        rows,
    )
    olken = stats["acceptance/rejection [OlRo89]"]
    ranked = stats["pseudo-ranked [Ant92]"]
    report.line(f"\nwalks per sample: Olken {olken['walks'] / SAMPLE:.1f}, "
                f"pseudo-ranked {ranked['walks'] / SAMPLE:.1f}")
    report.line("(every pseudo-ranked walk contributes — cheap enough for 'heavy")
    report.line(" usage within the dynamic optimization framework')")
    assert ranked["walks"] <= olken["walks"]
    assert abs(ranked["range"] - 0.25) < 0.1

    # repeatability across seeds: estimator stays near truth
    errors = []
    for seed in range(10):
        result = pseudo_ranked_sample(tree, SAMPLE, random.Random(seed))
        errors.append(abs(selectivity_from_sample(result, lambda k: k[0] < 250_000) - 0.25))
    report.line(f"\npseudo-ranked error over 10 seeds: mean {np.mean(errors):.3f}, "
                f"max {np.max(errors):.3f}")
    report.save()
    return {"olken_walks": olken["walks"], "ranked_walks": ranked["walks"]}


def test_sampling_methods(benchmark):
    results = run_once(benchmark, experiment)
    assert results["ranked_walks"] <= results["olken_walks"]

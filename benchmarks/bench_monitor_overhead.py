"""Continuous-monitoring overhead budget: always-on telemetry must be cheap.

The time-series monitor (`repro.obs.timeseries`) hooks the scheduler's
quantum loop: one integer compare per quantum, a wall-clock read every
``check_every`` quanta, and a full counter snapshot only when the sampling
interval has actually elapsed. This benchmark holds that always-on path to
a <2% throughput budget against the identical workload with monitoring
disabled (``monitor_enabled=False``), min-of-N wall clocks on both sides.

Methodology follows ``bench_audit_overhead.py``: the off and on runs are
measured *in this process with trials interleaved* so machine-wide drift
(thermal throttling, noisy CI neighbors) hits both sides equally, and each
sweep times the monitoring-off workload twice — the spread between those
two identical runs is the runner's measurement noise with the true
overhead at exactly zero, and it widens the budget so a noisy runner
degrades sensitivity instead of flaking. When the gate still looks
breached, up to two more rounds of sweeps are folded into the minima
before failing. The monitoring-on run must deliver byte-identical rows
(SHA-256 over the full delivered row stream) with byte-identical total
I/O: the monitor is a pure observer.

The report also carries the drift-detector acceptance scenario end to end:
a steady workload whose histogram-corrected estimates converge (the
q-error drift detector must stay quiet), then a bulk data change behind
the learned statistics' back (the detector must fire). Both halves gate.

Results land in ``BENCH_monitor_overhead.json`` at the repository root.

Usage::

    python benchmarks/bench_monitor_overhead.py          # full workload
    python benchmarks/bench_monitor_overhead.py --smoke  # tiny, CI gate

Exit status is non-zero when the JSON lacks required keys, the
monitoring-on overhead exceeds the budget, rows or I/O differ between the
runs, or the drift detector misbehaves in either scenario half.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import repro
from bench_audit_overhead import interleaved_best_of
from bench_throughput import N_SESSIONS, band_sql
from bench_trace_overhead import REFERENCE_BATCH
from repro.config import DEFAULT_CONFIG
from repro.obs import SteppingClock

#: gate: always-on monitoring may cost at most this fraction of throughput
OVERHEAD_BUDGET_PCT = 2.0
#: the monitoring-on arm samples aggressively (every 20ms — 12.5x the
#: default 250ms) so the gate prices real snapshot work, not an idle
#: hook; a ~50us counter snapshot at 50 samples/sec is ~0.3% by
#: construction, and the gate catches any regression that breaks that
MONITOR_INTERVAL = 0.02

REQUIRED_KEYS = [
    "workload",
    "monitor_off",
    "monitor_on",
    "rows_identical",
    "io_identical",
    "overhead_pct",
    "measured_noise_pct",
    "budget_pct",
    "drift_detector",
    "smoke",
]


def run_workload(monitor_enabled: bool, rows: int, span: int, repeats: int) -> dict:
    """bench_throughput's 4-session workload, monitoring on or off."""
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(
            batch_size=REFERENCE_BATCH,
            monitor_enabled=monitor_enabled,
            monitor_interval=MONITOR_INTERVAL,
        ),
        max_concurrency=N_SESSIONS,
    )
    table = conn.create_table(
        "EVENTS", [("ID", "int"), ("V", "int")],
        rows_per_page=32, index_order=32,
    )
    table.insert_many((i, i % 97) for i in range(rows))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    sessions = [conn.session(f"s{i}") for i in range(N_SESSIONS)]
    for i, session in enumerate(sessions):  # warm-up (cache + code paths)
        session.submit(band_sql(i, rows, span))
    conn.server.run_until_idle()
    handles = []
    start = time.perf_counter()
    for _ in range(repeats):
        for i, session in enumerate(sessions):
            handles.append(session.submit(band_sql(i, rows, span)))
    conn.server.run_until_idle()
    elapsed = time.perf_counter() - start
    delivered = 0
    digest = hashlib.sha256()
    for handle in handles:
        result_rows = handle.result.rows
        delivered += len(result_rows)
        digest.update(repr(result_rows).encode())
    samples = conn.server.monitor.samples_taken if monitor_enabled else 0
    if monitor_enabled:
        assert conn.server.monitor is not None, "monitoring on but no monitor"
    else:
        assert conn.server.monitor is None, "monitoring off but monitor built"
    report = {
        "rows": delivered,
        "queries": len(handles),
        "io_total": sum(h.result.total_io for h in handles),
        "rows_sha256": digest.hexdigest(),
        "monitor_samples": samples,
        "wall_sec": round(elapsed, 6),
        "rows_per_sec": round(delivered / elapsed, 1),
        "queries_per_sec": round(len(handles) / elapsed, 2),
    }
    conn.close()
    return report


def drift_scenario(rows: int, steady_rounds: int, shift_rounds: int) -> dict:
    """The acceptance scenario: quiet while steady, fire on a data shift.

    Mirrors ``tests/test_monitor.py::TestDriftEndToEnd`` — self-tuning
    histograms learn absolute range cardinalities on the steady workload,
    then a bulk insert multiplies every queried range ~8x behind their
    back and the next round's q-errors jump until the histograms relearn.
    """
    clock = SteppingClock(auto=1e-6)
    conn = repro.connect(
        buffer_capacity=256,
        config=DEFAULT_CONFIG.with_(
            selectivity_feedback=False,
            monitor_interval=0.25,
            drift_min_intervals=3,
        ),
        clock=clock,
    )
    table = conn.create_table(
        "EVENTS", [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=16, index_order=16,
    )
    table.insert_many((i, i % 89, (i * 7) % 1000) for i in range(rows))
    table.create_index("IX_AB", ["A", "B"])
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    table.config = table.config.with_(shortcut_rid_count=0)
    span = rows // 4

    def run_round() -> None:
        for w in range(4):
            lo = w * span
            conn.execute(
                "select A, B from EVENTS"
                " where A >= :LO and A < :HI and B = :BV",
                {"LO": lo, "HI": lo + span, "BV": (w * 37) % 89},
            )
        clock.advance(0.3)
        conn.health()  # force one monitor window per round

    for _ in range(steady_rounds):
        run_round()
    health = conn.server.health_monitor
    steady_breaches = health.breaches.get("qerror-drift", 0)
    table.insert_many(
        (i % rows, (i * 11) % 89, i % 1000) for i in range(rows, rows * 8)
    )
    for _ in range(shift_rounds):
        run_round()
    shift_breaches = health.breaches.get("qerror-drift", 0) - steady_breaches
    incidents = health.incidents
    conn.close()
    return {
        "rows": rows,
        "steady_rounds": steady_rounds,
        "shift_rounds": shift_rounds,
        "steady_breaches": steady_breaches,
        "shift_breaches": shift_breaches,
        "incidents": incidents,
        "quiet_on_steady": steady_breaches == 0,
        "fired_on_shift": shift_breaches >= 1,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tables, for CI (workload matches bench_throughput --smoke)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_monitor_overhead.json)",
    )
    args = parser.parse_args(argv)

    # longer timed sections than the audit bench: the trial must span many
    # sampling intervals for the on-arm to pay a representative number of
    # snapshots (a sub-interval trial would gate nothing)
    if args.smoke:
        rows, span, repeats, trials = 800, 120, 128, 5
        drift_rows, steady_rounds, shift_rounds = 1200, 8, 3
    else:
        rows, span, repeats, trials = 6400, 1200, 16, 5
        drift_rows, steady_rounds, shift_rounds = 2400, 10, 3

    # "monitor_off_b" times the identical off workload a second time each
    # sweep; the spread between the two off runs calibrates the gate
    runs = {
        "monitor_off": lambda: run_workload(False, rows, span, repeats),
        "monitor_on": lambda: run_workload(True, rows, span, repeats),
        "monitor_off_b": lambda: run_workload(False, rows, span, repeats),
    }
    best = interleaved_best_of(runs, trials)
    for _ in range(2):
        ratio = best["monitor_on"]["wall_sec"] / best["monitor_off"]["wall_sec"]
        noise = abs(
            best["monitor_off_b"]["wall_sec"] / best["monitor_off"]["wall_sec"]
            - 1.0
        )
        if (ratio - 1.0) * 100 <= OVERHEAD_BUDGET_PCT + noise * 100:
            break
        best = interleaved_best_of(runs, trials, best)
    off, on = best["monitor_off"], best["monitor_on"]
    noise_pct = round(
        abs(best["monitor_off_b"]["wall_sec"] / off["wall_sec"] - 1.0) * 100, 2
    )
    overhead = round((1.0 - on["rows_per_sec"] / off["rows_per_sec"]) * 100, 2)
    rows_identical = off["rows_sha256"] == on["rows_sha256"]
    io_identical = off["io_total"] == on["io_total"]

    drift = drift_scenario(drift_rows, steady_rounds, shift_rounds)

    report = {
        "workload": {
            "rows": rows, "span": span, "repeats": repeats, "trials": trials,
            "sessions": N_SESSIONS, "batch_size": REFERENCE_BATCH,
            "monitor_interval": MONITOR_INTERVAL,
        },
        "monitor_off": off,
        "monitor_on": on,
        "rows_identical": rows_identical,
        "io_identical": io_identical,
        "overhead_pct": overhead,
        "measured_noise_pct": noise_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "drift_detector": drift,
        "smoke": args.smoke,
    }

    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    out_path = args.out or os.path.join(root, "BENCH_monitor_overhead.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"monitor off: {off['rows_per_sec']:>10.1f} rows/s")
    print(f"monitor on : {on['rows_per_sec']:>10.1f} rows/s "
          f"({overhead:+.2f}% vs off, budget {OVERHEAD_BUDGET_PCT}% "
          f"+ measured noise {noise_pct}%, "
          f"{on['monitor_samples']} samples taken)")
    print(f"rows {'identical' if rows_identical else 'DIFFER'}, "
          f"io {'identical' if io_identical else 'DIFFERS'}")
    print(f"drift detector: "
          f"{'quiet' if drift['quiet_on_steady'] else 'FIRED'} on steady "
          f"({drift['steady_breaches']} breaches), "
          f"{'fired' if drift['fired_on_shift'] else 'QUIET'} on shift "
          f"({drift['shift_breaches']} breaches, "
          f"{drift['incidents']} incidents)")
    print(f"wrote {os.path.normpath(out_path)}")

    failures = []
    written = json.load(open(out_path))
    for key in REQUIRED_KEYS:
        if key not in written:
            failures.append(f"missing key in JSON: {key}")
    if not rows_identical:
        failures.append("monitoring changed delivered rows (must be a pure "
                        "observer)")
    if not io_identical:
        failures.append(
            f"monitoring changed physical I/O: off={off['io_total']} "
            f"on={on['io_total']}"
        )
    if overhead > OVERHEAD_BUDGET_PCT + noise_pct:
        failures.append(
            f"monitoring-on costs {overhead}% "
            f"(> {OVERHEAD_BUDGET_PCT}% budget + {noise_pct}% measured noise)"
        )
    if on["monitor_samples"] <= 0:
        failures.append("monitoring-on run never sampled (gate is vacuous)")
    if not drift["quiet_on_steady"]:
        failures.append(
            f"q-error drift detector fired {drift['steady_breaches']}x on a "
            "steady workload"
        )
    if not drift["fired_on_shift"]:
        failures.append("q-error drift detector missed the data shift")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E13 (extension) — the OR union joint scan.

Section 8: "Covering ORs and between-index subexpressions of table-wide
Boolean expressions is a rich source for extending the tactics and the
architecture." This benchmark exercises our implementation of that
extension: union-of-range-scans with two-stage competition against Tscan.

Measured: I/O of the union tactic vs plain Tscan across OR selectivities,
the switch point where the union correctly gives up, and IN-list retrieval
(expanded to equality disjuncts) vs full scans.
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.expr.ast import col, var
from repro.expr.eval import evaluate


def build():
    db = Database(buffer_capacity=48)
    table = db.create_table(
        "EVENTS", [("KIND", "int"), ("REGION", "int"), ("TS", "int")],
        rows_per_page=8, index_order=16,
    )
    rng = np.random.default_rng(21)
    for i in range(8000):
        table.insert(
            (int(rng.integers(0, 400)), int(rng.integers(0, 50)), i)
        )
    table.create_index("IX_KIND", ["KIND"])
    table.create_index("IX_REGION", ["REGION"])
    return db, table


def experiment() -> dict:
    report = Report("or_union", "Extension — OR union joint scan (Section 8 direction)")
    db, table = build()
    tscan = table.heap.page_count
    report.line(f"\nEVENTS: {table.row_count} rows / {tscan} pages")
    report.line("restriction: KIND = :K OR REGION = :R, sweeping the KIND arm\n")

    query = (col("KIND").eq(var("K"))) | (col("REGION") <= var("R"))
    rows = []
    stats = {}
    for r_bound in (0, 2, 8, 20, 45):
        bindings = {"K": 7, "R": r_bound}
        db.cold_cache()
        run = table.select(where=query, host_vars=bindings)
        expected = sum(
            1 for _, row in table.heap.scan()
            if evaluate(query, row, table.schema.position, bindings)
        )
        assert len(run.rows) == expected
        ending = run.description.split(" -> ")[-1][:26]
        rows.append([r_bound, len(run.rows), tscan, f"{run.total_cost:.0f}", ending])
        stats[r_bound] = run.total_cost
    report.table(["R bound", "rows", "tscan I/O", "union tactic", "ending"], rows)
    report.line("\nselective ORs pay a fraction of the table scan; once the union")
    report.line("projects past the Tscan cost the competition abandons it mid-scan.")
    assert stats[0] < 0.5 * tscan
    assert stats[2] < 0.6 * tscan

    # IN-list retrieval
    report.line("\nIN-list retrieval (expanded to equality disjuncts):")
    rows = []
    for values in ([3], [3, 90, 180], list(range(0, 200, 10))):
        expr = col("KIND").in_(values)
        db.cold_cache()
        run = table.select(where=expr)
        expected = sum(1 for _, row in table.heap.scan() if row[0] in set(values))
        assert len(run.rows) == expected
        rows.append([len(values), len(run.rows), f"{run.total_cost:.0f}",
                     run.description.split(" -> ")[-1][:26]])
    report.table(["IN values", "rows", "cost", "ending"], rows)
    report.line(f"(full scan would cost {tscan}; the engine keeps the union as long")
    report.line(" as it projects cheaper, and falls back once it does not)")
    report.save()
    return stats


def test_or_union_extension(benchmark):
    stats = run_once(benchmark, experiment)
    assert stats[0] < stats[45]

"""E18 — Section 3(b): the clustering effect on fetch costs.

    "Some indexes or index portions can have their sequence coincided to a
    various degree with physical record locations. This clustering effect
    may not be known or may be hard to detect, so it adds a significant
    uncertainty to the cost estimation."

Measured: the same logical retrieval (same RID count) over tables whose
physical placement ranges from fully clustered to fully scattered. The
Yao-based projection — which assumes scattered placement — stays constant,
while the real sorted-fetch cost varies by multiples. The dynamic engine
still returns exact rows at every clustering level; the residual cost
spread is precisely the uncertainty the paper says static estimation
cannot remove.
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.expr.ast import col
from repro.storage.rid import yao_pages_touched
from repro.workloads.generators import clustered_permutation, uniform_ints

ROWS = 6000


def build(clustering: float):
    db = Database(buffer_capacity=48)
    table = db.create_table(
        "EVENTS", [("KEY", "int"), ("PAD", "int")], rows_per_page=8, index_order=16
    )
    rng = np.random.default_rng(55)
    keys = clustered_permutation(rng, uniform_ints(rng, ROWS, 0, 9999), clustering)
    for i, key in enumerate(keys):
        table.insert((key, i))
    table.create_index("IX_KEY", ["KEY"])
    return db, table


def experiment() -> dict:
    report = Report("clustering", "Section 3(b) — clustering effect on fetch cost")
    expr = col("KEY").between(1000, 1400)  # ~240 rows at every clustering level
    report.line(f"\n{ROWS} rows / 750 pages; retrieval KEY BETWEEN 1000 AND 1400")
    report.line("identical logical work at every clustering level:\n")

    rows = []
    costs = {}
    for clustering in (1.0, 0.7, 0.3, 0.0):
        db, table = build(clustering)
        expected = sum(1 for _, row in table.heap.scan() if 1000 <= row[0] <= 1400)
        yao = yao_pages_touched(table.heap.page_count, table.heap.rows_per_page, expected)
        db.cold_cache()
        run = table.select(where=expr)
        assert len(run.rows) == expected
        costs[clustering] = run.total_cost
        rows.append([
            f"{clustering:.1f}", expected, f"{yao:.0f}", f"{run.total_cost:.0f}",
            run.description.split(" -> ")[-1][:24],
        ])
    report.table(
        ["clustering", "rows", "Yao projection", "actual cost", "ending"],
        rows,
    )
    spread = costs[0.0] / max(costs[1.0], 1.0)
    report.line(f"\nthe projection is placement-blind (one number for all rows);")
    report.line(f"the actual cost varies {spread:.1f}x between fully clustered and")
    report.line("fully scattered placement. This is exactly the uncertainty the")
    report.line("paper assigns to 'engineering around the L-shape': the projection")
    report.line("guides the competition, the actual run settles the bill.")
    assert spread > 2.0
    report.save()
    return {"spread": spread}


def test_clustering_uncertainty(benchmark):
    results = run_once(benchmark, experiment)
    assert results["spread"] > 2.0

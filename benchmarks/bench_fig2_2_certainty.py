"""E2 — Figure 2.2: degradation of certainty.

A precise estimate (bell with mean 0.2, error 0.005) is destroyed by
AND/OR chains under the unknown-correlation assumption. Reproduced
statements (Section 2):

(1) a single AND or OR inflates the spread to the order of the distance
    from the interval end;
(2) repeated ORing spreads the bell toward the center, roughly doubling
    the spread each time, until further operators produce an L-shape;
(3) AND/OR-disbalanced chains produce L-shapes of growing skewness.
"""

from _util import Report, run_once

from repro.distribution.density import SelectivityDistribution
from repro.distribution.operators import apply_chain
from repro.distribution.shapes import classify_shape

MEAN, ERROR, BINS = 0.2, 0.005, 256


def experiment() -> dict:
    report = Report("fig2_2", "Figure 2.2 — degradation of certainty (bell m=0.2, e=0.005)")
    bell = SelectivityDistribution.bell(MEAN, ERROR, BINS)

    rows = []
    tracked = {}
    chains = ("", "&", "|", "||", "|||", "||||", "&&", "&&&", "|||&")
    for chain in chains:
        dist = apply_chain(bell, chain, operand="self") if chain else bell
        tracked[chain] = dist
        rows.append([
            (chain + "X") if chain else "X",
            f"{dist.mean():.3f}",
            f"{dist.std():.4f}",
            f"{dist.mass_below(0.05):.3f}",
            f"{dist.mass_above(0.95):.3f}",
            classify_shape(dist),
        ])
    report.line("\nchains applied with operand='self' (recursive unary reading):")
    report.table(["chain", "mean", "std", "mass<=.05", "mass>=.95", "shape"], rows)

    # statement (1): one operator inflates spread to the order of the
    # distance from the end (0.2), i.e. by more than an order of magnitude
    inflation_and = tracked["&"].std() / ERROR
    inflation_or = tracked["|"].std() / ERROR
    report.line(f"\n(1) spread inflation by one operator: &X x{inflation_and:.0f}, "
                f"|X x{inflation_or:.0f} (start e=0.005, distance-to-end=0.2)")
    assert inflation_and > 5 and inflation_or > 5

    # statement (2): ORing repeatedly roughly doubles the spread until the
    # bell reaches the center
    doubling = tracked["||"].std() / tracked["|"].std()
    report.line(f"(2) second OR multiplies the spread by {doubling:.2f} (~2 expected)")
    assert 1.4 < doubling < 3.0

    # statement (3): repeated same-side operators give L-shapes of growing skew
    and_masses = [tracked["&&"].mass_below(0.05), tracked["&&&"].mass_below(0.05)]
    report.line(f"(3) &&X / &&&X mass near zero: {and_masses[0]:.3f} -> {and_masses[1]:.3f}")
    assert and_masses[1] > and_masses[0] > 0.5
    or_shape = classify_shape(tracked["||||"])
    report.line(f"    ||||X classifies as {or_shape} (paper: L-shape after the bell")
    report.line("    reaches the interval end)")

    report.line("\nassertions (1)-(3) hold")
    report.save()
    return {"inflation": inflation_and, "doubling": doubling}


def test_fig2_2_certainty_degradation(benchmark):
    results = run_once(benchmark, experiment)
    assert results["inflation"] > 5

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims, prints a "paper says / we measure" table, and appends it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote it. The
pytest-benchmark fixture wraps the computation (one round — these are
experiment harnesses, not microbenchmarks).
"""

from __future__ import annotations

import io
import os
from typing import Callable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Report:
    """Collects experiment output and mirrors it to a results file."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.buffer = io.StringIO()
        self.line("=" * 72)
        self.line(title)
        self.line("=" * 72)

    def line(self, text: str = "") -> None:
        """Append one line (also echoed to stdout at save time)."""
        self.buffer.write(text + "\n")

    def table(self, headers: list[str], rows: list[list], widths: list[int] | None = None) -> None:
        """Append a fixed-width table."""
        if widths is None:
            widths = [
                max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) + 2
                if rows
                else len(str(headers[i])) + 2
                for i in range(len(headers))
            ]
        def fmt(cells):
            return "".join(str(cell).rjust(width) for cell, width in zip(cells, widths))
        self.line(fmt(headers))
        self.line(fmt(["-" * (width - 2) for width in widths]))
        for row in rows:
            self.line(fmt(row))

    def save(self) -> str:
        """Write the report file and print it."""
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = self.buffer.getvalue()
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print("\n" + text)
        return text


def run_once(benchmark, fn: Callable[[], object]):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

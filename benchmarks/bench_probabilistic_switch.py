"""E15 (extension) — probabilistic vs deterministic switch rules.

Section 3's two-stage competition switches "based on some probabilistic
cost model" ([Ant91B]); the shipped Section 6 criterion is the
deterministic 95% threshold. This ablation races the two rules across a
selectivity sweep: the Bayesian rule should match the threshold on easy
cases and waste less on borderline ones, where the posterior's width
captures how trustworthy the projection actually is.
"""

from _util import Report, run_once

from repro.db.session import Database
from repro.expr.ast import col, var
from repro.workloads.scenarios import build_parts_table


def build(probabilistic: bool):
    db = Database(buffer_capacity=48)
    table = build_parts_table(db, rows=6000)
    table.config = table.config.with_(probabilistic_switch=probabilistic)
    return db, table


def experiment() -> dict:
    report = Report(
        "probabilistic_switch",
        "Extension — Bayesian vs deterministic scan-abandonment rules",
    )
    query = (col("WEIGHT") <= var("W")) & (col("SIZE") <= var("S"))
    report.line("\nPARTS 6000 rows; WEIGHT <= :W AND SIZE <= :S sweep; costs per rule:\n")

    rows = []
    totals = {False: 0.0, True: 0.0}
    for bound in (5, 15, 50, 120, 300, 600, 1000):
        line = [bound]
        for probabilistic in (False, True):
            db, table = build(probabilistic)
            db.cold_cache()
            run = table.select(where=query, host_vars={"W": bound, "S": bound})
            totals[probabilistic] += run.total_cost
            line.append(f"{run.total_cost:.0f}")
            if probabilistic:
                line.append(run.description.split(" -> ")[-1][:22])
        rows.append(line)
    report.table(["W=S", "deterministic", "bayesian", "bayesian ending"], rows)
    report.line(f"\nsweep totals: deterministic {totals[False]:.0f}, "
                f"bayesian {totals[True]:.0f}")
    report.line("(both rules find the same crossovers; the posterior rule's")
    report.line(" advantage is robustness, not headline cost — it needs no")
    report.line(" hand-picked threshold)")

    # robustness: a misleading early sample (first entries all survive the
    # filter) must not fool either rule into premature abandonment
    for probabilistic in (False, True):
        db, table = build(probabilistic)
        db.cold_cache()
        run = table.select(
            where=(col("COLOR").eq(7)) & (col("WEIGHT") <= 150), host_vars={}
        )
        expected = sum(
            1 for _, row in table.heap.scan() if row[1] == 7 and row[2] <= 150
        )
        assert len(run.rows) == expected
    report.line("\nboth rules return exact results on the misleading-prefix query")
    report.save()
    return {"deterministic": totals[False], "bayesian": totals[True]}


def test_probabilistic_switch_ablation(benchmark):
    results = run_once(benchmark, experiment)
    assert results["bayesian"] < 1.5 * results["deterministic"]

"""E17 — Section 1's premise: estimation error explodes with join count.

    "Ioannidis and Christodoulakis [IoCh91] demonstrated that the
    cardinality error of n-way join grows exponentially with n even if we
    have good estimates of the number of records delivered by the table
    scans."

Reproduced at the distribution level with the Section 2 toolkit: start
from precise per-table estimates (tight bells), chain JOIN transformations
under the unknown-correlation assumption, and track how the relative
uncertainty of the result grows with n — and how quickly the distribution
degenerates to the L-shape family that motivates competition.
"""

from _util import Report, run_once

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import fit_truncated_hyperbola
from repro.distribution.operators import join_unknown
from repro.distribution.shapes import classify_shape


def experiment() -> dict:
    report = Report("error_propagation", "Section 1 — error growth with join count")
    base = SelectivityDistribution.bell(0.3, 0.01, 320)
    report.line("\nper-table estimate: bell mean 0.30, error 0.01 (a *good* estimate)")
    report.line("join chain under the unknown-correlation assumption:\n")

    rows = []
    spreads = []
    result = base
    for n in range(0, 6):
        if n > 0:
            result = join_unknown(result, base)
        mean = result.mean()
        std = result.std()
        relative = std / mean if mean > 0 else float("inf")
        fit = fit_truncated_hyperbola(result)
        spreads.append(relative)
        rows.append([
            n, f"{mean:.4f}", f"{std:.4f}", f"{relative:.2f}",
            classify_shape(result), f"{fit.relative_error:.3f}",
        ])
    report.table(
        ["joins", "mean", "std", "relative error", "shape", "hyperbola fit err"],
        rows,
    )

    growth = [spreads[i + 1] / max(spreads[i], 1e-9) for i in range(len(spreads) - 1)]
    report.line(f"\nrelative-error growth factors per join: "
                + ", ".join(f"{g:.1f}x" for g in growth))
    report.line("the first join alone multiplies the relative error by "
                f"{growth[0]:.0f}x; by n=3 the distribution is "
                f"{classify_shape(join_unknown(join_unknown(join_unknown(base, base), base), base))},")
    report.line("i.e. Zipf-like — 'the traditional compile-time optimizers are")
    report.line("largely indiscriminating in choosing an execution plan'.")

    assert spreads[1] > 5 * spreads[0]   # one join nukes the precision
    assert all(later >= earlier * 0.9 for earlier, later in zip(spreads, spreads[1:]))
    report.save()
    return {"spreads": spreads}


def test_error_propagation(benchmark):
    results = run_once(benchmark, experiment)
    assert results["spreads"][1] > 5 * results["spreads"][0]

"""Throughput benchmark for batched execution with buffer-pool read-ahead.

Measures rows/sec and queries/sec through the full stack (SQL front end,
scheduler, dynamic optimizer, buffer pool) for a single-session and a
4-session workload at batch sizes {1, 8, 64, 256}, and verifies on the way
that batching is accounting-transparent: the summed ``CostMeter.io_total``
of every query is identical at every batch size. Also measures the
micro-level effect of ``slots=True`` on the hot ``CostMeter`` dataclass.

Results land in ``BENCH_throughput.json`` at the repository root.

Usage::

    python benchmarks/bench_throughput.py          # full run, asserts >=3x
    python benchmarks/bench_throughput.py --smoke  # tiny tables, CI gate

The smoke run exits non-zero if the JSON is missing required keys or if
batch 64 is slower than batch 1 on the 4-session workload; the full run
additionally enforces the >=3x rows/sec target at batch 64 vs 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import repro
from repro.config import DEFAULT_CONFIG
from repro.storage.buffer_pool import CostMeter

BATCH_SIZES = [1, 8, 64, 256]
N_SESSIONS = 4

REQUIRED_KEYS = [
    "batch_sizes",
    "single_session",
    "multi_session_4",
    "speedup_batch64_vs_1",
    "io_equivalent",
    "slots",
    "smoke",
]


def build_connection(batch_size: int, rows: int) -> repro.Connection:
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(batch_size=batch_size),
        max_concurrency=N_SESSIONS,
    )
    # realistic page geometry: a heap page holds 32 rows, a B-tree node
    # 32 keys (the SQL DDL defaults model tiny didactic pages instead)
    table = conn.create_table(
        "EVENTS", [("ID", "int"), ("V", "int")],
        rows_per_page=32, index_order=32,
    )
    table.insert_many((i, i % 97) for i in range(rows))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return conn


def band_sql(band: int, rows: int, span: int) -> str:
    # index-only range retrieval: one engine step per index entry, which is
    # exactly the step granularity the scheduler pays a resumption for
    lo = (band * (rows // N_SESSIONS)) % max(rows - span, 1)
    return f"select ID from EVENTS where ID between {lo} and {lo + span - 1}"


def run_single_session(batch_size: int, rows: int, span: int, repeats: int) -> dict:
    conn = build_connection(batch_size, rows)
    conn.execute(band_sql(0, rows, span))  # warm-up (cache + code paths)
    delivered = queries = 0
    io_total = 0
    start = time.perf_counter()
    for repeat in range(repeats):
        result = conn.execute(band_sql(repeat % N_SESSIONS, rows, span))
        delivered += len(result.rows)
        queries += 1
        io_total += result.total_io
    elapsed = time.perf_counter() - start
    return _summary(delivered, queries, io_total, elapsed)


def run_multi_session(batch_size: int, rows: int, span: int, repeats: int) -> dict:
    conn = build_connection(batch_size, rows)
    sessions = [conn.session(f"s{i}") for i in range(N_SESSIONS)]
    for i, session in enumerate(sessions):  # warm-up
        session.submit(band_sql(i, rows, span))
    conn.server.run_until_idle()
    handles = []
    start = time.perf_counter()
    for repeat in range(repeats):
        for i, session in enumerate(sessions):
            handles.append(session.submit(band_sql(i, rows, span)))
    conn.server.run_until_idle()
    elapsed = time.perf_counter() - start
    delivered = sum(len(h.result.rows) for h in handles)
    io_total = sum(h.result.total_io for h in handles)
    return _summary(delivered, len(handles), io_total, elapsed)


def best_of(run, trials: int) -> dict:
    """Run a workload ``trials`` times and keep the fastest wall clock.

    Min-of-N is the standard defense against scheduler noise in wall-clock
    benchmarks; the I/O accounting must be identical on every trial.
    """
    results = [run() for _ in range(trials)]
    assert len({r["io_total"] for r in results}) == 1, "io varies across trials"
    return min(results, key=lambda r: r["wall_sec"])


def _summary(delivered: int, queries: int, io_total: int, elapsed: float) -> dict:
    return {
        "rows": delivered,
        "queries": queries,
        "io_total": io_total,
        "wall_sec": round(elapsed, 6),
        "rows_per_sec": round(delivered / elapsed, 1),
        "queries_per_sec": round(queries / elapsed, 2),
    }


def measure_slots_delta(iterations: int = 200_000) -> dict:
    """Time the hot charge path on the slotted CostMeter vs a __dict__ twin."""

    @dataclass
    class DictMeter:  # same fields as CostMeter, but with a __dict__
        name: str = ""
        io_reads: int = 0
        io_writes: int = 0
        buffer_hits: int = 0
        cpu: float = 0.0

        def charge(self) -> None:
            self.io_reads += 1
            self.buffer_hits += 1
            self.cpu += 0.1

    slotted = CostMeter(name="bench")
    dict_meter = DictMeter(name="bench")

    def time_charges(fn) -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return time.perf_counter() - start

    def charge_slotted() -> None:
        slotted.charge_hit()
        slotted.charge_cpu(0.1)

    slotted_sec = time_charges(charge_slotted)
    dict_sec = time_charges(dict_meter.charge)
    has_dict = hasattr(slotted, "__dict__")
    return {
        "iterations": iterations,
        "slotted_ns_per_op": round(slotted_sec / iterations * 1e9, 1),
        "dict_ns_per_op": round(dict_sec / iterations * 1e9, 1),
        "cost_meter_has_dict": has_dict,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tables and relaxed thresholds, for CI",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_throughput.json at repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows, span, repeats, trials = 800, 120, 4, 2
    else:
        rows, span, repeats, trials = 6400, 1200, 8, 3

    single: dict[str, dict] = {}
    multi: dict[str, dict] = {}
    for batch_size in BATCH_SIZES:
        single[str(batch_size)] = best_of(
            lambda: run_single_session(batch_size, rows, span, repeats), trials
        )
        multi[str(batch_size)] = best_of(
            lambda: run_multi_session(batch_size, rows, span, repeats), trials
        )
        print(
            f"batch {batch_size:4d}: "
            f"single {single[str(batch_size)]['rows_per_sec']:>10.1f} rows/s  "
            f"4-session {multi[str(batch_size)]['rows_per_sec']:>10.1f} rows/s"
        )

    io_equivalent = (
        len({result["io_total"] for result in single.values()}) == 1
        and len({result["io_total"] for result in multi.values()}) == 1
    )
    speedup = {
        "single_session": round(
            single["64"]["rows_per_sec"] / single["1"]["rows_per_sec"], 2
        ),
        "multi_session_4": round(
            multi["64"]["rows_per_sec"] / multi["1"]["rows_per_sec"], 2
        ),
    }
    report = {
        "batch_sizes": BATCH_SIZES,
        "workload": {
            "rows": rows, "span": span, "repeats": repeats, "trials": trials,
            "sessions": N_SESSIONS,
        },
        "single_session": single,
        "multi_session_4": multi,
        "speedup_batch64_vs_1": speedup,
        "io_equivalent": io_equivalent,
        "slots": measure_slots_delta(20_000 if args.smoke else 200_000),
        "smoke": args.smoke,
    }

    out_path = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_throughput.json"
    )
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {os.path.normpath(out_path)}")
    print(f"speedup at batch 64 vs 1: {speedup}")

    # -- gates ---------------------------------------------------------------
    failures = []
    written = json.load(open(out_path))
    for key in REQUIRED_KEYS:
        if key not in written:
            failures.append(f"missing key in JSON: {key}")
    if not io_equivalent:
        failures.append("io_total differs across batch sizes (accounting broke)")
    if speedup["multi_session_4"] < 1.0:
        failures.append("batch 64 slower than batch 1 on the 4-session workload")
    if not args.smoke and speedup["multi_session_4"] < 3.0:
        failures.append(
            f"4-session speedup {speedup['multi_session_4']}x below the 3x target"
        )
    if report["slots"]["cost_meter_has_dict"]:
        failures.append("CostMeter grew a __dict__ — slots=True regressed")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

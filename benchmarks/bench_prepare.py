"""Prepared-statement benchmark: prepare-once / execute-many vs ad-hoc SQL.

Measures queries/sec for a repeated parameterized OLTP workload — covering
unique-index point lookups — executed two ways over the same data:

- **unprepared**: each execution interpolates a fresh literal into the SQL
  text, as ad-hoc client code does. Every statement is a distinct plan-cache
  key, so each one pays tokenize + normalize + parse + bind + cache store.
- **prepared**: one ``conn.prepare(... where ACCT = ? ...)`` statement,
  executed with changing parameters. The plan, inferred goals, and (via the
  per-plan predicate cache) compiled predicates are all reused.

Verifies on the way that the plan cache is accounting-transparent: the
summed per-query ``io_total`` is byte-identical between the prepared and
unprepared runs and between a default connection and one with
``plan_cache_size=0`` (caching disabled) on the same literal workload.

Results land in ``BENCH_prepare.json`` at the repository root.

Usage::

    python benchmarks/bench_prepare.py          # full run
    python benchmarks/bench_prepare.py --smoke  # smaller table, CI gate

Both modes exit non-zero if the JSON lacks required keys, if any io_total
differs, or if prepared execution is below 2x unprepared queries/sec at
repeat >= 16.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import repro
from repro.config import DEFAULT_CONFIG

REPEATS = [1, 4, 16, 32]
DISTINCT = 16
TRIALS = 3
GATE_REPEAT = 16
GATE_SPEEDUP = 2.0

TEMPLATE = (
    "select ACCT, BRANCH, BALANCE, STATUS, REGION from ACCOUNTS "
    "where ACCT = {a} and BRANCH >= 0 and BALANCE >= 0 "
    "and STATUS >= 0 and REGION >= 0"
)
PREPARED_SQL = TEMPLATE.replace("{a}", "?")

REQUIRED_KEYS = [
    "repeats",
    "distinct_params",
    "results",
    "speedup_at_repeat_16",
    "io_equivalent_prepared",
    "io_equivalent_cache_disabled",
    "plan_cache",
    "smoke",
]


def build_connection(rows: int, plan_cache_size: int | None = None) -> repro.Connection:
    config = DEFAULT_CONFIG
    if plan_cache_size is not None:
        config = config.with_(plan_cache_size=plan_cache_size)
    conn = repro.connect(buffer_capacity=128, config=config)
    table = conn.create_table(
        "ACCOUNTS",
        [("ACCT", "int"), ("BRANCH", "int"), ("BALANCE", "int"),
         ("STATUS", "int"), ("REGION", "int")],
        rows_per_page=32, index_order=32,
    )
    table.insert_many(
        (i, i % 97, (i * 7919) % 10_000, i % 3, i % 7) for i in range(rows)
    )
    # the index covers every referenced column: clear-case index-only
    # retrieval, the cheapest execution the parse overhead competes against
    table.create_index(
        "IX_COVER", ["ACCT", "BRANCH", "BALANCE", "STATUS", "REGION"], unique=True
    )
    table.analyze()
    return conn


def param_values(repeat: int, rows: int) -> list[int]:
    """One account per execution; ad-hoc literals never repeat exactly."""
    return [(k * 251 + r * 13) % rows for r in range(repeat) for k in range(DISTINCT)]


def run_unprepared(conn: repro.Connection, params: list[int]) -> dict:
    start = time.perf_counter()
    io_total = 0
    for account in params:
        result = conn.execute(TEMPLATE.format(a=account))
        assert len(result.rows) == 1
        io_total += result.total_io
    elapsed = time.perf_counter() - start
    return {"queries": len(params), "io_total": io_total, "wall_sec": elapsed,
            "qps": len(params) / elapsed}


def run_prepared(conn: repro.Connection, params: list[int]) -> dict:
    start = time.perf_counter()  # includes the one-time prepare() parse
    statement = conn.prepare(PREPARED_SQL)
    io_total = 0
    for account in params:
        result = statement.execute([account])
        assert len(result.rows) == 1
        io_total += result.total_io
    elapsed = time.perf_counter() - start
    return {"queries": len(params), "io_total": io_total, "wall_sec": elapsed,
            "qps": len(params) / elapsed}


def best_of(run, trials: int) -> dict:
    """Fastest of ``trials`` runs; the I/O total must never vary."""
    results = [run() for _ in range(trials)]
    assert len({r["io_total"] for r in results}) == 1, "io varies across trials"
    return min(results, key=lambda r: r["wall_sec"])


def measure(rows: int, trials: int) -> dict:
    results = {}
    for repeat in REPEATS:
        params = param_values(repeat, rows)
        unprepared = best_of(lambda: run_unprepared(build_connection(rows), params), trials)
        prepared = best_of(lambda: run_prepared(build_connection(rows), params), trials)
        results[str(repeat)] = {
            "queries": len(params),
            "unprepared_qps": round(unprepared["qps"], 1),
            "prepared_qps": round(prepared["qps"], 1),
            "speedup": round(prepared["qps"] / unprepared["qps"], 3),
            "io_unprepared": unprepared["io_total"],
            "io_prepared": prepared["io_total"],
        }
    return results


def io_equivalence_cache_disabled(rows: int, repeat: int) -> tuple[int, int]:
    """The same literal workload on a default vs a cache-disabled connection."""
    params = param_values(repeat, rows)
    with_cache = run_unprepared(build_connection(rows), params)
    without = run_unprepared(build_connection(rows, plan_cache_size=0), params)
    return with_cache["io_total"], without["io_total"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller table; same gates (CI mode)")
    args = parser.parse_args()

    rows = 1000 if args.smoke else 4000
    trials = TRIALS

    results = measure(rows, trials)
    io_default, io_disabled = io_equivalence_cache_disabled(rows, GATE_REPEAT)

    # plan-cache counter snapshot from one instrumented workload
    conn = build_connection(rows)
    params = param_values(GATE_REPEAT, rows)
    statement = conn.prepare(PREPARED_SQL)
    for account in params:
        statement.execute([account])
    cache = conn.db.plan_cache
    plan_cache = {
        "hits": cache.hits, "misses": cache.misses,
        "size": cache.size, "capacity": cache.capacity,
        "predicate_hits": statement._entry.predicates.hits,
        "predicate_compiles": statement._entry.predicates.compiles,
    }

    payload = {
        "repeats": REPEATS,
        "distinct_params": DISTINCT,
        "results": results,
        "speedup_at_repeat_16": results[str(GATE_REPEAT)]["speedup"],
        "io_equivalent_prepared": all(
            r["io_unprepared"] == r["io_prepared"] for r in results.values()
        ),
        "io_equivalent_cache_disabled": io_default == io_disabled,
        "plan_cache": plan_cache,
        "smoke": args.smoke,
    }

    out_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_prepare.json"
    )
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    for repeat, entry in results.items():
        print(f"repeat={repeat:>3}: unprepared {entry['unprepared_qps']:>8.1f} q/s, "
              f"prepared {entry['prepared_qps']:>8.1f} q/s, "
              f"speedup {entry['speedup']:.2f}x, io {entry['io_unprepared']}")
    print(f"io equivalent (prepared vs unprepared): {payload['io_equivalent_prepared']}")
    print(f"io equivalent (cache on vs off):        {payload['io_equivalent_cache_disabled']}")
    print(f"plan cache: {plan_cache}")

    failures = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            failures.append(f"missing key {key!r}")
    if not payload["io_equivalent_prepared"]:
        failures.append("io_total differs between prepared and unprepared runs")
    if not payload["io_equivalent_cache_disabled"]:
        failures.append("io_total differs between default and plan_cache_size=0")
    speedup = payload["speedup_at_repeat_16"]
    if speedup < GATE_SPEEDUP:
        failures.append(
            f"prepared speedup {speedup:.2f}x at repeat {GATE_REPEAT} "
            f"is below the {GATE_SPEEDUP}x gate"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"PASS: prepared >= {GATE_SPEEDUP}x unprepared at repeat >= {GATE_REPEAT}, "
          "io byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E8 — Section 6: hybrid RID-list storage regions.

    "A zero-long RID list causes an immediate shortcut action. Lists up to
    20 RIDs are stored in a small statically-allocated buffer ... Bigger
    lists are stored in the allocated buffer. Even bigger lists flow into a
    temporary table and set the bits in a bitmap ... Despite its
    simplicity, this 'hybrid' scan arrangement is quite advantageous due to
    the underlying L-shaped distribution."

Reproduced: RID-list sizes drawn from an L-shaped distribution land almost
entirely in the cheap regions (zero / static), so the expected storage
overhead per list stays near zero even though the worst case spills; a
naive always-spill arrangement pays temp-table writes for every list.
"""

import numpy as np

from _util import Report, run_once

from repro.competition.model import LShapedCost
from repro.config import EngineConfig
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.hybrid_list import HybridRidList, RidListRegion
from repro.storage.pager import Pager
from repro.storage.rid import RID
from repro.storage.temp_table import TempTable

LISTS = 2000


def experiment() -> dict:
    report = Report("sec6_hybrid", "Section 6 — hybrid RID-list storage regions")
    config = EngineConfig()  # static buffer 20, allocated 4096
    sizes_dist = LShapedCost.from_c_and_mean(c=3, mean=400)
    rng = np.random.default_rng(11)
    sizes = [int(s) for s in sizes_dist.sample(rng, LISTS)]
    report.line(f"\n{LISTS} RID lists, sizes ~ L-shape (median "
                f"{int(np.median(sizes))}, mean {int(np.mean(sizes))}, "
                f"max {max(sizes)})")

    pager = Pager()
    pool = BufferPool(pager, 1024)
    regions = {region: 0 for region in RidListRegion}
    hybrid_meter = CostMeter()
    for index, size in enumerate(sizes):
        hybrid = HybridRidList(pool, f"l{index}", config)
        for i in range(size):
            hybrid.add(RID(i, 0), hybrid_meter)
        regions[hybrid.region] += 1
        hybrid.discard()

    naive_meter = CostMeter()
    for index, size in enumerate(sizes):
        temp = TempTable(pool, f"n{index}", rids_per_page=512)
        for i in range(size):
            temp.append(RID(i, 0), naive_meter)
        temp._flush(naive_meter)
        temp.release()

    rows = [
        ["empty (shortcut)", regions[RidListRegion.EMPTY]],
        ["static buffer (<=20)", regions[RidListRegion.STATIC]],
        ["allocated buffer", regions[RidListRegion.ALLOCATED]],
        ["spilled (temp+bitmap)", regions[RidListRegion.SPILLED]],
    ]
    report.line()
    report.table(["final region", "lists"], rows)
    cheap = regions[RidListRegion.EMPTY] + regions[RidListRegion.STATIC]
    report.line(f"\n{cheap / LISTS:.0%} of lists never left the preallocated path")
    report.line(f"hybrid spill I/O: {hybrid_meter.io_writes} page writes; "
                f"naive always-spill: {naive_meter.io_writes} page writes "
                f"({naive_meter.io_writes / max(hybrid_meter.io_writes, 1):.1f}x)")
    assert cheap / LISTS > 0.5
    assert naive_meter.io_writes > hybrid_meter.io_writes

    # membership-filter correctness across regions (bitmap: no false negatives)
    hybrid = HybridRidList(pool, "check", config)
    members = [RID(i * 3, 1) for i in range(10_000)]
    for rid in members:
        hybrid.add(rid)
    assert hybrid.region is RidListRegion.SPILLED
    misses = sum(1 for rid in members if not hybrid.may_contain(rid))
    probes = [RID(i * 3 + 1, 2) for i in range(10_000)]
    false_positives = sum(1 for rid in probes if hybrid.may_contain(rid))
    report.line(f"\nspilled filter on 10k RIDs: {misses} false negatives (must be 0), "
                f"{false_positives / len(probes):.1%} false positives")
    assert misses == 0

    report.save()
    return {"cheap_fraction": cheap / LISTS}


def test_sec6_hybrid_rid_regions(benchmark):
    results = run_once(benchmark, experiment)
    assert results["cheap_fraction"] > 0.5

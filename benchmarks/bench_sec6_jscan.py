"""E7 — Section 6: Jscan against its alternatives, across a selectivity sweep.

Reproduced claims:

* Jscan with two-stage competition tracks the per-point best of
  {Fscan-style indexed retrieval, Tscan}: selective restrictions produce a
  short RID list, unselective ones switch to Tscan (no cliff);
* the statically-thresholded Jscan of [MoHa90] "misses an opportunity to
  readjust" — a single fixed threshold loses somewhere in the sweep;
* the index-scan stage is typically 10-100x cheaper than the fetch stage;
* ablations: the 95% switch threshold and the adjacent simultaneous-scan
  reordering.
"""

from _util import Report, run_once

from repro.db.session import Database
from repro.engine.mohan_jscan import run_static_jscan
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import col, var
from repro.workloads.scenarios import build_parts_table


def fresh_db():
    db = Database(buffer_capacity=48)
    return db, build_parts_table(db, rows=6000)


def experiment() -> dict:
    report = Report("sec6_jscan", "Section 6 — Jscan vs Fscan vs Tscan vs static Jscan")
    db, parts = fresh_db()
    query = (col("WEIGHT") <= var("W")) & (col("SIZE") <= var("S"))
    optimizer = StaticOptimizer(parts)
    # freeze the plan for a highly selective representative binding so it
    # really is an indexed (Fscan) plan — the paper's problematic case
    fscan_plan = optimizer.compile((col("WEIGHT") <= 5) & (col("SIZE") <= 5))
    tscan_cost = parts.heap.page_count
    report.line(f"\nPARTS: {parts.row_count} rows / {tscan_cost} pages; "
                f"restriction WEIGHT <= :W AND SIZE <= :S (sweep both)")
    report.line(f"frozen indexed plan: {fscan_plan.describe()}")

    rows = []
    dynamic_worst = 0.0
    for bound in (5, 15, 50, 120, 300, 600, 1000):
        bindings = {"W": bound, "S": bound}
        db.cold_cache()
        fscan = optimizer.execute(fscan_plan, query, bindings)
        db.cold_cache()
        mohan = run_static_jscan(parts, query, bindings, threshold_fraction=0.10)
        db.cold_cache()
        dynamic = parts.select(where=query, host_vars=bindings)
        assert len(dynamic.rows) == len(fscan.rows) == len(mohan.rows)
        best = min(fscan.io, tscan_cost)
        dynamic_worst = max(dynamic_worst, dynamic.total_cost / max(best, 1))
        rows.append([
            bound, len(dynamic.rows), tscan_cost, fscan.io, mohan.io,
            f"{dynamic.total_cost:.0f}",
            dynamic.description.split(" -> ")[-1][:24],
        ])
    report.line()
    report.table(
        ["W=S", "rows", "tscan", "fscan", "MoHa90", "dynamic", "dynamic ending"],
        rows,
    )
    report.line(f"\ndynamic cost stays within {dynamic_worst:.1f}x of the per-point best")
    report.line("of (fscan, tscan); the frozen fscan explodes at high selectivity and")
    report.line("tscan wastes at low selectivity — the crossover is found at run time.")

    # -- stage-cost ratio ---------------------------------------------------------
    db2, parts2 = fresh_db()
    db2.cold_cache()
    result = parts2.select(
        where=(col("WEIGHT") <= 40) & (col("SIZE") <= 120),
        host_vars={},
    )
    from repro.engine.metrics import EventKind

    scans = result.trace.of_kind(EventKind.SCAN_COMPLETE)
    final = result.trace.of_kind(EventKind.FINAL_STAGE_START)
    if scans and final:
        report.line(f"\nstage costs for W<=40, S<=120: index scans handled "
                    f"{sum(e.detail['scanned'] for e in scans)} entries; final stage "
                    f"fetched {final[0].detail['rids']} records")
    report.line("(Section 6: each index scan is 'typically 10-100 times cheaper than")
    report.line(" the second stage' — entry reads are sequential leaf pages, fetches")
    report.line(" are random heap pages)")

    # -- ablation: switch threshold --------------------------------------------
    report.line("\nablation — switch threshold (paper picks ~95%):")
    rows = []
    for threshold in (0.25, 0.5, 0.75, 0.95, 1.5, 10.0):
        db3, parts3 = fresh_db()
        parts3.config = parts3.config.with_(switch_threshold=threshold)
        total = 0.0
        for bound in (15, 120, 1000):
            db3.cold_cache()
            run = parts3.select(where=query, host_vars={"W": bound, "S": bound})
            total += run.total_cost
        rows.append([f"{threshold:.2f}", f"{total:.0f}"])
    report.table(["threshold", "total cost (3 bindings)"], rows)
    report.line("(too low: gives up on productive scans; too high: drags")
    report.line(" unproductive scans to completion)")

    # -- ablation: adjacent simultaneous scans -----------------------------------
    report.line("\nablation — simultaneous adjacent scans (dynamic reorder):")
    rows = []
    for simultaneous in (True, False):
        db4, parts4 = fresh_db()
        parts4.config = parts4.config.with_(simultaneous_adjacent_scans=simultaneous)
        db4.cold_cache()
        # an order the initial estimates get wrong: SIZE range is far
        # smaller than WEIGHT's but both estimate coarsely
        run = parts4.select(
            where=(col("WEIGHT") <= 500) & (col("SIZE") <= 25), host_vars={}
        )
        rows.append(["on" if simultaneous else "off", f"{run.total_cost:.0f}",
                     run.trace.counters.scans_abandoned])
    report.table(["pair mode", "cost", "scans abandoned"], rows)

    report.save()
    return {"dynamic_worst": dynamic_worst}


def test_sec6_jscan_sweep(benchmark):
    results = run_once(benchmark, experiment)
    assert results["dynamic_worst"] < 3.0

"""Tracing overhead budget: the disabled path must be (nearly) free.

Every span site in the engine now does one dynamic dispatch against
:data:`repro.obs.trace.NULL_TRACER` when tracing is off, and the scheduler
makes one sampling decision per submission. This benchmark holds that
instrumentation to a <2% throughput budget against the *uninstrumented*
baseline recorded by ``bench_throughput.py`` (``BENCH_throughput.json``),
using the identical workload — the 4-session batched scan mix at
``batch_size=64`` — and min-of-N wall clocks on both sides.

It also reports (without gating) the cost of tracing *everything*
(``trace_sample_rate=1.0``), which is allowed to be expensive: sampled
tracing exists precisely so the full price is paid only on the sampled
fraction.

Results land in ``BENCH_trace_overhead.json`` at the repository root.

Usage::

    python benchmarks/bench_trace_overhead.py          # full workload
    python benchmarks/bench_trace_overhead.py --smoke  # tiny tables, CI gate

Exit status is non-zero when the JSON lacks required keys or the rate-0
overhead exceeds the budget. The reference gate is skipped (with a
warning) when ``BENCH_throughput.json`` is missing or was produced with a
different workload size, since cross-workload percentages are meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import repro
from bench_throughput import N_SESSIONS, band_sql, best_of
from repro.config import DEFAULT_CONFIG

#: gate: disabled-path tracing may cost at most this fraction of throughput
OVERHEAD_BUDGET_PCT = 2.0
#: the throughput benchmark's batch size we compare against
REFERENCE_BATCH = 64

REQUIRED_KEYS = [
    "workload",
    "rate0",
    "rate1",
    "reference_rows_per_sec",
    "overhead_rate0_vs_reference_pct",
    "overhead_rate1_vs_rate0_pct",
    "budget_pct",
    "smoke",
]


def build_connection(sample_rate: float, rows: int) -> repro.Connection:
    """The bench_throughput connection, plus a trace sampling rate."""
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(
            batch_size=REFERENCE_BATCH, trace_sample_rate=sample_rate
        ),
        max_concurrency=N_SESSIONS,
    )
    table = conn.create_table(
        "EVENTS", [("ID", "int"), ("V", "int")],
        rows_per_page=32, index_order=32,
    )
    table.insert_many((i, i % 97) for i in range(rows))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return conn


def run_workload(sample_rate: float, rows: int, span: int, repeats: int) -> dict:
    """bench_throughput's 4-session workload under one sampling rate."""
    import time

    conn = build_connection(sample_rate, rows)
    sessions = [conn.session(f"s{i}") for i in range(N_SESSIONS)]
    for i, session in enumerate(sessions):  # warm-up (cache + code paths)
        session.submit(band_sql(i, rows, span))
    conn.server.run_until_idle()
    handles = []
    start = time.perf_counter()
    for repeat in range(repeats):
        for i, session in enumerate(sessions):
            handles.append(session.submit(band_sql(i, rows, span)))
    conn.server.run_until_idle()
    elapsed = time.perf_counter() - start
    delivered = sum(len(h.result.rows) for h in handles)
    traced = sum(1 for h in handles if h.tracer is not None)
    expected_traced = len(handles) if sample_rate >= 1.0 else 0
    assert traced == expected_traced, (traced, expected_traced)
    return {
        "rows": delivered,
        "queries": len(handles),
        "io_total": sum(h.result.total_io for h in handles),
        "traced_queries": traced,
        "wall_sec": round(elapsed, 6),
        "rows_per_sec": round(delivered / elapsed, 1),
        "queries_per_sec": round(len(handles) / elapsed, 2),
    }


def load_reference(path: str, rows: int) -> float | None:
    """The uninstrumented baseline rows/sec for the same workload, if any."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return None
    if report.get("workload", {}).get("rows") != rows:
        print(
            f"warning: {os.path.basename(path)} was produced with a different "
            "workload size; skipping the reference gate", file=sys.stderr,
        )
        return None
    try:
        return float(
            report["multi_session_4"][str(REFERENCE_BATCH)]["rows_per_sec"]
        )
    except (KeyError, TypeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tables, for CI (workload matches bench_throughput --smoke)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_trace_overhead.json at repo root)",
    )
    args = parser.parse_args(argv)

    # identical to bench_throughput's parameters, so the reference numbers
    # in BENCH_throughput.json describe the same work; more trials here
    # because a 2% gate needs a tight min-of-N floor
    if args.smoke:
        rows, span, repeats, trials = 800, 120, 4, 5
    else:
        rows, span, repeats, trials = 6400, 1200, 8, 5

    rate0 = best_of(lambda: run_workload(0.0, rows, span, repeats), trials)
    rate1 = best_of(lambda: run_workload(1.0, rows, span, repeats), trials)
    assert rate0["io_total"] == rate1["io_total"], "tracing changed I/O accounting"

    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    reference = load_reference(
        os.path.join(root, "BENCH_throughput.json"), rows
    )
    overhead_rate0 = (
        round((1.0 - rate0["rows_per_sec"] / reference) * 100, 2)
        if reference
        else None
    )
    overhead_rate1 = round(
        (1.0 - rate1["rows_per_sec"] / rate0["rows_per_sec"]) * 100, 2
    )
    report = {
        "workload": {
            "rows": rows, "span": span, "repeats": repeats, "trials": trials,
            "sessions": N_SESSIONS, "batch_size": REFERENCE_BATCH,
        },
        "rate0": rate0,
        "rate1": rate1,
        "reference_rows_per_sec": reference,
        "overhead_rate0_vs_reference_pct": overhead_rate0,
        "overhead_rate1_vs_rate0_pct": overhead_rate1,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "smoke": args.smoke,
    }

    out_path = args.out or os.path.join(root, "BENCH_trace_overhead.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"rate 0.0: {rate0['rows_per_sec']:>10.1f} rows/s")
    print(f"rate 1.0: {rate1['rows_per_sec']:>10.1f} rows/s "
          f"({overhead_rate1:+.2f}% vs rate 0)")
    if reference is not None:
        print(f"reference (BENCH_throughput.json batch {REFERENCE_BATCH}): "
              f"{reference:>10.1f} rows/s -> rate-0 overhead "
              f"{overhead_rate0:+.2f}% (budget {OVERHEAD_BUDGET_PCT}%)")
    else:
        print("no comparable BENCH_throughput.json reference; gate skipped")
    print(f"wrote {os.path.normpath(out_path)}")

    failures = []
    written = json.load(open(out_path))
    for key in REQUIRED_KEYS:
        if key not in written:
            failures.append(f"missing key in JSON: {key}")
    if overhead_rate0 is not None and overhead_rate0 > OVERHEAD_BUDGET_PCT:
        failures.append(
            f"disabled-path tracing costs {overhead_rate0}% "
            f"(> {OVERHEAD_BUDGET_PCT}% budget)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

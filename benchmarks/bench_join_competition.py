"""Join-order competition benchmark: racing beats freezing an order.

Builds a 3-table star with Zipf-skewed fan-in (ORDERS → CUSTOMERS,
ORDERS → ITEMS), then measures every candidate join order forced
statically (cold cache each) against the competition picking an order at
runtime with pilot races and mid-flight switching. Two gates:

* **competitive** — the competition's total realized cost (sunk pilot
  work included) must be <= 0.7x the *worst* static order. Freezing the
  wrong left-deep order is the join-level version of the paper's frozen
  Tscan-vs-Fscan cliff; the race must stay out of that hole while paying
  only bounded pilot overhead.
* **io identity** — EXPLAIN COMPETE's cold-for-cold shadow replay of the
  chosen order must report exactly the same physical I/O as forcing that
  order on a cold production cache: the counterfactual ledger measures
  the real engine, not an approximation of it.

Results land in ``BENCH_join_competition.json`` at the repository root.

Usage::

    python benchmarks/bench_join_competition.py          # full run
    python benchmarks/bench_join_competition.py --smoke  # smaller, CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

import repro
from repro.config import DEFAULT_CONFIG
from repro.engine.goals import OptimizationGoal
from repro.engine.join import JoinTableHandle, candidate_orders, run_join_steps
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.sql.plan import JoinPlan, walk
from repro.workloads.generators import uniform_ints, zipf_ints

SQL = (
    "select * from ORDERS as o "
    "join CUSTOMERS as c on o.CUST = c.CID "
    "join ITEMS as i on o.ITEM = i.IID "
    "where c.REGION = 1 and i.KIND <= 2"
)

GATE_COMPETITIVE = 0.7  # competition cost vs worst static order

REQUIRED_KEYS = [
    "workload",
    "static_orders",
    "best_static",
    "worst_static",
    "competition",
    "competitive_ratio_vs_worst",
    "io_identity",
    "smoke",
]


def build_workload(conn: repro.Connection, orders: int, customers: int,
                   items: int, seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    db = conn.db
    customers_t = db.create_table("CUSTOMERS", [("CID", "int"), ("REGION", "int")])
    customers_t.insert_many((i, i % 8) for i in range(customers))
    customers_t.create_index("IX_CID", ["CID"], unique=True)
    items_t = db.create_table("ITEMS", [("IID", "int"), ("KIND", "int")])
    items_t.insert_many((i, i % 12) for i in range(items))
    items_t.create_index("IX_IID", ["IID"], unique=True)
    orders_t = db.create_table(
        "ORDERS", [("OID", "int"), ("CUST", "int"), ("ITEM", "int")]
    )
    custs = zipf_ints(rng, orders, customers, skew=1.3)
    its = uniform_ints(rng, orders, 0, items - 1)
    orders_t.insert_many((i, custs[i], its[i]) for i in range(orders))
    orders_t.create_index("IX_CUST", ["CUST"])
    for table in (customers_t, items_t, orders_t):
        table.analyze()


def join_node(db, sql: str) -> JoinPlan:
    parsed = parse(sql)
    bind(db, parsed.plan)
    for node in walk(parsed.plan):
        if isinstance(node, JoinPlan):
            return node
    raise AssertionError("no join node in plan")


def handles_for(db, node: JoinPlan) -> dict[str, JoinTableHandle]:
    out = {}
    for source in node.sources:
        table = db.table(source.table)
        out[source.alias] = JoinTableHandle(
            name=table.name,
            heap=table.heap,
            schema=table.schema,
            indexes=dict(table.indexes),
            buffer_pool=table.buffer_pool,
            stats=table.stats,
        )
    return out


def drain(generator):
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def forced_run(db, node, handles, order_key: str):
    db.cold_cache()
    return drain(
        run_join_steps(
            node, handles, {}, OptimizationGoal.TOTAL_TIME, db.config,
            force_order=order_key,
        )
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller tables; same gates (CI mode)")
    args = parser.parse_args()

    orders, customers, items = (
        (800, 100, 50) if args.smoke else (4000, 250, 120)
    )
    # a generous replay budget so the io-identity replay never truncates
    config = DEFAULT_CONFIG.with_(replay_budget_steps=2_000_000)
    conn = repro.connect(buffer_capacity=128, config=config)
    build_workload(conn, orders, customers, items)
    db = conn.db

    node = join_node(db, SQL)
    handles = handles_for(db, node)

    # -- every static order, cold-for-cold --------------------------------
    static: dict[str, dict] = {}
    expected_rows = None
    for order in candidate_orders(node, handles, {}, db.config):
        result = forced_run(db, node, handles, order.key)
        rows = sorted(result.rows)
        if expected_rows is None:
            expected_rows = rows
        static[order.key] = {
            "cost": round(result.execution_cost, 2),
            "io": result.execution_io,
            "rows": len(rows),
            "rows_identical": rows == expected_rows,
        }
    best_key = min(static, key=lambda k: static[k]["cost"])
    worst_key = max(static, key=lambda k: static[k]["cost"])

    # -- the competition, same cold start ---------------------------------
    db.cold_cache()
    competed = drain(
        run_join_steps(node, handles, {}, OptimizationGoal.TOTAL_TIME, db.config)
    )
    competition_rows = sorted(competed.rows)
    ratio = competed.execution_cost / max(static[worst_key]["cost"], 1e-9)

    # -- io identity: COMPETE's shadow replay vs a forced production run --
    db.cold_cache()
    report = conn.audit(SQL)
    join_compete = next(
        (r for r in report.retrievals if r.chosen_outcome is not None), None
    )
    chosen = join_compete.chosen if join_compete else ""
    replay_io = join_compete.chosen_outcome.io if join_compete else -1
    truncated = bool(join_compete and join_compete.chosen_outcome.truncated)
    forced = forced_run(db, node, handles, chosen) if chosen else None
    forced_io = forced.execution_io if forced is not None else -2

    payload = {
        "workload": {
            "orders": orders, "customers": customers, "items": items,
            "skew": 1.3, "sql": SQL,
        },
        "static_orders": static,
        "best_static": {"order": best_key, **static[best_key]},
        "worst_static": {"order": worst_key, **static[worst_key]},
        "competition": {
            "winner": competed.description,
            "cost": round(competed.execution_cost, 2),
            "io": competed.execution_io,
            "rows": len(competition_rows),
            "rows_identical": competition_rows == expected_rows,
            "order_switches": conn.metrics.decisions.join_order_switches,
        },
        "competitive_ratio_vs_worst": round(ratio, 4),
        "io_identity": {
            "chosen": chosen,
            "replay_io": replay_io,
            "forced_io": forced_io,
            "replay_truncated": truncated,
            "identical": replay_io == forced_io and not truncated,
        },
        "smoke": args.smoke,
    }

    out_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_join_competition.json",
    )
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    print(f"{len(static)} candidate orders over {orders} orders rows:")
    for key, entry in sorted(static.items(), key=lambda kv: kv[1]["cost"]):
        print(f"  {key:<40} cost {entry['cost']:>9.1f}  io {entry['io']:>6}")
    print(f"best static : {best_key} ({static[best_key]['cost']:.1f})")
    print(f"worst static: {worst_key} ({static[worst_key]['cost']:.1f})")
    print(f"competition : {competed.description} "
          f"(cost {competed.execution_cost:.1f}, "
          f"{payload['competition']['order_switches']} mid-flight switches)")
    print(f"competitive ratio vs worst: {ratio:.3f} (gate <= {GATE_COMPETITIVE})")
    print(f"io identity: replay {replay_io} vs forced {forced_io}")

    failures = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            failures.append(f"missing key {key!r}")
    if not all(entry["rows_identical"] for entry in static.values()):
        failures.append("static orders disagreed on the join result")
    if not payload["competition"]["rows_identical"]:
        failures.append("competition rows differ from the static orders")
    if ratio > GATE_COMPETITIVE:
        failures.append(
            f"competition cost is {ratio:.3f}x the worst static order "
            f"(gate <= {GATE_COMPETITIVE})"
        )
    if not payload["io_identity"]["identical"]:
        failures.append(
            f"chosen-order replay io {replay_io} != forced run io {forced_io}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"PASS: competition <= {GATE_COMPETITIVE}x worst static order, "
          "replay io identical to a forced run")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E9 — Section 7: the four competition tactics against their alternatives.

* background-only vs classical Fscan (total-time goal);
* fast-first vs pure-Jscan-first and vs pure Fscan, under early and late
  termination;
* sorted tactic (Fscan + Jscan filter) vs unfiltered Fscan and vs the
  sequential build-filter-then-scan arrangement;
* index-only (Sscan racing Jscan): the safer Sscan survives overflow, the
  Jscan win converts to a sure final stage.
"""

from _util import Report, run_once

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import col
from repro.workloads.scenarios import build_multi_index_orders, build_parts_table


def experiment() -> dict:
    report = Report("sec7", "Section 7 — competition tactics")
    results = {}

    # ---------------------------------------------------------------- bg-only
    db, parts = build_db_parts()
    restriction = (col("COLOR").eq(7)) & (col("WEIGHT") <= 250)
    optimizer = StaticOptimizer(parts)
    # the classical comparator: a plain indexed retrieval on COLOR
    from repro.engine.static_optimizer import StaticPlan

    fscan_plan = StaticPlan("fscan", "IX_COLOR", 0.05, 0.0)
    db.cold_cache()
    fscan = optimizer.execute(fscan_plan, restriction)
    db.cold_cache()
    background = parts.select(where=restriction, optimize_for=Goal.TOTAL_TIME)
    assert sorted(background.rows) == sorted(fscan.rows)
    report.line("\nbackground-only vs classical Fscan (COLOR=7 AND WEIGHT<=250):")
    report.table(
        ["engine", "rows", "I/O cost"],
        [
            [f"fscan({fscan_plan.index_name})", len(fscan.rows), fscan.io],
            ["background-only (jscan+fin)", len(background.rows),
             f"{background.total_cost:.0f}"],
        ],
    )
    results["bg_ratio"] = fscan.io / background.total_cost
    report.line("(Jscan sorts the RID list: several records per page cost one read;")
    report.line(" Fscan fetches in index order, revisiting pages)")

    # ---------------------------------------------------------------- fast-first
    report.line("\nfast-first vs total-time, early vs late termination (COLOR=7):")
    rows = []
    for label, goal, limit in (
        ("fast-first, stop@5", Goal.FAST_FIRST, 5),
        ("total-time, stop@5", Goal.TOTAL_TIME, 5),
        ("fast-first, full", Goal.FAST_FIRST, None),
        ("total-time, full", Goal.TOTAL_TIME, None),
    ):
        db2, parts2 = build_db_parts()
        db2.cold_cache()
        run = parts2.select(where=col("COLOR").eq(7), optimize_for=goal, limit=limit)
        rows.append([label, len(run.rows), f"{run.total_cost:.0f}"])
        results[label] = run.total_cost
    report.table(["arrangement", "rows", "cost"], rows)
    report.line("(paper: the foreground 'succeeds with no less speed than Fscan'")
    report.line(" on early stops, and late termination 'continues as in the")
    report.line(" background-only tactic with all the benefits of Jscan')")

    # ---------------------------------------------------------------- sorted
    report.line("\nsorted tactic: order-needed Fscan + cooperative Jscan filter:")
    rows = []
    for label, drop_other in (("fscan + jscan filter (sorted tactic)", False),
                              ("fscan alone (no filter available)", True)):
        db3 = Database(buffer_capacity=64)
        orders = build_multi_index_orders(db3, rows=8000)
        if drop_other:
            orders.drop_index("IX_CUSTOMER")
        # a selective customer tail with a full date range: the order index
        # must scan everything, so the filter decides the fetch count
        expr = (col("CUSTOMER") >= 420) & (col("ODATE") >= 20_000)
        db3.cold_cache()
        run = orders.select(where=expr, order_by=("ODATE",))
        in_order = [row[2] for row in run.rows] == sorted(row[2] for row in run.rows)
        rows.append([label, len(run.rows), f"{run.total_cost:.0f}",
                     run.trace.counters.records_fetched, "yes" if in_order else "NO"])
        results[label] = run.total_cost
    report.table(["arrangement", "rows", "cost", "fetches", "ordered"], rows)
    report.line("(the completed Jscan filter rejects RIDs before their fetch —")
    report.line(" 'usually the biggest cost portion of retrieval')")

    # ---------------------------------------------------------------- index-only
    report.line("\nindex-only tactic: Sscan racing Jscan (covering index present):")
    db4 = Database(buffer_capacity=64)
    orders4 = build_multi_index_orders(db4, rows=8000)
    expr = (col("STATUS").eq(4)) & (col("ODATE") >= 20_800)
    db4.cold_cache()
    run = orders4.select(where=expr, columns=("STATUS", "ODATE"))
    report.line(f"  STATUS=4 AND ODATE>=20800 -> {len(run.rows)} rows, "
                f"cost {run.total_cost:.0f}, heap fetches "
                f"{run.trace.counters.records_fetched} ({run.description})")
    results["index_only_fetches"] = run.trace.counters.records_fetched

    db4.cold_cache()
    tscan_like = orders4.select(where=expr)  # select * forces heap access
    report.line(f"  same restriction with select * -> cost {tscan_like.total_cost:.0f} "
                f"({tscan_like.description})")

    report.save()
    return results


def build_db_parts():
    db = Database(buffer_capacity=48)
    return db, build_parts_table(db, rows=6000)


def test_sec7_tactics(benchmark):
    results = run_once(benchmark, experiment)
    # early-termination fast-first must beat total-time stopped at 5
    assert results["fast-first, stop@5"] < results["total-time, stop@5"]
    # the cooperative filter must not be slower than fscan alone by much
    assert (
        results["fscan + jscan filter (sorted tactic)"]
        < 1.5 * results["fscan alone (no filter available)"]
    )

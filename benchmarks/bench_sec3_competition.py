"""E4 — Section 3: the competition model.

Claims reproduced:

* the sequential arrangement (run A2 to c2, then switch to A1) has expected
  cost (m2 + c2 + M1)/2, "about twice smaller than the traditional M1";
* Monte-Carlo racing of step-wise processes matches the analytic value;
* running both plans simultaneously at proportional speeds does better
  still when both L-shapes are truncated hyperbolas (ablation: speed
  ratios and switch budgets).
"""

import numpy as np

from _util import Report, run_once

from repro.competition.direct import DirectCompetition, TrialThenSwitch
from repro.competition.model import (
    LShapedCost,
    sequential_switch_expected_cost,
    simultaneous_expected_cost,
    traditional_expected_cost,
)
from repro.competition.process import SyntheticProcess

TRIALS = 1500


def _monte_carlo(plan_1, plan_2, runner):
    rng = np.random.default_rng(99)
    costs_1 = plan_1.sample(rng, TRIALS)
    costs_2 = plan_2.sample(rng, TRIALS)
    total = 0.0
    for a, b in zip(costs_1, costs_2):
        total += runner(a, b)
    return total / TRIALS


def experiment() -> dict:
    report = Report("sec3", "Section 3 — competition model arithmetic and racing")
    plan_1 = LShapedCost.from_c_and_mean(c=10, mean=100)   # the "best mean" plan
    plan_2 = LShapedCost.from_c_and_mean(c=8, mean=120)    # the trial plan
    m2 = plan_2.conditional_mean_below(plan_2.median())
    report.line(f"\nplan A1: c={plan_1.median():.1f}  M={plan_1.mean():.1f}")
    report.line(f"plan A2: c={plan_2.median():.1f}  M={plan_2.mean():.1f}  m2={m2:.2f}")

    traditional = traditional_expected_cost(plan_1.mean())
    sequential = sequential_switch_expected_cost(m2, plan_2.median(), plan_1.mean())
    simultaneous = simultaneous_expected_cost(plan_1, plan_2)

    mc_sequential = _monte_carlo(
        plan_1, plan_2,
        lambda a, b: TrialThenSwitch(
            SyntheticProcess("t", b), SyntheticProcess("s", a), plan_2.median()
        ).run().total_cost,
    )
    mc_simultaneous = _monte_carlo(
        plan_1, plan_2,
        lambda a, b: DirectCompetition(
            SyntheticProcess("s", a), [SyntheticProcess("t", b)]
        ).run().total_cost,
    )

    rows = [
        ["traditional (run A1)", "M1", f"{traditional:.1f}", "-"],
        ["sequential switch", "(m2+c2+M1)/2", f"{sequential:.1f}", f"{mc_sequential:.1f}"],
        ["simultaneous (optimal switch)", "numeric", f"{simultaneous:.1f}", f"{mc_simultaneous:.1f}"],
    ]
    report.line()
    report.table(["arrangement", "formula", "analytic", "Monte-Carlo"], rows)
    report.line("\npaper: sequential is 'about twice smaller than the traditional M1';")
    report.line("simultaneous runs are 'a still better approach'.")

    assert sequential < 0.62 * traditional
    assert abs(mc_sequential - sequential) / sequential < 0.15
    assert simultaneous < sequential
    report.line(f"\nratios: sequential/traditional = {sequential/traditional:.2f}, "
                f"simultaneous/traditional = {simultaneous/traditional:.2f}")

    # ablation: challenger speed in the simultaneous arrangement
    report.line("\nablation — challenger speed ratio (speed_b : speed_a):")
    rows = []
    for speed in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0):
        if speed == 0.0:
            cost = traditional
        else:
            cost = simultaneous_expected_cost(plan_1, plan_2, speed_a=1.0, speed_b=speed)
        rows.append([f"{speed:.2f}", f"{cost:.1f}"])
    report.table(["speed ratio", "expected cost"], rows)
    report.line("(the paper/[Ant91B]: 'proportional or equal' speeds are near-optimal)")

    # ablation: switch budget in work units of the trial plan
    report.line("\nablation — switch budget for the trial plan (c2 = 8):")
    rows = []
    for budget in (2, 4, 8, 16, 32, 64):
        cost = simultaneous_expected_cost(plan_1, plan_2, switch_point=float(budget))
        rows.append([budget, f"{cost:.1f}"])
    report.table(["budget", "expected cost"], rows)

    report.save()
    return {
        "traditional": traditional,
        "sequential": sequential,
        "simultaneous": simultaneous,
    }


def test_sec3_competition_model(benchmark):
    results = run_once(benchmark, experiment)
    assert results["sequential"] < 0.62 * results["traditional"]
    assert results["simultaneous"] < results["sequential"]

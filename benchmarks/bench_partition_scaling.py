"""Partition scatter-gather scaling — Figure 4's template over N workers.

The paper's Figure 4 runs one retrieval as *two* cooperating processes.
The partition subsystem generalizes that template: a table declared
``PARTITION BY HASH(ID) PARTITIONS 8`` stores its rows in 8 child tables
with private buffer pools, and a single retrieval scatters across the
candidate partitions, fanning the per-partition fetches over a worker
pool of ``config.partition_workers`` threads before merging.

This benchmark reruns the ``bench_server_concurrency`` band workload
(6400-row EVENTS table, IX_ID index, 192-row ID-band queries) against
that partitioned layout at 1, 4, and 8 workers and gates three claims:

* **Scaling** — the *modeled* parallel time of each scatter (LPT critical
  path over the per-partition fetch costs, ``ScatterInfo.critical_path
  _cost``) must be >= 2.5x faster than the 1-worker serial time at 4
  workers and >= 4x at 8. The model is gated rather than wall-clock
  because CI runners (and this container) may expose a single core;
  wall-clock is reported alongside, ungated, with ``os.cpu_count()``.
* **Accounting identity** — merged cost and physical-I/O totals are the
  exact sums of the per-partition meters, so every run is byte-identical
  across worker counts: parallelism changes *when* pages are read, never
  *how many*.
* **Plan identity** — rows match the unpartitioned serial plan (as a
  bag for heap-order scans, exactly for ORDER BY), and the per-partition
  strategy descriptions and switch counters at 4/8 workers equal the
  ``partition_workers = 1`` serial run: worker count never changes a
  switch decision.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from _util import Report, run_once

from repro.config import DEFAULT_CONFIG
from repro.db.session import Database
from repro.expr.ast import col
from repro.partition import PartitionSpec

N_BANDS = 4
ROWS = 6400
ROWS_PER_PAGE = 32
POOL_PAGES = 24
REPEATS = 3
BAND_QUERY = 192

PARTITIONS = 8
WORKER_COUNTS = (1, 4, 8)
GATE_SPEEDUP_4 = 2.5
GATE_SPEEDUP_8 = 4.0

REQUIRED_KEYS = (
    "speedup_at_4_workers",
    "speedup_at_8_workers",
    "rows_identical",
    "io_identical_across_workers",
    "cost_identical_across_workers",
    "plans_identical_across_workers",
    "merge_rows_reconciled",
)


def build_db(workers: int, rows: int, partitioned: bool) -> Database:
    config = DEFAULT_CONFIG.with_(partition_workers=workers)
    db = Database(buffer_capacity=POOL_PAGES, config=config)
    spec = (
        PartitionSpec(column="ID", method="hash", partitions=PARTITIONS)
        if partitioned
        else None
    )
    table = db.create_table(
        "EVENTS",
        [("ID", "int"), ("V", "int")],
        rows_per_page=ROWS_PER_PAGE,
        partition_by=spec,
    )
    for i in range(rows):
        table.insert((i, i % 97))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return db


def band_queries(rows: int) -> list[dict]:
    """The bench_server_concurrency bands, plus an ORDER BY variant of
    each to exercise the ordered k-way merge path."""
    stride = rows // N_BANDS
    queries = []
    for k in range(N_BANDS):
        lo = k * stride
        hi = lo + BAND_QUERY - 1
        queries.append({"band": k, "lo": lo, "hi": hi, "order_by": ()})
        queries.append({"band": k, "lo": lo, "hi": hi, "order_by": ("ID",)})
    return queries


def run_workload(db: Database, queries: list[dict], repeats: int) -> dict:
    """Run every band query cold, ``repeats`` times; collect per-query
    results plus the scatter model and wall-clock time."""
    table = db.table("EVENTS")
    records = []
    started = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            db.cold_cache()
            result = table.select(
                where=col("ID").between(query["lo"], query["hi"]),
                order_by=query["order_by"],
            )
            scatter = result.scatter
            records.append(
                {
                    "band": query["band"],
                    "ordered": bool(query["order_by"]),
                    "rows": list(result.rows),
                    "cost": round(result.total_cost, 6),
                    "io": result.execution_io,
                    "description": result.description,
                    "fetch_plans": (
                        [fetch.description for fetch in scatter.fetches]
                        if scatter
                        else [result.description]
                    ),
                    "switches": result.trace.counters.strategy_switches,
                    "serial_cost": scatter.serial_cost if scatter else None,
                    "critical_path_cost": (
                        scatter.critical_path_cost if scatter else None
                    ),
                    "workers": scatter.workers if scatter else 1,
                }
            )
    elapsed = time.perf_counter() - started
    stats = getattr(db, "partition_stats", None)
    return {
        "records": records,
        "wall_seconds": elapsed,
        "merge_rows": stats.merge_rows if stats else 0,
        "scatters": stats.scatters if stats else 0,
    }


def modeled_speedup(run: dict) -> float:
    """Serial fetch time over LPT critical-path time, workload-wide."""
    serial = sum(r["serial_cost"] or 0.0 for r in run["records"])
    parallel = sum(r["critical_path_cost"] or 0.0 for r in run["records"])
    return serial / parallel if parallel else 1.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller table, one repeat; same gates (CI mode)")
    args = parser.parse_args()

    rows = 1600 if args.smoke else ROWS
    repeats = 1 if args.smoke else REPEATS
    queries = band_queries(rows)

    report = Report(
        "partition_scaling",
        "Partitioned scatter-gather — modeled N-worker scaling (Figure 4 x N)",
    )
    report.line(
        f"\nEVENTS: {rows} rows, HASH(ID) x {PARTITIONS} partitions, IX_ID"
        f" index; {len(queries)} band\nqueries x {repeats} repeat(s), each run"
        f" cold; host cpu_count = {os.cpu_count()}.\n"
    )

    # -- unpartitioned serial baseline (plan identity reference) ----------
    base_db = build_db(workers=1, rows=rows, partitioned=False)
    baseline = run_workload(base_db, queries, repeats)

    # -- partitioned runs at each worker count ----------------------------
    runs: dict[int, dict] = {}
    for workers in WORKER_COUNTS:
        db = build_db(workers=workers, rows=rows, partitioned=True)
        runs[workers] = run_workload(db, queries, repeats)
        db.close_worker_pool()

    # -- identity checks --------------------------------------------------
    serial = runs[1]["records"]
    rows_identical = all(
        (
            rec["rows"] == base["rows"]
            if rec["ordered"]
            else sorted(rec["rows"]) == sorted(base["rows"])
        )
        for run in runs.values()
        for rec, base in zip(run["records"], baseline["records"])
    )
    io_identical = all(
        rec["io"] == ser["io"]
        for workers in WORKER_COUNTS[1:]
        for rec, ser in zip(runs[workers]["records"], serial)
    )
    cost_identical = all(
        rec["cost"] == ser["cost"]
        for workers in WORKER_COUNTS[1:]
        for rec, ser in zip(runs[workers]["records"], serial)
    )
    # the coordinator's summary line embeds the worker count (``w=N``);
    # the switch decisions live in the per-partition fetch plans
    plans_identical = all(
        rec["fetch_plans"] == ser["fetch_plans"]
        and rec["switches"] == ser["switches"]
        for workers in WORKER_COUNTS[1:]
        for rec, ser in zip(runs[workers]["records"], serial)
    )
    merge_reconciled = all(
        run["merge_rows"]
        == sum(len(rec["rows"]) for rec in run["records"])
        for run in runs.values()
    )

    speedups = {workers: modeled_speedup(runs[workers]) for workers in WORKER_COUNTS}

    table_rows = []
    for workers in WORKER_COUNTS:
        run = runs[workers]
        total_io = sum(rec["io"] for rec in run["records"])
        total_cost = sum(rec["cost"] for rec in run["records"])
        table_rows.append(
            [
                workers,
                f"{speedups[workers]:.2f}x",
                f"{total_cost:.1f}",
                total_io,
                f"{run['wall_seconds'] * 1000:.0f}ms",
            ]
        )
    report.table(
        ["workers", "modeled speedup", "total cost", "total io", "wall (ungated)"],
        table_rows,
    )
    report.line(
        f"\nbaseline (unpartitioned serial): cost "
        f"{sum(r['cost'] for r in baseline['records']):.1f}, io "
        f"{sum(r['io'] for r in baseline['records'])}, wall "
        f"{baseline['wall_seconds'] * 1000:.0f}ms"
    )
    report.line(
        f"rows identical to unpartitioned plan : {rows_identical}"
        f"\nio identical across worker counts    : {io_identical}"
        f"\ncost identical across worker counts  : {cost_identical}"
        f"\nplans/switches identical vs serial   : {plans_identical}"
        f"\nmerge_rows reconciles with results   : {merge_reconciled}"
    )
    report.save()

    payload = {
        "workload": {
            "rows": rows,
            "partitions": PARTITIONS,
            "queries": len(queries),
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
        "speedup_at_4_workers": round(speedups[4], 4),
        "speedup_at_8_workers": round(speedups[8], 4),
        "wall_seconds": {str(w): round(runs[w]["wall_seconds"], 4) for w in runs},
        "baseline_wall_seconds": round(baseline["wall_seconds"], 4),
        "rows_identical": rows_identical,
        "io_identical_across_workers": io_identical,
        "cost_identical_across_workers": cost_identical,
        "plans_identical_across_workers": plans_identical,
        "merge_rows_reconciled": merge_reconciled,
        "smoke": args.smoke,
    }
    out_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_partition_scaling.json",
    )
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    failures = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            failures.append(f"missing key {key!r}")
    if not rows_identical:
        failures.append("partitioned rows differ from the unpartitioned plan")
    if not io_identical:
        failures.append("summed per-partition io differs across worker counts")
    if not cost_identical:
        failures.append("summed per-partition cost differs across worker counts")
    if not plans_identical:
        failures.append("per-partition plans changed with the worker count")
    if not merge_reconciled:
        failures.append("partition_merge_rows_total != delivered row count")
    if speedups[4] < GATE_SPEEDUP_4:
        failures.append(
            f"modeled speedup at 4 workers {speedups[4]:.2f}x "
            f"(gate >= {GATE_SPEEDUP_4}x)"
        )
    if speedups[8] < GATE_SPEEDUP_8:
        failures.append(
            f"modeled speedup at 8 workers {speedups[8]:.2f}x "
            f"(gate >= {GATE_SPEEDUP_8}x)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"PASS: modeled speedup {speedups[4]:.2f}x @4 / {speedups[8]:.2f}x @8,"
        " accounting and plans identical across worker counts"
    )
    return 0


def experiment() -> dict:
    """pytest-benchmark entry: smoke-sized run, returns the gate bits."""
    rows, repeats = 1600, 1
    queries = band_queries(rows)
    base = run_workload(build_db(1, rows, partitioned=False), queries, repeats)
    runs = {}
    for workers in WORKER_COUNTS:
        db = build_db(workers, rows, partitioned=True)
        runs[workers] = run_workload(db, queries, repeats)
        db.close_worker_pool()
    return {
        "speedup4": modeled_speedup(runs[4]),
        "speedup8": modeled_speedup(runs[8]),
        "rows_ok": all(
            sorted(rec["rows"]) == sorted(b["rows"])
            for run in runs.values()
            for rec, b in zip(run["records"], base["records"])
        ),
        "io_ok": all(
            rec["io"] == ser["io"]
            for w in WORKER_COUNTS[1:]
            for rec, ser in zip(runs[w]["records"], runs[1]["records"])
        ),
    }


def check(results: dict) -> None:
    assert results["rows_ok"]
    assert results["io_ok"]
    assert results["speedup4"] >= GATE_SPEEDUP_4
    assert results["speedup8"] >= GATE_SPEEDUP_8


def test_partition_scaling(benchmark):
    check(run_once(benchmark, experiment))


if __name__ == "__main__":
    sys.exit(main())

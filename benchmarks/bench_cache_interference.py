"""E12 — Section 3(c): cache interference makes fetch costs unpredictable.

    "Even if a single column selectivity is estimated with good precision
    and inexpensively, the actual cost of index scan and data record
    fetches measured in physical I/Os is often unpredictable because the
    pattern of caching the disk pages is influenced by many asynchronous
    processes totally unrelated to a given retrieval."

Reproduced: the same retrieval's physical I/O under interference levels
0 .. 80% varies by multiples (the paper admits this uncertainty is "only
partially solved"); the dynamic engine's *strategy choice* stays correct
across interference because the competition measures real costs as it runs.
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.expr.ast import col, var
from repro.workloads.scenarios import build_families_table

REPEATS = 6


def experiment() -> dict:
    report = Report("cache_interference", "Section 3(c) — cache interference")
    db = Database(buffer_capacity=96)
    families = build_families_table(db, rows=4000)
    query = col("AGE") >= var("A1")

    report.line(f"\ntable: {families.row_count} rows / {families.heap.page_count} pages;"
                f" buffer pool {db.buffer_pool.capacity} pages")
    report.line("workload: AGE >= 110 repeated with random evictions between runs\n")

    rows = []
    spreads = {}
    for rate in (0.0, 0.2, 0.5, 0.8):
        db.interference_rate = rate
        # warm once, then measure repeats with interference ticks
        families.select(where=query, host_vars={"A1": 110})
        ios = []
        for _ in range(REPEATS):
            db.interference_tick()
            run = families.select(where=query, host_vars={"A1": 110})
            ios.append(run.execution_io)
        spreads[rate] = (min(ios), max(ios))
        rows.append([
            f"{rate:.0%}", min(ios), max(ios), f"{np.mean(ios):.0f}",
            max(ios) - min(ios),
        ])
    report.table(["interference", "min I/O", "max I/O", "mean", "spread"], rows)
    quiet_max = spreads[0.0][1]
    noisy_max = spreads[0.8][1]
    report.line(f"\nwarm-cache cost is flat at {quiet_max} I/O; at 80% interference the"
                f"\nsame retrieval costs up to {noisy_max} I/O — the per-run cost is")
    report.line("unpredictable even with a perfect selectivity estimate.")
    assert noisy_max > quiet_max

    # strategy robustness: choices stay correct under heavy interference
    db.interference_rate = 0.8
    report.line("\nstrategy choice under 80% interference:")
    rows = []
    correct = True
    for binding, expected in ((1, "tscan"), (118, "final-stage"), (200, "empty")):
        db.interference_tick()
        run = families.select(where=query, host_vars={"A1": binding})
        ending = run.description.split(" -> ")[-1]
        ok = expected in run.description or expected in ending or (
            expected == "empty" and not run.rows and "shortcut" in run.description
        )
        correct &= ok
        rows.append([binding, len(run.rows), ending[:32], "ok" if ok else "WRONG"])
    report.table(["A1", "rows", "ending", "check"], rows)
    assert correct
    report.line("\n(the competition observes actual costs mid-run, so cache chaos")
    report.line(" shifts costs but not correctness of the strategy decisions)")
    report.save()
    return {"quiet_max": quiet_max, "noisy_max": noisy_max}


def test_cache_interference(benchmark):
    results = run_once(benchmark, experiment)
    assert results["noisy_max"] > results["quiet_max"]

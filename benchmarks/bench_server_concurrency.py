"""E18 — multi-query serving: cache interference *emerges* from concurrency.

    "... the actual cost of index scan and data record fetches measured in
    physical I/Os is often unpredictable because the pattern of caching
    the disk pages is influenced by many asynchronous processes totally
    unrelated to a given retrieval."  (Section 3(c))

Earlier experiments (E12) had to *inject* that uncertainty with random
evictions (``Database.interference_rate``). With the multi-query scheduler
the asynchronous processes are real: N sessions, each repeatedly scanning
its own disjoint key band, are interleaved step-by-step over one shared
buffer pool sized below the combined working set. Run alone, every
session's band fits the pool and repeat queries hit cache; run
concurrently, the sessions evict each other between their own steps and
the per-query hit rate collapses — with ``interference_rate = 0``.

Also verified here: the server's ``MetricsRegistry`` totals reconcile
exactly with the sum of the individual per-retrieval traces and per-query
cache deltas it aggregated.
"""

from _util import Report, run_once

from repro.db.session import Database
from repro.server import QueryServer

N_SESSIONS = 4
ROWS = 6400
ROWS_PER_PAGE = 32
POOL_PAGES = 24
#: measured queries per session (after one unmeasured warm-up each)
REPEATS = 3

#: each session owns a quarter of the key space but queries only this many
#: rows of it — selective enough that the engine takes the index path
#: (Jscan + final stage), whose working set fits the pool on its own
BAND_QUERY = 192

#: start of each session's private key band
BAND_STRIDE = ROWS // N_SESSIONS


def build_db() -> Database:
    db = Database(buffer_capacity=POOL_PAGES)
    table = db.create_table(
        "EVENTS", [("ID", "int"), ("V", "int")], rows_per_page=ROWS_PER_PAGE
    )
    for i in range(ROWS):
        table.insert((i, i % 97))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return db


def band_sql(k: int) -> str:
    lo = k * BAND_STRIDE
    return f"select V from EVENTS where ID between {lo} and {lo + BAND_QUERY - 1}"


def _summarize(measured: dict[str, list]) -> dict[str, dict]:
    out = {}
    for session_id, handles in measured.items():
        hits = sum(h.cache_hits for h in handles)
        misses = sum(h.cache_misses for h in handles)
        out[session_id] = {
            "hit_rate": hits / (hits + misses),
            "misses_per_query": misses / len(handles),
        }
    return out


def run_sequential(db: Database) -> dict[str, dict]:
    """Baseline: each session runs alone, its queries back to back."""
    server = QueryServer(db, max_concurrency=1)
    measured: dict[str, list] = {}
    for k in range(N_SESSIONS):
        session = server.session(f"s{k}")
        db.cold_cache()
        session.execute(band_sql(k))  # warm-up, unmeasured
        measured[session.session_id] = [
            server.submit(band_sql(k), session=session) for _ in range(REPEATS)
        ]
        server.run_until_idle()
    return _summarize(measured)


def run_concurrent(db: Database, server: QueryServer) -> dict[str, dict]:
    """All sessions admitted together, steps interleaved round-robin."""
    sessions = [server.session(f"s{k}") for k in range(N_SESSIONS)]
    db.cold_cache()
    # warm-up round: one unmeasured query per session, also concurrent
    for k, session in enumerate(sessions):
        session.submit(band_sql(k))
    server.run_until_idle()
    measured: dict[str, list] = {s.session_id: [] for s in sessions}
    # submit in rotation so admission keeps one query per session in flight
    for _ in range(REPEATS):
        for k, session in enumerate(sessions):
            measured[session.session_id].append(session.submit(band_sql(k)))
    server.run_until_idle()
    return _summarize(measured)


def reconcile(server: QueryServer) -> dict:
    """Check registry totals == sum of the per-trace / per-query numbers."""
    totals = server.metrics.totals()
    per_session = server.metrics.per_session().values()
    checks = {
        "retrievals": totals.retrievals == sum(m.retrievals for m in per_session),
        "fetched": totals.counters.records_fetched
        == sum(m.counters.records_fetched for m in per_session),
        "abandons": totals.counters.scans_abandoned
        == sum(m.counters.scans_abandoned for m in per_session),
        "switches": totals.counters.strategy_switches
        == sum(m.counters.strategy_switches for m in per_session),
        "cache": (totals.cache_hits, totals.cache_misses)
        == (
            sum(m.cache_hits for m in per_session),
            sum(m.cache_misses for m in per_session),
        ),
        "queries": totals.queries == sum(m.queries for m in per_session),
    }
    return checks


def experiment() -> dict:
    report = Report(
        "server_concurrency", "Multi-query serving — emergent cache interference"
    )
    report.line(
        f"\n{N_SESSIONS} sessions, each repeatedly index-scanning its own"
        f" {BAND_QUERY}-row ID band"
        f"\nof a {ROWS}-row table ({ROWS // ROWS_PER_PAGE} heap pages);"
        f" shared pool {POOL_PAGES} pages."
        f"\nEach band's working set fits the pool alone; the {N_SESSIONS}"
        " together do not."
        f"\ninterference_rate = 0 everywhere — no injected evictions.\n"
    )

    seq_db = build_db()
    assert seq_db.interference_rate == 0.0
    sequential = run_sequential(seq_db)

    conc_db = build_db()
    assert conc_db.interference_rate == 0.0
    server = QueryServer(conc_db, max_concurrency=N_SESSIONS)
    concurrent = run_concurrent(conc_db, server)

    rows = []
    for session_id in sorted(sequential):
        seq, conc = sequential[session_id], concurrent[session_id]
        rows.append(
            [
                session_id,
                f"{seq['hit_rate']:.1%}",
                f"{conc['hit_rate']:.1%}",
                f"{seq['hit_rate'] - conc['hit_rate']:+.1%}",
                f"{seq['misses_per_query']:.1f}",
                f"{conc['misses_per_query']:.1f}",
            ]
        )
    seq_mean = sum(m["hit_rate"] for m in sequential.values()) / len(sequential)
    conc_mean = sum(m["hit_rate"] for m in concurrent.values()) / len(concurrent)
    seq_misses = sum(m["misses_per_query"] for m in sequential.values()) / len(sequential)
    conc_misses = sum(m["misses_per_query"] for m in concurrent.values()) / len(concurrent)
    rows.append(
        ["mean", f"{seq_mean:.1%}", f"{conc_mean:.1%}",
         f"{seq_mean - conc_mean:+.1%}", f"{seq_misses:.1f}", f"{conc_misses:.1f}"]
    )
    report.table(
        ["session", "hit alone", "hit conc.", "degradation",
         "reads/q alone", "reads/q conc."],
        rows,
    )

    report.line(
        f"\nA session that repeats its query alone pays ~{seq_misses:.0f} physical"
        f" reads per run\n(its band stays cached); under {N_SESSIONS}-way"
        f" interleaving the same query pays\n~{conc_misses:.0f} reads because the"
        " other sessions evict its pages between its\nsteps. The Section 3(c)"
        " uncertainty now *emerges* from scheduling instead\nof being injected."
    )

    checks = reconcile(server)
    report.line("\nMetricsRegistry reconciliation (totals == sum of parts):")
    for name, ok in checks.items():
        report.line(f"  {name:10s} {'ok' if ok else 'MISMATCH'}")
    totals = server.metrics.totals()
    report.line(
        f"\nserver totals: {totals.queries} queries, {totals.retrievals} retrievals,"
        f" {totals.counters.records_fetched} records fetched,"
        f"\n{totals.counters.scans_abandoned} scans abandoned,"
        f" {totals.counters.strategy_switches} strategy switches,"
        f" cache hit rate {totals.cache_hit_ratio:.0%}"
    )

    report.save()
    return {
        "sequential_mean": seq_mean,
        "concurrent_mean": conc_mean,
        "sequential_misses": seq_misses,
        "concurrent_misses": conc_misses,
        "checks": checks,
    }


def check(results: dict) -> None:
    # each band fits the pool alone: repeats should be nearly all-hit
    assert results["sequential_mean"] > 0.97
    # concurrency alone must visibly degrade the per-query hit rate ...
    assert results["concurrent_mean"] < results["sequential_mean"] - 0.05
    # ... and multiply the physical reads each repeat query pays
    assert results["concurrent_misses"] > 5 * max(results["sequential_misses"], 1.0)
    # registry totals must equal the sum of their parts
    assert all(results["checks"].values())


def test_server_concurrency(benchmark):
    check(run_once(benchmark, experiment))


if __name__ == "__main__":
    check(experiment())

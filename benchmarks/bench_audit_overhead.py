"""Decision-audit overhead budget: auditing off must be (nearly) free.

The decision audit (`repro.obs.audit`) adds one gated check per choice
point in the engine — `if audit.enabled:` against :data:`NULL_AUDIT` — and
the scheduler makes one `audit_enabled` test per submission. This
benchmark holds that instrumentation to the same <2% throughput budget as
tracing, on the identical workload: ``bench_throughput.py``'s 4-session
batched scan mix at ``batch_size=64``, min-of-N wall clocks on both
sides.

The gating reference is ``bench_throughput.run_multi_session`` itself,
re-measured *in this process with trials interleaved* against the audit
runs — one trial of each, round-robin — so machine-wide drift (thermal
throttling, noisy CI neighbors) hits both sides equally. A file-based
baseline recorded even a minute earlier can differ from a rerun of the
same code by far more than the budget on a shared runner; the
``BENCH_throughput.json`` number is still loaded and reported for the
record, without gating. The gate additionally self-calibrates: each sweep
times the reference workload twice, and the spread between those two
identical runs — measurement noise with the true overhead at exactly
zero — widens the budget, so a noisy runner degrades the gate's
sensitivity instead of producing false failures. When the gate still
looks breached, up to two more rounds of sweeps are folded into the
minima before failing (noise spikes confirm away; real regressions
don't).

It also gates the cost of auditing *everything* (``audit_enabled=True``)
to a hard ``AUDIT_ON_BUDGET_PCT`` (5%) over the audit-off run. Audit-on
queries no longer build a full span tree: unless sampled for tracing they
carry an ``AuditOnlyTracer`` (live audit log, no-op spans), and estimate
observations are ring-buffered with deferred materialization, which is
what brought the measured overhead down from ~14.5%. The benchmark still
asserts the observer contract directly: both runs must deliver the same
rows with byte-identical total I/O.

Results land in ``BENCH_audit_overhead.json`` at the repository root.

Usage::

    python benchmarks/bench_audit_overhead.py          # full workload
    python benchmarks/bench_audit_overhead.py --smoke  # tiny tables, CI gate

Exit status is non-zero when the JSON lacks required keys, the audit-off
overhead exceeds the budget, or the audited run's I/O differs from the
unaudited run's.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import repro
from bench_throughput import N_SESSIONS, band_sql, run_multi_session
from bench_trace_overhead import REFERENCE_BATCH, load_reference
from repro.config import DEFAULT_CONFIG

#: gate: the audit-off path may cost at most this fraction of throughput
OVERHEAD_BUDGET_PCT = 2.0
#: gate: auditing *everything* may cost at most this much vs audit-off.
#: Affordable always-on auditing is what the estimation program rides on
#: (q-errors are recorded at retirement through the same path), so the
#: audit-on run pays only for decision records and ring-buffered estimate
#: capture — not for span-tree construction (see AuditOnlyTracer).
AUDIT_ON_BUDGET_PCT = 5.0

REQUIRED_KEYS = [
    "workload",
    "reference",
    "audit_off",
    "audit_on",
    "recorded_reference_rows_per_sec",
    "overhead_off_vs_reference_pct",
    "overhead_on_vs_off_pct",
    "measured_noise_pct",
    "budget_pct",
    "smoke",
]


def interleaved_best_of(runs: dict, trials: int, best: dict | None = None) -> dict:
    """Min-of-N per labeled workload, trials interleaved round-robin.

    ``best_of`` back to back would measure each workload under *different*
    ambient machine conditions; round-robin interleaving gives every
    workload one trial per sweep, so drift is shared. Pass a previous
    result as ``best`` to fold further sweeps into the same minima.
    """
    best = dict(best) if best else {}
    for _ in range(trials):
        for label, run in runs.items():
            result = run()
            if label not in best or result["wall_sec"] < best[label]["wall_sec"]:
                best[label] = result
    return best


def build_connection(audit_enabled: bool, rows: int) -> repro.Connection:
    """The bench_throughput connection, plus the audit flag."""
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(
            batch_size=REFERENCE_BATCH, audit_enabled=audit_enabled
        ),
        max_concurrency=N_SESSIONS,
    )
    table = conn.create_table(
        "EVENTS", [("ID", "int"), ("V", "int")],
        rows_per_page=32, index_order=32,
    )
    table.insert_many((i, i % 97) for i in range(rows))
    table.create_index("IX_ID", ["ID"])
    table.analyze()
    return conn


def run_workload(audit_enabled: bool, rows: int, span: int, repeats: int) -> dict:
    """bench_throughput's 4-session workload with the audit on or off."""
    conn = build_connection(audit_enabled, rows)
    sessions = [conn.session(f"s{i}") for i in range(N_SESSIONS)]
    for i, session in enumerate(sessions):  # warm-up (cache + code paths)
        session.submit(band_sql(i, rows, span))
    conn.server.run_until_idle()
    handles = []
    start = time.perf_counter()
    for repeat in range(repeats):
        for i, session in enumerate(sessions):
            handles.append(session.submit(band_sql(i, rows, span)))
    conn.server.run_until_idle()
    elapsed = time.perf_counter() - start
    delivered = sum(len(h.result.rows) for h in handles)
    decisions = sum(conn.metrics.decisions.decisions.values())
    if audit_enabled:
        assert decisions > 0, "audit on but no decisions recorded"
    else:
        assert decisions == 0, "audit off but decisions recorded"
    return {
        "rows": delivered,
        "queries": len(handles),
        "io_total": sum(h.result.total_io for h in handles),
        "decisions_recorded": decisions,
        "wall_sec": round(elapsed, 6),
        "rows_per_sec": round(delivered / elapsed, 1),
        "queries_per_sec": round(len(handles) / elapsed, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tables, for CI (workload matches bench_throughput --smoke)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_audit_overhead.json at repo root)",
    )
    args = parser.parse_args(argv)

    # same table/query shape as bench_throughput; more repeats per trial
    # than its smoke run because a 2% gate needs trials long enough that
    # scheduler noise can't dominate the min-of-N floor
    if args.smoke:
        rows, span, repeats, trials = 800, 120, 16, 5
    else:
        rows, span, repeats, trials = 6400, 1200, 8, 5

    # "reference_b" times the identical reference workload a second time in
    # every sweep: the spread between the two is the runner's measurement
    # noise with the true overhead at exactly zero, and it calibrates the
    # gate — on a quiet machine it is ~0 and the budget applies as-is, on a
    # noisy one the gate widens by the demonstrated noise instead of flaking
    runs = {
        "reference": lambda: run_multi_session(
            REFERENCE_BATCH, rows, span, repeats
        ),
        "audit_off": lambda: run_workload(False, rows, span, repeats),
        "audit_on": lambda: run_workload(True, rows, span, repeats),
        "reference_b": lambda: run_multi_session(
            REFERENCE_BATCH, rows, span, repeats
        ),
    }
    # a wall-clock floor only converges from above: when the gate looks
    # breached, fold in more sweeps before believing it (a transient noise
    # spike can only be confirmed away, a real regression can't)
    best = interleaved_best_of(runs, trials)
    for _ in range(2):
        ratio = best["audit_off"]["wall_sec"] / best["reference"]["wall_sec"]
        on_ratio = best["audit_on"]["wall_sec"] / best["audit_off"]["wall_sec"]
        noise = abs(
            best["reference_b"]["wall_sec"] / best["reference"]["wall_sec"] - 1.0
        )
        if (ratio - 1.0) * 100 <= OVERHEAD_BUDGET_PCT + noise * 100 and (
            on_ratio - 1.0
        ) * 100 <= AUDIT_ON_BUDGET_PCT + noise * 100:
            break
        best = interleaved_best_of(runs, trials, best)
    reference, off, on = best["reference"], best["audit_off"], best["audit_on"]
    noise_pct = round(
        abs(best["reference_b"]["wall_sec"] / reference["wall_sec"] - 1.0) * 100,
        2,
    )
    io_identical = off["io_total"] == on["io_total"]

    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    recorded_reference = load_reference(
        os.path.join(root, "BENCH_throughput.json"), rows
    )
    overhead_off = round(
        (1.0 - off["rows_per_sec"] / reference["rows_per_sec"]) * 100, 2
    )
    overhead_on = round(
        (1.0 - on["rows_per_sec"] / off["rows_per_sec"]) * 100, 2
    )
    report = {
        "workload": {
            "rows": rows, "span": span, "repeats": repeats, "trials": trials,
            "sessions": N_SESSIONS, "batch_size": REFERENCE_BATCH,
        },
        "reference": reference,
        "audit_off": off,
        "audit_on": on,
        "io_identical": io_identical,
        "recorded_reference_rows_per_sec": recorded_reference,
        "overhead_off_vs_reference_pct": overhead_off,
        "overhead_on_vs_off_pct": overhead_on,
        "measured_noise_pct": noise_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "audit_on_budget_pct": AUDIT_ON_BUDGET_PCT,
        "smoke": args.smoke,
    }

    out_path = args.out or os.path.join(root, "BENCH_audit_overhead.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"reference (interleaved run_multi_session batch {REFERENCE_BATCH}): "
          f"{reference['rows_per_sec']:>10.1f} rows/s")
    print(f"audit off: {off['rows_per_sec']:>10.1f} rows/s "
          f"({overhead_off:+.2f}% vs reference, budget {OVERHEAD_BUDGET_PCT}% "
          f"+ measured noise {noise_pct}%)")
    print(f"audit on : {on['rows_per_sec']:>10.1f} rows/s "
          f"({overhead_on:+.2f}% vs off, "
          f"{on['decisions_recorded']} decisions recorded)")
    if recorded_reference is not None:
        print(f"for the record, BENCH_throughput.json said: "
              f"{recorded_reference:>10.1f} rows/s (not gated)")
    print(f"wrote {os.path.normpath(out_path)}")

    failures = []
    written = json.load(open(out_path))
    for key in REQUIRED_KEYS:
        if key not in written:
            failures.append(f"missing key in JSON: {key}")
    if not io_identical:
        failures.append(
            f"auditing changed physical I/O: off={off['io_total']} "
            f"on={on['io_total']} (the audit must be a pure observer)"
        )
    if overhead_off > OVERHEAD_BUDGET_PCT + noise_pct:
        failures.append(
            f"audit-off path costs {overhead_off}% "
            f"(> {OVERHEAD_BUDGET_PCT}% budget + {noise_pct}% measured noise)"
        )
    if overhead_on > AUDIT_ON_BUDGET_PCT + noise_pct:
        failures.append(
            f"audit-on path costs {overhead_on}% vs off "
            f"(> {AUDIT_ON_BUDGET_PCT}% budget + {noise_pct}% measured noise)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E10 — Section 4: optimization-goal inference over a plan tree.

The paper's example:

    select * from A where A.X in (
        select distinct Y from B where B.Y in (
            select Z from C limit to 2 rows))
    optimize for total time;

must infer fast-first for C (LIMIT TO), total-time for B (the SORT behind
DISTINCT), total-time for A (the explicit request). The benchmark also
measures why this matters: C's retrieval under fast-first costs a fraction
of the same retrieval forced to total-time.
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal as Goal

SQL = (
    "select * from A where A.X in ("
    " select distinct Y from B where B.Y in ("
    "  select Z from C limit to 2 rows))"
    " optimize for total time"
)


def build(db: Database) -> None:
    rng = np.random.default_rng(3)
    for name, column in (("A", "X"), ("B", "Y"), ("C", "Z")):
        table = db.create_table(name, [("ID", "int"), (column, "int")],
                                rows_per_page=8, index_order=8)
        for i in range(4000):
            table.insert((i, int(rng.integers(0, 200))))
        table.create_index(f"IX_{column}", [column])


def experiment() -> dict:
    report = Report("goal_inference", "Section 4 — goal inference (nested query)")
    db = Database(buffer_capacity=64)
    build(db)

    conn = db.default_connection()
    report.line("\n" + SQL)
    report.line("\ninferred plan:")
    report.line(conn.explain(SQL).text)

    db.cold_cache()
    result = conn.execute(SQL)
    goals = {info.table: info.goal for info in result.retrievals}
    rows = [
        ["C", "limit to 2 rows", "fast-first", goals["C"].value],
        ["B", "sort behind distinct", "total-time", goals["B"].value],
        ["A", "explicit request", "total-time", goals["A"].value],
    ]
    report.line()
    report.table(["table", "controlling node", "paper says", "inferred"], rows)
    assert goals["C"] is Goal.FAST_FIRST
    assert goals["B"] is Goal.TOTAL_TIME
    assert goals["A"] is Goal.TOTAL_TIME

    # why it matters: a restricted LIMIT-2 retrieval like C's under each
    # forced goal — fast-first stops after two deliveries, total-time
    # builds the complete RID list first
    from repro.expr.ast import col

    costs = {}
    for goal in (Goal.FAST_FIRST, Goal.TOTAL_TIME):
        db2 = Database(buffer_capacity=64)
        build(db2)
        db2.cold_cache()
        c_run = db2.table("C").select(
            where=col("Z") < 60, limit=2, optimize_for=goal
        )
        costs[goal] = c_run.total_cost
        report.line(f"\nC-like retrieval (Z < 60, LIMIT 2) forced to "
                    f"{goal.value}: cost {c_run.total_cost:.1f}")
    report.line("\n(the inference routes C to the cheap fast-first path automatically)")

    report.save()
    return {goal.value: cost for goal, cost in costs.items()}


def test_goal_inference(benchmark):
    results = run_once(benchmark, experiment)
    assert results["fast-first"] <= results["total-time"] * 1.2

"""E16 — Section 5: histogram staleness vs always-fresh descents.

    "[The histogram method] fully depends on costly data rescans for
    histogram maintenance ... [the descent] estimate is always up-to-date."

A table is analyzed once, then drifts (new rows arrive in a key region the
histogram believes empty). The static optimizer keeps trusting its snapshot
and freezes the wrong plan; the dynamic engine estimates from the live
B-tree and adapts. The benchmark also prices what keeping the histogram
fresh would cost (a full rescan per refresh).
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import col
from repro.storage.buffer_pool import CostMeter


def experiment() -> dict:
    report = Report("staleness", "Section 5 — statistics staleness under data drift")
    db = Database(buffer_capacity=64)
    table = db.create_table(
        "LOGS", [("TS", "int"), ("LEVEL", "int")], rows_per_page=8, index_order=16
    )
    rng = np.random.default_rng(41)
    for i in range(4000):
        table.insert((i, int(rng.integers(0, 5))))
    table.create_index("IX_TS", ["TS"])
    table.analyze()

    optimizer = StaticOptimizer(table)
    query = col("TS") >= 4000  # "recent" rows: none exist at analyze time
    plan = optimizer.compile(query)
    report.line(f"\nanalyzed at 4000 rows; query: TS >= 4000 (empty at analyze time)")
    report.line(f"frozen plan: {plan.describe()}")

    rows = []
    stats = {}
    for drift in (0, 1000, 4000, 12_000):
        while table.row_count < 4000 + drift:
            table.insert((table.row_count, int(rng.integers(0, 5))))
        stale_selectivity = optimizer.estimate_selectivity(query)
        db.cold_cache()
        static_run = optimizer.execute(plan, query)
        db.cold_cache()
        dynamic_run = table.select(where=query)
        assert len(static_run.rows) == len(dynamic_run.rows) == drift
        rows.append([
            drift, f"{stale_selectivity:.4f}", static_run.io,
            f"{dynamic_run.total_cost:.0f}",
            dynamic_run.description.split(" -> ")[-1][:26],
        ])
        stats[drift] = (static_run.io, dynamic_run.total_cost)
    report.line()
    report.table(
        ["rows drifted in", "stale est. sel.", "static I/O", "dynamic cost",
         "dynamic ending"],
        rows,
    )
    report.line("\nthe snapshot believes the region is empty forever (stale")
    report.line("selectivity stays ~0); the descent sees every insert immediately.")

    # the cost of keeping the histogram fresh: one full rescan
    meter = CostMeter()
    db.cold_cache()
    for _ in table.heap.scan(meter):
        pass
    report.line(f"\nhistogram refresh (full rescan) would cost {meter.io_reads} reads —")
    report.line(f"per refresh — vs {table.indexes['IX_TS'].btree.height} reads per "
                f"always-fresh descent.")
    report.save()
    return {"rescan": meter.io_reads, "height": table.indexes["IX_TS"].btree.height}


def test_staleness(benchmark):
    results = run_once(benchmark, experiment)
    assert results["height"] < results["rescan"] / 10

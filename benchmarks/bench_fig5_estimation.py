"""E6 — Figure 5: estimation by descent to a split node.

Reproduced:

* the worked example (split level l=2, k=1, fanout f=3 -> ~3 RIDs);
* accuracy sweep across range sizes, against the exact count and against a
  coarse compile-time histogram — the histogram "fails to detect small
  ranges falling below granularity", the descent detects them (empty
  ranges exactly);
* estimation cost: one root-to-split path of page reads (vs full rescans
  for histogram maintenance);
* Section 5 iteration-context reuse: the second execution of a query shape
  starts from the previous run's index order.
"""

import numpy as np

from _util import Report, run_once

from repro.btree.estimate import estimate_range
from repro.btree.tree import BTree, KeyRange
from repro.db.catalog import Histogram
from repro.db.session import Database
from repro.expr.ast import col
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.pager import Pager
from repro.storage.rid import RID


def experiment() -> dict:
    report = Report("fig5", "Figure 5 — descent-to-split-node estimation")

    # -- worked example: fanout-3-ish tree -------------------------------
    tree = BTree(BufferPool(Pager(), 512), "ix", order=4)
    for i in range(27):
        tree.insert(i, RID(i, 0))
    estimate = estimate_range(tree, KeyRange(lo=(7,), hi=(9,)))
    report.line(f"\nworked example (27 keys, order 4, height {tree.height}):")
    report.line(f"  range [7..9]: k={estimate.k}, split level l={estimate.split_level}, "
                f"f={estimate.fanout:.2f} -> estimate {estimate.rids:.1f} "
                f"(true 3){' [exact]' if estimate.exact else ''}")

    # -- accuracy sweep versus exact counts and a histogram ------------------
    rng = np.random.default_rng(5)
    values = sorted(int(v) for v in rng.integers(0, 100_000, size=20_000))
    big = BTree(BufferPool(Pager(), 4096), "big", order=32)
    for i, value in enumerate(values):
        big.insert(value, RID(i, 0))
    histogram = Histogram(values, buckets=10)

    report.line("\naccuracy sweep (20k uniform keys in [0, 100k), 10-bucket histogram):")
    rows = []
    errors = {"descent": [], "histogram": []}
    for width in (2, 20, 200, 2_000, 20_000, 60_000):
        lo = 37_000
        hi = lo + width
        true = big.count_range_exact(KeyRange(lo=(lo,), hi=(hi,)))
        descent = estimate_range(big, KeyRange(lo=(lo,), hi=(hi,))).rids
        hist = histogram.selectivity_range(lo, hi) * len(values)
        for kind, guess in (("descent", descent), ("histogram", hist)):
            if true > 0:
                errors[kind].append(max(guess, 0.5) / true if guess >= true
                                    else true / max(guess, 0.5))
        rows.append([
            width, true, f"{descent:.0f}", f"{hist:.0f}",
            f"{_ratio(descent, true)}", f"{_ratio(hist, true)}",
        ])
    report.table(
        ["range width", "true RIDs", "descent", "histogram", "descent err", "hist err"],
        rows,
    )
    descent_small = errors["descent"][0]
    hist_small = errors["histogram"][0]
    report.line(f"\nsmallest range: descent off by {descent_small:.1f}x, "
                f"histogram off by {hist_small:.1f}x")
    report.line("(Section 5: 'histograms fail to detect small ranges falling below")
    report.line(" granularity, though the smallest ranges must be detected first')")

    # -- empty-range detection ------------------------------------------------
    gap_tree = BTree(BufferPool(Pager(), 512), "gap", order=16)
    for i in range(0, 5000, 10):  # keys 0, 10, 20, ... gaps in between
        gap_tree.insert(i, RID(i, 0))
    empty = estimate_range(gap_tree, KeyRange(lo=(101,), hi=(105,)))
    hist_gap = Histogram([i for i in range(0, 5000, 10)], 10)
    hist_guess = hist_gap.selectivity_range(101, 105) * 500
    report.line(f"\nempty range [101..105] in a gapped key space:")
    report.line(f"  descent: {empty.rids:.0f} RIDs (exact={empty.exact}) -> retrieval cancelled")
    report.line(f"  histogram: {hist_guess:.2f} RIDs (cannot prove emptiness)")
    assert empty.is_empty and hist_guess > 0

    # -- estimation cost ---------------------------------------------------------
    big.buffer_pool.clear()
    meter = CostMeter()
    estimate_range(big, KeyRange(lo=(500,), hi=(700,)), meter)
    report.line(f"\nestimation cost (cold): {meter.io_reads} page reads "
                f"(tree height {big.height}); histogram maintenance needs a full rescan")
    assert meter.io_reads <= big.height

    # -- iteration-context reuse ----------------------------------------------
    db = Database(buffer_capacity=64)
    table = db.create_table("T", [("A", "int"), ("B", "int")], rows_per_page=8)
    for i in range(2000):
        table.insert((int(rng.integers(0, 50)), int(rng.integers(0, 2000))))
    table.create_index("IX_A", ["A"])
    table.create_index("IX_B", ["B"])
    expr = (col("A").eq(7)) & (col("B") < 100)
    first = table.select(where=expr, context_key="shape")
    context = table.context_for("shape")
    order_after_first = list(context.last_order)
    second = table.select(where=expr, context_key="shape")
    report.line(f"\niteration context: first-run order {order_after_first} "
                f"reused on run 2 (executions={context.executions})")
    assert context.executions == 2
    assert sorted(first.rows) == sorted(second.rows)

    report.save()
    return {"descent_small_error": descent_small, "hist_small_error": hist_small}


def _ratio(guess: float, true: int) -> str:
    if true == 0:
        return "exact" if guess == 0 else "inf"
    worse = max(guess, 0.5) / true if guess >= true else true / max(guess, 0.5)
    return f"{worse:.1f}x"


def test_fig5_estimation(benchmark):
    results = run_once(benchmark, experiment)
    # the descent must beat the histogram on the smallest range
    assert results["descent_small_error"] <= results["hist_small_error"]

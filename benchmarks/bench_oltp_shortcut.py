"""E14 — Section 5: the OLTP shortcut techniques.

    "If a very short range is discovered (which typically happens right away
    because of preordering), the initial stage estimation terminates
    immediately to save on estimation cost. In addition, an empty range
    detection cancels all retrieval stages and delivers the 'end of data'
    condition at once. These techniques are instrumental in achieving high
    performance of short OLTP transactions."

Measured: per-query cost of unique-key point lookups and provably-empty
lookups with the shortcuts on vs off (ablation), and the effect of
iteration-context preordering on a parameterized query that repeats with a
skewed parameter.
"""

import numpy as np

from _util import Report, run_once

from repro.db.session import Database
from repro.expr.ast import col, var

ROWS = 8000
LOOKUPS = 200


def build(config=None):
    db = Database(buffer_capacity=96)
    if config is not None:
        db.config = config
    table = db.create_table(
        "ACCOUNTS",
        [("ACCT", "int"), ("BRANCH", "int"), ("BALANCE", "int")],
        rows_per_page=8, index_order=32,
    )
    if config is not None:
        table.config = config
    rng = np.random.default_rng(31)
    for i in range(ROWS):
        table.insert((i, int(rng.integers(0, 100)), int(rng.integers(0, 10_000))))
    table.create_index("IX_ACCT", ["ACCT"], unique=True)
    table.create_index("IX_BRANCH", ["BRANCH"])
    table.create_index("IX_BALANCE", ["BALANCE"])
    return db, table


def _run_lookups(db, table, present: bool) -> tuple[float, float]:
    """Average (total, estimation) cost per cold-cache point lookup."""
    rng = np.random.default_rng(7)
    total = estimation = 0.0
    query = (col("ACCT").eq(var("id"))) & (col("BRANCH") >= 0)
    for _ in range(LOOKUPS):
        account = int(rng.integers(0, ROWS)) if present else ROWS + int(rng.integers(0, ROWS))
        db.cold_cache()
        result = table.select(where=query, host_vars={"id": account})
        assert len(result.rows) == (1 if present else 0)
        total += result.total_cost
        estimation += result.estimation_cost
    return total / LOOKUPS, estimation / LOOKUPS


def experiment() -> dict:
    report = Report("oltp_shortcut", "Section 5 — OLTP shortcut techniques")
    report.line(f"\nACCOUNTS: {ROWS} rows, unique IX_ACCT + two secondary indexes")
    report.line(f"workload: {LOOKUPS} point lookups (ACCT = :id AND BRANCH >= 0)\n")

    rows = []
    stats = {}
    for label, config_change in (
        ("shortcuts on (default)", {}),
        ("small-range shortcut off", {"shortcut_rid_count": -1}),
    ):
        db, table = build()
        if config_change:
            table.config = table.config.with_(**config_change)
        hit_total, hit_est = _run_lookups(db, table, present=True)
        miss_total, miss_est = _run_lookups(db, table, present=False)
        stats[label] = (hit_total, hit_est, miss_total, miss_est)
        rows.append([
            label, f"{hit_total:.2f}", f"{hit_est:.2f}",
            f"{miss_total:.2f}", f"{miss_est:.2f}",
        ])
    report.table(
        ["configuration", "hit total", "hit estimation", "miss total", "miss est."],
        rows,
    )
    on_hit, on_est, on_miss, on_miss_est = stats["shortcuts on (default)"]
    _, off_est, _, _ = stats["small-range shortcut off"]
    report.line(f"\nthe shortcut stops estimation at the unique index: "
                f"{on_est:.2f} I/O vs {off_est:.2f} when every index is estimated")
    report.line(f"misses cost {on_miss:.2f} total — the empty-range detection cancels")
    report.line("all stages; 'end of data' is delivered without touching the heap.")
    assert on_est < off_est
    assert on_miss < on_hit

    # iteration-context preordering under a repeated parameterized query
    db, table = build()
    query = (col("BRANCH").eq(var("b"))) & (col("BALANCE") < var("lim"))
    rng = np.random.default_rng(13)
    costs_fresh, costs_context = [], []
    for i in range(30):
        bindings = {"b": int(rng.integers(0, 100)), "lim": 500}
        fresh = table.select(where=query, host_vars=bindings)
        costs_fresh.append(fresh.estimation_cost)
        repeated = table.select(where=query, host_vars=bindings, context_key="oltp")
        costs_context.append(repeated.estimation_cost)
    report.line(f"\nestimation cost per run: no context {np.mean(costs_fresh):.3f}, "
                f"with iteration context {np.mean(costs_context):.3f}")
    report.line("(the context seeds the prearrangement so the most selective index")
    report.line(" is estimated first and the shortcut fires sooner)")
    report.save()
    return {"hit": on_hit, "miss": on_miss, "est_on": on_est, "est_off": off_est}


def test_oltp_shortcuts(benchmark):
    results = run_once(benchmark, experiment)
    assert results["miss"] < results["hit"]
    assert results["est_on"] < results["est_off"]

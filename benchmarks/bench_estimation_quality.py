"""Estimation quality: q-error refinement and the variance-gated race.

Two claims, both gated:

1. **Learning**: on a warm repeated workload the estimator's recorded
   median q-error falls monotonically across refinement rounds — the
   self-tuning histograms and signature statistics converge corrected
   estimates onto observed truth instead of oscillating.
2. **Payoff**: once signatures are trusted, variance-gated mode (skip the
   index-only pilot race, run the statically-decided winner) sustains at
   least ``SPEEDUP_GATE``x the queries/sec of always-compete mode on the
   same workload, while delivering byte-identical rows — the gate trades
   none of the competition model's safety for the saved race.

The workload is engine-level (no SQL/scheduler noise): a table whose
restriction arms are deliberately lopsided — a covering index resolves
the query in a few dozen entries while the second Jscan arm spans the
whole table — so every competed retrieval pays for background work the
gated retrieval provably avoids.

Results land in ``BENCH_estimation_quality.json`` at the repository root.

Usage::

    python benchmarks/bench_estimation_quality.py          # full workload
    python benchmarks/bench_estimation_quality.py --smoke  # tiny, CI gate

Exit status is non-zero when rows differ, the speedup gate fails, or the
median q-error fails to fall monotonically.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.competition.process import drain
from repro.db.session import Database
from repro.engine.metrics import EventKind
from repro.estimate import Estimator
from repro.expr.ast import col

#: gated mode must clear this many times always-compete's queries/sec
SPEEDUP_GATE = 1.3
#: rounding slack for the monotone-median check (floating EWMA noise)
MEDIAN_SLACK = 1e-9

REQUIRED_KEYS = [
    "workload",
    "round_median_qerror",
    "qerror_monotone",
    "gated",
    "compete",
    "speedup",
    "rows_identical",
    "speedup_gate",
    "smoke",
]


def build_database(rows: int) -> tuple[Database, object]:
    db = Database(buffer_capacity=256)
    table = db.create_table(
        "EVENTS",
        [("A", "int"), ("B", "int"), ("C", "int")],
        rows_per_page=16,
        index_order=16,
    )
    table.insert_many((i, i % 89, (i * 7) % 1000) for i in range(rows))
    table.create_index("IX_AB", ["A", "B"])  # covering: the cheap Sscan arm
    table.create_index("IX_A", ["A"])  # fetch-needed, wide: the race's waste
    table.create_index("IX_B", ["B"])  # fetch-needed, small lead: warms the gate
    # the small-range shortcut leaves arms unestimated (an unestimated arm
    # always competes); the workload is about estimated ranges
    table.config = table.config.with_(shortcut_rid_count=0)
    return db, table


def workload(rows: int, span: int, windows: int):
    """Disjoint (lo, hi) windows over A, each with an equality probe on B.

    The B probe makes ``IX_B`` the *small* Jscan lead arm (it completes
    mid-race, so its signature warms and the gate can learn to trust it)
    while ``IX_A`` spans the full window — the background work a trusted
    gate saves.
    """
    queries = []
    stride = max(1, rows // windows)
    for w in range(windows):
        lo = w * stride
        queries.append(
            (col("A") >= lo) & (col("A") < lo + span) & (col("B").eq(w * 37 % 89))
        )
    return queries


def run_round(table, queries, estimator) -> tuple[int, list[list[tuple]]]:
    """One pass over the workload; returns (skips, per-query rows)."""
    skips = 0
    all_rows = []
    for where in queries:
        result = drain(
            table.select_steps(
                where=where, columns=("A", "B"), estimator=estimator
            )
        )
        if result.trace.has(EventKind.COMPETITION_SKIPPED):
            skips += 1
        all_rows.append(sorted(result.rows))
    return skips, all_rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny tables, for CI")
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_estimation_quality.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows, span, windows, refine_rounds, timed_rounds = 1500, 200, 4, 6, 6
    else:
        rows, span, windows, refine_rounds, timed_rounds = 8000, 400, 8, 6, 10

    # -- claim 1: refinement drives the median q-error down -----------------
    db, table = build_database(rows)
    queries = workload(rows, span, windows)
    estimator = db.estimator
    medians: list[float] = []
    for _ in range(refine_rounds):
        run_round(table, queries, estimator)
        recent = estimator.take_recent()
        if recent:
            medians.append(round(statistics.median(recent), 4))
    monotone = all(
        later <= earlier + MEDIAN_SLACK
        for earlier, later in zip(medians, medians[1:])
    ) and (len(medians) < 2 or medians[-1] < medians[0])

    # -- claim 2: the trusted gate beats always-compete ----------------------
    # two fresh, identical databases so neither mode inherits the other's
    # buffer cache; both get the same warm-up passes
    gated_db, gated_table = build_database(rows)
    compete_db, compete_table = build_database(rows)
    compete_table.config = compete_table.config.with_(competition_gate=False)

    for _ in range(6):  # warm caches, corrections, and (gated) trust
        run_round(gated_table, queries, gated_db.estimator)
        run_round(compete_table, queries, compete_db.estimator)

    start = time.perf_counter()
    gated_skips = 0
    gated_rows: list[list[tuple]] = []
    for _ in range(timed_rounds):
        skips, gated_rows = run_round(gated_table, queries, gated_db.estimator)
        gated_skips += skips
    gated_sec = time.perf_counter() - start

    start = time.perf_counter()
    compete_rows: list[list[tuple]] = []
    for _ in range(timed_rounds):
        _, compete_rows = run_round(compete_table, queries, compete_db.estimator)
    compete_sec = time.perf_counter() - start

    total_queries = timed_rounds * len(queries)
    gated_qps = total_queries / gated_sec
    compete_qps = total_queries / compete_sec
    speedup = gated_qps / compete_qps
    rows_identical = gated_rows == compete_rows

    report = {
        "workload": {
            "rows": rows, "span": span, "windows": windows,
            "refine_rounds": refine_rounds, "timed_rounds": timed_rounds,
        },
        "round_median_qerror": medians,
        "qerror_monotone": monotone,
        "gated": {
            "wall_sec": round(gated_sec, 6),
            "queries_per_sec": round(gated_qps, 2),
            "competitions_skipped": gated_skips,
        },
        "compete": {
            "wall_sec": round(compete_sec, 6),
            "queries_per_sec": round(compete_qps, 2),
        },
        "speedup": round(speedup, 3),
        "rows_identical": rows_identical,
        "speedup_gate": SPEEDUP_GATE,
        "smoke": args.smoke,
    }

    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    out_path = args.out or os.path.join(root, "BENCH_estimation_quality.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"median q-error by round: {medians} "
          f"({'monotone' if monotone else 'NOT monotone'})")
    print(f"gated  : {gated_qps:>9.1f} q/s "
          f"({gated_skips}/{total_queries} races skipped)")
    print(f"compete: {compete_qps:>9.1f} q/s")
    print(f"speedup: {speedup:.2f}x (gate {SPEEDUP_GATE}x), "
          f"rows {'identical' if rows_identical else 'DIFFER'}")
    print(f"wrote {os.path.normpath(out_path)}")

    failures = []
    written = json.load(open(out_path))
    for key in REQUIRED_KEYS:
        if key not in written:
            failures.append(f"missing key in JSON: {key}")
    if not rows_identical:
        failures.append("gated and competed runs delivered different rows")
    if not monotone:
        failures.append(f"median q-error did not fall monotonically: {medians}")
    if speedup < SPEEDUP_GATE:
        failures.append(
            f"gated speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
        )
    if gated_skips == 0:
        failures.append("the gate never trusted — no competitions skipped")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E5 — Section 4's motivating query: host-variable sensitivity.

``select * from FAMILIES where AGE >= :A1`` with :A1 in {0 .. 200}.
Compared engines:

* static plan compiled blind (host variable unknown -> magic numbers);
* static plan compiled for a representative selective binding (Fscan);
* the dynamic engine (per-run estimation + Jscan two-stage competition).

Paper claim: correct per-run strategy choice "improves query performance
up to a few decimal orders"; the dynamic column must track the per-binding
minimum of the static columns (within competition overhead) and beat each
static plan by >=10x somewhere.
"""

from _util import Report, run_once

from repro.db.session import Database
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import col, var
from repro.workloads.scenarios import build_families_table

BINDINGS = (0, 20, 40, 60, 80, 100, 110, 115, 118, 120, 200)


def experiment() -> dict:
    report = Report("sec4", "Section 4 — host-variable sensitivity (AGE >= :A1)")
    db = Database(buffer_capacity=48)
    families = build_families_table(db, rows=4000)
    query = col("AGE") >= var("A1")

    optimizer = StaticOptimizer(families)
    blind = optimizer.compile(query)
    tuned = optimizer.compile(col("AGE") >= 118)
    report.line(f"\ntable: {families.row_count} rows / {families.heap.page_count} pages")
    report.line(f"static blind plan: {blind.describe()}")
    report.line(f"static tuned plan: {tuned.describe()}")

    rows = []
    ratios = []
    for binding in BINDINGS:
        db.cold_cache()
        blind_run = optimizer.execute(blind, query, {"A1": binding})
        db.cold_cache()
        tuned_run = optimizer.execute(tuned, query, {"A1": binding})
        db.cold_cache()
        dynamic = families.select(where=query, host_vars={"A1": binding})
        assert len(blind_run.rows) == len(dynamic.rows) == len(tuned_run.rows)
        best_static = min(blind_run.io, tuned_run.io)
        worst_static = max(blind_run.io, tuned_run.io)
        ratios.append(worst_static / max(dynamic.total_cost, 0.5))
        rows.append([
            binding, len(dynamic.rows), blind_run.io, tuned_run.io,
            f"{dynamic.total_cost:.0f}",
            dynamic.description.split(" -> ")[-1],
        ])
    report.line()
    report.table(
        ["A1", "rows", "blind I/O", "tuned I/O", "dynamic cost", "dynamic final stage"],
        rows,
    )
    peak = max(ratios)
    report.line(f"\nworst-static / dynamic cost peaks at {peak:.0f}x "
                f"(paper: 'up to a few decimal orders')")
    assert peak > 10

    # SQL-level run of the motivating query, for completeness
    db.cold_cache()
    sql = db.default_connection().execute(
        "select * from FAMILIES where AGE >= :A1", {"A1": 118}
    )
    report.line(f"\nSQL path: {len(sql.rows)} rows via "
                f"{sql.retrievals[0].result.description}")
    report.save()
    return {"peak_ratio": peak}


def test_sec4_host_variable_sensitivity(benchmark):
    results = run_once(benchmark, experiment)
    assert results["peak_ratio"] > 10

"""Expression normalization.

The engine (like the paper's Section 6 scope: "all index-bound restriction
portions connected by ANDs") works on the conjunctive spine of the
restriction: NOTs are pushed to the leaves, nested ANDs are flattened, and
the top-level AND terms are split out so each index can claim the terms it
can turn into a key range.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.expr.ast import (
    ALWAYS_FALSE,
    ALWAYS_TRUE,
    And,
    Between,
    Comparison,
    Expr,
    FalseExpr,
    InList,
    Like,
    Not,
    Or,
    TrueExpr,
)

_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def normalize(expr: Expr) -> Expr:
    """Push NOT to the leaves (De Morgan) and flatten nested AND/OR chains."""
    return _flatten(_push_not(expr, negate=False))


def _push_not(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _push_not(expr.child, not negate)
    if isinstance(expr, And):
        children = tuple(_push_not(child, negate) for child in expr.children)
        return Or(children) if negate else And(children)
    if isinstance(expr, Or):
        children = tuple(_push_not(child, negate) for child in expr.children)
        return And(children) if negate else Or(children)
    if isinstance(expr, TrueExpr):
        return ALWAYS_FALSE if negate else ALWAYS_TRUE
    if isinstance(expr, FalseExpr):
        return ALWAYS_TRUE if negate else ALWAYS_FALSE
    if not negate:
        return expr
    if isinstance(expr, Comparison):
        return Comparison(_NEGATED_OP[expr.op], expr.left, expr.right)
    if isinstance(expr, Between):
        # NOT (c BETWEEN lo AND hi)  ==  c < lo OR c > hi
        return Or((Comparison("<", expr.column, expr.lo), Comparison(">", expr.column, expr.hi)))
    if isinstance(expr, InList):
        if not expr.values:
            return ALWAYS_TRUE
        return _and_or_single(
            tuple(Comparison("<>", expr.column, term) for term in expr.values)
        )
    if isinstance(expr, Like):
        return Not(expr)  # LIKE has no comparison dual; keep the NOT at the leaf
    raise ExpressionError(f"cannot normalize {expr!r}")


def _and_or_single(children: tuple[Expr, ...]) -> Expr:
    if len(children) == 1:
        return children[0]
    return And(children)


def _flatten(expr: Expr) -> Expr:
    if isinstance(expr, And):
        flat: list[Expr] = []
        for child in expr.children:
            child = _flatten(child)
            if isinstance(child, And):
                flat.extend(child.children)
            elif isinstance(child, TrueExpr):
                continue
            elif isinstance(child, FalseExpr):
                return ALWAYS_FALSE
            else:
                flat.append(child)
        if not flat:
            return ALWAYS_TRUE
        return _and_or_single(tuple(flat))
    if isinstance(expr, Or):
        flat = []
        for child in expr.children:
            child = _flatten(child)
            if isinstance(child, Or):
                flat.extend(child.children)
            elif isinstance(child, FalseExpr):
                continue
            elif isinstance(child, TrueExpr):
                return ALWAYS_TRUE
            else:
                flat.append(child)
        if not flat:
            return ALWAYS_FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))
    if isinstance(expr, Not):
        return Not(_flatten(expr.child))
    return expr


def conjunction_terms(expr: Expr) -> tuple[Expr, ...]:
    """The top-level AND terms of a normalized expression.

    A non-AND expression is a single term; TRUE yields no terms. The result
    is memoised per expression *object*: a cached plan re-runs the initial
    stage on every execution with the same restriction instance, and
    normalization is pure structure work. Keying by identity (with the
    stored strong reference pinning the id) avoids re-hashing the whole
    tree on every execution.
    """
    entry = _terms_memo.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    result = _conjunction_terms(expr)
    if len(_terms_memo) >= 2048:
        _terms_memo.clear()
    _terms_memo[id(expr)] = (expr, result)
    return result


_terms_memo: dict[int, tuple[Expr, tuple[Expr, ...]]] = {}


def _conjunction_terms(expr: Expr) -> tuple[Expr, ...]:
    expr = normalize(expr)
    if isinstance(expr, TrueExpr):
        return ()
    if isinstance(expr, And):
        return expr.children
    return (expr,)

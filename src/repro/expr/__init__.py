"""Predicate expressions.

Boolean restrictions over a single table: AST (:mod:`repro.expr.ast`),
row evaluation (:mod:`repro.expr.eval`), normalization
(:mod:`repro.expr.normalize`), and extraction of sargable key ranges per
index (:mod:`repro.expr.ranges`) — the bridge between a table-wide Boolean
and the per-index restrictions Jscan scans.
"""

from repro.expr.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FalseExpr,
    HostVar,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpr,
    col,
    lit,
    var,
)
from repro.expr.eval import evaluate, referenced_columns, referenced_host_vars
from repro.expr.normalize import conjunction_terms, normalize
from repro.expr.ranges import IndexRestriction, extract_index_restriction

__all__ = [
    "And",
    "Between",
    "ColumnRef",
    "Comparison",
    "Expr",
    "FalseExpr",
    "HostVar",
    "InList",
    "Like",
    "Literal",
    "Not",
    "Or",
    "TrueExpr",
    "col",
    "lit",
    "var",
    "evaluate",
    "referenced_columns",
    "referenced_host_vars",
    "conjunction_terms",
    "normalize",
    "IndexRestriction",
    "extract_index_restriction",
]

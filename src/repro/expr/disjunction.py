"""Disjunctive (OR) restriction analysis.

Section 8 names "covering ORs and between-index subexpressions of
table-wide Boolean expressions" as the next extension of the tactics; this
module implements the analysis half: split a restriction into top-level
disjuncts and derive, for each disjunct, the best single-index key range
that *covers* it (every row satisfying the disjunct has its key in the
range). If every disjunct is covered somewhere, the union of the range
scans covers the whole restriction — the precondition for the union joint
scan in :mod:`repro.engine.union_scan`.

``IN`` lists are expanded into per-value equality disjuncts, so
``COLOR IN (3, 5, 9)`` becomes three exact ranges on a COLOR index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.btree.tree import KeyRange
from repro.db.catalog import IndexInfo
from repro.expr.ast import Expr, InList, Literal, Or
from repro.expr.normalize import conjunction_terms, normalize
from repro.expr.ranges import extract_index_restriction


def _literal_in_list(term: Expr) -> InList | None:
    """The term itself, if it is an IN list over constants only."""
    if (
        isinstance(term, InList)
        and term.values
        and all(isinstance(value, Literal) for value in term.values)
    ):
        return term
    return None


def disjunction_terms(expr: Expr) -> tuple[Expr, ...]:
    """Top-level OR terms of the normalized expression.

    A non-OR expression is a single disjunct. Literal ``IN`` lists are
    expanded into one equality disjunct per value — both at the top level
    (``A IN (1,2)`` becomes two disjuncts) and inside a conjunction
    (``A IN (1,2) AND C > 5`` distributes into ``(A=1 AND C>5) OR
    (A=2 AND C>5)``), so an index on A can drive a union scan even when the
    remaining conjuncts are unindexable.
    """
    from repro.expr.ast import And, Comparison

    expr = normalize(expr)
    terms = expr.children if isinstance(expr, Or) else (expr,)
    expanded: list[Expr] = []
    for term in terms:
        in_list = _literal_in_list(term)
        if in_list is not None:
            expanded.extend(
                Comparison("=", in_list.column, value) for value in in_list.values
            )
            continue
        if isinstance(term, And):
            # distribute the first literal IN list over the conjunction
            inner = next(
                (child for child in term.children if _literal_in_list(child)), None
            )
            if inner is not None:
                others = tuple(child for child in term.children if child is not inner)
                for value in inner.values:  # type: ignore[union-attr]
                    replaced = (Comparison("=", inner.column, value),) + others
                    expanded.append(replaced[0] if len(replaced) == 1 else And(replaced))
                continue
        expanded.append(term)
    return tuple(expanded)


@dataclass
class DisjunctRange:
    """One disjunct with the index range that covers it."""

    disjunct: Expr
    index: IndexInfo
    key_range: KeyRange


def cover_disjuncts(
    expr: Expr,
    indexes: Sequence[IndexInfo],
    host_vars: Mapping[str, Any] = {},
) -> list[DisjunctRange] | None:
    """Find a covering index range for every top-level disjunct.

    Returns one :class:`DisjunctRange` per disjunct, or None when any
    disjunct has no matched range on any index (the union scan would not be
    sound — the caller must fall back to Tscan).

    Each disjunct is treated as a conjunction (its own AND terms); the
    index whose range is most constrained (equality > two bounds > one)
    is chosen. Soundness follows from
    :func:`repro.expr.ranges.extract_index_restriction` producing
    over-approximating ranges.
    """
    covered: list[DisjunctRange] = []
    for disjunct in disjunction_terms(expr):
        terms = conjunction_terms(disjunct)
        if not terms:
            return None  # a TRUE disjunct makes the whole OR unrestrictable
        best: DisjunctRange | None = None
        best_rank: tuple | None = None
        for index in indexes:
            restriction = extract_index_restriction(terms, index.columns, host_vars)
            if not restriction.matched:
                continue
            key_range = restriction.key_range
            rank = (
                0 if (key_range.lo is not None and key_range.lo == key_range.hi) else 1,
                -((key_range.lo is not None) + (key_range.hi is not None)),
                -restriction.equality_prefix,
            )
            if best_rank is None or rank < best_rank:
                best = DisjunctRange(disjunct=disjunct, index=index, key_range=key_range)
                best_rank = rank
        if best is None:
            return None
        covered.append(best)
    return covered

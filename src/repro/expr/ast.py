"""Predicate AST.

Expressions are immutable dataclasses. Comparison operands are value terms:
column references, literals, or host variables (the ``:A1`` of the paper's
motivating query). Convenience builders :func:`col`, :func:`lit`,
:func:`var` and operator overloads on :class:`ColumnRef` keep test and
example code close to SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ExpressionError

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class Expr:
    """Base class for boolean expressions."""

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


class ValueTerm:
    """Base class for comparison operands."""


@dataclass(frozen=True)
class ColumnRef(ValueTerm):
    """Reference to a column of the (single) table being restricted."""

    name: str

    def _compare(self, op: str, other: Any) -> "Comparison":
        return Comparison(op, self, _as_term(other))

    def __lt__(self, other: Any) -> "Comparison":
        return self._compare("<", other)

    def __le__(self, other: Any) -> "Comparison":
        return self._compare("<=", other)

    def __gt__(self, other: Any) -> "Comparison":
        return self._compare(">", other)

    def __ge__(self, other: Any) -> "Comparison":
        return self._compare(">=", other)

    def eq(self, other: Any) -> "Comparison":
        """Equality predicate (named method: ``==`` is kept for identity)."""
        return self._compare("=", other)

    def ne(self, other: Any) -> "Comparison":
        """Inequality predicate."""
        return self._compare("<>", other)

    def between(self, lo: Any, hi: Any) -> "Between":
        """SQL BETWEEN (inclusive both ends)."""
        return Between(self, _as_term(lo), _as_term(hi))

    def in_(self, values: Sequence[Any]) -> "InList":
        """SQL IN over a literal/host-var list."""
        return InList(self, tuple(_as_term(v) for v in values))

    def like(self, pattern: str) -> "Like":
        """SQL LIKE with ``%`` and ``_`` wildcards."""
        return Like(self, pattern)


@dataclass(frozen=True)
class Literal(ValueTerm):
    """A constant value."""

    value: Any


@dataclass(frozen=True)
class HostVar(ValueTerm):
    """A host-language variable, bound per execution (``:A1``)."""

    name: str


def _as_term(value: Any) -> ValueTerm:
    if isinstance(value, ValueTerm):
        return value
    return Literal(value)


def col(name: str) -> ColumnRef:
    """Build a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Build a literal."""
    return Literal(value)


def var(name: str) -> HostVar:
    """Build a host-variable reference."""
    return HostVar(name)


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` for op in ``=, <>, <, <=, >, >=``."""

    op: str
    left: ValueTerm
    right: ValueTerm

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class Between(Expr):
    """``column BETWEEN lo AND hi`` (inclusive)."""

    column: ColumnRef
    lo: ValueTerm
    hi: ValueTerm


@dataclass(frozen=True)
class InList(Expr):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[ValueTerm, ...]


@dataclass(frozen=True)
class Like(Expr):
    """``column LIKE pattern`` with ``%`` (any run) and ``_`` (any char)."""

    column: ColumnRef
    pattern: str


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of two or more children."""

    children: tuple[Expr, ...]

    def __init__(self, children: Sequence[Expr]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if len(self.children) < 2:
            raise ExpressionError("And requires at least two children")


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of two or more children."""

    children: tuple[Expr, ...]

    def __init__(self, children: Sequence[Expr]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if len(self.children) < 2:
            raise ExpressionError("Or requires at least two children")


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    child: Expr


@dataclass(frozen=True)
class TrueExpr(Expr):
    """Constant TRUE (no restriction)."""


@dataclass(frozen=True)
class FalseExpr(Expr):
    """Constant FALSE (empty restriction)."""


ALWAYS_TRUE = TrueExpr()
ALWAYS_FALSE = FalseExpr()

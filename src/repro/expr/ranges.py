"""Sargable key-range extraction.

Given the conjunctive terms of a restriction, the current host-variable
bindings, and an index's column list, derive the tightest :class:`KeyRange`
the index can scan. This runs at *start retrieval time* — after host
variables are bound — which is precisely what lets the dynamic optimizer see
the difference between ``AGE >= 0`` and ``AGE >= 200`` (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.btree.tree import KeyRange
from repro.expr.ast import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    Like,
    Literal,
    ValueTerm,
)

#: Largest code point — used to close LIKE-prefix ranges over strings.
_STRING_TOP = "\U0010FFFF"


@dataclass
class _ColumnBounds:
    """Accumulated lower/upper bounds for one column."""

    lo: Any = None
    lo_inclusive: bool = True
    has_lo: bool = False
    hi: Any = None
    hi_inclusive: bool = True
    has_hi: bool = False

    def narrow_lo(self, value: Any, inclusive: bool) -> None:
        if not self.has_lo or value > self.lo or (value == self.lo and not inclusive):
            self.lo, self.lo_inclusive, self.has_lo = value, inclusive, True

    def narrow_hi(self, value: Any, inclusive: bool) -> None:
        if not self.has_hi or value < self.hi or (value == self.hi and not inclusive):
            self.hi, self.hi_inclusive, self.has_hi = value, inclusive, True

    @property
    def equality_value(self) -> Any | None:
        """The pinned value if bounds collapse to a single inclusive point."""
        if (
            self.has_lo
            and self.has_hi
            and self.lo == self.hi
            and self.lo_inclusive
            and self.hi_inclusive
        ):
            return self.lo
        return None


@dataclass(frozen=True)
class IndexRestriction:
    """The portion of a restriction one index can enforce by a range scan."""

    #: the index this restriction was derived for (column names)
    index_columns: tuple[str, ...]
    #: the scannable key range (``KeyRange.all()`` when nothing matched)
    key_range: KeyRange
    #: terms that contributed bounds to the range
    contributing_terms: tuple[Expr, ...] = ()
    #: number of leading index columns pinned by equality
    equality_prefix: int = 0

    @property
    def matched(self) -> bool:
        """True when the range constrains the scan at all."""
        return self.key_range.lo is not None or self.key_range.hi is not None


def _constant_of(term: ValueTerm, host_vars: Mapping[str, Any]) -> tuple[bool, Any]:
    """Resolve a term to a constant if it is one (literal or bound host var)."""
    if isinstance(term, Literal):
        return True, term.value
    if isinstance(term, HostVar):
        if term.name in host_vars:
            return True, host_vars[term.name]
        return False, None
    return False, None


def _column_comparison(
    term: Expr, column: str, host_vars: Mapping[str, Any]
) -> tuple[str, Any] | None:
    """If ``term`` is ``column op constant`` (either side), return (op, value)."""
    if not isinstance(term, Comparison):
        return None
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(term.left, ColumnRef) and term.left.name == column:
        ok, value = _constant_of(term.right, host_vars)
        if ok:
            return term.op, value
    if isinstance(term.right, ColumnRef) and term.right.name == column:
        ok, value = _constant_of(term.left, host_vars)
        if ok:
            return flipped[term.op], value
    return None


def _like_prefix(pattern: str) -> str:
    prefix_chars: list[str] = []
    for char in pattern:
        if char in ("%", "_"):
            break
        prefix_chars.append(char)
    return "".join(prefix_chars)


def _apply_term_to_bounds(
    term: Expr, column: str, host_vars: Mapping[str, Any], bounds: _ColumnBounds
) -> bool:
    """Fold one conjunct into the bounds for ``column``; True if it helped."""
    comparison = _column_comparison(term, column, host_vars)
    if comparison is not None:
        op, value = comparison
        if value is None:
            return False
        if op == "=":
            bounds.narrow_lo(value, True)
            bounds.narrow_hi(value, True)
        elif op == ">":
            bounds.narrow_lo(value, False)
        elif op == ">=":
            bounds.narrow_lo(value, True)
        elif op == "<":
            bounds.narrow_hi(value, False)
        elif op == "<=":
            bounds.narrow_hi(value, True)
        else:  # <> is not sargable
            return False
        return True
    if isinstance(term, Between) and term.column.name == column:
        lo_ok, lo = _constant_of(term.lo, host_vars)
        hi_ok, hi = _constant_of(term.hi, host_vars)
        helped = False
        if lo_ok and lo is not None:
            bounds.narrow_lo(lo, True)
            helped = True
        if hi_ok and hi is not None:
            bounds.narrow_hi(hi, True)
            helped = True
        return helped
    if isinstance(term, InList) and term.column.name == column and len(term.values) == 1:
        ok, value = _constant_of(term.values[0], host_vars)
        if ok and value is not None:
            bounds.narrow_lo(value, True)
            bounds.narrow_hi(value, True)
            return True
        return False
    if isinstance(term, Like) and term.column.name == column:
        prefix = _like_prefix(term.pattern)
        if prefix:
            bounds.narrow_lo(prefix, True)
            bounds.narrow_hi(prefix + _STRING_TOP, True)
            return True
        return False
    return False


def extract_index_restriction(
    terms: Sequence[Expr],
    index_columns: Sequence[str],
    host_vars: Mapping[str, Any] = {},
) -> IndexRestriction:
    """Derive the scannable key range of an index from conjunctive terms.

    Leading columns pinned by equality extend the prefix; the first
    non-equality column contributes its (half-)open range and terminates
    extraction, matching standard composite-index sargability.
    """
    prefix: list[Any] = []
    contributing: list[Expr] = []
    columns = tuple(index_columns)
    for position, column in enumerate(columns):
        bounds = _ColumnBounds()
        used_terms = [
            term for term in terms if _apply_term_to_bounds(term, column, host_vars, bounds)
        ]
        if not used_terms:
            break
        contributing.extend(used_terms)
        equality = bounds.equality_value
        if equality is not None and position < len(columns) - 1:
            prefix.append(equality)
            continue
        # terminal column: build the range from prefix + this column's bounds
        lo = tuple(prefix) + ((bounds.lo,) if bounds.has_lo else ())
        hi = tuple(prefix) + ((bounds.hi,) if bounds.has_hi else ())
        key_range = KeyRange(
            lo=lo if bounds.has_lo else (tuple(prefix) if prefix else None),
            hi=hi if bounds.has_hi else (tuple(prefix) if prefix else None),
            lo_inclusive=bounds.lo_inclusive if bounds.has_lo else True,
            hi_inclusive=bounds.hi_inclusive if bounds.has_hi else True,
        )
        return IndexRestriction(
            index_columns=columns,
            key_range=key_range,
            contributing_terms=tuple(contributing),
            equality_prefix=len(prefix) + (1 if equality is not None else 0),
        )
    if prefix:
        # every examined column was an equality; range is the exact prefix
        key = tuple(prefix)
        return IndexRestriction(
            index_columns=columns,
            key_range=KeyRange(lo=key, hi=key),
            contributing_terms=tuple(contributing),
            equality_prefix=len(prefix),
        )
    return IndexRestriction(index_columns=columns, key_range=KeyRange.all())

"""Row evaluation of predicate expressions."""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Mapping, Sequence

from repro.errors import BindingError, ExpressionError
from repro.expr.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FalseExpr,
    HostVar,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpr,
    ValueTerm,
)

#: maps a column name to its position in the row tuple
SchemaMap = Mapping[str, int]
#: host variable bindings for one execution
HostVars = Mapping[str, Any]


def resolve_term(
    term: ValueTerm, row: Sequence | None, schema: SchemaMap, host_vars: HostVars
) -> Any:
    """Resolve a value term against a row and host-variable bindings."""
    if isinstance(term, Literal):
        return term.value
    if isinstance(term, HostVar):
        try:
            return host_vars[term.name]
        except KeyError:
            raise BindingError(term.name, "host variable") from None
    if isinstance(term, ColumnRef):
        if row is None:
            raise ExpressionError(f"column {term.name!r} needs a row to evaluate")
        try:
            return row[schema[term.name]]
        except KeyError:
            raise BindingError(term.name, "column") from None
    raise ExpressionError(f"unknown value term {term!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False  # SQL-ish: comparisons with NULL are not TRUE
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExpressionError(f"unknown comparison operator {op!r}")


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    regex = []
    for char in pattern:
        if char == "%":
            regex.append(".*")
        elif char == "_":
            regex.append(".")
        else:
            regex.append(re.escape(char))
    return re.compile("^" + "".join(regex) + "$", re.DOTALL)


def evaluate(
    expr: Expr, row: Sequence, schema: SchemaMap, host_vars: HostVars = {}
) -> bool:
    """Evaluate a predicate on one row. Three-valued logic is collapsed:
    anything not definitely TRUE is FALSE (sufficient for retrieval)."""
    if isinstance(expr, TrueExpr):
        return True
    if isinstance(expr, FalseExpr):
        return False
    if isinstance(expr, Comparison):
        left = resolve_term(expr.left, row, schema, host_vars)
        right = resolve_term(expr.right, row, schema, host_vars)
        return _compare(expr.op, left, right)
    if isinstance(expr, Between):
        value = resolve_term(expr.column, row, schema, host_vars)
        lo = resolve_term(expr.lo, row, schema, host_vars)
        hi = resolve_term(expr.hi, row, schema, host_vars)
        if value is None or lo is None or hi is None:
            return False
        return lo <= value <= hi
    if isinstance(expr, InList):
        value = resolve_term(expr.column, row, schema, host_vars)
        if value is None:
            return False
        return any(
            value == resolve_term(term, row, schema, host_vars) for term in expr.values
        )
    if isinstance(expr, Like):
        value = resolve_term(expr.column, row, schema, host_vars)
        if not isinstance(value, str):
            return False
        return _like_regex(expr.pattern).match(value) is not None
    if isinstance(expr, And):
        return all(evaluate(child, row, schema, host_vars) for child in expr.children)
    if isinstance(expr, Or):
        return any(evaluate(child, row, schema, host_vars) for child in expr.children)
    if isinstance(expr, Not):
        return not evaluate(expr.child, row, schema, host_vars)
    raise ExpressionError(f"cannot evaluate {expr!r}")


def compile_predicate(
    expr: Expr, schema: SchemaMap, host_vars: HostVars = {}
) -> "Callable[[Sequence], bool]":
    """Compile a predicate into a ``row -> bool`` closure.

    For a fixed schema and host-variable binding the closure returns exactly
    what :func:`evaluate` would, but resolves column positions, host-variable
    values, and dispatch once instead of per row — the batched scan loops
    amortise this compile over whole batches. Falls back to an interpreted
    closure for any shape it cannot specialise (including predicates whose
    bindings would only fail lazily under short-circuit evaluation, which
    must keep failing lazily).
    """
    try:
        return _compile(expr, schema, host_vars)
    except ExpressionError:
        return lambda row: evaluate(expr, row, schema, host_vars)


def _compile(expr, schema, host_vars):
    def term(value_term):
        if isinstance(value_term, Literal):
            value = value_term.value
            return lambda row: value
        if isinstance(value_term, HostVar):
            try:
                value = host_vars[value_term.name]
            except KeyError:
                # evaluate() raises only if the term is actually reached;
                # signal the caller to fall back to the interpreter
                raise ExpressionError(value_term.name) from None
            return lambda row: value
        if isinstance(value_term, ColumnRef):
            try:
                position = schema[value_term.name]
            except KeyError:
                raise ExpressionError(value_term.name) from None
            return lambda row: row[position]
        raise ExpressionError(f"unknown value term {value_term!r}")

    def const(value_term):
        """(True, value) when the term is row-independent."""
        if isinstance(value_term, Literal):
            return True, value_term.value
        if isinstance(value_term, HostVar):
            try:
                return True, host_vars[value_term.name]
            except KeyError:
                raise ExpressionError(value_term.name) from None
        return False, None

    def position_of(value_term):
        if not isinstance(value_term, ColumnRef):
            return None
        try:
            return schema[value_term.name]
        except KeyError:
            raise ExpressionError(value_term.name) from None

    if isinstance(expr, TrueExpr):
        return lambda row: True
    if isinstance(expr, FalseExpr):
        return lambda row: False
    if isinstance(expr, Comparison):
        # fold the hot shape — column <op> constant — into one closure
        position = position_of(expr.left)
        is_const, bound = const(expr.right) if position is not None else (False, None)
        if position is not None and is_const:
            if bound is None:
                return lambda row: False
            op = expr.op
            if op == "=":
                return lambda row: (v := row[position]) is not None and v == bound
            if op == "<>":
                return lambda row: (v := row[position]) is not None and v != bound
            if op == "<":
                return lambda row: (v := row[position]) is not None and v < bound
            if op == "<=":
                return lambda row: (v := row[position]) is not None and v <= bound
            if op == ">":
                return lambda row: (v := row[position]) is not None and v > bound
            if op == ">=":
                return lambda row: (v := row[position]) is not None and v >= bound
        left, right, op = term(expr.left), term(expr.right), expr.op
        return lambda row: _compare(op, left(row), right(row))
    if isinstance(expr, Between):
        position = position_of(expr.column)
        lo_const, lo_value = const(expr.lo) if position is not None else (False, None)
        hi_const, hi_value = const(expr.hi) if position is not None else (False, None)
        if position is not None and lo_const and hi_const:
            if lo_value is None or hi_value is None:
                return lambda row: False
            return (
                lambda row: (v := row[position]) is not None
                and lo_value <= v <= hi_value
            )
        value, lo, hi = term(expr.column), term(expr.lo), term(expr.hi)

        def between(row):
            v, l, h = value(row), lo(row), hi(row)
            if v is None or l is None or h is None:
                return False
            return l <= v <= h

        return between
    if isinstance(expr, InList):
        value = term(expr.column)
        candidates = [term(child) for child in expr.values]

        def in_list(row):
            v = value(row)
            if v is None:
                return False
            return any(v == candidate(row) for candidate in candidates)

        return in_list
    if isinstance(expr, Like):
        value = term(expr.column)
        regex = _like_regex(expr.pattern)

        def like(row):
            v = value(row)
            return isinstance(v, str) and regex.match(v) is not None

        return like
    if isinstance(expr, And):
        children = [_compile(child, schema, host_vars) for child in expr.children]
        return lambda row: all(child(row) for child in children)
    if isinstance(expr, Or):
        children = [_compile(child, schema, host_vars) for child in expr.children]
        return lambda row: any(child(row) for child in children)
    if isinstance(expr, Not):
        child = _compile(expr.child, schema, host_vars)
        return lambda row: not child(row)
    raise ExpressionError(f"cannot compile {expr!r}")


def referenced_columns(expr: Expr) -> frozenset[str]:
    """All column names the expression reads.

    Memoised per expression *object* (identity-keyed; the stored strong
    reference pins the id): cached plans walk the same restriction instance
    on every execution, and the column set is pure structure.
    """
    entry = _columns_memo.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    result = _referenced_columns(expr)
    if len(_columns_memo) >= 2048:
        _columns_memo.clear()
    _columns_memo[id(expr)] = (expr, result)
    return result


_columns_memo: dict[int, tuple[Expr, frozenset[str]]] = {}


def _referenced_columns(expr: Expr) -> frozenset[str]:
    names: set[str] = set()
    _walk_columns(expr, names)
    return frozenset(names)


def _walk_columns(node: object, names: set[str]) -> None:
    if isinstance(node, ColumnRef):
        names.add(node.name)
    elif isinstance(node, Comparison):
        _walk_columns(node.left, names)
        _walk_columns(node.right, names)
    elif isinstance(node, Between):
        _walk_columns(node.column, names)
        _walk_columns(node.lo, names)
        _walk_columns(node.hi, names)
    elif isinstance(node, InList):
        _walk_columns(node.column, names)
        for term in node.values:
            _walk_columns(term, names)
    elif isinstance(node, Like):
        _walk_columns(node.column, names)
    elif isinstance(node, (And, Or)):
        for child in node.children:
            _walk_columns(child, names)
    elif isinstance(node, Not):
        _walk_columns(node.child, names)


def rewrite_columns(expr: Expr, mapper) -> Expr:
    """Structurally copy ``expr`` with every column name passed through
    ``mapper``. Used by the join planner to strip alias qualifiers off
    single-table conjuncts so the single-table engine can consume them."""
    return _rewrite(expr, mapper)


def _rewrite(node, mapper):
    if isinstance(node, ColumnRef):
        return ColumnRef(mapper(node.name))
    if isinstance(node, Comparison):
        return Comparison(node.op, _rewrite(node.left, mapper), _rewrite(node.right, mapper))
    if isinstance(node, Between):
        return Between(
            _rewrite(node.column, mapper),
            _rewrite(node.lo, mapper),
            _rewrite(node.hi, mapper),
        )
    if isinstance(node, InList):
        return InList(
            _rewrite(node.column, mapper),
            tuple(_rewrite(term, mapper) for term in node.values),
        )
    if isinstance(node, Like):
        return Like(_rewrite(node.column, mapper), node.pattern)
    if isinstance(node, And):
        return And(tuple(_rewrite(child, mapper) for child in node.children))
    if isinstance(node, Or):
        return Or(tuple(_rewrite(child, mapper) for child in node.children))
    if isinstance(node, Not):
        return Not(_rewrite(node.child, mapper))
    return node


def referenced_host_vars(expr: Expr) -> frozenset[str]:
    """All host-variable names the expression reads."""
    names: set[str] = set()
    _walk_vars(expr, names)
    return frozenset(names)


def _walk_vars(node: object, names: set[str]) -> None:
    if isinstance(node, HostVar):
        names.add(node.name)
    elif isinstance(node, Comparison):
        _walk_vars(node.left, names)
        _walk_vars(node.right, names)
    elif isinstance(node, Between):
        _walk_vars(node.lo, names)
        _walk_vars(node.hi, names)
    elif isinstance(node, InList):
        for term in node.values:
            _walk_vars(term, names)
    elif isinstance(node, (And, Or)):
        for child in node.children:
            _walk_vars(child, names)
    elif isinstance(node, Not):
        _walk_vars(node.child, names)

"""Server-wide aggregation of dynamic execution metrics.

Every retrieval produces a :class:`~repro.engine.metrics.RetrievalTrace`;
the paper exposes those per-retrieval "dynamic execution metrics" to the
user. Once many sessions run concurrently, the interesting questions become
engine-wide — how many scans did the whole server abandon, how often did
strategies switch, what is each session's cache hit rate under contention —
so the :class:`MetricsRegistry` folds every trace's counters into queryable
totals and per-session breakdowns. The registry is pure accounting: it
never touches the engine, and its totals reconcile exactly with the sum of
the individual traces it recorded (asserted by tests and the concurrency
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from typing import Any, Iterator

from repro.engine.metrics import RetrievalCounters, RetrievalTrace
from repro.obs.audit import DecisionMetrics
from repro.obs.export import PrometheusText, _format_labels, _format_value
from repro.obs.hist import LogHistogram

#: numeric rendering of a health report's status for the gauge surface
_HEALTH_STATUS_VALUE = {"ok": 0, "disabled": 0, "warn": 1, "critical": 2}


def add_counters(into: RetrievalCounters, other: RetrievalCounters) -> None:
    """Fold ``other``'s counters into ``into`` field by field."""
    for spec in fields(RetrievalCounters):
        setattr(into, spec.name, getattr(into, spec.name) + getattr(other, spec.name))


@dataclass
class SessionMetrics:
    """Aggregated metrics of one session (or of the whole server)."""

    session_id: str
    queries_completed: int = 0
    queries_cancelled: int = 0
    queries_failed: int = 0
    #: retrievals whose traces were folded in (a statement may run several)
    retrievals: int = 0
    counters: RetrievalCounters = field(default_factory=RetrievalCounters)
    #: buffer-pool accesses attributed to this session's query steps
    cache_hits: int = 0
    cache_misses: int = 0
    #: scheduling quanta consumed by this session's retired queries; the
    #: :attr:`steps_per_query` histogram's ``sum`` reconciles exactly with it
    quanta: int = 0
    #: wall-clock latency (admission → retirement) per retired query, seconds
    latency: LogHistogram = field(
        default_factory=lambda: LogHistogram("query_latency_seconds")
    )
    #: scheduling quanta spent waiting in the admission queue per query
    queue_wait: LogHistogram = field(
        default_factory=lambda: LogHistogram("queue_wait_quanta")
    )
    #: scheduling quanta executed per retired query
    steps_per_query: LogHistogram = field(
        default_factory=lambda: LogHistogram("steps_per_query")
    )

    @property
    def queries(self) -> int:
        """All queries that reached a terminal state."""
        return self.queries_completed + self.queries_cancelled + self.queries_failed

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of attributed pool accesses served from cache."""
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    def merge(self, other: "SessionMetrics") -> None:
        """Fold another session's metrics into this aggregate."""
        self.queries_completed += other.queries_completed
        self.queries_cancelled += other.queries_cancelled
        self.queries_failed += other.queries_failed
        self.retrievals += other.retrievals
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.quanta += other.quanta
        add_counters(self.counters, other.counters)
        self.latency.merge(other.latency)
        self.queue_wait.merge(other.queue_wait)
        self.steps_per_query.merge(other.steps_per_query)

    def snapshot(self) -> "SessionMetrics":
        """An independent deep copy — safe to hold across later queries."""
        copy = SessionMetrics(self.session_id)
        copy.merge(self)
        return copy


class MetricsRegistry:
    """Queryable totals and per-session breakdowns of engine activity."""

    def __init__(self) -> None:
        self._sessions: dict[str, SessionMetrics] = {}
        #: server-wide buffer-pool read-ahead run lengths (pages loaded per
        #: prefetch call); its ``sum`` reconciles with ``pool.prefetched``
        self.fetch_runs = LogHistogram("fetch_run_length")
        #: the database's shared plan cache / feedback store, wired in by
        #: the owning QueryServer so scrapes expose their counters
        self.plan_cache = None
        self.feedback = None
        #: server-wide decision accounting: per-kind decision counts,
        #: per-tactic win rates, regret / estimate-error / retrieval-cost
        #: distributions (the live Figure 2.1/2.2 L-shapes)
        self.decisions = DecisionMetrics()
        #: queries captured by the slow-query flight recorder
        self.flight_records = 0
        #: the database's scatter-gather aggregates
        #: (:class:`repro.partition.stats.PartitionStats`), wired in by
        #: the owning QueryServer
        self.partitions = None
        #: the database's estimation-quality subsystem
        #: (:class:`repro.estimate.Estimator`), wired in by the owning
        #: QueryServer so scrapes expose q-error/confidence counters
        self.estimator = None
        #: the server's continuous time-series registry
        #: (:class:`repro.obs.timeseries.TimeSeriesRegistry`), wired in by
        #: the owning QueryServer when monitoring is enabled
        self.monitor = None
        #: the server's health monitor (:class:`repro.obs.health.HealthMonitor`)
        self.health = None
        #: the server's JSONL sinks by role (``trace`` / ``flight``), wired
        #: in so scrapes expose record and rotation counters per sink
        self.sinks: dict[str, Any] = {}
        #: incident bundles written through the flight-recorder path
        self.incidents = 0

    def session(self, session_id: str) -> SessionMetrics:
        """The metrics of one session (created on demand)."""
        metrics = self._sessions.get(session_id)
        if metrics is None:
            metrics = self._sessions[session_id] = SessionMetrics(session_id)
        return metrics

    def per_session(self) -> dict[str, SessionMetrics]:
        """Breakdown by session id, as independent deep snapshots.

        Earlier revisions handed out the live mutable objects, so a caller
        holding the dict across later queries silently saw its numbers
        drift. Callers needing the live object use :meth:`session`.
        """
        return self.snapshot()

    def snapshot(self) -> dict[str, SessionMetrics]:
        """Deep point-in-time copies of every session's metrics."""
        return {
            session_id: metrics.snapshot()
            for session_id, metrics in self._sessions.items()
        }

    # -- recording (called by the QueryServer) -----------------------------

    def record_trace(self, session_id: str, trace: RetrievalTrace) -> None:
        """Fold one retrieval's counters into the session's aggregate."""
        metrics = self.session(session_id)
        metrics.retrievals += 1
        add_counters(metrics.counters, trace.counters)

    def record_cache(self, session_id: str, hits: int, misses: int) -> None:
        """Credit pool accesses a finished query caused to its session."""
        metrics = self.session(session_id)
        metrics.cache_hits += hits
        metrics.cache_misses += misses

    def record_outcome(self, session_id: str, outcome: str) -> None:
        """Count one query reaching a terminal state
        (``done``/``cancelled``/``failed``)."""
        metrics = self.session(session_id)
        if outcome == "done":
            metrics.queries_completed += 1
        elif outcome == "cancelled":
            metrics.queries_cancelled += 1
        elif outcome == "failed":
            metrics.queries_failed += 1
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown outcome {outcome!r}")

    def record_completion(
        self,
        session_id: str,
        latency_seconds: float,
        queue_wait_quanta: int,
        quanta: int,
    ) -> None:
        """Record the latency/wait/step distributions of one retired query.

        ``quanta`` is both added to the session's flat counter and recorded
        in the steps-per-query histogram, so the histogram's ``sum``
        reconciles exactly with the counter total.
        """
        metrics = self.session(session_id)
        metrics.quanta += quanta
        metrics.latency.record(latency_seconds)
        metrics.queue_wait.record(queue_wait_quanta)
        metrics.steps_per_query.record(quanta)

    def record_fetch_run(self, pages_loaded: int) -> None:
        """Record one buffer-pool read-ahead run (pages loaded at once)."""
        self.fetch_runs.record(pages_loaded)

    # -- querying ----------------------------------------------------------

    def totals(self) -> SessionMetrics:
        """Server-wide aggregate across every session (a fresh snapshot)."""
        total = SessionMetrics("<all>")
        for metrics in self._sessions.values():
            total.merge(metrics)
        return total

    def scalar_samples(self) -> Iterator[tuple[str, str, str, dict | None, float]]:
        """Every scalar (non-histogram) sample as
        ``(name, kind, help, labels, value)``, in exposition order.

        The single source of truth shared by :meth:`format` (the shell's
        ``counters:`` block) and :meth:`expose_text` (Prometheus), so the
        two surfaces cannot drift — the parity test diffs them.
        """
        everyone = [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        )
        for metrics in everyone:
            base = {"session": metrics.session_id}
            for outcome, value in (
                ("done", metrics.queries_completed),
                ("cancelled", metrics.queries_cancelled),
                ("failed", metrics.queries_failed),
            ):
                yield (
                    "queries_total", "counter",
                    "Queries retired, by terminal state.",
                    dict(base, outcome=outcome), value,
                )
            yield (
                "retrievals_total", "counter",
                "Engine retrievals whose traces were recorded.",
                base, metrics.retrievals,
            )
            yield (
                "query_quanta_total", "counter",
                "Scheduling quanta consumed by retired queries.",
                base, metrics.quanta,
            )
            yield (
                "cache_hits_total", "counter",
                "Buffer-pool hits attributed to the session.",
                base, metrics.cache_hits,
            )
            yield (
                "cache_misses_total", "counter",
                "Buffer-pool misses attributed to the session.",
                base, metrics.cache_misses,
            )
            for spec in fields(RetrievalCounters):
                yield (
                    f"engine_{spec.name}_total", "counter",
                    f"Engine counter: {spec.name.replace('_', ' ')}.",
                    base, getattr(metrics.counters, spec.name),
                )
        if self.plan_cache is not None:
            cache = self.plan_cache
            yield (
                "plan_cache_hits_total", "counter",
                "Plan-cache lookups served without parsing.", None, cache.hits,
            )
            yield (
                "plan_cache_misses_total", "counter",
                "Plan-cache lookups that parsed and bound the statement.",
                None, cache.misses,
            )
            yield (
                "plan_cache_evictions_total", "counter",
                "Cached plans dropped by LRU capacity pressure.",
                None, cache.evictions,
            )
            yield (
                "plan_cache_invalidations_total", "counter",
                "Cached plans dropped by DDL schema changes.",
                None, cache.invalidations,
            )
            yield (
                "plan_cache_size", "gauge",
                "Cached plans currently held.", None, cache.size,
            )
            yield (
                "plan_cache_capacity", "gauge",
                "Plan-cache capacity (0 = caching disabled).",
                None, cache.capacity,
            )
        if self.feedback is not None:
            feedback = self.feedback
            yield (
                "feedback_records_total", "counter",
                "Estimated-vs-actual cardinality observations recorded.",
                None, feedback.records,
            )
            yield (
                "feedback_adjustments_total", "counter",
                "Initial estimates sharpened from recorded feedback.",
                None, feedback.adjustments,
            )
            yield (
                "feedback_entries", "gauge",
                "Live (table, index, predicate-signature) feedback entries.",
                None, feedback.size,
            )
            yield (
                "feedback_evictions_total", "counter",
                "Feedback entries dropped by LRU capacity pressure.",
                None, feedback.evictions,
            )
        if self.estimator is not None and self.estimator.enabled:
            estimator = self.estimator
            yield (
                "estimator_observations_total", "counter",
                "Q-error observations folded into signature statistics.",
                None, estimator.observations,
            )
            yield (
                "estimator_evictions_total", "counter",
                "Signature statistics dropped by LRU capacity pressure.",
                None, estimator.evictions,
            )
            yield (
                "competitions_skipped_total", "counter",
                "Competitions skipped because estimate confidence cleared "
                "the variance gate.",
                None, estimator.trusted,
            )
            yield (
                "competitions_run_total", "counter",
                "Gate consultations that fell back to running the race.",
                None, estimator.competed,
            )
            yield (
                "estimator_signatures", "gauge",
                "Live (table, index, predicate-signature) q-error entries.",
                None, len(estimator),
            )
        if self.partitions is not None:
            partitions = self.partitions
            yield (
                "partition_scatters_total", "counter",
                "Scatter-gather retrievals executed over partitioned tables.",
                None, partitions.scatters,
            )
            yield (
                "partition_merge_rows_total", "counter",
                "Rows delivered by gather merges (reconciles exactly with "
                "partitioned retrievals' row counts).",
                None, partitions.merge_rows,
            )
            yield (
                "partition_fetches_total", "counter",
                "Per-partition fetches executed by scatters.",
                None, partitions.partitions_fetched,
            )
            yield (
                "partition_pruned_total", "counter",
                "Partitions pruned before fetching (restriction analysis).",
                None, partitions.partitions_pruned,
            )
            yield (
                "partition_ordered_merges_total", "counter",
                "Scatters gathered with an ordered k-way merge.",
                None, partitions.ordered_merges,
            )
            yield (
                "partition_worker_utilization", "gauge",
                "Busy fraction of the partition worker pool "
                "(fetch cost over workers x critical-path cost).",
                None, partitions.worker_utilization,
            )
        decisions = self.decisions
        for kind, count in sorted(decisions.decisions.items()):
            yield (
                "audit_decisions_total", "counter",
                "Optimizer decisions recorded, by decision kind.",
                {"kind": kind}, count,
            )
        for tactic, count in sorted(decisions.tactic_selected.items()):
            yield (
                "tactic_selected_total", "counter",
                "Tactic-selection decisions, by chosen strategy.",
                {"tactic": tactic}, count,
            )
        for tactic, count in sorted(decisions.tactic_wins.items()):
            yield (
                "tactic_wins_total", "counter",
                "Counterfactual replays the chosen tactic won (or tied).",
                {"tactic": tactic}, count,
            )
        for tactic, count in sorted(decisions.tactic_losses.items()):
            yield (
                "tactic_losses_total", "counter",
                "Counterfactual replays a rejected alternative won.",
                {"tactic": tactic}, count,
            )
        yield (
            "replays_total", "counter",
            "Counterfactual strategy replays executed.", None, decisions.replays,
        )
        yield (
            "replay_truncated_total", "counter",
            "Counterfactual replays truncated by the step budget.",
            None, decisions.replay_truncated,
        )
        yield (
            "competition_cost_total", "counter",
            "Summed replayed cost of the chosen strategies.",
            None, decisions.competition_cost,
        )
        yield (
            "rejected_cost_total", "counter",
            "Summed replayed cost of the best rejected alternatives.",
            None, decisions.rejected_cost,
        )
        yield (
            "flight_records_total", "counter",
            "Queries captured by the slow-query flight recorder.",
            None, self.flight_records,
        )
        for role in sorted(self.sinks):
            sink = self.sinks[role]
            if sink is None:
                continue
            yield (
                "sink_records_total", "counter",
                "JSONL records written, by sink role.",
                {"sink": role}, sink.written,
            )
            yield (
                "sink_rotations_total", "counter",
                "Size-capped JSONL sink rotations, by sink role.",
                {"sink": role}, sink.rotations,
            )
        yield (
            "incidents_total", "counter",
            "Incident bundles written through the flight-recorder path.",
            None, self.incidents,
        )
        if self.monitor is not None:
            yield (
                "monitor_samples_total", "counter",
                "Time-series interval samples taken.",
                None, self.monitor.samples_taken,
            )
            latest = self.monitor.latest()
            if latest is not None:
                window_gauges = (
                    ("window_queries", latest.queries,
                     "Queries retired in the latest monitor window."),
                    ("window_queries_per_sec", latest.queries_per_sec,
                     "Throughput over the latest monitor window."),
                    ("window_p50_latency_seconds", latest.p50_latency,
                     "Median query latency over the latest monitor window."),
                    ("window_p95_latency_seconds", latest.p95_latency,
                     "P95 query latency over the latest monitor window."),
                    ("window_cache_hit_rate", latest.cache_hit_rate,
                     "Buffer-pool hit rate over the latest monitor window."),
                    ("window_plan_cache_hit_rate", latest.plan_cache_hit_rate,
                     "Plan-cache hit rate over the latest monitor window."),
                    ("window_competition_skip_ratio",
                     latest.competition_skip_ratio,
                     "Variance-gate skip ratio over the latest monitor window."),
                    ("window_qerror_p50", latest.qerror_p50,
                     "Median estimation q-error over the latest monitor window."),
                    ("window_qerror_p95", latest.qerror_p95,
                     "P95 estimation q-error over the latest monitor window."),
                    ("window_regret_mass", latest.regret_mass,
                     "Realized regret accumulated in the latest monitor window."),
                    ("window_worker_utilization", latest.worker_utilization,
                     "Partition-worker utilization over the latest monitor "
                     "window."),
                    ("window_queue_wait_p95_quanta", latest.queue_wait_p95,
                     "P95 admission queue wait over the latest monitor window."),
                )
                for name, value, help_text in window_gauges:
                    if value is None:
                        continue
                    yield (name, "gauge", help_text, None, value)
        if self.health is not None:
            report = self.health.report()
            yield (
                "health_status", "gauge",
                "Current health verdict (0 ok, 1 warn, 2 critical).",
                None, _HEALTH_STATUS_VALUE[report.status],
            )
            for rule in sorted(self.health.breaches):
                yield (
                    "health_rule_breaches_total", "counter",
                    "Health-rule breaches observed, by rule.",
                    {"rule": rule}, self.health.breaches[rule],
                )

    def format(self) -> str:
        """Multi-line human-readable rendering (shell ``\\metrics``)."""
        lines = []
        for metrics in [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        ):
            counters = metrics.counters
            lines.append(
                f"{metrics.session_id}: {metrics.queries} queries "
                f"({metrics.queries_completed} done, "
                f"{metrics.queries_cancelled} cancelled, "
                f"{metrics.queries_failed} failed), "
                f"{metrics.retrievals} retrievals, "
                f"{counters.records_fetched} fetched, "
                f"{counters.scans_abandoned} abandons, "
                f"{counters.strategy_switches} switches, "
                f"cache hit rate {metrics.cache_hit_ratio:.0%}"
            )
        if self.plan_cache is not None:
            cache = self.plan_cache
            lines.append(
                f"plan cache: {cache.size}/{cache.capacity} entries, "
                f"{cache.hits} hits, {cache.misses} misses, "
                f"{cache.evictions} evictions, "
                f"{cache.invalidations} invalidations"
            )
        if self.feedback is not None:
            feedback = self.feedback
            lines.append(
                f"feedback: {feedback.size} entries, "
                f"{feedback.records} recorded, "
                f"{feedback.adjustments} adjustments applied, "
                f"{feedback.evictions} evictions"
            )
        if self.estimator is not None and self.estimator.enabled:
            estimator = self.estimator
            lines.append(
                f"estimator: {len(estimator)} signatures, "
                f"{estimator.observations} observations, "
                f"{estimator.evictions} evictions, "
                f"gate: {estimator.trusted} trusted / "
                f"{estimator.competed} competed"
            )
        if self.partitions is not None and self.partitions.scatters:
            lines.append(self.partitions.format())
        for role in sorted(self.sinks):
            sink = self.sinks[role]
            if sink is None:
                continue
            lines.append(
                f"{role} sink: {sink.written} records, "
                f"{sink.rotations} rotations"
            )
        if self.monitor is not None:
            lines.append(
                f"monitor: {self.monitor.samples_taken} samples, "
                f"{self.incidents} incidents"
            )
        if self.health is not None:
            lines.append(f"health: {self.health.report().status}")
        # every server-wide scalar, rendered with the exact strings the
        # Prometheus exposition uses (per-session duplicates elided) — the
        # parity test diffs this block against expose_text()
        lines.append("counters:")
        for name, _kind, _help, labels, value in self.scalar_samples():
            if labels and labels.get("session") not in (None, "<all>"):
                continue
            lines.append(
                f"  repro_{name}{_format_labels(labels)} {_format_value(value)}"
            )
        return "\n".join(lines)

    def expose_text(self) -> str:
        """The full Prometheus text-format scrape payload.

        Counters are labelled per session; the latency / queue-wait /
        steps-per-query histograms are exposed per session *and* merged
        server-wide (``session="<all>"``) with p50/p95/p99 quantile gauges,
        and the buffer-pool fetch-run-length histogram is server-wide.
        """
        out = PrometheusText()
        for name, kind, help_text, labels, value in self.scalar_samples():
            emit = out.counter if kind == "counter" else out.gauge
            emit(name, value, help_text, labels)
        everyone = [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        )
        for metrics in everyone:
            base = {"session": metrics.session_id}
            out.histogram(
                "query_latency_seconds", metrics.latency,
                "Wall-clock latency from admission to retirement.", base,
            )
            out.quantiles(
                "query_latency_seconds_quantile", metrics.latency,
                "Query latency percentile (bucket upper bound).", base,
            )
            out.histogram(
                "queue_wait_quanta", metrics.queue_wait,
                "Scheduling quanta spent waiting for admission.", base,
            )
            out.quantiles(
                "queue_wait_quanta_quantile", metrics.queue_wait,
                "Queue wait percentile (bucket upper bound).", base,
            )
            out.histogram(
                "steps_per_query", metrics.steps_per_query,
                "Scheduling quanta executed per retired query.", base,
            )
            out.quantiles(
                "steps_per_query_quantile", metrics.steps_per_query,
                "Steps-per-query percentile (bucket upper bound).", base,
            )
        out.histogram(
            "fetch_run_length", self.fetch_runs,
            "Pages loaded per buffer-pool read-ahead run.",
        )
        if self.partitions is not None:
            partitions = self.partitions
            out.histogram(
                "partition_fetch_rows", partitions.fetch_rows_hist,
                "Rows delivered per partition fetch.",
            )
            out.quantiles(
                "partition_fetch_rows_quantile", partitions.fetch_rows_hist,
                "Partition-fetch row-count percentile (bucket upper bound).",
            )
            out.histogram(
                "partition_fetch_cost", partitions.fetch_cost_hist,
                "Cost (page-I/O units) per partition fetch.",
            )
            out.quantiles(
                "partition_fetch_cost_quantile", partitions.fetch_cost_hist,
                "Partition-fetch cost percentile (bucket upper bound).",
            )
        decisions = self.decisions
        out.histogram(
            "decision_regret_cost", decisions.regret_hist,
            "Realized regret per replayed decision (cost units).",
        )
        out.quantiles(
            "decision_regret_cost_quantile", decisions.regret_hist,
            "Decision-regret percentile (bucket upper bound).",
        )
        out.histogram(
            "estimate_error_ratio", decisions.estimate_error_hist,
            "Observed/estimated cardinality ratio per completed scan.",
        )
        out.quantiles(
            "estimate_error_ratio_quantile", decisions.estimate_error_hist,
            "Estimate-error percentile (bucket upper bound).",
        )
        out.histogram(
            "estimate_qerror", decisions.qerror_hist,
            "Symmetric relative estimation error max(est/act, act/est) "
            "per completed scan.",
        )
        out.quantiles(
            "estimate_qerror_quantile", decisions.qerror_hist,
            "Q-error percentile (bucket upper bound).",
        )
        out.histogram(
            "retrieval_cost", decisions.retrieval_cost_hist,
            "Execution cost per retired retrieval (the Figure 2.1/2.2 "
            "L-shape, from live traffic).",
        )
        out.quantiles(
            "retrieval_cost_quantile", decisions.retrieval_cost_hist,
            "Retrieval-cost percentile (bucket upper bound).",
        )
        return out.render()

"""Server-wide aggregation of dynamic execution metrics.

Every retrieval produces a :class:`~repro.engine.metrics.RetrievalTrace`;
the paper exposes those per-retrieval "dynamic execution metrics" to the
user. Once many sessions run concurrently, the interesting questions become
engine-wide — how many scans did the whole server abandon, how often did
strategies switch, what is each session's cache hit rate under contention —
so the :class:`MetricsRegistry` folds every trace's counters into queryable
totals and per-session breakdowns. The registry is pure accounting: it
never touches the engine, and its totals reconcile exactly with the sum of
the individual traces it recorded (asserted by tests and the concurrency
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.engine.metrics import RetrievalCounters, RetrievalTrace
from repro.obs.audit import DecisionMetrics
from repro.obs.export import PrometheusText
from repro.obs.hist import LogHistogram


def add_counters(into: RetrievalCounters, other: RetrievalCounters) -> None:
    """Fold ``other``'s counters into ``into`` field by field."""
    for spec in fields(RetrievalCounters):
        setattr(into, spec.name, getattr(into, spec.name) + getattr(other, spec.name))


@dataclass
class SessionMetrics:
    """Aggregated metrics of one session (or of the whole server)."""

    session_id: str
    queries_completed: int = 0
    queries_cancelled: int = 0
    queries_failed: int = 0
    #: retrievals whose traces were folded in (a statement may run several)
    retrievals: int = 0
    counters: RetrievalCounters = field(default_factory=RetrievalCounters)
    #: buffer-pool accesses attributed to this session's query steps
    cache_hits: int = 0
    cache_misses: int = 0
    #: scheduling quanta consumed by this session's retired queries; the
    #: :attr:`steps_per_query` histogram's ``sum`` reconciles exactly with it
    quanta: int = 0
    #: wall-clock latency (admission → retirement) per retired query, seconds
    latency: LogHistogram = field(
        default_factory=lambda: LogHistogram("query_latency_seconds")
    )
    #: scheduling quanta spent waiting in the admission queue per query
    queue_wait: LogHistogram = field(
        default_factory=lambda: LogHistogram("queue_wait_quanta")
    )
    #: scheduling quanta executed per retired query
    steps_per_query: LogHistogram = field(
        default_factory=lambda: LogHistogram("steps_per_query")
    )

    @property
    def queries(self) -> int:
        """All queries that reached a terminal state."""
        return self.queries_completed + self.queries_cancelled + self.queries_failed

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of attributed pool accesses served from cache."""
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    def merge(self, other: "SessionMetrics") -> None:
        """Fold another session's metrics into this aggregate."""
        self.queries_completed += other.queries_completed
        self.queries_cancelled += other.queries_cancelled
        self.queries_failed += other.queries_failed
        self.retrievals += other.retrievals
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.quanta += other.quanta
        add_counters(self.counters, other.counters)
        self.latency.merge(other.latency)
        self.queue_wait.merge(other.queue_wait)
        self.steps_per_query.merge(other.steps_per_query)

    def snapshot(self) -> "SessionMetrics":
        """An independent deep copy — safe to hold across later queries."""
        copy = SessionMetrics(self.session_id)
        copy.merge(self)
        return copy


class MetricsRegistry:
    """Queryable totals and per-session breakdowns of engine activity."""

    def __init__(self) -> None:
        self._sessions: dict[str, SessionMetrics] = {}
        #: server-wide buffer-pool read-ahead run lengths (pages loaded per
        #: prefetch call); its ``sum`` reconciles with ``pool.prefetched``
        self.fetch_runs = LogHistogram("fetch_run_length")
        #: the database's shared plan cache / feedback store, wired in by
        #: the owning QueryServer so scrapes expose their counters
        self.plan_cache = None
        self.feedback = None
        #: server-wide decision accounting: per-kind decision counts,
        #: per-tactic win rates, regret / estimate-error / retrieval-cost
        #: distributions (the live Figure 2.1/2.2 L-shapes)
        self.decisions = DecisionMetrics()
        #: queries captured by the slow-query flight recorder
        self.flight_records = 0
        #: the database's scatter-gather aggregates
        #: (:class:`repro.partition.stats.PartitionStats`), wired in by
        #: the owning QueryServer
        self.partitions = None
        #: the database's estimation-quality subsystem
        #: (:class:`repro.estimate.Estimator`), wired in by the owning
        #: QueryServer so scrapes expose q-error/confidence counters
        self.estimator = None

    def session(self, session_id: str) -> SessionMetrics:
        """The metrics of one session (created on demand)."""
        metrics = self._sessions.get(session_id)
        if metrics is None:
            metrics = self._sessions[session_id] = SessionMetrics(session_id)
        return metrics

    def per_session(self) -> dict[str, SessionMetrics]:
        """Breakdown by session id, as independent deep snapshots.

        Earlier revisions handed out the live mutable objects, so a caller
        holding the dict across later queries silently saw its numbers
        drift. Callers needing the live object use :meth:`session`.
        """
        return self.snapshot()

    def snapshot(self) -> dict[str, SessionMetrics]:
        """Deep point-in-time copies of every session's metrics."""
        return {
            session_id: metrics.snapshot()
            for session_id, metrics in self._sessions.items()
        }

    # -- recording (called by the QueryServer) -----------------------------

    def record_trace(self, session_id: str, trace: RetrievalTrace) -> None:
        """Fold one retrieval's counters into the session's aggregate."""
        metrics = self.session(session_id)
        metrics.retrievals += 1
        add_counters(metrics.counters, trace.counters)

    def record_cache(self, session_id: str, hits: int, misses: int) -> None:
        """Credit pool accesses a finished query caused to its session."""
        metrics = self.session(session_id)
        metrics.cache_hits += hits
        metrics.cache_misses += misses

    def record_outcome(self, session_id: str, outcome: str) -> None:
        """Count one query reaching a terminal state
        (``done``/``cancelled``/``failed``)."""
        metrics = self.session(session_id)
        if outcome == "done":
            metrics.queries_completed += 1
        elif outcome == "cancelled":
            metrics.queries_cancelled += 1
        elif outcome == "failed":
            metrics.queries_failed += 1
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown outcome {outcome!r}")

    def record_completion(
        self,
        session_id: str,
        latency_seconds: float,
        queue_wait_quanta: int,
        quanta: int,
    ) -> None:
        """Record the latency/wait/step distributions of one retired query.

        ``quanta`` is both added to the session's flat counter and recorded
        in the steps-per-query histogram, so the histogram's ``sum``
        reconciles exactly with the counter total.
        """
        metrics = self.session(session_id)
        metrics.quanta += quanta
        metrics.latency.record(latency_seconds)
        metrics.queue_wait.record(queue_wait_quanta)
        metrics.steps_per_query.record(quanta)

    def record_fetch_run(self, pages_loaded: int) -> None:
        """Record one buffer-pool read-ahead run (pages loaded at once)."""
        self.fetch_runs.record(pages_loaded)

    # -- querying ----------------------------------------------------------

    def totals(self) -> SessionMetrics:
        """Server-wide aggregate across every session (a fresh snapshot)."""
        total = SessionMetrics("<all>")
        for metrics in self._sessions.values():
            total.merge(metrics)
        return total

    def format(self) -> str:
        """Multi-line human-readable rendering (shell ``\\metrics``)."""
        lines = []
        for metrics in [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        ):
            counters = metrics.counters
            lines.append(
                f"{metrics.session_id}: {metrics.queries} queries "
                f"({metrics.queries_completed} done, "
                f"{metrics.queries_cancelled} cancelled, "
                f"{metrics.queries_failed} failed), "
                f"{metrics.retrievals} retrievals, "
                f"{counters.records_fetched} fetched, "
                f"{counters.scans_abandoned} abandons, "
                f"{counters.strategy_switches} switches, "
                f"cache hit rate {metrics.cache_hit_ratio:.0%}"
            )
        if self.plan_cache is not None:
            cache = self.plan_cache
            lines.append(
                f"plan cache: {cache.size}/{cache.capacity} entries, "
                f"{cache.hits} hits, {cache.misses} misses, "
                f"{cache.evictions} evictions, "
                f"{cache.invalidations} invalidations"
            )
        if self.feedback is not None:
            feedback = self.feedback
            lines.append(
                f"feedback: {feedback.size} entries, "
                f"{feedback.records} recorded, "
                f"{feedback.adjustments} adjustments applied, "
                f"{feedback.evictions} evictions"
            )
        if self.estimator is not None and self.estimator.enabled:
            estimator = self.estimator
            lines.append(
                f"estimator: {len(estimator)} signatures, "
                f"{estimator.observations} observations, "
                f"{estimator.evictions} evictions, "
                f"gate: {estimator.trusted} trusted / "
                f"{estimator.competed} competed"
            )
        if self.partitions is not None and self.partitions.scatters:
            lines.append(self.partitions.format())
        return "\n".join(lines)

    def expose_text(self) -> str:
        """The full Prometheus text-format scrape payload.

        Counters are labelled per session; the latency / queue-wait /
        steps-per-query histograms are exposed per session *and* merged
        server-wide (``session="<all>"``) with p50/p95/p99 quantile gauges,
        and the buffer-pool fetch-run-length histogram is server-wide.
        """
        out = PrometheusText()
        everyone = [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        )
        for metrics in everyone:
            base = {"session": metrics.session_id}
            for outcome, value in (
                ("done", metrics.queries_completed),
                ("cancelled", metrics.queries_cancelled),
                ("failed", metrics.queries_failed),
            ):
                out.counter(
                    "queries_total", value,
                    "Queries retired, by terminal state.",
                    dict(base, outcome=outcome),
                )
            out.counter(
                "retrievals_total", metrics.retrievals,
                "Engine retrievals whose traces were recorded.", base,
            )
            out.counter(
                "query_quanta_total", metrics.quanta,
                "Scheduling quanta consumed by retired queries.", base,
            )
            out.counter(
                "cache_hits_total", metrics.cache_hits,
                "Buffer-pool hits attributed to the session.", base,
            )
            out.counter(
                "cache_misses_total", metrics.cache_misses,
                "Buffer-pool misses attributed to the session.", base,
            )
            for spec in fields(RetrievalCounters):
                out.counter(
                    f"engine_{spec.name}_total",
                    getattr(metrics.counters, spec.name),
                    f"Engine counter: {spec.name.replace('_', ' ')}.", base,
                )
            out.histogram(
                "query_latency_seconds", metrics.latency,
                "Wall-clock latency from admission to retirement.", base,
            )
            out.quantiles(
                "query_latency_seconds_quantile", metrics.latency,
                "Query latency percentile (bucket upper bound).", base,
            )
            out.histogram(
                "queue_wait_quanta", metrics.queue_wait,
                "Scheduling quanta spent waiting for admission.", base,
            )
            out.quantiles(
                "queue_wait_quanta_quantile", metrics.queue_wait,
                "Queue wait percentile (bucket upper bound).", base,
            )
            out.histogram(
                "steps_per_query", metrics.steps_per_query,
                "Scheduling quanta executed per retired query.", base,
            )
            out.quantiles(
                "steps_per_query_quantile", metrics.steps_per_query,
                "Steps-per-query percentile (bucket upper bound).", base,
            )
        out.histogram(
            "fetch_run_length", self.fetch_runs,
            "Pages loaded per buffer-pool read-ahead run.",
        )
        if self.plan_cache is not None:
            cache = self.plan_cache
            out.counter(
                "plan_cache_hits_total", cache.hits,
                "Plan-cache lookups served without parsing.",
            )
            out.counter(
                "plan_cache_misses_total", cache.misses,
                "Plan-cache lookups that parsed and bound the statement.",
            )
            out.counter(
                "plan_cache_evictions_total", cache.evictions,
                "Cached plans dropped by LRU capacity pressure.",
            )
            out.counter(
                "plan_cache_invalidations_total", cache.invalidations,
                "Cached plans dropped by DDL schema changes.",
            )
            out.gauge(
                "plan_cache_size", cache.size,
                "Cached plans currently held.",
            )
            out.gauge(
                "plan_cache_capacity", cache.capacity,
                "Plan-cache capacity (0 = caching disabled).",
            )
        if self.feedback is not None:
            feedback = self.feedback
            out.counter(
                "feedback_records_total", feedback.records,
                "Estimated-vs-actual cardinality observations recorded.",
            )
            out.counter(
                "feedback_adjustments_total", feedback.adjustments,
                "Initial estimates sharpened from recorded feedback.",
            )
            out.gauge(
                "feedback_entries", feedback.size,
                "Live (table, index, predicate-signature) feedback entries.",
            )
            out.counter(
                "feedback_evictions_total", feedback.evictions,
                "Feedback entries dropped by LRU capacity pressure.",
            )
        if self.estimator is not None and self.estimator.enabled:
            estimator = self.estimator
            out.counter(
                "estimator_observations_total", estimator.observations,
                "Q-error observations folded into signature statistics.",
            )
            out.counter(
                "estimator_evictions_total", estimator.evictions,
                "Signature statistics dropped by LRU capacity pressure.",
            )
            out.counter(
                "competitions_skipped_total", estimator.trusted,
                "Competitions skipped because estimate confidence cleared "
                "the variance gate.",
            )
            out.counter(
                "competitions_run_total", estimator.competed,
                "Gate consultations that fell back to running the race.",
            )
            out.gauge(
                "estimator_signatures", len(estimator),
                "Live (table, index, predicate-signature) q-error entries.",
            )
        if self.partitions is not None:
            partitions = self.partitions
            out.counter(
                "partition_scatters_total", partitions.scatters,
                "Scatter-gather retrievals executed over partitioned tables.",
            )
            out.counter(
                "partition_merge_rows_total", partitions.merge_rows,
                "Rows delivered by gather merges (reconciles exactly with "
                "partitioned retrievals' row counts).",
            )
            out.counter(
                "partition_fetches_total", partitions.partitions_fetched,
                "Per-partition fetches executed by scatters.",
            )
            out.counter(
                "partition_pruned_total", partitions.partitions_pruned,
                "Partitions pruned before fetching (restriction analysis).",
            )
            out.counter(
                "partition_ordered_merges_total", partitions.ordered_merges,
                "Scatters gathered with an ordered k-way merge.",
            )
            out.gauge(
                "partition_worker_utilization", partitions.worker_utilization,
                "Busy fraction of the partition worker pool "
                "(fetch cost over workers x critical-path cost).",
            )
            out.histogram(
                "partition_fetch_rows", partitions.fetch_rows_hist,
                "Rows delivered per partition fetch.",
            )
            out.quantiles(
                "partition_fetch_rows_quantile", partitions.fetch_rows_hist,
                "Partition-fetch row-count percentile (bucket upper bound).",
            )
            out.histogram(
                "partition_fetch_cost", partitions.fetch_cost_hist,
                "Cost (page-I/O units) per partition fetch.",
            )
            out.quantiles(
                "partition_fetch_cost_quantile", partitions.fetch_cost_hist,
                "Partition-fetch cost percentile (bucket upper bound).",
            )
        decisions = self.decisions
        for kind, count in sorted(decisions.decisions.items()):
            out.counter(
                "audit_decisions_total", count,
                "Optimizer decisions recorded, by decision kind.",
                {"kind": kind},
            )
        for tactic, count in sorted(decisions.tactic_selected.items()):
            out.counter(
                "tactic_selected_total", count,
                "Tactic-selection decisions, by chosen strategy.",
                {"tactic": tactic},
            )
        for tactic, count in sorted(decisions.tactic_wins.items()):
            out.counter(
                "tactic_wins_total", count,
                "Counterfactual replays the chosen tactic won (or tied).",
                {"tactic": tactic},
            )
        for tactic, count in sorted(decisions.tactic_losses.items()):
            out.counter(
                "tactic_losses_total", count,
                "Counterfactual replays a rejected alternative won.",
                {"tactic": tactic},
            )
        out.counter(
            "replays_total", decisions.replays,
            "Counterfactual strategy replays executed.",
        )
        out.counter(
            "replay_truncated_total", decisions.replay_truncated,
            "Counterfactual replays truncated by the step budget.",
        )
        out.counter(
            "competition_cost_total", decisions.competition_cost,
            "Summed replayed cost of the chosen strategies.",
        )
        out.counter(
            "rejected_cost_total", decisions.rejected_cost,
            "Summed replayed cost of the best rejected alternatives.",
        )
        out.counter(
            "flight_records_total", self.flight_records,
            "Queries captured by the slow-query flight recorder.",
        )
        out.histogram(
            "decision_regret_cost", decisions.regret_hist,
            "Realized regret per replayed decision (cost units).",
        )
        out.quantiles(
            "decision_regret_cost_quantile", decisions.regret_hist,
            "Decision-regret percentile (bucket upper bound).",
        )
        out.histogram(
            "estimate_error_ratio", decisions.estimate_error_hist,
            "Observed/estimated cardinality ratio per completed scan.",
        )
        out.quantiles(
            "estimate_error_ratio_quantile", decisions.estimate_error_hist,
            "Estimate-error percentile (bucket upper bound).",
        )
        out.histogram(
            "estimate_qerror", decisions.qerror_hist,
            "Symmetric relative estimation error max(est/act, act/est) "
            "per completed scan.",
        )
        out.quantiles(
            "estimate_qerror_quantile", decisions.qerror_hist,
            "Q-error percentile (bucket upper bound).",
        )
        out.histogram(
            "retrieval_cost", decisions.retrieval_cost_hist,
            "Execution cost per retired retrieval (the Figure 2.1/2.2 "
            "L-shape, from live traffic).",
        )
        out.quantiles(
            "retrieval_cost_quantile", decisions.retrieval_cost_hist,
            "Retrieval-cost percentile (bucket upper bound).",
        )
        return out.render()

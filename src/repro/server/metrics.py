"""Server-wide aggregation of dynamic execution metrics.

Every retrieval produces a :class:`~repro.engine.metrics.RetrievalTrace`;
the paper exposes those per-retrieval "dynamic execution metrics" to the
user. Once many sessions run concurrently, the interesting questions become
engine-wide — how many scans did the whole server abandon, how often did
strategies switch, what is each session's cache hit rate under contention —
so the :class:`MetricsRegistry` folds every trace's counters into queryable
totals and per-session breakdowns. The registry is pure accounting: it
never touches the engine, and its totals reconcile exactly with the sum of
the individual traces it recorded (asserted by tests and the concurrency
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.engine.metrics import RetrievalCounters, RetrievalTrace


def add_counters(into: RetrievalCounters, other: RetrievalCounters) -> None:
    """Fold ``other``'s counters into ``into`` field by field."""
    for spec in fields(RetrievalCounters):
        setattr(into, spec.name, getattr(into, spec.name) + getattr(other, spec.name))


@dataclass
class SessionMetrics:
    """Aggregated metrics of one session (or of the whole server)."""

    session_id: str
    queries_completed: int = 0
    queries_cancelled: int = 0
    queries_failed: int = 0
    #: retrievals whose traces were folded in (a statement may run several)
    retrievals: int = 0
    counters: RetrievalCounters = field(default_factory=RetrievalCounters)
    #: buffer-pool accesses attributed to this session's query steps
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def queries(self) -> int:
        """All queries that reached a terminal state."""
        return self.queries_completed + self.queries_cancelled + self.queries_failed

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of attributed pool accesses served from cache."""
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0


class MetricsRegistry:
    """Queryable totals and per-session breakdowns of engine activity."""

    def __init__(self) -> None:
        self._sessions: dict[str, SessionMetrics] = {}

    def session(self, session_id: str) -> SessionMetrics:
        """The metrics of one session (created on demand)."""
        metrics = self._sessions.get(session_id)
        if metrics is None:
            metrics = self._sessions[session_id] = SessionMetrics(session_id)
        return metrics

    def per_session(self) -> dict[str, SessionMetrics]:
        """Breakdown by session id (live objects, do not mutate)."""
        return dict(self._sessions)

    # -- recording (called by the QueryServer) -----------------------------

    def record_trace(self, session_id: str, trace: RetrievalTrace) -> None:
        """Fold one retrieval's counters into the session's aggregate."""
        metrics = self.session(session_id)
        metrics.retrievals += 1
        add_counters(metrics.counters, trace.counters)

    def record_cache(self, session_id: str, hits: int, misses: int) -> None:
        """Credit pool accesses a finished query caused to its session."""
        metrics = self.session(session_id)
        metrics.cache_hits += hits
        metrics.cache_misses += misses

    def record_outcome(self, session_id: str, outcome: str) -> None:
        """Count one query reaching a terminal state
        (``done``/``cancelled``/``failed``)."""
        metrics = self.session(session_id)
        if outcome == "done":
            metrics.queries_completed += 1
        elif outcome == "cancelled":
            metrics.queries_cancelled += 1
        elif outcome == "failed":
            metrics.queries_failed += 1
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown outcome {outcome!r}")

    # -- querying ----------------------------------------------------------

    def totals(self) -> SessionMetrics:
        """Server-wide aggregate across every session."""
        total = SessionMetrics("<all>")
        for metrics in self._sessions.values():
            total.queries_completed += metrics.queries_completed
            total.queries_cancelled += metrics.queries_cancelled
            total.queries_failed += metrics.queries_failed
            total.retrievals += metrics.retrievals
            total.cache_hits += metrics.cache_hits
            total.cache_misses += metrics.cache_misses
            add_counters(total.counters, metrics.counters)
        return total

    def format(self) -> str:
        """Multi-line human-readable rendering (shell ``\\metrics``)."""
        lines = []
        for metrics in [self.totals()] + sorted(
            self._sessions.values(), key=lambda m: m.session_id
        ):
            counters = metrics.counters
            lines.append(
                f"{metrics.session_id}: {metrics.queries} queries "
                f"({metrics.queries_completed} done, "
                f"{metrics.queries_cancelled} cancelled, "
                f"{metrics.queries_failed} failed), "
                f"{metrics.retrievals} retrievals, "
                f"{counters.records_fetched} fetched, "
                f"{counters.scans_abandoned} abandons, "
                f"{counters.strategy_switches} switches, "
                f"cache hit rate {metrics.cache_hit_ratio:.0%}"
            )
        return "\n".join(lines)

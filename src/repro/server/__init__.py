"""Multi-query serving: cooperative scheduler + server-wide metrics.

The paper's engine (Figure 4) already runs *within-query* concurrency — a
foreground/background process pair competing over one buffer pool. This
package scales the same cooperative machinery to *between-query*
concurrency: a :class:`QueryServer` admits statements from many sessions
and interleaves their engine steps, so the Section 3(c) cache interference
emerges from real concurrent scans instead of simulated eviction.
"""

from repro.server.metrics import MetricsRegistry, SessionMetrics, add_counters
from repro.server.scheduler import (
    DEFAULT_GOAL_WEIGHTS,
    QueryHandle,
    QueryServer,
    QueryState,
    ServerSession,
)

__all__ = [
    "DEFAULT_GOAL_WEIGHTS",
    "MetricsRegistry",
    "QueryHandle",
    "QueryServer",
    "QueryState",
    "ServerSession",
    "SessionMetrics",
    "add_counters",
]

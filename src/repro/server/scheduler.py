"""The multi-query scheduler: N concurrent sessions, one buffer pool.

The paper's Section 3(c) uncertainty — "the pattern of caching the disk
pages is influenced by many asynchronous processes totally unrelated to a
given retrieval" — presumes a server where retrievals never run alone.
:class:`QueryServer` is that server in cooperative form: it admits
statements from many sessions and interleaves their execution over the
*shared* buffer pool. Cache interference between queries therefore emerges
from real concurrent Tscans and Jscans instead of being injected by
``Database.interference_tick``.

The scheduling unit is a *quantum*: one resumption of the query's step
generator, which executes up to ``config.batch_size`` engine steps in a
tight loop before yielding back (inside a quantum, a retrieval's own
foreground/background processes still interleave step by step — batching
changes scheduler granularity, not competition granularity). With the
default ``batch_size=64`` this is ~64× fewer generator suspensions per
query than one-yield-per-step scheduling; setting ``batch_size=1`` in the
engine config restores exact per-step interleaving.

Scheduling generalizes the per-retrieval proportional-speed scheduler of
:class:`repro.competition.scheduler.ProportionalScheduler` to whole
queries: ``round-robin`` steps admitted queries in rotation, ``weighted``
steps the query with the smallest virtual time ``steps / weight`` where the
weight comes from its optimization goal (fast-first queries are
latency-sensitive browsers, so they get a larger share, mirroring
[Ant91B]'s "proportional speed" rule).

Everything is deterministic: admission is FIFO, tie-breaks use submission
tickets, and no wall clock is consulted — deadlines are budgets of
scheduling quanta. Cancellation closes the query's step generator, which propagates
into the engine as ``GeneratorExit``: active scans are abandoned, spilled
temp structures released, and the trace records ``SCAN_ABANDONED`` /
``CONSUMER_STOPPED``.
"""

from __future__ import annotations

import enum
import itertools
import time
from collections import deque
from typing import Any, Callable, Generator, Mapping

from repro.db.session import Database
from repro.engine.goals import OptimizationGoal
from repro.errors import QueryCancelledError, ServerError
from repro.obs.audit import AuditLog
from repro.obs.health import HealthMonitor, HealthReport
from repro.obs.timeseries import TimeSeriesRegistry
from repro.obs.trace import AuditOnlyTracer, Span, Tracer, should_sample
from repro.server.metrics import MetricsRegistry
from repro.sql.executor import (
    RetrievalInfo,
    execute_prepared_steps,
    execute_sql_steps,
    explain_kind,
)

#: default virtual-time weights per optimization goal (``weighted`` mode)
DEFAULT_GOAL_WEIGHTS: dict[OptimizationGoal, float] = {
    OptimizationGoal.FAST_FIRST: 2.0,
    OptimizationGoal.TOTAL_TIME: 1.0,
    OptimizationGoal.DEFAULT: 1.0,
}


class QueryState(enum.Enum):
    """Lifecycle of a submitted query."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"


class QueryHandle:
    """One submitted statement: its state, result, and per-query metrics."""

    def __init__(
        self,
        server: "QueryServer",
        session_id: str,
        sql: str,
        host_vars: Mapping[str, Any] | None,
        goal: OptimizationGoal,
        deadline: int | None,
        ticket: int,
        prepared: Any | None = None,
    ) -> None:
        if deadline is not None and deadline < 1:
            raise ServerError("deadline must be a positive step budget")
        self.server = server
        self.session_id = session_id
        self.sql = sql
        self.host_vars = dict(host_vars or {})
        self.goal = goal
        #: a :class:`repro.cache.CachedPlan` to execute directly, skipping
        #: the front end (set by :class:`repro.cache.PreparedStatement`)
        self.prepared = prepared
        #: budget of scheduling quanta (generator resumptions, each up to
        #: ``config.batch_size`` engine steps); exceeding it cancels the query
        self.deadline = deadline
        #: submission order — admission and tie-breaks are FIFO by ticket
        self.ticket = ticket
        self.state = QueryState.QUEUED
        self.cancel_reason: str | None = None
        self.error: BaseException | None = None
        #: scheduling quanta this query has consumed
        self.steps = 0
        #: buffer-pool accesses attributed to this query's steps
        self.cache_hits = 0
        self.cache_misses = 0
        #: per-retrieval info, appended as each retrieval takes its first
        #: step — populated even for queries later cancelled mid-flight
        self.retrievals: list[RetrievalInfo] = []
        #: server step count at which this query was admitted
        self.admitted_at: int | None = None
        #: server step count at submission (queue wait = admitted_at - this)
        self.submitted_at_steps = server.total_steps
        #: wall-clock admission time (latency measurement only — scheduling
        #: decisions never consult the clock)
        self.admitted_wall: float | None = None
        #: span timeline, present when this query was sampled for tracing
        #: (``config.trace_sample_rate``) or is an EXPLAIN ANALYZE
        self.tracer: Tracer | None = None
        self._wait_span: Span | None = None
        self._gen: Generator[Any, None, Any] | None = None
        self._result: Any = None

    # -- state -------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the query reached a terminal state."""
        return self.state in (QueryState.DONE, QueryState.CANCELLED, QueryState.FAILED)

    @property
    def result(self) -> Any:
        """The query's result; raises if it failed, was cancelled, or is
        still in flight."""
        if self.state is QueryState.FAILED:
            assert self.error is not None
            raise self.error
        if self.state is QueryState.CANCELLED:
            raise QueryCancelledError(
                f"query cancelled ({self.cancel_reason}): {self.sql!r}"
            )
        if self.state is not QueryState.DONE:
            raise ServerError(f"query not finished (state={self.state.value})")
        return self._result

    @property
    def cache_hit_ratio(self) -> float:
        """Per-query buffer-pool hit rate (the benchmark's headline)."""
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    def cancel(self, reason: str = "client-cancel") -> None:
        """Cancel the query; a running one abandons its scans mid-step."""
        self.server._cancel(self, reason)

    def wait(self) -> Any:
        """Drive the server until this query finishes; return its result."""
        return self.server.wait(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryHandle #{self.ticket} {self.session_id} "
            f"{self.state.value} steps={self.steps} sql={self.sql[:40]!r}>"
        )


class ServerSession:
    """One client session: a submission identity for metrics and fairness."""

    def __init__(self, server: "QueryServer", session_id: str) -> None:
        self.server = server
        self.session_id = session_id

    def submit(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
        prepared: Any | None = None,
    ) -> QueryHandle:
        """Queue a statement for execution; returns immediately."""
        return self.server.submit(
            sql, host_vars, goal=goal, deadline=deadline, session=self,
            prepared=prepared,
        )

    def execute(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
    ) -> Any:
        """Submit and run to completion (cooperatively driving the server,
        so other admitted queries make proportional progress too)."""
        return self.submit(sql, host_vars, goal=goal, deadline=deadline).wait()

    def metrics(self):
        """This session's aggregated metrics."""
        return self.server.metrics.session(self.session_id)


class QueryServer:
    """Cooperative multi-query scheduler over one :class:`Database`.

    ``max_concurrency`` bounds how many queries are admitted (RUNNING) at
    once; excess submissions wait in a FIFO queue. ``scheduling`` is
    ``"round-robin"`` or ``"weighted"`` (virtual time by optimization
    goal).
    """

    def __init__(
        self,
        db: Database,
        max_concurrency: int = 4,
        scheduling: str = "round-robin",
        goal_weights: Mapping[OptimizationGoal, float] | None = None,
        trace_sink: Any | None = None,
        flight_sink: Any | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_concurrency < 1:
            raise ServerError("max_concurrency must be >= 1")
        if scheduling not in ("round-robin", "weighted"):
            raise ServerError(
                f"unknown scheduling policy {scheduling!r} "
                "(expected 'round-robin' or 'weighted')"
            )
        self.db = db
        self.max_concurrency = max_concurrency
        self.scheduling = scheduling
        self.goal_weights = dict(goal_weights or DEFAULT_GOAL_WEIGHTS)
        #: monotonic clock for latency / monitoring intervals (injectable —
        #: tests drive a :class:`repro.obs.SteppingClock` instead of
        #: sleeping; scheduling decisions still never consult it)
        self.clock = clock
        self.metrics = MetricsRegistry()
        #: finished span trees of traced queries go here — anything with
        #: ``write(tree_dict)``, e.g. :class:`repro.obs.JsonlSink`
        self.trace_sink = trace_sink
        #: the flight recorder's sink: queries exceeding ``slow_query_ms``
        #: or ``regret_threshold`` dump span tree + decision log here
        self.flight_sink = flight_sink
        # the registry observes every read-ahead run the shared pool issues
        db.buffer_pool.run_hist = self.metrics.fetch_runs
        # ... and the shared plan cache / feedback store / estimator, for
        # \metrics + prom
        self.metrics.plan_cache = db.plan_cache
        self.metrics.feedback = db.feedback
        self.metrics.estimator = getattr(db, "estimator", None)
        # ... and the scatter-gather aggregates of partitioned tables
        self.metrics.partitions = getattr(db, "partition_stats", None)
        # ... and the sinks themselves, for record/rotation counters
        self.metrics.sinks = {"trace": trace_sink, "flight": flight_sink}
        #: continuous monitoring: the time-series registry + health monitor
        #: (None when ``monitor_enabled`` is off or the interval is 0 — the
        #: kill-switch path pays nothing per quantum)
        self.monitor: TimeSeriesRegistry | None = None
        self.health_monitor: HealthMonitor | None = None
        config = db.config
        if config.monitor_enabled and config.monitor_interval > 0:
            self.monitor = TimeSeriesRegistry(
                self.metrics,
                interval=config.monitor_interval,
                window=config.monitor_window,
                clock=clock,
            )
            self.health_monitor = HealthMonitor(self.monitor, config)
            self.metrics.monitor = self.monitor
            self.metrics.health = self.health_monitor
        #: set once by the first shutdown(); later calls are no-ops, so a
        #: Connection.close() racing an explicit server shutdown (or an
        #: atexit hook) never re-closes the sinks
        self._shutdown = False
        #: total scheduling quanta the server has executed (its logical clock)
        self.total_steps = 0
        self._running: list[QueryHandle] = []
        self._queue: deque[QueryHandle] = deque()
        self._rr = 0
        self._tickets = itertools.count(1)
        self._session_ids = itertools.count(1)

    # -- sessions ----------------------------------------------------------

    def session(self, name: str | None = None) -> ServerSession:
        """Open a session (auto-named ``s<N>`` unless ``name`` is given)."""
        return ServerSession(self, name or f"s{next(self._session_ids)}")

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
        session: ServerSession | str | None = None,
        prepared: Any | None = None,
    ) -> QueryHandle:
        """Queue one statement; admits it immediately if a slot is free."""
        if isinstance(session, ServerSession):
            session_id = session.session_id
        else:
            session_id = session or "default"
        handle = QueryHandle(
            self, session_id, sql, host_vars, goal, deadline, next(self._tickets),
            prepared=prepared,
        )
        # deterministic sampling by submission ticket; EXPLAIN ANALYZE /
        # COMPETE are always traced (the rendered report *is* the span
        # timeline). An enabled audit alone rides on an AuditOnlyTracer:
        # the decision log records normally but no span tree is built —
        # spans, not the audit, were the bulk of the audit-on overhead
        rate = self.db.config.trace_sample_rate
        kind = explain_kind(sql)
        audit_on = self.db.config.audit_enabled
        if should_sample(handle.ticket, rate) or kind is not None:
            handle.tracer = Tracer(
                "query",
                clock=self.clock,
                session=session_id,
                ticket=handle.ticket,
                sql=sql,
            )
            if audit_on or kind == "compete":
                handle.tracer.audit = AuditLog()
            handle._wait_span = handle.tracer.open("admission-wait")
        elif audit_on:
            handle.tracer = AuditOnlyTracer()
        self._queue.append(handle)
        self._admit()
        return handle

    def _admit(self) -> None:
        while self._queue and len(self._running) < self.max_concurrency:
            handle = self._queue.popleft()
            if handle.prepared is not None:
                handle._gen = execute_prepared_steps(
                    self.db,
                    handle.prepared,
                    handle.host_vars,
                    handle.goal,
                    retrievals=handle.retrievals,
                    tracer=handle.tracer,
                )
            else:
                handle._gen = execute_sql_steps(
                    self.db,
                    handle.sql,
                    handle.host_vars,
                    handle.goal,
                    retrievals=handle.retrievals,
                    tracer=handle.tracer,
                )
            handle.state = QueryState.RUNNING
            handle.admitted_at = self.total_steps
            handle.admitted_wall = self.clock()
            if handle._wait_span is not None:
                handle._wait_span.finish(
                    quanta=self.total_steps - handle.submitted_at_steps
                )
            self._running.append(handle)

    # -- the scheduling step ----------------------------------------------

    @property
    def running(self) -> list[QueryHandle]:
        """Currently admitted queries (copy)."""
        return list(self._running)

    @property
    def queued(self) -> list[QueryHandle]:
        """Queries waiting for admission (copy)."""
        return list(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is running or queued."""
        return not self._running and not self._queue

    def _weight(self, handle: QueryHandle) -> float:
        return self.goal_weights.get(handle.goal, 1.0)

    def _pick(self) -> QueryHandle:
        if self.scheduling == "weighted":
            return min(
                self._running,
                key=lambda h: (h.steps / self._weight(h), h.ticket),
            )
        if self._rr >= len(self._running):
            self._rr = 0
        return self._running[self._rr]

    def step(self) -> bool:
        """Advance one scheduling quantum of one admitted query.

        A quantum resumes the query's step generator once, running up to
        ``config.batch_size`` engine steps. Returns False when the server is
        idle (nothing to step).
        """
        self._admit()
        if not self._running:
            return False
        handle = self._pick()
        self._step_handle(handle)
        if handle.state is QueryState.RUNNING:
            if self.scheduling == "round-robin":
                self._rr += 1
        elif handle in self._running:
            # deadline cancellation retires inside _step_handle already
            self._retire(handle)
        if self.monitor is not None:
            self._monitor_tick()
        return True

    def _step_handle(self, handle: QueryHandle) -> None:
        pool = self.db.buffer_pool
        stats = pool.stats_for(handle.session_id)
        hits_before, misses_before = stats.hits, stats.misses
        pool.current_owner = handle.session_id
        quantum_span = None
        if handle.tracer is not None and handle.tracer.enabled:
            # scheduler quanta overlap the engine's own span stack, so they
            # attach directly under the root, not under the current span
            quantum_span = handle.tracer.open(
                "quantum", parent=handle.tracer.root, seq=handle.steps
            )
        assert handle._gen is not None
        try:
            next(handle._gen)
        except StopIteration as stop:
            handle._result = stop.value
            handle.state = QueryState.DONE
        except Exception as error:  # noqa: BLE001 - failure belongs to the handle
            handle.error = error
            handle.state = QueryState.FAILED
        else:
            handle.steps += 1
            self.total_steps += 1
        finally:
            pool.current_owner = None
            hits = stats.hits - hits_before
            misses = stats.misses - misses_before
            handle.cache_hits += hits
            handle.cache_misses += misses
            if quantum_span is not None:
                quantum_span.finish(hits=hits, misses=misses)
        if handle.state is QueryState.RUNNING and (
            handle.deadline is not None and handle.steps >= handle.deadline
        ):
            self._cancel(handle, reason="deadline")

    def _retire(self, handle: QueryHandle) -> None:
        """Remove a terminal handle from the run list and record metrics."""
        index = self._running.index(handle)
        self._running.pop(index)
        if index < self._rr:
            self._rr -= 1
        outcome = {
            QueryState.DONE: "done",
            QueryState.CANCELLED: "cancelled",
            QueryState.FAILED: "failed",
        }[handle.state]
        self.metrics.record_outcome(handle.session_id, outcome)
        self.metrics.record_cache(
            handle.session_id, handle.cache_hits, handle.cache_misses
        )
        assert handle.admitted_at is not None and handle.admitted_wall is not None
        latency = self.clock() - handle.admitted_wall
        self.metrics.record_completion(
            handle.session_id,
            latency_seconds=latency,
            queue_wait_quanta=handle.admitted_at - handle.submitted_at_steps,
            quanta=handle.steps,
        )
        total_cost = 0.0
        for info in handle.retrievals:
            self.metrics.record_trace(handle.session_id, info.result.trace)
            # the live L-shape: every retrieval's realized cost lands in
            # the server-wide distribution, audited or not
            self.metrics.decisions.observe_cost(info.result.total_cost)
            total_cost += info.result.total_cost
        if self.monitor is not None:
            self.monitor.note_query(
                handle.sql, handle.session_id, latency, total_cost
            )
        audit = handle.tracer.audit if handle.tracer is not None else None
        if audit is not None and audit.enabled:
            self.metrics.decisions.absorb(audit)
        compete = getattr(handle._result, "compete", None)
        if compete is not None:
            self.metrics.decisions.absorb_compete(compete)
        if handle.tracer is not None and handle.tracer.enabled:
            handle.tracer.finish(outcome=outcome, quanta=handle.steps)
            if self.trace_sink is not None:
                self.trace_sink.write(handle.tracer.to_dict())
        self._maybe_flight_record(handle, audit, outcome, latency)
        self._admit()

    def _maybe_flight_record(
        self,
        handle: QueryHandle,
        audit: AuditLog | None,
        outcome: str,
        latency: float,
    ) -> None:
        """The slow-query flight recorder: one JSONL record per capture.

        Triggers on wall latency (``config.slow_query_ms``) or realized
        regret (``config.regret_threshold`` — populated by EXPLAIN
        COMPETE's replays, so regret captures fire for competed
        statements). The record carries everything a post-mortem needs:
        the full span tree and the decision log.
        """
        if self.flight_sink is None:
            return
        config = self.db.config
        latency_ms = latency * 1e3
        reasons = []
        if config.slow_query_ms > 0 and latency_ms >= config.slow_query_ms:
            reasons.append("slow")
        if (
            config.regret_threshold > 0
            and audit is not None
            and audit.enabled
            and audit.max_regret() >= config.regret_threshold
        ):
            reasons.append("regret")
        if not reasons:
            return
        self.metrics.flight_records += 1
        self.flight_sink.write(
            {
                "sql": handle.sql,
                "session": handle.session_id,
                "ticket": handle.ticket,
                "outcome": outcome,
                "latency_ms": round(latency_ms, 3),
                "reasons": reasons,
                "spans": (
                    handle.tracer.to_dict() if handle.tracer is not None else None
                ),
                "decisions": (
                    audit.to_dict()
                    if audit is not None and audit.enabled
                    else None
                ),
            }
        )

    # -- continuous monitoring ---------------------------------------------

    def _monitor_tick(self, force: bool = False) -> HealthReport | None:
        """Advance the monitor: sample if due (or forced), run the health
        rules on the new window, and write any incident bundle through the
        flight-recorder sink. The single path shared by the per-quantum
        hook, ``health()``, and shutdown's final flush."""
        assert self.monitor is not None and self.health_monitor is not None
        window = self.monitor.tick(force=force)
        if window is None:
            return None
        report = self.health_monitor.observe(window)
        if report.incident is not None and self.flight_sink is not None:
            self.metrics.incidents += 1
            self.flight_sink.write(report.incident)
        return report

    def health(self) -> HealthReport:
        """Sample the monitor now and return the current health verdict
        (a disabled-state report when monitoring is off)."""
        if self.monitor is None:
            return HealthReport([], None, enabled=False)
        report = self._monitor_tick(force=True)
        assert report is not None
        return report

    def shutdown(self) -> None:
        """Cancel everything in flight and flush/close the sinks.

        In-flight queries unwind through ``GeneratorExit`` (scans
        abandoned, temp pages released; a scatter's in-flight partition
        workers see the abort event and release their pins) and their
        partial traces are retired — then the database's partition
        worker pool drains and the sinks close, so no record is lost to
        an unflushed buffer. Idempotent: only the first call does any of
        this; later calls (a ``Connection.close()`` after an explicit
        shutdown, an atexit hook) return immediately rather than
        re-closing the sinks.
        """
        if self._shutdown:
            return
        self._shutdown = True
        for handle in list(self._queue) + list(self._running):
            self._cancel(handle, reason="server-shutdown")
        # final monitor flush while the flight sink is still open: the
        # last partial window is sampled and any incident it raises lands
        # in the sink before it closes
        if self.monitor is not None:
            self._monitor_tick(force=True)
        close_pool = getattr(self.db, "close_worker_pool", None)
        if close_pool is not None:
            close_pool()
        for sink in (self.trace_sink, self.flight_sink):
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- cancellation ------------------------------------------------------

    def _cancel(self, handle: QueryHandle, reason: str) -> None:
        if handle.done:
            return
        if handle.state is QueryState.QUEUED:
            self._queue.remove(handle)
            handle.state = QueryState.CANCELLED
            handle.cancel_reason = reason
            self.metrics.record_outcome(handle.session_id, "cancelled")
            self._admit()
            return
        # running: closing the generator raises GeneratorExit at the engine's
        # current yield point — scans are abandoned, temp structures released
        assert handle._gen is not None
        handle._gen.close()
        handle.state = QueryState.CANCELLED
        handle.cancel_reason = reason
        if handle in self._running:
            self._retire(handle)

    def cancel_session(self, session_id: str, reason: str = "session-closed") -> int:
        """Cancel every queued/running query of one session."""
        victims = [
            handle
            for handle in list(self._queue) + list(self._running)
            if handle.session_id == session_id
        ]
        for handle in victims:
            self._cancel(handle, reason)
        return len(victims)

    # -- driving -----------------------------------------------------------

    def run_until_idle(self, max_steps: int = 50_000_000) -> int:
        """Step until no query is running or queued; returns steps taken."""
        steps = 0
        while self.step():
            steps += 1
            if steps > max_steps:
                raise ServerError("run_until_idle exceeded max_steps — runaway query?")
        return steps

    def wait(self, handle: QueryHandle, max_steps: int = 50_000_000) -> Any:
        """Step the server until ``handle`` finishes; return its result.

        Other admitted queries keep making proportional progress while the
        caller waits — this is the cooperative equivalent of blocking.
        """
        steps = 0
        while not handle.done:
            if not self.step():
                raise ServerError("server went idle before the query finished")
            steps += 1
            if steps > max_steps:
                raise ServerError("wait exceeded max_steps — runaway query?")
        return handle.result

"""B+-tree indexes.

Rdb/VMS indexes are B-trees; the paper uses them both as access paths and as
"hierarchical histograms" (Figure 5). This package provides a page-backed
B+-tree (:mod:`repro.btree.tree`), the descent-to-split-node range estimator
(:mod:`repro.btree.estimate`), and random sampling from B+-trees
(:mod:`repro.btree.sampling`) implementing both the Olken/Rotem
acceptance/rejection method [OlRo89] and the pseudo-ranked method [Ant92]
the paper cites as its successor.
"""

from repro.btree.estimate import RangeEstimate, estimate_range
from repro.btree.sampling import (
    SampleResult,
    acceptance_rejection_sample,
    pseudo_ranked_sample,
    selectivity_from_sample,
)
from repro.btree.tree import BTree, KeyRange, RangeCursor

__all__ = [
    "BTree",
    "KeyRange",
    "RangeCursor",
    "RangeEstimate",
    "estimate_range",
    "SampleResult",
    "acceptance_rejection_sample",
    "pseudo_ranked_sample",
    "selectivity_from_sample",
]

"""Random sampling from B+-trees.

Section 5 points past descent-to-split estimation toward sampling: "Random
sampling can estimate RIDs with any restrictions, including pattern matching,
complex arithmetic, comparing attributes of the same index." Two methods are
implemented:

* **Acceptance/rejection** [OlRo89]: walk root-to-leaf choosing children
  uniformly; accept the walk with probability ``prod(fanout_i) / fmax**depth``
  so accepted leaf entries are uniform. Simple but wasteful — most walks are
  rejected when fanouts vary.
* **Pseudo-ranked** [Ant92]: never reject. Each walk picks children uniformly
  and records its inclusion probability; estimates are importance-weighted
  (Horvitz-Thompson). Every walk contributes, which is what makes sampling
  cheap enough for "heavy usage within the dynamic optimization framework".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.btree.node import Key
from repro.btree.tree import BTree
from repro.storage.buffer_pool import CostMeter, NULL_METER
from repro.storage.rid import RID


@dataclass
class SampleResult:
    """Outcome of a sampling run."""

    #: sampled (key, rid) entries (accepted walks only for Olken)
    entries: list[tuple[Key, RID]]
    #: per-entry importance weights (1.0 for accepted Olken samples)
    weights: list[float]
    #: root-to-leaf walks performed
    walks: int
    #: walks rejected (always 0 for pseudo-ranked)
    rejections: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of walks that yielded a sample."""
        return len(self.entries) / self.walks if self.walks else 0.0


def _random_walk(
    tree: BTree, rng: random.Random, meter: CostMeter
) -> tuple[tuple[Key, RID] | None, float]:
    """One uniform root-to-leaf walk.

    Returns the chosen entry (None for an empty leaf) and the probability of
    having reached it, i.e. ``prod(1/branching at each step)``.
    """
    page_id = tree._root_id
    probability = 1.0
    while True:
        node = tree._node(page_id, meter)
        if node.is_leaf:
            if not node.entries:
                return None, probability
            index = rng.randrange(len(node.entries))
            probability /= len(node.entries)
            return node.entries[index], probability
        index = rng.randrange(len(node.children))
        probability /= len(node.children)
        page_id = node.children[index]


def acceptance_rejection_sample(
    tree: BTree,
    sample_size: int,
    rng: random.Random,
    meter: CostMeter = NULL_METER,
    max_walks: int | None = None,
) -> SampleResult:
    """Olken/Rotem uniform sampling via acceptance/rejection.

    A walk reaching an entry with probability ``p`` is accepted with
    probability ``p_min / p`` where ``p_min = (1/order)**height`` lower-bounds
    every walk probability; accepted entries are then uniform over entries.
    """
    if tree.entry_count == 0:
        return SampleResult(entries=[], weights=[], walks=0, rejections=0)
    p_min = (1.0 / tree.order) ** tree.height
    entries: list[tuple[Key, RID]] = []
    weights: list[float] = []
    walks = rejections = 0
    budget = max_walks if max_walks is not None else sample_size * tree.order * 4
    while len(entries) < sample_size and walks < budget:
        walks += 1
        entry, probability = _random_walk(tree, rng, meter)
        if entry is None:
            rejections += 1
            continue
        accept_probability = p_min / probability
        if rng.random() <= accept_probability:
            entries.append(entry)
            weights.append(1.0)
        else:
            rejections += 1
    return SampleResult(entries=entries, weights=weights, walks=walks, rejections=rejections)


def pseudo_ranked_sample(
    tree: BTree,
    sample_size: int,
    rng: random.Random,
    meter: CostMeter = NULL_METER,
) -> SampleResult:
    """Pseudo-ranked sampling: every walk yields a weighted sample.

    The Horvitz-Thompson weight of an entry reached with probability ``p``
    is ``1 / (p * N)`` where ``N`` is the entry count; weighted means over
    the sample are unbiased for population means.
    """
    if tree.entry_count == 0:
        return SampleResult(entries=[], weights=[], walks=0, rejections=0)
    entries: list[tuple[Key, RID]] = []
    weights: list[float] = []
    walks = 0
    n = tree.entry_count
    while len(entries) < sample_size:
        walks += 1
        entry, probability = _random_walk(tree, rng, meter)
        if entry is None:
            continue
        entries.append(entry)
        weights.append(1.0 / (probability * n))
        if walks > sample_size * 64:
            break
    return SampleResult(entries=entries, weights=weights, walks=walks, rejections=0)


def selectivity_from_sample(
    result: SampleResult, predicate: Callable[[Key], bool]
) -> float:
    """Estimate the fraction of index entries whose key satisfies ``predicate``.

    Uses the self-normalized (Hajek) estimator so both uniform (Olken) and
    weighted (pseudo-ranked) samples are handled by the same formula.
    """
    if not result.entries:
        return 0.0
    total_weight = sum(result.weights)
    if total_weight == 0:
        return 0.0
    hit_weight = sum(
        weight
        for (key, _), weight in zip(result.entries, result.weights)
        if predicate(key)
    )
    return hit_weight / total_weight

"""A page-backed B+-tree with step-wise range cursors.

Every node visit goes through the buffer pool, so index scans and estimation
descents are charged in physical I/Os — the paper's metric. Leaves are
linked for range scans. Duplicate keys are supported by ordering entries on
``(key, rid)``.

Deletion is lazy (no rebalancing): the retrieval engine the paper describes
never depends on post-delete balance, and lazy deletion keeps RIDs and
estimates correct, which is what matters here.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import BTreeError
from repro.btree.node import InternalNode, Key, LeafNode, Node, normalize_key
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.pager import PageKind
from repro.storage.rid import RID

#: RID sentinels for entry-space range bounds.
RID_MIN = RID(-1, -1)
RID_MAX = RID(1 << 62, 1 << 62)


@functools.total_ordering
class _Top:
    """Sentinel comparing greater than every column value."""

    def __lt__(self, other: object) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()

#: An entry is (key, rid); bounds are synthetic entries.
Entry = tuple[Key, RID]


@dataclass(frozen=True)
class KeyRange:
    """A (possibly prefix, possibly open-ended) key range on an index.

    ``lo``/``hi`` are key tuples that may be shorter than the index key
    (prefix ranges); ``None`` means unbounded on that side.
    """

    lo: Key | None = None
    hi: Key | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    @staticmethod
    def all() -> "KeyRange":
        """The unbounded range (full index scan)."""
        return KeyRange()

    @staticmethod
    def exact(key: Any) -> "KeyRange":
        """An equality range on a (possibly prefix) key."""
        k = normalize_key(key)
        return KeyRange(lo=k, hi=k)

    @property
    def is_empty_syntactically(self) -> bool:
        """True when the bounds themselves admit no key."""
        if self.lo is None or self.hi is None:
            return False
        common = min(len(self.lo), len(self.hi))
        lo_cut, hi_cut = self.lo[:common], self.hi[:common]
        if lo_cut > hi_cut:
            return True
        if lo_cut == hi_cut and len(self.lo) == len(self.hi):
            return not (self.lo_inclusive and self.hi_inclusive)
        return False

    def low_bound(self) -> Entry | None:
        """Synthetic inclusive entry-space lower bound (None = open)."""
        if self.lo is None:
            return None
        if self.lo_inclusive:
            return (self.lo, RID_MIN)
        return (self.lo + (TOP,), RID_MAX)

    def high_bound(self) -> Entry | None:
        """Synthetic inclusive entry-space upper bound (None = open)."""
        if self.hi is None:
            return None
        if self.hi_inclusive:
            return (self.hi + (TOP,), RID_MAX)
        return (self.hi, RID_MIN)

    def contains_key(self, key: Key) -> bool:
        """Key-space membership with prefix semantics."""
        if self.lo is not None:
            cut = key[: len(self.lo)]
            if cut < self.lo or (cut == self.lo and not self.lo_inclusive):
                return False
        if self.hi is not None:
            cut = key[: len(self.hi)]
            if cut > self.hi or (cut == self.hi and not self.hi_inclusive):
                return False
        return True

    def describe(self) -> str:
        """Human-readable form for traces."""
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        lb = "[" if self.lo_inclusive else "("
        rb = "]" if self.hi_inclusive else ")"
        return f"{lb}{lo} .. {hi}{rb}"


def _entry_le(a: Entry | None, b: Entry, open_low: bool) -> bool:
    """a <= b treating None as -inf (open_low) — helper for bound checks."""
    if a is None:
        return True
    return a <= b


class BTree:
    """A B+-tree mapping composite keys to RIDs.

    ``order`` is the maximum entry count of a leaf and the maximum child
    count of an internal node. Real Rdb trees have fanouts in the hundreds;
    benchmarks use small orders so that trees are deep enough to show
    estimation behaviour at modest data sizes.
    """

    def __init__(self, buffer_pool: BufferPool, name: str, order: int = 32) -> None:
        if order < 4:
            raise BTreeError("order must be >= 4")
        self.buffer_pool = buffer_pool
        self.name = name
        self.order = order
        root = self._new_leaf(NULL_METER)
        self._root_id = root.page_id
        self.height = 1
        self.entry_count = 0
        self.leaf_count = 1
        self.internal_count = 0

    # -- node helpers -------------------------------------------------------

    def _new_leaf(self, meter: CostMeter) -> LeafNode:
        page = self.buffer_pool.allocate(PageKind.INDEX, owner=self.name, meter=meter)
        node = LeafNode(page_id=page.page_id)
        page.payload = node
        return node

    def _new_internal(self, meter: CostMeter) -> InternalNode:
        page = self.buffer_pool.allocate(PageKind.INDEX, owner=self.name, meter=meter)
        node = InternalNode(page_id=page.page_id)
        page.payload = node
        return node

    def _node(self, page_id: int, meter: CostMeter) -> Node:
        return self.buffer_pool.get(page_id, meter).payload

    def _peek_node(self, page_id: int) -> Node:
        """Unaccounted node access for oracles/invariant checks."""
        return self.buffer_pool.pager.peek(page_id).payload

    # -- mutation -------------------------------------------------------------

    def insert(self, key: Any, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Insert one ``(key, rid)`` entry. Duplicates of the same pair are
        allowed (multiset semantics, like a non-unique index)."""
        entry = (normalize_key(key), rid)
        split = self._insert_into(self._root_id, entry, meter)
        if split is not None:
            separator, new_child = split
            new_root = self._new_internal(meter)
            new_root.separators = [separator]
            new_root.children = [self._root_id, new_child]
            self._root_id = new_root.page_id
            self.height += 1
        self.entry_count += 1

    def _insert_into(
        self, page_id: int, entry: Entry, meter: CostMeter
    ) -> tuple[Entry, int] | None:
        node = self._node(page_id, meter)
        if node.is_leaf:
            return self._insert_into_leaf(node, entry, meter)
        index = node.child_index_for(entry)
        split = self._insert_into(node.children[index], entry, meter)
        if split is None:
            return None
        separator, new_child = split
        node.separators.insert(index, separator)
        node.children.insert(index + 1, new_child)
        if len(node.children) <= self.order:
            return None
        return self._split_internal(node, meter)

    def _insert_into_leaf(
        self, leaf: LeafNode, entry: Entry, meter: CostMeter
    ) -> tuple[Entry, int] | None:
        lo, hi = 0, len(leaf.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if leaf.entries[mid] < entry:
                lo = mid + 1
            else:
                hi = mid
        leaf.entries.insert(lo, entry)
        if len(leaf.entries) <= self.order:
            return None
        return self._split_leaf(leaf, meter)

    def _split_leaf(self, leaf: LeafNode, meter: CostMeter) -> tuple[Entry, int]:
        mid = len(leaf.entries) // 2
        right = self._new_leaf(meter)
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right.page_id
        self.leaf_count += 1
        return right.entries[0], right.page_id

    def _split_internal(self, node: InternalNode, meter: CostMeter) -> tuple[Entry, int]:
        mid = len(node.separators) // 2
        separator = node.separators[mid]
        right = self._new_internal(meter)
        right.separators = node.separators[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.separators = node.separators[:mid]
        node.children = node.children[: mid + 1]
        self.internal_count += 1
        return separator, right.page_id

    def delete(self, key: Any, rid: RID, meter: CostMeter = NULL_METER) -> bool:
        """Remove one ``(key, rid)`` entry; returns False if absent.

        Lazy: leaves may underflow; separators are left untouched.
        """
        entry = (normalize_key(key), rid)
        page_id = self._root_id
        while True:
            node = self._node(page_id, meter)
            if node.is_leaf:
                break
            page_id = node.children[node.child_index_for(entry)]
        try:
            node.entries.remove(entry)
        except ValueError:
            return False
        self.entry_count -= 1
        return True

    # -- lookup / scans -------------------------------------------------------

    def search(self, key: Any, meter: CostMeter = NULL_METER) -> list[RID]:
        """All RIDs stored under an exact (full-length) key."""
        return [rid for _, rid in self.scan_range(KeyRange.exact(key), meter)]

    def range_cursor(self, key_range: KeyRange, meter: CostMeter | None = None) -> "RangeCursor":
        """Create a step-wise cursor over a key range."""
        return RangeCursor(self, key_range, meter if meter is not None else CostMeter(self.name))

    def scan_range(
        self, key_range: KeyRange, meter: CostMeter = NULL_METER
    ) -> Iterator[Entry]:
        """Iterate all entries of a range (convenience over the cursor)."""
        cursor = self.range_cursor(key_range, meter)
        while True:
            entry = cursor.next_entry()
            if entry is None:
                return
            yield entry

    def first_leaf_for(self, bound: Entry | None, meter: CostMeter) -> LeafNode:
        """Descend to the leaf that would contain ``bound`` (leftmost if None)."""
        page_id = self._root_id
        while True:
            node = self._node(page_id, meter)
            if node.is_leaf:
                return node
            if bound is None:
                page_id = node.children[0]
            else:
                page_id = node.children[node.child_index_for(bound)]

    @property
    def average_fanout(self) -> float:
        """Average tree fanout ``f`` used by the Figure 5 estimate.

        Computed so that a subtree rooted at level ``j`` (leaves at level 1)
        carries about ``f**j`` entries: ``f = entry_count ** (1/height)``,
        floored at 2 to keep powers meaningful for tiny trees.
        """
        if self.entry_count <= 1:
            return 2.0
        return max(2.0, self.entry_count ** (1.0 / self.height))

    # -- oracles / invariants (unaccounted) ------------------------------------

    def entries(self) -> Iterator[Entry]:
        """All entries in order, without charging I/O (test oracle)."""
        node = self._peek_node(self._root_id)
        while not node.is_leaf:
            node = self._peek_node(node.children[0])
        while True:
            yield from node.entries
            if node.next_leaf is None:
                return
            node = self._peek_node(node.next_leaf)

    def count_range_exact(self, key_range: KeyRange) -> int:
        """Exact number of entries in a range, without charging I/O."""
        return sum(1 for key, _ in self.entries() if key_range.contains_key(key))

    def check_invariants(self) -> None:
        """Raise :class:`BTreeError` on any structural violation."""
        leaf_depths: set[int] = set()
        count = self._check_node(self._root_id, None, None, 1, leaf_depths)
        if count != self.entry_count:
            raise BTreeError(f"entry_count={self.entry_count} but found {count}")
        if len(leaf_depths) > 1:
            raise BTreeError(f"leaves at multiple depths: {leaf_depths}")
        if leaf_depths and next(iter(leaf_depths)) != self.height:
            raise BTreeError("height mismatch")
        ordered = list(self.entries())
        if ordered != sorted(ordered):
            raise BTreeError("leaf chain out of order")

    def _check_node(
        self,
        page_id: int,
        low: Entry | None,
        high: Entry | None,
        depth: int,
        leaf_depths: set[int],
    ) -> int:
        node = self._peek_node(page_id)
        if node.is_leaf:
            leaf_depths.add(depth)
            for entry in node.entries:
                if low is not None and entry < low:
                    raise BTreeError(f"entry {entry} below node low bound {low}")
                if high is not None and entry >= high:
                    raise BTreeError(f"entry {entry} at/above node high bound {high}")
            return len(node.entries)
        if len(node.children) != len(node.separators) + 1:
            raise BTreeError("separator/child count mismatch")
        if node.separators != sorted(node.separators):
            raise BTreeError("separators out of order")
        total = 0
        for i, child in enumerate(node.children):
            child_low = node.separators[i - 1] if i > 0 else low
            child_high = node.separators[i] if i < len(node.separators) else high
            total += self._check_node(child, child_low, child_high, depth + 1, leaf_depths)
        return total


class RangeCursor:
    """Step-wise iteration over a key range, one entry per call.

    The cursor records how many entries it has consumed; together with a
    range estimate this yields the "fraction scanned" that drives Jscan's
    projected-cost calculation.
    """

    def __init__(self, tree: BTree, key_range: KeyRange, meter: CostMeter) -> None:
        self.tree = tree
        self.key_range = key_range
        self.meter = meter
        self.consumed = 0
        self.exhausted = False
        self._high = key_range.high_bound()
        self._leaf: LeafNode | None = None
        self._pos = 0
        if key_range.is_empty_syntactically:
            self.exhausted = True
            return
        low = key_range.low_bound()
        self._leaf = tree.first_leaf_for(low, meter)
        self._pos = 0
        if low is not None:
            # binary search within the leaf for the first qualifying entry
            entries = self._leaf.entries
            lo, hi = 0, len(entries)
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid] < low:
                    lo = mid + 1
                else:
                    hi = mid
            self._pos = lo

    def next_entry(self) -> Entry | None:
        """Return the next (key, rid) entry, or None when the range ends."""
        if self.exhausted:
            return None
        while True:
            assert self._leaf is not None
            if self._pos >= len(self._leaf.entries):
                if self._leaf.next_leaf is None:
                    self.exhausted = True
                    return None
                self._leaf = self.tree._node(self._leaf.next_leaf, self.meter)
                self._pos = 0
                continue
            entry = self._leaf.entries[self._pos]
            if self._high is not None and entry > self._high:
                self.exhausted = True
                return None
            self._pos += 1
            self.meter.charge_cpu(0.0002)
            self.consumed += 1
            return entry

    def next_entries(self, count: int) -> list[Entry]:
        """Return up to ``count`` next entries in one call.

        Accounting is identical to ``count`` repeated :meth:`next_entry`
        calls: the same leaf reads hit the meter, ``consumed`` advances by
        the number of entries returned, and each entry carries the same CPU
        charge (applied per entry so float accumulation matches exactly).
        A short list means the range is exhausted.
        """
        out: list[Entry] = []
        if self.exhausted or count < 1:
            return out
        high = self._high
        meter = self.meter
        while len(out) < count:
            leaf = self._leaf
            assert leaf is not None
            entries = leaf.entries
            pos = self._pos
            if pos >= len(entries):
                if leaf.next_leaf is None:
                    self.exhausted = True
                    break
                self._leaf = self.tree._node(leaf.next_leaf, meter)
                self._pos = 0
                continue
            stop = min(len(entries), pos + count - len(out))
            if high is None:
                out.extend(entries[pos:stop])
                self._pos = stop
            else:
                while pos < stop and entries[pos] <= high:
                    out.append(entries[pos])
                    pos += 1
                self._pos = pos
                if pos < stop:  # crossed the high bound
                    self.exhausted = True
                    break
        self.consumed += len(out)
        for _ in out:
            meter.charge_cpu(0.0002)
        return out

"""B+-tree node structures.

Nodes are page payloads: visiting a node goes through the buffer pool and
may charge a physical read. Leaf entries are ``(key, rid)`` pairs kept in
``(key, rid)`` order, which makes duplicate keys well-ordered and deletion
exact. Internal nodes hold ``len(children) - 1`` separator keys; child ``i``
covers keys ``separators[i-1] <= k < separators[i]`` (with open ends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.rid import RID

#: Keys are tuples of column values (composite keys) — scalars are wrapped.
Key = tuple


@dataclass
class LeafNode:
    """A leaf page: sorted ``(key, rid)`` entries plus a right-sibling link."""

    page_id: int
    entries: list[tuple[Key, RID]] = field(default_factory=list)
    next_leaf: int | None = None

    is_leaf: bool = True

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class InternalNode:
    """An internal page: separator keys and child page ids.

    Separators are ``(key, rid)`` pairs too — separating on the full entry
    order makes duplicate-heavy trees split cleanly.
    """

    page_id: int
    separators: list[tuple[Key, RID]] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    is_leaf: bool = False

    def __len__(self) -> int:
        return len(self.children)

    def child_index_for(self, entry: tuple[Key, RID]) -> int:
        """Index of the child whose range contains ``entry``."""
        lo, hi = 0, len(self.separators)
        while lo < hi:
            mid = (lo + hi) // 2
            if entry < self.separators[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo


Node = LeafNode | InternalNode


def normalize_key(key: Any) -> Key:
    """Wrap scalar keys into 1-tuples; pass tuples through."""
    if isinstance(key, tuple):
        return key
    return (key,)

"""Figure 5: range estimation by descent to a split node.

    "We first descend the tree from the root along the path containing only
    those nodes which branches include all range keys. The lowest node of
    the path is a 'split' node. Its level is a 'split' level l. The number
    of its neighboring children containing the range is k+1 if l>1, and the
    number of range-satisfying RIDs is k if l=1. Assuming that the left- and
    rightmost children of the split node range contain 50% of
    range-satisfying keys (and thus counting those two nodes as one) and
    assuming the average tree fanout be f, we can now estimate the number of
    range RIDs as RangeRIDs ~= k * f**(l-1)."

The estimate is "fast, well suited for small ranges, and ... always
up-to-date": the descent costs one root-to-split-node path of page reads and
needs no maintained statistics. When the descent bottoms out in a leaf the
count is exact — in particular an empty range is *detected*, enabling the
Section 5 shortcut that cancels the whole retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BTree, Entry, KeyRange
from repro.storage.buffer_pool import CostMeter, NULL_METER


@dataclass(frozen=True)
class RangeEstimate:
    """Result of a descent-to-split-node estimation."""

    #: estimated number of range-satisfying RIDs
    rids: float
    #: True when the descent reached a leaf and counted exactly
    exact: bool
    #: split node level (leaves are level 1)
    split_level: int
    #: the paper's k (children-minus-one at the split node; exact count at a leaf)
    k: int
    #: average fanout used for extrapolation
    fanout: float

    @property
    def is_empty(self) -> bool:
        """True when the range is known to contain no RIDs."""
        return self.exact and self.rids == 0


def _child_intersects(
    child_low: Entry | None,
    child_high: Entry | None,
    low: Entry | None,
    high: Entry | None,
) -> bool:
    """Does child entry-span [child_low, child_high) intersect [low, high]?"""
    if high is not None and child_low is not None and child_low > high:
        return False
    if low is not None and child_high is not None and child_high <= low:
        return False
    return True


def estimate_range(
    tree: BTree, key_range: KeyRange, meter: CostMeter = NULL_METER
) -> RangeEstimate:
    """Estimate the number of RIDs in ``key_range`` by descent to split node."""
    fanout = tree.average_fanout
    if key_range.is_empty_syntactically:
        return RangeEstimate(rids=0.0, exact=True, split_level=tree.height, k=0, fanout=fanout)
    low = key_range.low_bound()
    high = key_range.high_bound()
    page_id = tree._root_id
    level = tree.height
    while True:
        node = tree._node(page_id, meter)
        if node.is_leaf:
            k = sum(1 for key, _ in node.entries if key_range.contains_key(key))
            return RangeEstimate(rids=float(k), exact=True, split_level=1, k=k, fanout=fanout)
        hits: list[int] = []
        for i, child in enumerate(node.children):
            child_low = node.separators[i - 1] if i > 0 else None
            child_high = node.separators[i] if i < len(node.separators) else None
            if _child_intersects(child_low, child_high, low, high):
                hits.append(i)
        if len(hits) == 0:
            # the range falls between two separators with no child span —
            # cannot happen structurally (children cover the whole space),
            # kept as a defensive empty result.
            return RangeEstimate(rids=0.0, exact=True, split_level=level, k=0, fanout=fanout)
        if len(hits) == 1:
            page_id = node.children[hits[0]]
            level -= 1
            continue
        # split node found: k+1 children contain the range; the two edge
        # children are assumed half-full of qualifying keys, so they count
        # as one child together.
        k = len(hits) - 1
        rids = k * fanout ** (level - 1)  # RangeRIDs ~= k * f**(l-1)
        return RangeEstimate(
            rids=rids, exact=False, split_level=level, k=k, fanout=fanout
        )


def estimation_io_cost(tree: BTree) -> int:
    """Worst-case physical reads of one estimation (a root-to-leaf path)."""
    return tree.height

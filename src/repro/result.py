"""The unified statement result: one shape for every Connection call.

Historically each statement kind returned its own object —
:class:`~repro.sql.executor.QueryResult` for SELECTs,
:class:`~repro.sql.ddl.DdlResult` for DDL/DML, a bare ``str`` or
:class:`~repro.sql.executor.ExplainResult` for EXPLAIN — and callers
type-switched on the return value. :class:`Result` replaces that trio on
the :class:`~repro.api.Connection` surface: ``execute``, ``prepare(...)
.execute`` and ``explain`` all return a ``Result`` carrying ``rows``,
``columns``, ``rowcount``, ``plan`` and ``metrics`` uniformly, with
``kind`` distinguishing the statement family for callers that still care.

The legacy object is preserved as ``result.raw`` and the old
``Database.execute``/``Database.explain`` shims keep returning it (with a
:class:`DeprecationWarning`), so existing code migrates on its own
schedule — see ``docs/serving.md`` for the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class ResultMetrics:
    """Execution figures, populated uniformly across statement kinds.

    For DDL/DML only ``rows_affected`` is meaningful; for EXPLAIN without
    ANALYZE everything is zero (nothing executed).
    """

    total_io: int = 0
    total_cost: float = 0.0
    retrieval_count: int = 0
    rows_affected: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_io": self.total_io,
            "total_cost": self.total_cost,
            "retrieval_count": self.retrieval_count,
            "rows_affected": self.rows_affected,
        }


class Result:
    """What every Connection statement returns.

    Uniform surface::

        result.rows       # list[tuple] — empty for DDL / plain EXPLAIN
        result.columns    # tuple[str, ...]
        result.rowcount   # len(rows), or rows_affected for DDL/DML
        result.plan       # PlanNode | None (bound logical plan)
        result.metrics    # ResultMetrics (io / cost / retrievals)

    plus ``kind`` (``"rows"`` | ``"ddl"`` | ``"explain"``), ``text`` (the
    rendered report for EXPLAIN, the status message for DDL), ``compete``
    (the :class:`~repro.obs.regret.CompeteReport` for EXPLAIN COMPETE) and
    ``raw`` (the legacy result object, for back-compat delegation).

    ``Result`` is iterable over its rows and speaks the
    :class:`~repro.obs.explain.Renderable` protocol (``to_text`` /
    ``to_dict``) like every other report in the system.
    """

    __slots__ = ("kind", "columns", "rows", "plan", "metrics", "text",
                 "compete", "raw")

    def __init__(
        self,
        kind: str,
        columns: tuple[str, ...] = (),
        rows: list[tuple] | None = None,
        plan: Any | None = None,
        metrics: ResultMetrics | None = None,
        text: str = "",
        compete: Any | None = None,
        raw: Any | None = None,
    ) -> None:
        if kind not in ("rows", "ddl", "explain"):
            raise ValueError(f"unknown result kind {kind!r}")
        self.kind = kind
        self.columns = tuple(columns)
        self.rows = rows if rows is not None else []
        self.plan = plan
        self.metrics = metrics if metrics is not None else ResultMetrics()
        self.text = text
        self.compete = compete
        self.raw = raw

    # -- construction --------------------------------------------------------

    @classmethod
    def wrap(cls, raw: Any) -> "Result":
        """Lift a legacy result object into the unified shape.

        Accepts :class:`~repro.sql.executor.QueryResult`,
        :class:`~repro.sql.ddl.DdlResult`,
        :class:`~repro.sql.executor.ExplainResult`, or an existing
        ``Result`` (returned unchanged).
        """
        if isinstance(raw, Result):
            return raw
        from repro.sql.ddl import DdlResult
        from repro.sql.executor import ExplainResult, QueryResult

        if isinstance(raw, QueryResult):
            return cls(
                "rows",
                columns=raw.columns,
                rows=raw.rows,
                plan=raw.plan,
                metrics=ResultMetrics(
                    total_io=raw.total_io,
                    total_cost=raw.total_cost,
                    retrieval_count=len(raw.retrievals),
                ),
                raw=raw,
            )
        if isinstance(raw, DdlResult):
            return cls(
                "ddl",
                text=raw.message,
                metrics=ResultMetrics(rows_affected=raw.rows_affected),
                raw=raw,
            )
        if isinstance(raw, ExplainResult):
            inner = raw.result
            metrics = ResultMetrics()
            columns: tuple[str, ...] = ()
            rows: list[tuple] = []
            plan = None
            if inner is not None:
                columns, rows, plan = inner.columns, inner.rows, inner.plan
                metrics = ResultMetrics(
                    total_io=inner.total_io,
                    total_cost=inner.total_cost,
                    retrieval_count=len(inner.retrievals),
                )
            return cls(
                "explain",
                columns=columns,
                rows=rows,
                plan=plan,
                metrics=metrics,
                text=raw.text,
                compete=raw.compete,
                raw=raw,
            )
        raise TypeError(f"cannot wrap {type(raw).__name__} as a Result")

    @classmethod
    def from_explain_text(cls, text: str, plan: Any | None = None) -> "Result":
        """A plain (non-ANALYZE) EXPLAIN: just the rendered plan."""
        return cls("explain", plan=plan, text=text)

    # -- the uniform surface -------------------------------------------------

    @property
    def rowcount(self) -> int:
        """Rows delivered, or rows affected for DDL/DML."""
        if self.kind == "ddl":
            return self.metrics.rows_affected
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return self.rowcount

    def __bool__(self) -> bool:  # len()==0 must not read as failure
        return True

    def __repr__(self) -> str:
        return (
            f"Result(kind={self.kind!r}, rowcount={self.rowcount}, "
            f"io={self.metrics.total_io}, cost={self.metrics.total_cost:.1f})"
        )

    def __str__(self) -> str:
        return self.text if self.text else repr(self)

    # -- back-compat delegates ----------------------------------------------

    @property
    def retrievals(self):
        """Per-retrieval execution info (empty for DDL / plain EXPLAIN)."""
        return getattr(self.raw, "retrievals", None) or \
            getattr(getattr(self.raw, "result", None), "retrievals", [])

    @property
    def goals(self):
        """Inferred per-retrieval optimization goals keyed by plan node id."""
        return getattr(self.raw, "goals", None) or \
            getattr(getattr(self.raw, "result", None), "goals", {})

    @property
    def total_io(self) -> int:
        return self.metrics.total_io

    @property
    def total_cost(self) -> float:
        return self.metrics.total_cost

    @property
    def message(self) -> str:
        """DDL status message (alias of ``text`` for ``kind == 'ddl'``)."""
        return self.text

    # -- the obs.explain.Renderable protocol --------------------------------

    def to_text(self) -> str:
        """Human-readable rendering: the report text for EXPLAIN/DDL, a
        simple aligned table for rows."""
        if self.text:
            return self.text
        if not self.columns:
            return repr(self)
        widths = [
            max(len(str(column)),
                *(len(str(row[i])) for row in self.rows)) if self.rows
            else len(str(column))
            for i, column in enumerate(self.columns)
        ]
        header = "  ".join(
            str(column).ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        rule = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(str(value).ljust(widths[i]) for i, value in enumerate(row))
            for row in self.rows
        ]
        return "\n".join([header, rule, *body, f"({self.rowcount} rows)"])

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable rendering: kind, rows, metrics, plan tree."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "columns": list(self.columns),
            "rowcount": self.rowcount,
            "metrics": self.metrics.to_dict(),
        }
        if self.rows:
            out["rows"] = [list(row) for row in self.rows]
        if self.text:
            out["text"] = self.text
        if self.plan is not None:
            from repro.obs.explain import plan_to_dict

            out["plan"] = plan_to_dict(self.plan, self.goals or None)
        if self.compete is not None and hasattr(self.compete, "to_dict"):
            out["compete"] = self.compete.to_dict()
        return out

"""Column-value generators for synthetic workloads."""

from __future__ import annotations

import numpy as np


def uniform_ints(rng: np.random.Generator, n: int, lo: int, hi: int) -> list[int]:
    """``n`` integers uniform on [lo, hi] inclusive."""
    return [int(v) for v in rng.integers(lo, hi + 1, size=n)]


def zipf_ints(rng: np.random.Generator, n: int, values: int, skew: float = 1.2) -> list[int]:
    """``n`` integers in [0, values) with a Zipf(``skew``) frequency profile.

    The paper (and [Zipf49]) motivates Zipf-like skew as the normal state of
    intermediate selectivities; this generator puts it into base data.
    """
    ranks = np.arange(1, values + 1, dtype=float)
    weights = ranks**-skew
    weights /= weights.sum()
    return [int(v) for v in rng.choice(values, size=n, p=weights)]


def normal_ints(
    rng: np.random.Generator, n: int, mean: float, std: float, lo: int, hi: int
) -> list[int]:
    """``n`` integers from a clipped normal distribution."""
    values = np.clip(np.round(rng.normal(mean, std, size=n)), lo, hi)
    return [int(v) for v in values]


def correlated_pair(
    rng: np.random.Generator,
    n: int,
    lo: int,
    hi: int,
    correlation: float,
) -> tuple[list[int], list[int]]:
    """Two integer columns with (approximately) the given rank correlation.

    Implemented via a Gaussian copula: correlated normals are mapped to
    uniform ranks and scaled to [lo, hi]. Column correlation is the paper's
    central unknown — Section 2's "unknown correlation" mixture models
    precisely our ignorance of this parameter.
    """
    if not -1.0 <= correlation <= 1.0:
        raise ValueError("correlation must be within [-1, 1]")
    base = rng.normal(size=n)
    noise = rng.normal(size=n)
    second = correlation * base + np.sqrt(max(0.0, 1.0 - correlation**2)) * noise
    span = hi - lo

    def to_ints(values: np.ndarray) -> list[int]:
        ranks = values.argsort().argsort().astype(float) / max(1, n - 1)
        return [int(lo + round(rank * span)) for rank in ranks]

    return to_ints(base), to_ints(second)


def clustered_permutation(
    rng: np.random.Generator, values: list[int], clustering: float
) -> list[int]:
    """Reorder ``values`` so physical order correlates with value order.

    ``clustering`` = 1 produces perfectly clustered placement (index order
    == physical order, the cheap case for range fetches); 0 produces a
    random shuffle (the expensive case). Intermediate values blend the two
    by perturbing sorted positions with noise — the "clustering effect
    [that] may not be known or may be hard to detect" (Section 3(b)).
    """
    if not 0.0 <= clustering <= 1.0:
        raise ValueError("clustering must be within [0, 1]")
    n = len(values)
    if n == 0:
        return []
    sorted_values = sorted(values)
    # each sorted item gets a physical-position score blending its sorted
    # rank with a random rank; the physical sequence sorts by that score
    noise = rng.permutation(n).astype(float)
    scores = clustering * np.arange(n, dtype=float) + (1.0 - clustering) * noise
    return [sorted_values[int(i)] for i in np.argsort(scores, kind="stable")]

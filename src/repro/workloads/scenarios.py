"""Canned scenarios shared by examples, benchmarks, and integration tests."""

from __future__ import annotations

import numpy as np

from repro.db.session import Database
from repro.db.table import Table
from repro.workloads.generators import (
    clustered_permutation,
    correlated_pair,
    uniform_ints,
    zipf_ints,
)


def build_families_table(
    db: Database,
    rows: int = 4000,
    max_age: int = 120,
    seed: int = 42,
    clustering: float = 0.0,
) -> Table:
    """The Section 4 FAMILIES table: AGE with a realistic (skewed) profile.

    ``select * from FAMILIES where AGE >= :A1`` with A1 in {0, 200} is the
    paper's motivating query: all rows vs none, undecidable at compile time.
    """
    rng = np.random.default_rng(seed)
    table = db.create_table(
        "FAMILIES", [("ID", "int"), ("AGE", "int"), ("INCOME", "int"), ("SIZE", "int")]
    )
    ages = [min(max_age, value) for value in zipf_ints(rng, rows, max_age + 1, skew=0.8)]
    ages = clustered_permutation(rng, ages, clustering)
    incomes = uniform_ints(rng, rows, 10_000, 200_000)
    sizes = uniform_ints(rng, rows, 1, 8)
    for i in range(rows):
        table.insert((i, ages[i], incomes[i], sizes[i]))
    table.create_index("IX_AGE", ["AGE"])
    table.analyze()
    return table


def build_parts_table(
    db: Database,
    rows: int = 6000,
    seed: int = 7,
    correlation: float = 0.0,
) -> Table:
    """A PARTS table with three fetch-needed single-column indexes.

    COLOR is low-cardinality Zipf-skewed, WEIGHT and SIZE are correlated
    numerics — the multi-index AND workload Jscan was built for.
    """
    rng = np.random.default_rng(seed)
    table = db.create_table(
        "PARTS",
        [("PNO", "int"), ("COLOR", "int"), ("WEIGHT", "int"), ("SIZE", "int"),
         ("PRICE", "int")],
    )
    colors = zipf_ints(rng, rows, 20, skew=1.1)
    weights, sizes = correlated_pair(rng, rows, 1, 1000, correlation)
    prices = uniform_ints(rng, rows, 1, 10_000)
    for i in range(rows):
        table.insert((i, colors[i], weights[i], sizes[i], prices[i]))
    table.create_index("IX_COLOR", ["COLOR"])
    table.create_index("IX_WEIGHT", ["WEIGHT"])
    table.create_index("IX_SIZE", ["SIZE"])
    table.analyze()
    return table


def build_multi_index_orders(
    db: Database,
    rows: int = 8000,
    seed: int = 99,
) -> Table:
    """An ORDERS table: date-clustered placement, plus customer/status
    indexes, and a covering (self-sufficient) index for status counts."""
    rng = np.random.default_rng(seed)
    table = db.create_table(
        "ORDERS",
        [("ONO", "int"), ("CUSTOMER", "int"), ("ODATE", "int"), ("STATUS", "int"),
         ("AMOUNT", "int")],
    )
    dates = sorted(uniform_ints(rng, rows, 20_000, 21_000))  # clustered by date
    customers = zipf_ints(rng, rows, 500, skew=1.3)
    statuses = zipf_ints(rng, rows, 6, skew=1.5)
    amounts = uniform_ints(rng, rows, 1, 100_000)
    for i in range(rows):
        table.insert((i, customers[i], dates[i], statuses[i], amounts[i]))
    table.create_index("IX_CUSTOMER", ["CUSTOMER"])
    table.create_index("IX_DATE", ["ODATE"])
    table.create_index("IX_STATUS_DATE", ["STATUS", "ODATE"])
    table.analyze()
    return table

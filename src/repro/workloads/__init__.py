"""Synthetic workload generation.

The paper's uncertainty sources — skewed data, correlated columns,
clustered vs scattered physical placement, parameterized repeated queries —
are produced here so benchmarks, examples, and tests share the same
scenario definitions.
"""

from repro.workloads.generators import (
    clustered_permutation,
    correlated_pair,
    normal_ints,
    uniform_ints,
    zipf_ints,
)
from repro.workloads.scenarios import (
    build_families_table,
    build_multi_index_orders,
    build_parts_table,
)

__all__ = [
    "clustered_permutation",
    "correlated_pair",
    "normal_ints",
    "uniform_ints",
    "zipf_ints",
    "build_families_table",
    "build_multi_index_orders",
    "build_parts_table",
]

"""Analytic L-shaped cost distributions and competition arithmetic.

Section 3 works with plans whose costs have "L-shaped distributions with 50%
probability concentrated in small cost regions [0, c] and 50% probability
widely spread to the right of them, with mean costs M". The class
:class:`LShapedCost` realizes such a distribution as a truncated hyperbola
on ``[0, H]`` whose parameters are solved from the paper's ``(c, M)`` pair,
so the paper's claims can be checked both analytically and by Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import CompetitionError


def _mean01(b: float) -> float:
    """Mean of the normalized hyperbola ``~1/(s+b)`` on [0, 1]."""
    log_term = np.log((1.0 + b) / b)
    return (1.0 - b * log_term) / log_term


def _half_mass01(b: float) -> float:
    """Median of the normalized hyperbola on [0, 1]."""
    return float(np.sqrt(b * (1.0 + b)) - b)


@dataclass(frozen=True)
class LShapedCost:
    """A truncated-hyperbola cost distribution on ``[0, H]``.

    Density is proportional to ``1/(x/H + b)``; ``b`` controls skewness and
    ``H`` the cost scale.
    """

    b: float
    H: float

    @classmethod
    def from_c_and_mean(cls, c: float, mean: float) -> "LShapedCost":
        """Solve (b, H) so the half-mass point is ``c`` and the mean ``mean``.

        Requires ``c < mean`` (an actual L-shape); raises otherwise.
        """
        if not 0 < c < mean:
            raise CompetitionError(f"need 0 < c < mean, got c={c}, mean={mean}")

        def gap(log_b: float) -> float:
            b = float(np.exp(log_b))
            return mean * _half_mass01(b) / _mean01(b) - c

        # hyperbola medians range from ~0 (b->0) to 0.5*mean ratio (b->inf):
        lo, hi = np.log(1e-12), np.log(1e6)
        if gap(lo) > 0 or gap(hi) < 0:
            raise CompetitionError(
                f"(c={c}, mean={mean}) outside the truncated-hyperbola family"
            )
        log_b = optimize.brentq(gap, lo, hi, xtol=1e-12)
        b = float(np.exp(log_b))
        return cls(b=b, H=mean / _mean01(b))

    # -- distribution functions ------------------------------------------------

    def cdf(self, x: float | np.ndarray) -> np.ndarray:
        """P(cost <= x)."""
        x = np.clip(np.asarray(x, dtype=float) / self.H, 0.0, 1.0)
        return np.log((x + self.b) / self.b) / np.log((1.0 + self.b) / self.b)

    def quantile(self, q: float | np.ndarray) -> np.ndarray:
        """Inverse CDF."""
        q = np.asarray(q, dtype=float)
        ratio = (1.0 + self.b) / self.b
        return self.H * (self.b * ratio**q - self.b)

    def mean(self) -> float:
        """Expected cost (the paper's M)."""
        return self.H * _mean01(self.b)

    def median(self) -> float:
        """Half-mass point (the paper's c)."""
        return self.H * _half_mass01(self.b)

    def conditional_mean_below(self, x: float) -> float:
        """E[cost | cost <= x] — the paper's m (e.g. m2 on [0, c2])."""
        if x <= 0:
            return 0.0
        x01 = min(x / self.H, 1.0)
        log_term = np.log((x01 + self.b) / self.b)
        if log_term <= 0:
            return 0.0
        mean01 = (x01 - self.b * log_term) / log_term
        return float(self.H * mean01)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Inverse-CDF sampling of plan costs."""
        return self.quantile(rng.random(size))


# -- the paper's expected-cost arithmetic -------------------------------------


def traditional_expected_cost(mean_1: float) -> float:
    """Static optimizer: run the lower-mean plan A1 to the end: cost M1."""
    return mean_1


def sequential_switch_expected_cost(m2: float, c2: float, mean_1: float) -> float:
    """Run A2 until its cost reaches c2, then switch to A1 if unfinished.

    "With 50% chances, A2 completes first, incurring an average cost m2.
    Otherwise, the combined cost of both plan runs has an average cost
    c2 + M1. ... an average cost (m2 + c2 + M1)/2, about twice smaller than
    the traditional M1."
    """
    return (m2 + c2 + mean_1) / 2.0


def simultaneous_expected_cost(
    plan_a: LShapedCost,
    plan_b: LShapedCost,
    speed_a: float = 1.0,
    speed_b: float = 1.0,
    switch_point: float | None = None,
    grid: int = 4096,
) -> float:
    """Expected cost of running both plans simultaneously at proportional
    speeds, abandoning plan B at combined progress ``switch_point`` (measured
    in plan-B work units) and finishing with plan A alone.

    Work alternates at ``speed_a : speed_b``; total incurred cost when plan
    A finishes at work ``t_a`` is ``t_a * (1 + speed_b/speed_a)`` while B is
    still running, etc. With ``switch_point = None`` the optimum over a grid
    of switch points is returned (numeric minimization, the paper's "switch
    to plan A1 at some optimal point").
    """
    if switch_point is not None:
        return _simultaneous_cost_at(plan_a, plan_b, speed_a, speed_b, switch_point, grid)
    candidates = np.linspace(0.0, plan_b.H, 64)
    costs = [
        _simultaneous_cost_at(plan_a, plan_b, speed_a, speed_b, float(w), grid)
        for w in candidates
    ]
    return float(min(costs))


def _simultaneous_cost_at(
    plan_a: LShapedCost,
    plan_b: LShapedCost,
    speed_a: float,
    speed_b: float,
    switch_b_work: float,
    grid: int,
) -> float:
    """Numeric expectation over independent quantile-grid samples.

    At time t, plan A has executed ``speed_a * t`` work and plan B
    ``speed_b * t``. The first finisher ends the race; if B reaches
    ``switch_b_work`` without finishing it is abandoned (sunk cost) and A
    runs on alone. Total cost is all work executed by both plans.
    """
    q = (np.arange(grid) + 0.5) / grid
    costs_a = plan_a.quantile(q)
    costs_b = plan_b.quantile(q)
    rng = np.random.default_rng(1234)
    rng.shuffle(costs_b)  # independent pairing of the two quantile grids
    t_a = costs_a / speed_a  # A's finish time
    t_b = costs_b / speed_b  # B's finish time
    t_s = switch_b_work / speed_b if speed_b > 0 else np.inf  # switch time
    a_first = (t_a <= t_b) & (t_a <= t_s)
    b_first = (t_b < t_a) & (t_b <= t_s)
    total = np.where(
        a_first,
        costs_a + speed_b * t_a,
        np.where(
            b_first,
            costs_b + speed_a * t_b,
            costs_a + switch_b_work,
        ),
    )
    return float(total.mean())

"""Two-stage competition (Section 3, applied in Section 6's Jscan).

A plan splits into a cheap first stage and an expensive second stage whose
cost becomes reliably estimable *during* the first stage. The controller
steps the first stage, recomputes the projection, and abandons when the
projection approaches the guaranteed best — "we terminate the scan a bit
before the costs are equalized".

Two criteria combine (both from Section 6):

* projection criterion: ``projected_second_stage >= threshold * guaranteed``
* direct criterion: ``first_stage_cost >= limit_fraction * guaranteed`` —
  protects against first stages that are themselves expensive relative to a
  small guaranteed best.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.competition.process import Process


class SwitchDecision(enum.Enum):
    """What the criterion says to do after a step."""

    CONTINUE = "continue"
    ABANDON_PROJECTED = "abandon-projected"   # projection approached guaranteed best
    ABANDON_SCAN_COST = "abandon-scan-cost"   # the stage itself got too expensive


@dataclass(frozen=True)
class SwitchCriterion:
    """The Section 6 strategy-switch criterion, reusable outside Jscan."""

    threshold: float = 0.95
    scan_cost_limit_fraction: float = 0.5

    def evaluate(
        self,
        projected_second_stage: float | None,
        first_stage_cost: float,
        guaranteed_best: float,
    ) -> SwitchDecision:
        """Decide whether to continue the first stage."""
        if guaranteed_best <= 0:
            return SwitchDecision.ABANDON_PROJECTED
        if (
            projected_second_stage is not None
            and projected_second_stage >= self.threshold * guaranteed_best
        ):
            return SwitchDecision.ABANDON_PROJECTED
        if first_stage_cost >= self.scan_cost_limit_fraction * guaranteed_best:
            return SwitchDecision.ABANDON_SCAN_COST
        return SwitchDecision.CONTINUE

    def with_confidence(self, confidence: float | None) -> "SwitchCriterion":
        """A copy whose thresholds are tightened by estimate confidence.

        When the estimates behind the projections are demonstrably
        trustworthy (confidence near 1), hesitating costs more than it
        protects: laggards can be abandoned up to 20% earlier. ``None``
        or non-positive confidence returns ``self`` unchanged — the gate
        is inert wherever no estimator is attached.
        """
        if confidence is None or confidence <= 0.0:
            return self
        scale = 1.0 - 0.2 * min(1.0, confidence)
        return SwitchCriterion(
            threshold=self.threshold * scale,
            scan_cost_limit_fraction=self.scan_cost_limit_fraction * scale,
        )


@dataclass
class TwoStageOutcome:
    """Result of one two-stage competition run."""

    #: True when the first stage completed (its result should be committed)
    committed: bool
    #: the decision that ended the run
    decision: SwitchDecision
    #: cost sunk into the (possibly abandoned) first stage
    first_stage_cost: float
    #: last projection computed before the run ended
    last_projection: float | None


class TwoStageCompetition:
    """Drives one first-stage process under a :class:`SwitchCriterion`.

    ``projector`` maps the live process to the current projected
    second-stage cost (or None while no reliable projection exists);
    ``guaranteed_best`` supplies the cost the projection competes against
    and may change between steps — the dynamic readjustment that the
    statically-thresholded Jscan of [MoHa90] lacks.
    """

    def __init__(
        self,
        first_stage: Process,
        projector: Callable[[Process], float | None],
        guaranteed_best: Callable[[], float],
        criterion: SwitchCriterion = SwitchCriterion(),
    ) -> None:
        self.first_stage = first_stage
        self.projector = projector
        self.guaranteed_best = guaranteed_best
        self.criterion = criterion

    def run(self) -> TwoStageOutcome:
        """Step the first stage to completion or abandonment."""
        projection: float | None = None
        while self.first_stage.active:
            finished = self.first_stage.step()
            if finished:
                return TwoStageOutcome(
                    committed=True,
                    decision=SwitchDecision.CONTINUE,
                    first_stage_cost=self.first_stage.meter.total,
                    last_projection=projection,
                )
            projection = self.projector(self.first_stage)
            decision = self.criterion.evaluate(
                projection, self.first_stage.meter.total, self.guaranteed_best()
            )
            if decision is not SwitchDecision.CONTINUE:
                self.first_stage.abandon()
                return TwoStageOutcome(
                    committed=False,
                    decision=decision,
                    first_stage_cost=self.first_stage.meter.total,
                    last_projection=projection,
                )
        return TwoStageOutcome(
            committed=self.first_stage.finished,
            decision=SwitchDecision.CONTINUE,
            first_stage_cost=self.first_stage.meter.total,
            last_projection=projection,
        )

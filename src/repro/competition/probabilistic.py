"""A probabilistic switch criterion for two-stage competition.

Section 3: "At each point of A' we compare A1 and fresh A'' cost
distributions, and switch to A1 or continue based on some probabilistic
cost model" (the model itself lives in [Ant91B], which only the report
readers saw). This module supplies a concrete such model, decision-theoretic
rather than threshold-based:

The scan has examined ``scanned`` entries of an estimated ``total`` and
kept ``kept`` of them (survivors of the running filter). The keep rate
``p`` is uncertain; with a uniform prior it has a Beta(kept+1,
scanned-kept+1) posterior. The final RID-list size is ``p * total``, so the
final fetch cost ``F`` inherits a posterior through Yao's formula. Let
``G`` be the guaranteed best cost and ``R`` the expected remaining scan
investment. Abandoning now costs ``G``; continuing costs
``R + E[min(F, G)]`` (after completing the list we still get to pick the
cheaper of the list retrieval and the guaranteed best). Therefore:

    continue  iff  E[max(0, G - F)] > R

— keep scanning exactly while the expected savings of finishing exceed the
expected cost of finishing. Early in the scan the posterior is wide, the
savings expectation is large, and the scan survives noise; as evidence
accumulates the rule converges to the deterministic comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.competition.two_stage import SwitchDecision
from repro.storage.rid import yao_pages_touched

#: grid resolution for posterior integration
_GRID = 64


@dataclass(frozen=True)
class ScanEvidence:
    """What has been observed about one index scan so far."""

    scanned: int
    kept: int
    #: estimated total entries in the scanned range
    estimated_total: float
    #: scan cost paid so far (I/O units)
    scan_cost: float


@dataclass(frozen=True)
class BayesianSwitchCriterion:
    """Decision-theoretic scan-abandonment rule."""

    #: heap geometry for Yao's formula
    heap_pages: int
    rows_per_page: int
    #: direct criterion: never let the scan itself exceed this fraction of
    #: the guaranteed best (the paper keeps this guard in all variants)
    scan_cost_limit_fraction: float = 0.5
    #: evaluate only after this fraction of the range has been scanned
    min_fraction: float = 0.02

    def expected_savings(self, evidence: ScanEvidence, guaranteed: float) -> float:
        """E[max(0, G - F)] under the Beta posterior on the keep rate."""
        posterior = stats.beta(evidence.kept + 1, evidence.scanned - evidence.kept + 1)
        grid = (np.arange(_GRID) + 0.5) / _GRID
        keep_rates = posterior.ppf(grid)
        total = max(evidence.estimated_total, float(evidence.scanned))
        savings = 0.0
        for rate in keep_rates:
            final_size = rate * total
            fetch_cost = yao_pages_touched(
                self.heap_pages, self.rows_per_page, int(final_size)
            )
            savings += max(0.0, guaranteed - fetch_cost)
        return savings / _GRID

    def remaining_investment(self, evidence: ScanEvidence) -> float:
        """Expected cost of scanning the rest of the range."""
        if evidence.scanned == 0:
            return 0.0
        per_entry = evidence.scan_cost / evidence.scanned
        remaining_entries = max(0.0, evidence.estimated_total - evidence.scanned)
        return per_entry * remaining_entries

    def evaluate(self, evidence: ScanEvidence, guaranteed: float) -> SwitchDecision:
        """Continue, or abandon for the guaranteed best."""
        if guaranteed <= 0:
            return SwitchDecision.ABANDON_PROJECTED
        if evidence.scan_cost >= self.scan_cost_limit_fraction * guaranteed:
            return SwitchDecision.ABANDON_SCAN_COST
        if evidence.scanned == 0 or evidence.estimated_total <= 0:
            return SwitchDecision.CONTINUE
        fraction = evidence.scanned / max(evidence.estimated_total, evidence.scanned)
        if fraction < self.min_fraction:
            return SwitchDecision.CONTINUE
        savings = self.expected_savings(evidence, guaranteed)
        if savings > self.remaining_investment(evidence):
            return SwitchDecision.CONTINUE
        return SwitchDecision.ABANDON_PROJECTED

"""Direct competition between alternative plans (Section 3).

Two arrangements from the paper:

* :class:`TrialThenSwitch` — "run A2 till the cost reaches c2 and then
  switch to A1": the sequential arrangement whose expected cost is
  ``(m2 + c2 + M1) / 2``.
* :class:`DirectCompetition` — "run both plans simultaneously with some
  proportional speeds, and switch to plan A1 at some optimal point": the
  simultaneous arrangement, better still when both L-shapes are truncated
  hyperbolas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.competition.process import Process
from repro.competition.scheduler import ProportionalScheduler
from repro.errors import CompetitionError


@dataclass
class CompetitionOutcome:
    """Result of one competition run."""

    #: the process that completed the goal
    winner: Process
    #: total cost charged across all participants (winner + sunk losers)
    total_cost: float
    #: processes abandoned along the way
    abandoned: tuple[Process, ...]


class TrialThenSwitch:
    """Run the trial plan up to a cost budget; switch to the safe plan.

    The budget is the paper's ``c2`` — the right edge of the trial plan's
    high-probability low-cost region.
    """

    def __init__(self, trial: Process, safe: Process, trial_budget: float) -> None:
        if trial_budget < 0:
            raise CompetitionError("trial budget must be >= 0")
        self.trial = trial
        self.safe = safe
        self.trial_budget = trial_budget

    def run(self, max_steps: int = 10_000_000) -> CompetitionOutcome:
        """Execute the arrangement to completion."""
        steps = 0
        while self.trial.active and self.trial.meter.total < self.trial_budget:
            if self.trial.step():
                return CompetitionOutcome(
                    winner=self.trial,
                    total_cost=self.trial.meter.total,
                    abandoned=(),
                )
            steps += 1
            if steps > max_steps:
                raise CompetitionError("trial run exceeded max_steps")
        self.trial.abandon()
        while self.safe.active:
            if self.safe.step():
                break
            steps += 1
            if steps > max_steps:
                raise CompetitionError("safe run exceeded max_steps")
        return CompetitionOutcome(
            winner=self.safe,
            total_cost=self.trial.meter.total + self.safe.meter.total,
            abandoned=(self.trial,),
        )


class DirectCompetition:
    """Simultaneous proportional run; first finisher wins.

    Optionally a ``switch_budget`` bounds the total cost the *challenger*
    processes may accumulate before being abandoned in favour of the safe
    plan (the paper's "switch to plan A1 at some optimal point").
    """

    def __init__(
        self,
        safe: Process,
        challengers: list[Process],
        safe_speed: float = 1.0,
        challenger_speed: float = 1.0,
        switch_budget: float | None = None,
    ) -> None:
        if not challengers:
            raise CompetitionError("direct competition needs challengers")
        self.safe = safe
        self.challengers = challengers
        self.scheduler = ProportionalScheduler(
            [safe, *challengers],
            [safe_speed] + [challenger_speed] * len(challengers),
        )
        self.switch_budget = switch_budget

    def _challenger_cost(self) -> float:
        return sum(process.meter.total for process in self.challengers)

    def _over_budget(self) -> bool:
        return (
            self.switch_budget is not None
            and any(process.active for process in self.challengers)
            and self._challenger_cost() >= self.switch_budget
        )

    def run(self) -> CompetitionOutcome:
        """Race to the first finisher (or to the challenger switch budget)."""
        while True:
            winner = self.scheduler.run(until=self._over_budget, stop_on_first_finish=True)
            if winner is not None:
                abandoned = tuple(
                    process
                    for process in [self.safe, *self.challengers]
                    if process is not winner and not process.finished
                )
                for process in abandoned:
                    process.abandon()
                return CompetitionOutcome(
                    winner=winner,
                    total_cost=self.scheduler.total_cost(),
                    abandoned=abandoned,
                )
            if self._over_budget():
                for challenger in self.challengers:
                    if challenger.active:
                        challenger.abandon()
                continue
            if not self.safe.active:
                raise CompetitionError("all processes ended without a winner")

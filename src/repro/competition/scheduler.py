"""Proportional-speed scheduling of simultaneous processes.

[Ant91B] (cited in Section 7): "the speed of Fscan/Jscan advancement should
be proportional or equal for optimal competition performance". The scheduler
implements weighted fair queuing over process cost: at every turn it steps
the active process with the smallest virtual time ``cost / weight``, so in
the long run charged costs stay in the requested proportions regardless of
how much real work a single step performs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.competition.process import Process
from repro.errors import CompetitionError


class ProportionalScheduler:
    """Interleaves ``step()`` calls across processes at given speed weights."""

    def __init__(self, processes: Sequence[Process], weights: Sequence[float] | None = None):
        if not processes:
            raise CompetitionError("scheduler needs at least one process")
        if weights is None:
            weights = [1.0] * len(processes)
        if len(weights) != len(processes):
            raise CompetitionError("weights must match processes")
        if any(w <= 0 for w in weights):
            raise CompetitionError("weights must be positive")
        self.processes = list(processes)
        self.weights = list(weights)
        #: deterministic tiebreak counter
        self._turns = 0

    def _virtual_time(self, index: int) -> float:
        return self.processes[index].meter.total / self.weights[index]

    def next_process(self) -> Process | None:
        """The active process that should step next (None when none left)."""
        best_index: int | None = None
        best_vt = 0.0
        for index, process in enumerate(self.processes):
            if not process.active:
                continue
            vt = self._virtual_time(index)
            if best_index is None or vt < best_vt:
                best_index, best_vt = index, vt
        if best_index is None:
            return None
        return self.processes[best_index]

    def run(
        self,
        until: Callable[[], bool] | None = None,
        stop_on_first_finish: bool = True,
        max_steps: int = 10_000_000,
    ) -> Process | None:
        """Step processes in proportion until a stop condition.

        Stops when: a process finishes (if ``stop_on_first_finish``), the
        ``until`` predicate turns true (checked between steps), or no active
        processes remain. Returns the finished process if one finished,
        else None.
        """
        for _ in range(max_steps):
            if until is not None and until():
                return None
            process = self.next_process()
            if process is None:
                return None
            finished = process.step()
            self._turns += 1
            if finished and stop_on_first_finish:
                return process
        raise CompetitionError("scheduler exceeded max_steps — runaway process?")

    def total_cost(self) -> float:
        """Sum of all processes' charged costs (the competition's total bill)."""
        return sum(process.meter.total for process in self.processes)

"""The step-wise process protocol.

Every retrieval strategy (Tscan, Sscan, Fscan, Jscan's per-index scans, the
final stage) is a :class:`Process`: a resumable unit of work advanced one
small step at a time. Stepping is what makes "running several local plans
simultaneously with proportional speed" (Section 2) executable: a scheduler
interleaves ``step()`` calls in the requested proportions, and controllers
can abandon a process between any two steps.
"""

from __future__ import annotations

import abc
from typing import Generator, TypeVar

from repro.storage.buffer_pool import CostMeter

_R = TypeVar("_R")


def drain(gen: Generator[object, None, _R]) -> _R:
    """Run a step generator to completion and return its result.

    The engine's retrieval path is written as generators that yield control
    after every :meth:`Process.step` so a server-level scheduler can
    interleave many retrievals over one buffer pool. Synchronous callers
    (``Table.select``, ``Database.execute``) drain the generator in place.
    """
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


def advance(process: "Process", quantum: int = 1) -> Generator[None, None, None]:
    """Run ``process`` to completion, yielding control between quanta.

    With ``quantum=1`` this is exact row-at-a-time stepping (one yield per
    :meth:`Process.step`). Larger quanta run up to ``quantum`` steps in one
    tight :meth:`Process.run_batch` call between yields — same work, same
    cost accounting, ~``quantum``× fewer generator suspensions.
    """
    if quantum <= 1:
        while process.active:
            done = process.step()
            yield
            if done:
                return
    else:
        while process.active:
            _, done = process.run_batch(quantum)
            yield
            if done:
                return


class Process(abc.ABC):
    """A resumable, abandonable unit of work with attributed costs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.meter = CostMeter(name=name)
        self.finished = False
        self.abandoned = False
        #: engine steps this process has executed (span instrumentation)
        self.steps_taken = 0
        #: timeline span opened by trace-carrying subclasses; closed here
        #: on completion/abandonment with steps and cost-meter totals
        self.span = None

    @property
    def active(self) -> bool:
        """Still runnable: neither finished nor abandoned."""
        return not (self.finished or self.abandoned)

    def step(self) -> bool:
        """Perform one unit of work; returns True when the process completed
        *on this step*. Calling ``step`` on an inactive process is an error
        in the caller."""
        if not self.active:
            raise RuntimeError(f"step() on inactive process {self.name!r}")
        done = self._do_step()
        self.steps_taken += 1
        if done:
            self.finished = True
            self._close_span()
        return done

    def run_batch(self, max_steps: int) -> tuple[int, bool]:
        """Perform up to ``max_steps`` units of work in one call.

        Returns ``(steps_taken, done)``. Equivalent to calling :meth:`step`
        ``steps_taken`` times — identical cost accounting and identical
        completion point — but without per-step dispatch overhead, and
        subclasses may override :meth:`_do_batch` to use bulk storage
        operations (page-run reads, RID-list prefetch) internally.
        """
        if not self.active:
            raise RuntimeError(f"run_batch() on inactive process {self.name!r}")
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        steps, done = self._do_batch(max_steps)
        self.steps_taken += steps
        if done:
            self.finished = True
            self._close_span()
        return steps, done

    @abc.abstractmethod
    def _do_step(self) -> bool:
        """Advance one unit; return True when complete."""

    def _do_batch(self, max_steps: int) -> tuple[int, bool]:
        """Advance up to ``max_steps`` units; return ``(steps_taken, done)``.

        The default implementation loops :meth:`_do_step`, so every process
        is batchable; storage-aware subclasses override this to fetch page
        runs in one buffer-pool call.
        """
        steps = 0
        while steps < max_steps:
            steps += 1
            if self._do_step():
                return steps, True
        return steps, False

    def abandon(self) -> None:
        """Terminate the process, keeping its meter as sunk cost."""
        if self.finished:
            return
        self.abandoned = True
        self._on_abandon()
        self._close_span(abandoned=True)

    def _on_abandon(self) -> None:
        """Hook for subclasses to release resources (buffers, temp tables)."""

    def _close_span(self, **attrs) -> None:
        """Finish the process's timeline span with its final accounting."""
        if self.span is not None:
            self.span.finish(
                steps=self.steps_taken,
                cost=round(self.meter.total, 3),
                io=self.meter.io_total,
                **attrs,
            )
            self.span = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "abandoned" if self.abandoned else "active"
        return f"<{type(self).__name__} {self.name!r} {state} cost={self.meter.total:.2f}>"


class SyntheticProcess(Process):
    """A process that completes after a predetermined amount of work.

    Each step executes ``step_cost`` units. Used by the Section 3 benchmarks
    to race plans whose total costs are drawn from L-shaped distributions,
    without involving the storage engine.
    """

    def __init__(self, name: str, total_cost: float, step_cost: float = 1.0) -> None:
        super().__init__(name)
        if total_cost < 0:
            raise ValueError("total_cost must be >= 0")
        self.total_cost = total_cost
        self.step_cost = step_cost

    def _do_step(self) -> bool:
        remaining = self.total_cost - self.meter.cpu
        work = min(self.step_cost, remaining)
        self.meter.charge_cpu(work)
        return self.meter.cpu >= self.total_cost - 1e-12

"""Competition framework (Section 3 of the paper).

Cost distributions of alternative plans are L-shaped; competition exploits
that by exhausting the high-probability low-cost regions of several plans
before committing to any single one. This package provides:

* :mod:`repro.competition.model` — analytic L-shaped cost distributions and
  the paper's expected-cost arithmetic for traditional choice, sequential
  try-then-switch, and simultaneous proportional runs;
* :mod:`repro.competition.process` — the step-wise ``Process`` protocol all
  competing strategies implement, plus synthetic processes for experiments;
* :mod:`repro.competition.scheduler` — proportional-speed fair scheduling of
  simultaneous processes;
* :mod:`repro.competition.direct` — direct competition (first finisher wins);
* :mod:`repro.competition.two_stage` — two-stage competition: a cheap stage
  continuously re-estimates an expensive stage and is abandoned when the
  projection approaches the guaranteed best.
"""

from repro.competition.direct import DirectCompetition, TrialThenSwitch
from repro.competition.model import (
    LShapedCost,
    sequential_switch_expected_cost,
    simultaneous_expected_cost,
    traditional_expected_cost,
)
from repro.competition.process import Process, SyntheticProcess
from repro.competition.scheduler import ProportionalScheduler
from repro.competition.two_stage import SwitchCriterion, TwoStageCompetition

__all__ = [
    "DirectCompetition",
    "TrialThenSwitch",
    "LShapedCost",
    "sequential_switch_expected_cost",
    "simultaneous_expected_cost",
    "traditional_expected_cost",
    "Process",
    "SyntheticProcess",
    "ProportionalScheduler",
    "SwitchCriterion",
    "TwoStageCompetition",
]

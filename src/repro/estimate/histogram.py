"""Self-tuning equi-depth histograms refined from scan feedback.

A classic static histogram is built by a one-shot ANALYZE pass and decays
as data drifts. This one is built *only* from observed scan results (the
"Novel Selectivity Estimation Strategy" feedback idea): every completed
range scan reports (lo, hi, actual rows) and the histogram carves its
bucket boundaries to match, splitting the bucket that produced the worst
q-error and merging cold neighbors to stay within a bounded bucket budget.

Keys are the first component of an index key (any totally ordered Python
value — int, float, str). Mixed-type domains that raise ``TypeError`` on
comparison simply skip the observation: the histogram is an accelerator,
never a correctness dependency.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Bucket", "SelfTuningHistogram"]


class Bucket:
    """One half-open key span ``[lo, hi)`` with an observed row count.

    ``lo=None`` / ``hi=None`` are the -inf / +inf sentinels. ``heat``
    counts how often scans touched the bucket — the merge policy folds the
    coldest adjacent pair when the budget is exceeded.
    """

    __slots__ = ("lo", "hi", "rows", "heat")

    def __init__(self, lo: Any, hi: Any, rows: float = 0.0, heat: int = 0) -> None:
        self.lo = lo
        self.hi = hi
        self.rows = rows
        self.heat = heat

    def contains(self, key: Any) -> bool:
        if self.lo is not None and key < self.lo:
            return False
        if self.hi is not None and key >= self.hi:
            return False
        return True

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"[{lo},{hi}):{self.rows:.0f}"


def _fraction(b_lo: Any, b_hi: Any, lo: Any, hi: Any) -> float:
    """Fraction of bucket [b_lo, b_hi) overlapped by query range [lo, hi].

    Linear interpolation when all four bounds are numeric; otherwise a
    coarse containment rule (full / half / none) that never divides by a
    key difference.
    """
    # clip the query range to the bucket
    c_lo = b_lo if lo is None else (lo if b_lo is None else max(lo, b_lo))
    c_hi = b_hi if hi is None else (hi if b_hi is None else min(hi, b_hi))
    if c_lo is not None and c_hi is not None and c_lo >= c_hi:
        # a range touching the bucket at a single boundary point overlaps
        # nothing of it (buckets are half-open); equality probes never
        # reach here — they take the containment path in ``estimate`` and
        # ``_observe_point``
        return 0.0
    if c_lo == b_lo and c_hi == b_hi:
        return 1.0
    numeric = all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in (b_lo, b_hi, c_lo, c_hi)
    )
    if numeric and b_hi > b_lo:
        return max(0.0, min(1.0, (c_hi - c_lo) / (b_hi - b_lo)))
    # unbounded or non-numeric: partial overlap counts half
    return 0.5


class SelfTuningHistogram:
    """A bounded list of ordered buckets refined by observation."""

    def __init__(self, budget: int = 32) -> None:
        self.budget = max(2, budget)
        # one unbounded bucket with no evidence: estimate() returns None
        # until the first observation teaches us anything
        self.buckets: list[Bucket] = [Bucket(None, None)]
        self.observations = 0
        self.splits = 0
        self.merges = 0

    # -- estimation ------------------------------------------------------------

    def estimate(self, lo: Any, hi: Any) -> float | None:
        """Estimated rows in [lo, hi], or None with no evidence yet."""
        if self.observations == 0:
            return None
        total = 0.0
        try:
            if lo is not None and hi is not None and lo == hi:
                # equality probe: the containing bucket's belief. A bucket
                # refined by point observations carries the per-key count
                # directly; an untouched one only supports a uniform guess.
                for bucket in self.buckets:
                    if bucket.contains(lo):
                        return bucket.rows if bucket.heat else bucket.rows * 0.5
                return 0.0
            for bucket in self.buckets:
                if lo is not None and bucket.hi is not None and bucket.hi <= lo:
                    continue
                if hi is not None and bucket.lo is not None and bucket.lo > hi:
                    break
                total += bucket.rows * _fraction(bucket.lo, bucket.hi, lo, hi)
        except TypeError:
            # mixed-type keys: no usable estimate
            return None
        return total

    # -- refinement ------------------------------------------------------------

    def observe(self, lo: Any, hi: Any, actual: float) -> None:
        """Refine from one completed scan of [lo, hi] that saw ``actual`` rows.

        The observed span is carved out as its own bucket (splitting the
        buckets containing its endpoints — the ones whose uniform
        assumption just produced the error) and assigned the true count;
        surrounding spans keep their proportional share. Then the coldest
        adjacent pair is merged until the budget holds.
        """
        try:
            if lo is not None and hi is not None and lo == hi:
                self._observe_point(lo, float(max(actual, 0)))
            else:
                self._carve(lo, hi, float(max(actual, 0)))
        except TypeError:
            return
        self.observations += 1
        while len(self.buckets) > self.budget:
            self._merge_coldest()

    def _observe_point(self, key: Any, actual: float) -> None:
        """Equality probe: a zero-width range cannot be carved (a ``[k, k)``
        bucket is degenerate), so blend the containing bucket's belief
        toward the observation instead. All-duplicate-key domains live
        entirely on this path."""
        for bucket in self.buckets:
            if bucket.contains(key):
                bucket.rows = max(bucket.rows, actual) if bucket.heat == 0 else (
                    0.5 * bucket.rows + 0.5 * actual
                )
                bucket.heat += 1
                return

    def _carve(self, lo: Any, hi: Any, actual: float) -> None:
        new: list[Bucket] = []
        carved = Bucket(lo, hi, rows=actual, heat=1)
        placed = False
        for bucket in self.buckets:
            overlap = _fraction(bucket.lo, bucket.hi, lo, hi)
            if overlap <= 0.0:
                new.append(bucket)
                continue
            # split off the pieces of this bucket outside the observed span
            outside = bucket.rows * (1.0 - overlap)
            left_span = (
                lo is not None
                and (bucket.lo is None or bucket.lo < lo)
            )
            right_span = (
                hi is not None
                and (bucket.hi is None or bucket.hi > hi)
            )
            halves = (1 if left_span else 0) + (1 if right_span else 0)
            share = outside / halves if halves else 0.0
            if left_span:
                new.append(Bucket(bucket.lo, lo, rows=share, heat=bucket.heat))
            if not placed:
                new.append(carved)
                placed = True
            if right_span:
                start = hi
                new.append(Bucket(start, bucket.hi, rows=share, heat=bucket.heat))
        if not placed:
            # observed range fell outside every bucket (shouldn't happen
            # with the unbounded sentinels, but stay safe)
            new.append(carved)
        # drop zero-width buckets produced by carving at an existing edge
        pruned = [
            bucket
            for bucket in new
            if bucket.lo is None or bucket.hi is None or bucket.lo < bucket.hi
        ]
        if len(pruned) > len(self.buckets):
            self.splits += len(pruned) - len(self.buckets)
        self.buckets = pruned if pruned else [carved]

    def _merge_coldest(self) -> None:
        """Fold the adjacent pair with the least combined heat."""
        if len(self.buckets) < 2:
            return
        best, best_heat = 0, None
        for i in range(len(self.buckets) - 1):
            heat = self.buckets[i].heat + self.buckets[i + 1].heat
            if best_heat is None or heat < best_heat:
                best, best_heat = i, heat
        a, b = self.buckets[best], self.buckets[best + 1]
        merged = Bucket(a.lo, b.hi, rows=a.rows + b.rows, heat=max(a.heat, b.heat))
        self.buckets[best : best + 2] = [merged]
        self.merges += 1

    def copy(self) -> "SelfTuningHistogram":
        """Deep copy for handing to worker threads (scatter fetches read
        a frozen snapshot while the live histogram keeps refining)."""
        clone = SelfTuningHistogram(budget=self.budget)
        clone.buckets = [
            Bucket(bucket.lo, bucket.hi, rows=bucket.rows, heat=bucket.heat)
            for bucket in self.buckets
        ]
        clone.observations = self.observations
        clone.splits = self.splits
        clone.merges = self.merges
        return clone

    # -- reporting -------------------------------------------------------------

    def describe(self) -> str:
        spans = " ".join(bucket.describe() for bucket in self.buckets[:8])
        more = f" (+{len(self.buckets) - 8} more)" if len(self.buckets) > 8 else ""
        return (
            f"{len(self.buckets)}/{self.budget} buckets, "
            f"{self.observations} observations, {self.splits} splits, "
            f"{self.merges} merges: {spans}{more}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": len(self.buckets),
            "budget": self.budget,
            "observations": self.observations,
            "splits": self.splits,
            "merges": self.merges,
        }

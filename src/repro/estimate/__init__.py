"""Estimation quality: q-error tracking, self-tuning histograms, and the
variance-gated competition confidence score."""

from repro.estimate.histogram import Bucket, SelfTuningHistogram
from repro.estimate.qerror import (
    ConfidenceVerdict,
    Estimator,
    SignatureStats,
    q_error,
)

__all__ = [
    "Bucket",
    "SelfTuningHistogram",
    "ConfidenceVerdict",
    "Estimator",
    "SignatureStats",
    "q_error",
]

"""Q-error tracking and estimate-confidence scoring.

The competition model of the paper pays a pilot race on every retrieval
because descent estimates (Section 5) are untrusted. This module measures
how untrusted they actually are: every retired retrieval records the
q-error ``max(est/actual, actual/est)`` of its *effective* (feedback-
corrected) estimate, keyed by (table, index, predicate signature). Once a
signature's q-errors are consistently near 1 — high observation count,
mean log-q near zero, low variance — the estimate is demonstrably
trustworthy and the engine may skip the race entirely (the variance gate
of "Least Expected Cost Query Optimization": weigh plan choice by
estimate *uncertainty*, not just estimate value).

Hot-path discipline: :meth:`Estimator.record` appends a preallocated-ring
tuple and returns — no dict construction, no signature hashing, no float
math. Signatures, q-errors, and histogram refinement are all deferred to
:meth:`Estimator._drain`, which runs when a consumer (the confidence gate,
the shell, metrics export) actually looks, or when the ring fills.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

from repro.cache.feedback import predicate_signature
from repro.estimate.histogram import SelfTuningHistogram
from repro.obs.hist import LogHistogram

__all__ = [
    "q_error",
    "SignatureStats",
    "ConfidenceVerdict",
    "Estimator",
]


def q_error(estimated: float, actual: float) -> float:
    """The symmetric relative estimation error, floored at 1.0.

    ``q = max(est/actual, actual/est)`` with both sides floored at one
    row, so a perfect estimate scores 1.0 and an estimate off by 10x in
    either direction scores 10.0.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


class SignatureStats:
    """Running q-error statistics for one (table, index, signature).

    Tracks an EWMA mean/variance of ``ln q`` rather than Welford totals:
    a regime change (data drift, stale correction) *decays* confidence
    instead of being averaged away by a long accurate history.
    """

    __slots__ = ("count", "mean_log_q", "var_log_q", "max_q", "hist")

    def __init__(self) -> None:
        self.count = 0
        #: EWMA of ln(q) — 0.0 means perfect estimates
        self.mean_log_q = 0.0
        #: EWMA variance of ln(q) — instability of the error
        self.var_log_q = 0.0
        self.max_q = 1.0
        self.hist = LogHistogram("qerror")

    def observe(self, q: float, alpha: float) -> None:
        log_q = math.log(q)
        if self.count == 0:
            self.mean_log_q = log_q
            self.var_log_q = 0.0
        else:
            delta = log_q - self.mean_log_q
            self.mean_log_q += alpha * delta
            self.var_log_q = (1.0 - alpha) * (self.var_log_q + alpha * delta * delta)
        self.count += 1
        if q > self.max_q:
            self.max_q = q
        self.hist.record(q)

    @property
    def p95(self) -> float:
        return self.hist.p95

    def confidence(self, min_observations: int) -> float:
        """Score in [0, 1]: how much to trust this signature's estimates.

        Three multiplicative factors — evidence (observation count against
        the configured minimum), accuracy (mean log-q near zero), and
        stability (low log-q variance). A cold signature scores near 0; a
        signature whose corrected estimates repeatedly land within a few
        percent of the truth approaches 1.
        """
        evidence = min(1.0, self.count / max(1, min_observations))
        return evidence * math.exp(-(self.mean_log_q + self.var_log_q))

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_log_q": round(self.mean_log_q, 4),
            "var_log_q": round(self.var_log_q, 4),
            "max_q": round(self.max_q, 3),
            "p95_q": round(self.p95, 3),
        }


@dataclass(frozen=True)
class ConfidenceVerdict:
    """One gate consultation: the score, its inputs, and the decision."""

    trust: bool
    score: float
    count: int
    mean_log_q: float
    var_log_q: float
    threshold: float

    def inputs(self) -> dict[str, Any]:
        """Audit payload — the confidence inputs the decision was made on."""
        return {
            "confidence": round(self.score, 4),
            "observations": self.count,
            "mean_log_q": round(self.mean_log_q, 4),
            "var_log_q": round(self.var_log_q, 4),
            "threshold": self.threshold,
        }


#: cold-signature verdict: never trust, zero evidence
_COLD = ConfidenceVerdict(
    trust=False, score=0.0, count=0, mean_log_q=0.0, var_log_q=0.0, threshold=1.0
)


class Estimator:
    """The estimation-quality subsystem for one database.

    Owns per-(table, index, predicate-signature) :class:`SignatureStats`
    under LRU discipline, one :class:`SelfTuningHistogram` per
    (table, index) refined from observed scan feedback, and the
    ring-buffered capture path that keeps retirement-time recording off
    the hot path.
    """

    def __init__(
        self,
        capacity: int = 1024,
        histogram_budget: int = 32,
        alpha: float = 0.5,
        enabled: bool = True,
        min_observations: int = 4,
        confidence_threshold: float = 0.75,
        ring_size: int = 256,
    ) -> None:
        self.capacity = max(1, capacity)
        self.histogram_budget = histogram_budget
        self.alpha = alpha
        self.enabled = enabled
        self.min_observations = max(1, min_observations)
        self.confidence_threshold = confidence_threshold
        self._stats: OrderedDict[tuple[str, str, str], SignatureStats] = OrderedDict()
        self._histograms: dict[tuple[str, str], SelfTuningHistogram] = {}
        #: cumulative q-error distribution across every signature — the
        #: continuous monitor diffs its buckets between samples to get
        #: per-interval median/p95 q-error without draining ``_recent``
        #: (which benchmarks own) and regardless of ``audit_enabled``
        self.qerror_hist = LogHistogram("estimate_qerror")
        # preallocated ring: record() writes tuples, _drain() materializes
        self._ring: list[tuple | None] = [None] * max(1, ring_size)
        self._ring_len = 0
        #: q-errors since the last :meth:`take_recent` (bounded)
        self._recent: list[float] = []
        self.observations = 0
        self.evictions = 0
        #: gate consultations that decided to skip a competition
        self.trusted = 0
        #: gate consultations that fell back to competing
        self.competed = 0

    # -- hot path ------------------------------------------------------------

    def record(
        self,
        table: str,
        index: str,
        restriction: Any,
        estimated: float,
        actual: int,
        lo: Any = None,
        hi: Any = None,
    ) -> None:
        """Capture one estimated-vs-actual pair (deferred materialization).

        ``restriction`` may be an expression (signature computed at drain
        time) or an already-computed signature string (join edges).
        ``lo``/``hi`` optionally carry the scanned key range so the
        per-index self-tuning histogram can refine itself.
        """
        if not self.enabled:
            return
        n = self._ring_len
        if n == len(self._ring):
            self._drain()
            n = 0
        self._ring[n] = (table, index, restriction, estimated, actual, lo, hi)
        self._ring_len = n + 1

    # -- deferred materialization ---------------------------------------------

    def _drain(self) -> None:
        ring = self._ring
        for position in range(self._ring_len):
            entry = ring[position]
            ring[position] = None
            assert entry is not None
            table, index, restriction, estimated, actual, lo, hi = entry
            signature = (
                restriction
                if isinstance(restriction, str)
                else predicate_signature(restriction)
            )
            self._observe(table, index, signature, estimated, actual)
            if lo is not None or hi is not None:
                self._histogram(table, index).observe(lo, hi, actual)
        self._ring_len = 0

    def _observe(
        self, table: str, index: str, signature: str, estimated: float, actual: int
    ) -> None:
        key = (table, index, signature)
        stats = self._stats.get(key)
        if stats is None:
            while len(self._stats) >= self.capacity:
                self._stats.popitem(last=False)
                self.evictions += 1
            stats = SignatureStats()
            self._stats[key] = stats
        else:
            self._stats.move_to_end(key)
        q = q_error(estimated, actual)
        stats.observe(q, self.alpha)
        self.qerror_hist.record(q)
        if len(self._recent) < 4096:
            self._recent.append(q)
        self.observations += 1

    def _histogram(self, table: str, index: str) -> SelfTuningHistogram:
        hist = self._histograms.get((table, index))
        if hist is None:
            hist = SelfTuningHistogram(budget=self.histogram_budget)
            self._histograms[(table, index)] = hist
        return hist

    # -- consumers ------------------------------------------------------------

    def stats_for(self, table: str, index: str, restriction: Any) -> SignatureStats | None:
        """The stats entry for one signature, draining pending records first."""
        if not self.enabled:
            return None
        if self._ring_len:
            self._drain()
        signature = (
            restriction
            if isinstance(restriction, str)
            else predicate_signature(restriction)
        )
        return self._stats.get((table, index, signature))

    def verdict(self, table: str, index: str, restriction: Any) -> ConfidenceVerdict:
        """Gate consultation: should the engine trust this estimate?

        ``trust`` requires both the configured minimum observation count
        and a confidence score at or above the threshold. The verdict
        carries its inputs so the skip decision can be audited.
        """
        stats = self.stats_for(table, index, restriction)
        if stats is None:
            return _COLD
        score = stats.confidence(self.min_observations)
        return ConfidenceVerdict(
            trust=(
                stats.count >= self.min_observations
                and score >= self.confidence_threshold
            ),
            score=score,
            count=stats.count,
            mean_log_q=stats.mean_log_q,
            var_log_q=stats.var_log_q,
            threshold=self.confidence_threshold,
        )

    def combined_verdict(
        self, pairs: list[tuple[str, str, Any]]
    ) -> ConfidenceVerdict:
        """Weakest-link verdict over several signatures (join edges):
        trust only when every signature individually trusts, reporting the
        lowest score's inputs."""
        if not pairs:
            return _COLD
        worst: ConfidenceVerdict | None = None
        for table, index, restriction in pairs:
            verdict = self.verdict(table, index, restriction)
            if worst is None or verdict.score < worst.score:
                worst = verdict
            if not verdict.trust:
                # keep scanning for the true minimum score, but the
                # combined verdict is already a non-trust
                worst = ConfidenceVerdict(
                    trust=False,
                    score=min(worst.score, verdict.score),
                    count=verdict.count,
                    mean_log_q=verdict.mean_log_q,
                    var_log_q=verdict.var_log_q,
                    threshold=verdict.threshold,
                )
        assert worst is not None
        return worst

    def estimate_range(
        self, table: str, index: str, lo: Any, hi: Any
    ) -> float | None:
        """Histogram-corrected cardinality for a key range, or None when
        the (table, index) histogram has no refined evidence yet."""
        if not self.enabled:
            return None
        if self._ring_len:
            self._drain()
        hist = self._histograms.get((table, index))
        if hist is None:
            return None
        return hist.estimate(lo, hi)

    def histogram_snapshot(self, table: str) -> dict[str, SelfTuningHistogram]:
        """Frozen {index: histogram copy} for one table.

        Scatter-gather hands this to partition fetches so worker threads
        consult learned range cardinalities without touching the live
        (mutable) histograms."""
        if not self.enabled:
            return {}
        if self._ring_len:
            self._drain()
        return {
            index: hist.copy()
            for (owner, index), hist in self._histograms.items()
            if owner == table
        }

    def flush(self) -> None:
        """Materialize any ring-buffered records now.

        The continuous monitor calls this before reading
        :attr:`qerror_hist` so a sample reflects every retrieval retired
        before it, not just those some other consumer happened to drain."""
        if self._ring_len:
            self._drain()

    def take_recent(self) -> list[float]:
        """Return-and-clear the q-errors observed since the last call.

        Benchmarks use this to compute per-refinement-round medians
        without re-walking the full history."""
        if self._ring_len:
            self._drain()
        recent = self._recent
        self._recent = []
        return recent

    # -- maintenance ----------------------------------------------------------

    def invalidate_table(self, table: str) -> None:
        """Drop learned state for one table (schema/data change)."""
        if self._ring_len:
            # drop pending ring entries for the table rather than learning
            # from a world that no longer exists
            kept = [
                entry
                for entry in self._ring[: self._ring_len]
                if entry is not None and entry[0] != table
            ]
            for position in range(len(self._ring)):
                self._ring[position] = kept[position] if position < len(kept) else None
            self._ring_len = len(kept)
            self._drain()
        for key in [k for k in self._stats if k[0] == table]:
            del self._stats[key]
        for key in [k for k in self._histograms if k[0] == table]:
            del self._histograms[key]

    def clear(self) -> None:
        for position in range(len(self._ring)):
            self._ring[position] = None
        self._ring_len = 0
        self._recent.clear()
        self._stats.clear()
        self._histograms.clear()

    # -- reporting ------------------------------------------------------------

    def __len__(self) -> int:
        if self._ring_len:
            self._drain()
        return len(self._stats)

    def entries(self) -> Iterator[tuple[tuple[str, str, str], SignatureStats]]:
        if self._ring_len:
            self._drain()
        return iter(self._stats.items())

    def snapshot(self) -> dict[str, Any]:
        if self._ring_len:
            self._drain()
        return {
            "signatures": len(self._stats),
            "observations": self.observations,
            "evictions": self.evictions,
            "trusted": self.trusted,
            "competed": self.competed,
            "histograms": {
                f"{table}.{index}": hist.to_dict()
                for (table, index), hist in sorted(self._histograms.items())
            },
        }

    def format(self) -> str:
        """Human-readable per-signature report (the shell's ``\\estimates``)."""
        if self._ring_len:
            self._drain()
        lines = [
            f"estimator: {len(self._stats)} signatures, "
            f"{self.observations} observations, {self.evictions} evictions, "
            f"gate: {self.trusted} trusted / {self.competed} competed"
        ]
        if not self._stats:
            lines.append("  (no observations yet)")
            return "\n".join(lines)
        header = (
            f"  {'signature':<56} {'obs':>5} {'p95 q':>8} "
            f"{'max q':>8} {'conf':>6}  verdict"
        )
        lines.append(header)
        ranked = sorted(
            self._stats.items(), key=lambda item: -item[1].count
        )
        for (table, index, signature), stats in ranked:
            score = stats.confidence(self.min_observations)
            trust = (
                stats.count >= self.min_observations
                and score >= self.confidence_threshold
            )
            label = f"{table}.{index} {signature}"
            if len(label) > 56:
                label = label[:53] + "..."
            lines.append(
                f"  {label:<56} {stats.count:>5} {stats.p95:>8.2f} "
                f"{stats.max_q:>8.2f} {score:>6.2f}  "
                + ("trust" if trust else "compete")
            )
        for (table, index), hist in sorted(self._histograms.items()):
            lines.append(f"  histogram {table}.{index}: {hist.describe()}")
        return "\n".join(lines)

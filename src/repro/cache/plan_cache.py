"""Server-wide LRU plan cache.

Statements are keyed by their *normalized* SQL — the token stream
re-rendered with canonical spacing and keyword case — so formatting
differences share an entry while literal values (which change the plan's
selectivity signature) do not. Host variables normalise to their names:
every binding of a parameterized statement hits the same entry.

Entries record the database schema version they were built under; any DDL
bumps the version, so a lookup after DDL misses (counted as an
invalidation) and the statement re-parses and re-binds against the new
catalog. A stale :class:`CachedPlan` held by a
:class:`~repro.cache.prepared.PreparedStatement` is revalidated the same
way — and fails safe with a binding error when its table is gone.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cache.predicates import PredicateCache
from repro.engine.goals import OptimizationGoal, infer_goals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.session import Database
    from repro.sql.parser import ParsedQuery
    from repro.sql.plan import PlanNode


def normalize_sql(sql: str) -> tuple[str, int]:
    """Return the normalized cache key and the ``?`` placeholder count."""
    from repro.sql.tokenizer import tokenize

    parts: list[str] = []
    placeholders = 0
    for token in tokenize(sql):
        if token.kind == "end":
            break
        if token.kind == "string":
            parts.append("'" + token.value.replace("'", "''") + "'")
        elif token.kind == "hostvar":
            if token.value.startswith("?"):
                placeholders += 1
            parts.append(":" + token.value)
        else:
            parts.append(token.value)
    return " ".join(parts), placeholders


def _tables_of(plan: "PlanNode") -> frozenset[str]:
    names: set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        table = getattr(node, "table", None)
        if table is not None:
            names.add(table)
        stack.extend(node.children)
    return frozenset(names)


@dataclass
class CachedPlan:
    """One parsed-and-bound statement, reusable across executions.

    The plan tree is never mutated by execution (restrictions are rebuilt
    locally when subqueries resolve), so concurrent sessions can execute
    one entry simultaneously. Goal inference is memoised per requested
    goal — the goals dict is keyed by node identity, which stays valid
    precisely because the tree object is reused.
    """

    sql: str
    key: str
    parsed: "ParsedQuery"
    schema_version: int
    tables: frozenset[str]
    param_count: int
    predicates: PredicateCache = field(default_factory=PredicateCache)
    executions: int = 0
    _goals: dict = field(default_factory=dict)

    @property
    def param_names(self) -> tuple[str, ...]:
        """Positional placeholder names, in placeholder order."""
        return tuple(f"?{i + 1}" for i in range(self.param_count))

    def goals_for(self, requested: OptimizationGoal) -> dict:
        goals = self._goals.get(requested)
        if goals is None:
            goals = self._goals[requested] = infer_goals(self.parsed.plan, requested)
        return goals


class PlanCache:
    """Size-bounded LRU of :class:`CachedPlan` entries.

    Shared by every session of a database, like the buffer pool. With
    ``capacity == 0`` the cache is disabled: nothing is stored, lookups are
    never attempted, and execution plans statement-by-statement exactly as
    before.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def size(self) -> int:
        return len(self._entries)

    def lookup(self, db: "Database", key: str) -> CachedPlan | None:
        """The live entry under ``key``, counting a hit or a miss.

        An entry built under an older schema version is dropped (counted
        as an invalidation) and reported as a miss.
        """
        entry = self._entries.get(key)
        if entry is not None and entry.schema_version != db.schema_version:
            del self._entries[key]
            self.invalidations += 1
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(
        self,
        db: "Database",
        sql: str,
        key: str,
        parsed: "ParsedQuery",
        param_count: int,
    ) -> CachedPlan:
        """Wrap a bound parse in a :class:`CachedPlan`, caching it when
        enabled. The transient wrapper is returned either way so execution
        has a per-statement predicate cache even with caching off."""
        entry = CachedPlan(
            sql=sql,
            key=key,
            parsed=parsed,
            schema_version=db.schema_version,
            tables=_tables_of(parsed.plan),
            param_count=param_count,
        )
        if self.enabled:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def entry_for(self, db: "Database", sql: str) -> tuple[CachedPlan, bool]:
        """Get-or-build the entry for one SELECT; returns ``(entry, hit)``.

        Raises :class:`~repro.errors.SqlSyntaxError` for non-SELECT text and
        :class:`~repro.errors.BindingError` when the statement no longer
        binds against the catalog.
        """
        from repro.sql.binder import bind
        from repro.sql.parser import parse

        key, param_count = normalize_sql(sql)
        if self.enabled:
            entry = self.lookup(db, key)
            if entry is not None:
                return entry, True
        parsed = parse(sql)
        bind(db, parsed.plan)
        return self.store(db, sql, key, parsed, param_count), False

    def revalidate(self, db: "Database", entry: CachedPlan) -> CachedPlan:
        """Return a schema-current entry for ``entry``'s statement.

        A current entry is returned unchanged; a stale one is rebuilt from
        its SQL text (re-parse + re-bind), failing safe with a
        :class:`~repro.errors.BindingError` when the referenced table or
        columns no longer exist — a stale plan is never executed against
        freed pages.
        """
        if entry.schema_version == db.schema_version:
            return entry
        rebuilt, _ = self.entry_for(db, entry.sql)
        return rebuilt

    def invalidate_table(self, table: str) -> int:
        """Eagerly drop every cached plan that reads ``table``."""
        stale = [key for key, entry in self._entries.items() if table in entry.tables]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop everything (counted as invalidations)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

"""Per-plan compiled-predicate cache.

Every scan strategy evaluates the statement's restriction row by row;
:func:`repro.expr.eval.compile_predicate` specialises it into a
``row -> bool`` closure. Before this cache, Sscan compiled lazily per scan
*instance* (once per batch entry point) and the other strategies fell back
to the interpreter per row. Now the retrieval compiles once per statement
execution and hands the same callable to every scan — and across
executions of a cached plan, recompilation happens only when a referenced
host variable's value actually changed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Mapping, Sequence

from repro.expr.ast import Expr
from repro.expr.eval import compile_predicate, referenced_host_vars

#: sentinel distinguishing "variable absent" from "variable bound to None"
_MISSING = object()


class PredicateCache:
    """Memoises ``compile_predicate`` per (expr, schema, referenced binding).

    The key restricts the host-variable binding to the variables the
    expression actually references (via
    :func:`~repro.expr.eval.referenced_host_vars`), so re-executing a
    prepared statement with unrelated variables changed still hits. The
    expression is keyed by *identity*, not value — entries hold a strong
    reference to their expression (pinning its id), and a hit verifies the
    stored object is the one asked about, so re-hashing the whole tree on
    every execution is avoided. Unhashable bound values fall back to a
    direct compile — the cache is an optimisation, never a requirement.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._compiled: OrderedDict[
            Any, tuple[Expr, Callable[[Sequence], bool]]
        ] = OrderedDict()
        self._vars: dict[int, tuple[Expr, tuple[str, ...]]] = {}
        self.hits = 0
        self.compiles = 0

    def __len__(self) -> int:
        return len(self._compiled)

    def get(
        self,
        expr: Expr,
        schema: Mapping[str, int],
        host_vars: Mapping[str, Any],
    ) -> Callable[[Sequence], bool]:
        """The compiled predicate for ``expr`` under this binding."""
        vars_entry = self._vars.get(id(expr))
        if vars_entry is not None and vars_entry[0] is expr:
            names = vars_entry[1]
        else:
            names = tuple(sorted(referenced_host_vars(expr)))
            if len(self._vars) >= 4 * self.capacity:
                self._vars.clear()
            self._vars[id(expr)] = (expr, names)
        try:
            key = (
                id(expr),
                id(schema),
                tuple((name, host_vars.get(name, _MISSING)) for name in names),
            )
            cached = self._compiled.get(key)
        except TypeError:  # unhashable bound value
            self.compiles += 1
            return compile_predicate(expr, schema, host_vars)
        if cached is not None and cached[0] is expr:
            self._compiled.move_to_end(key)
            self.hits += 1
            return cached[1]
        self.compiles += 1
        compiled = compile_predicate(expr, schema, host_vars)
        self._compiled[key] = (expr, compiled)
        while len(self._compiled) > self.capacity:
            self._compiled.popitem(last=False)
        return compiled

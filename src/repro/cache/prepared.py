"""User-facing prepared statements.

:meth:`repro.api.Connection.prepare` parses and binds a SELECT once and
returns a :class:`PreparedStatement`; each :meth:`~PreparedStatement.execute`
re-submits the cached plan through the scheduler without touching the
tokenizer, parser, or binder. Parameters bind positionally to ``?``
placeholders (or by name for ``:name`` host variables), which is the
prepare-once / execute-many path the paper's run-time optimization
presumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.engine.goals import OptimizationGoal
from repro.errors import BindingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.plan_cache import CachedPlan
    from repro.server.scheduler import QueryHandle, ServerSession


class PreparedStatement:
    """A reusable compiled statement bound to one session.

    The underlying :class:`~repro.cache.plan_cache.CachedPlan` is shared
    with the server-wide plan cache (when enabled); after DDL the plan is
    revalidated against the new catalog before executing, raising
    :class:`~repro.errors.BindingError` when the statement no longer binds
    — a stale plan never runs against freed pages.
    """

    def __init__(self, session: "ServerSession", sql: str) -> None:
        self._session = session
        self.sql = sql
        db = session.server.db
        self._entry: "CachedPlan"
        self._entry, _ = db.plan_cache.entry_for(db, sql)

    @property
    def param_count(self) -> int:
        """Number of ``?`` placeholders in the statement."""
        return self._entry.param_count

    @property
    def param_names(self) -> tuple[str, ...]:
        """Positional placeholder names (``?1``, ``?2``, ...)."""
        return self._entry.param_names

    def _bind(self, params: Sequence | Mapping[str, Any] | None) -> dict[str, Any]:
        if params is None:
            params = ()
        if isinstance(params, Mapping):
            return dict(params)
        values = list(params)
        if len(values) != self.param_count:
            raise BindingError(
                f"prepared statement expects {self.param_count} parameter(s), "
                f"got {len(values)}"
            )
        return {f"?{i + 1}": value for i, value in enumerate(values)}

    def submit(
        self,
        params: Sequence | Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
    ) -> "QueryHandle":
        """Queue one execution; returns its :class:`QueryHandle` immediately."""
        db = self._session.server.db
        self._entry = db.plan_cache.revalidate(db, self._entry)
        return self._session.submit(
            self.sql,
            self._bind(params),
            goal=goal,
            deadline=deadline,
            prepared=self._entry,
        )

    def execute(
        self,
        params: Sequence | Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
    ):
        """Run one execution to completion and return the unified
        :class:`~repro.result.Result` (legacy object on ``result.raw``)."""
        from repro.result import Result

        return Result.wrap(self.submit(params, goal=goal, deadline=deadline).wait())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PreparedStatement params={self.param_count} sql={self.sql[:40]!r}>"

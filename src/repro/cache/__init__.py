"""Query preparation and caching.

Three cooperating pieces give the engine a cheap prepare-once /
execute-many path:

* :class:`PlanCache` — a server-wide, size-bounded LRU of parsed-and-bound
  statements keyed by normalized SQL text, shared across sessions the same
  way the buffer pool is, and invalidated by DDL through the database's
  schema version.
* :class:`PredicateCache` — per-plan memoisation of
  :func:`repro.expr.eval.compile_predicate`, so a statement compiles its
  restriction once per (schema, host-variable binding) instead of once per
  scan instance.
* :class:`FeedbackStore` — adaptive selectivity feedback: observed
  estimated-vs-actual cardinalities per (table, index, predicate
  signature), folded back into the next execution's initial estimates.

:class:`PreparedStatement` is the user-facing handle returned by
:meth:`repro.api.Connection.prepare`.
"""

from repro.cache.feedback import FeedbackStore, predicate_signature
from repro.cache.plan_cache import CachedPlan, PlanCache, normalize_sql
from repro.cache.predicates import PredicateCache
from repro.cache.prepared import PreparedStatement

__all__ = [
    "CachedPlan",
    "FeedbackStore",
    "PlanCache",
    "PredicateCache",
    "PreparedStatement",
    "normalize_sql",
    "predicate_signature",
]

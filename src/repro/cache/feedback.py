"""Adaptive selectivity feedback.

After each retrieval the engine knows, per index it actually scanned, how
many entries the range *really* contained — the quantity
descent-to-split-node estimation (Section 5) approximated before tactic
selection. This store keeps an exponentially-weighted running correction
per (table, index, predicate signature) and applies it to the next
execution's inexact initial estimates, in the spirit of adaptive
cardinality estimation: cached plans start from observed rather than
modelled selectivity.

The predicate *signature* abstracts host-variable values but keeps
literals, so every binding of one prepared statement shares a feedback
entry while textually different ad-hoc restrictions stay separate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

from repro.expr import ast
from repro.expr.ast import Expr


def predicate_signature(expr: Expr) -> str:
    """Structural signature of a restriction with host variables abstracted."""
    try:
        return _signature_cached(expr)
    except TypeError:  # unhashable expression — compute without the cache
        return _signature(expr)


@lru_cache(maxsize=2048)
def _signature_cached(expr: Expr) -> str:
    return _signature(expr)


def _signature(node: object) -> str:
    if isinstance(node, ast.ColumnRef):
        return node.name
    if isinstance(node, ast.Literal):
        return repr(node.value)
    if isinstance(node, ast.HostVar):
        return "?"
    if isinstance(node, ast.Comparison):
        return f"({node.op} {_signature(node.left)} {_signature(node.right)})"
    if isinstance(node, ast.Between):
        return (
            f"(between {_signature(node.column)}"
            f" {_signature(node.lo)} {_signature(node.hi)})"
        )
    if isinstance(node, ast.InList):
        return f"(in {_signature(node.column)} n={len(node.values)})"
    if isinstance(node, ast.Like):
        return f"(like {_signature(node.column)} {node.pattern!r})"
    if isinstance(node, ast.And):
        return "(and " + " ".join(_signature(child) for child in node.children) + ")"
    if isinstance(node, ast.Or):
        return "(or " + " ".join(_signature(child) for child in node.children) + ")"
    if isinstance(node, ast.Not):
        return f"(not {_signature(node.child)})"
    return type(node).__name__


@dataclass
class FeedbackEntry:
    """Learned correction for one (table, index, signature) key."""

    #: EWMA of observed actual/estimated cardinality ratios
    ratio: float
    samples: int = 1


class FeedbackStore:
    """Size-bounded LRU of estimated-vs-actual cardinality corrections.

    ``record`` folds one observation in; ``adjust`` returns the sharpened
    RID count for a fresh estimate, or ``None`` when nothing is known.
    With a single recorded sample the adjusted estimate *is* the observed
    cardinality (ratio = actual/estimated applied to the same estimate),
    which is what makes the second execution of a cached plan start from
    ground truth.
    """

    def __init__(
        self, capacity: int = 1024, alpha: float = 0.5, enabled: bool = True
    ) -> None:
        self.capacity = capacity
        self.alpha = alpha
        self.enabled = enabled
        self._entries: OrderedDict[tuple, FeedbackEntry] = OrderedDict()
        self.records = 0
        self.adjustments = 0
        self.evictions = 0

    @property
    def size(self) -> int:
        return len(self._entries)

    def record(
        self,
        table: str,
        index_name: str,
        restriction: Expr,
        estimated: int,
        actual: int,
    ) -> None:
        """Fold one observed (estimated, actual) pair into the store."""
        if not self.enabled:
            return
        key = (table, index_name, predicate_signature(restriction))
        ratio = actual / max(estimated, 1)
        entry = self._entries.get(key)
        if entry is None:
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = FeedbackEntry(ratio=ratio)
        else:
            entry.ratio += self.alpha * (ratio - entry.ratio)
            entry.samples += 1
            self._entries.move_to_end(key)
        self.records += 1

    def adjust(
        self, table: str, index_name: str, restriction: Expr, estimated: int
    ) -> int | None:
        """The corrected RID count for ``estimated``, or None if unknown."""
        if not self.enabled:
            return None
        key = (table, index_name, predicate_signature(restriction))
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        self.adjustments += 1
        return max(0, round(estimated * entry.ratio))

    def snapshot_for(self, table: str) -> dict[tuple[str, str], float]:
        """Read-only {(index, signature): ratio} view of one table's entries.

        Used by scatter-gather to hand each partition fetch the parent
        table's learned corrections without sharing the mutable store
        across worker threads. Does not touch LRU order.
        """
        return {
            (key[1], key[2]): entry.ratio
            for key, entry in self._entries.items()
            if key[0] == table
        }

    def invalidate_table(self, table: str) -> int:
        """Drop every entry learned for ``table`` (DDL invalidation)."""
        stale = [key for key in self._entries if key[0] == table]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

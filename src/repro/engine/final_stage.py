"""Fin — the final retrieval stage (Figure 4).

Executed only upon background (Jscan) completion, as the alternative to
foreground delivery: fetch the data records of the complete RID list in
sorted (page-clustered) order, evaluate the full restriction, and deliver.
RIDs already delivered by a foreground process are filtered out through the
foreground buffer — "the buffer is passed to the final stage where it helps
to filter out the already delivered records".

When Jscan recommended Tscan instead, the tactics run a
:class:`~repro.engine.scans.TscanProcess` with the same skip-filter.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.competition.process import Process
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import TableSchema
from repro.engine.metrics import RetrievalTrace
from repro.engine.scans import BatchingSinkMixin, Predicate, Sink
from repro.expr.ast import Expr
from repro.expr.eval import compile_predicate
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


class FinalStageProcess(BatchingSinkMixin, Process):
    """Sorted RID-list fetch with restriction evaluation and delivery."""

    def __init__(
        self,
        rids: Sequence[RID],
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        skip_rids: Callable[[RID], bool] | None = None,
        name: str = "final-stage",
        predicate: Predicate | None = None,
    ) -> None:
        super().__init__(name)
        self.rids = sorted(rids)
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        self.predicate = predicate if predicate is not None else compile_predicate(
            restriction, schema.position, self.host_vars
        )
        self.skip_rids = skip_rids
        self.stopped_by_consumer = False
        self._next = 0
        self.delivered = 0
        self.rejected = 0
        self.skipped = 0
        if trace is not None:
            self.span = trace.tracer.open("final-stage", rids=len(self.rids))

    def _do_step(self) -> bool:
        if self._next >= len(self.rids):
            return True
        rid = self.rids[self._next]
        self._next += 1
        if self.skip_rids is not None and self.skip_rids(rid):
            self.skipped += 1
            return self._next >= len(self.rids)
        row = self.heap.fetch(rid, self.meter)
        self.meter.charge_cpu(self.config.cpu_cost_per_record)
        if self.trace is not None:
            self.trace.counters.records_fetched += 1
        if self.predicate(row):
            self.delivered += 1
            if self.trace is not None:
                self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        else:
            self.rejected += 1
            if self.trace is not None:
                self.trace.counters.fetches_rejected += 1
        return self._next >= len(self.rids)

    def _do_batch(self, max_steps: int) -> tuple[int, bool]:
        """Fetch up to ``max_steps`` RIDs, read-ahead window at a time.

        Before each window of non-skipped RIDs, their distinct heap pages
        are loaded through :meth:`HeapFile.prefetch`; the per-RID fetches in
        ``_do_step`` then hit the cache. Because the RID list is sorted
        (page-clustered) and prefetch charges exactly the misses the
        row-at-a-time fetches would have charged, ``io_reads`` is identical
        for a run that completes; a consumer stop mid-window can leave at
        most ``read_ahead_window - 1`` speculative page reads charged.
        """
        steps = 0
        while steps < max_steps:
            remaining = len(self.rids) - self._next
            if remaining <= 0:
                return steps + 1, True
            window = min(max_steps - steps, remaining)
            upcoming = self.rids[self._next : self._next + window]
            if self.skip_rids is not None:
                upcoming = [rid for rid in upcoming if not self.skip_rids(rid)]
            if upcoming:
                # page cap bounded by pool capacity: the RID list is sorted,
                # so as long as one prefetch run fits the pool, every
                # prefetched page is still cached when its fetch arrives and
                # io_reads stays identical to row-at-a-time fetching
                self.heap.prefetch(
                    upcoming,
                    self.meter,
                    window=min(
                        self.config.read_ahead_window,
                        self.heap.buffer_pool.capacity,
                    ),
                )
            for _ in range(window):
                steps += 1
                if self._do_step():
                    return steps, True
        return steps, False

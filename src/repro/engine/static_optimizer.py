"""The System R-style static optimizer baseline [SACL79].

The paper's antagonist: selectivities are estimated *at compile time* from
analyze-time histograms, host variables fall back to fixed "magic number"
guesses (1/10 for equality, 1/3 for open ranges, 1/4 for BETWEEN — the
System R defaults), a single cheapest plan is chosen, and the plan is
frozen: every later execution runs the same strategy no matter what the
host variables turn out to be. This is exactly the behaviour the Section 4
motivating query defeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.db.catalog import IndexInfo, TableStats
from repro.db.table import Table
from repro.engine.metrics import RetrievalTrace
from repro.engine.scans import FscanProcess, SscanProcess, TscanProcess
from repro.errors import RetrievalError
from repro.expr.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FalseExpr,
    HostVar,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpr,
)
from repro.expr.eval import referenced_columns
from repro.expr.normalize import conjunction_terms, normalize
from repro.expr.ranges import extract_index_restriction
from repro.storage.rid import RID

#: System R magic numbers for predicates on values unknown at compile time
MAGIC_EQ = 0.10
MAGIC_RANGE = 1.0 / 3.0
MAGIC_BETWEEN = 0.25


@dataclass(frozen=True)
class StaticPlan:
    """A frozen compile-time plan."""

    strategy: str  # "tscan" | "fscan" | "sscan"
    index_name: str | None
    estimated_selectivity: float
    estimated_cost: float

    def describe(self) -> str:
        """Readable plan line."""
        target = f"({self.index_name})" if self.index_name else ""
        return (
            f"{self.strategy}{target} est_sel={self.estimated_selectivity:.4f} "
            f"est_cost={self.estimated_cost:.1f}"
        )


class StaticOptimizer:
    """Compile once, run forever — the baseline to beat."""

    def __init__(self, table: Table) -> None:
        if table.stats is None:
            table.analyze()
        self.table = table
        self.stats: TableStats = table.stats  # type: ignore[assignment]

    # -- compile-time selectivity estimation -------------------------------------

    def _term_selectivity(self, term: Expr) -> float:
        if isinstance(term, TrueExpr):
            return 1.0
        if isinstance(term, FalseExpr):
            return 0.0
        if isinstance(term, Comparison):
            return self._comparison_selectivity(term)
        if isinstance(term, Between):
            if isinstance(term.lo, Literal) and isinstance(term.hi, Literal):
                return self._range_selectivity(term.column.name, term.lo.value, term.hi.value)
            return MAGIC_BETWEEN
        if isinstance(term, InList):
            per_value = []
            for value in term.values:
                if isinstance(value, Literal):
                    per_value.append(self._eq_selectivity(term.column.name))
                else:
                    per_value.append(MAGIC_EQ)
            return min(1.0, sum(per_value))
        if isinstance(term, Like):
            return MAGIC_RANGE
        if isinstance(term, And):
            result = 1.0
            for child in term.children:
                result *= self._term_selectivity(child)
            return result
        if isinstance(term, Or):
            result = 0.0
            for child in term.children:
                child_sel = self._term_selectivity(child)
                result = result + child_sel - result * child_sel
            return result
        if isinstance(term, Not):
            return 1.0 - self._term_selectivity(term.child)
        return MAGIC_RANGE

    def _comparison_selectivity(self, term: Comparison) -> float:
        column: str | None = None
        constant: Any = None
        bound = False
        if isinstance(term.left, ColumnRef):
            column = term.left.name
            if isinstance(term.right, Literal):
                constant, bound = term.right.value, True
            elif isinstance(term.right, HostVar):
                bound = False
            else:
                return MAGIC_RANGE  # column-to-column
        elif isinstance(term.right, ColumnRef):
            column = term.right.name
            if isinstance(term.left, Literal):
                constant, bound = term.left.value, True
        if column is None or column not in self.stats.columns:
            return MAGIC_RANGE
        if term.op == "=":
            return self._eq_selectivity(column) if bound else MAGIC_EQ
        if term.op == "<>":
            return 1.0 - (self._eq_selectivity(column) if bound else MAGIC_EQ)
        if not bound:
            # host variable: the compile-time optimizer cannot see the value
            return MAGIC_RANGE
        column_stats = self.stats.columns[column]
        if term.op in ("<", "<="):
            if isinstance(term.left, ColumnRef):
                return column_stats.histogram.selectivity_range(None, constant)
            return column_stats.histogram.selectivity_range(constant, None)
        if isinstance(term.left, ColumnRef):
            return column_stats.histogram.selectivity_range(constant, None)
        return column_stats.histogram.selectivity_range(None, constant)

    def _eq_selectivity(self, column: str) -> float:
        stats = self.stats.columns.get(column)
        return stats.eq_selectivity if stats is not None else MAGIC_EQ

    def _range_selectivity(self, column: str, lo: Any, hi: Any) -> float:
        stats = self.stats.columns.get(column)
        if stats is None:
            return MAGIC_BETWEEN
        return stats.histogram.selectivity_range(lo, hi)

    def estimate_selectivity(self, restriction: Expr) -> float:
        """Compile-time selectivity of the whole restriction."""
        return max(0.0, min(1.0, self._term_selectivity(normalize(restriction))))

    def _index_selectivity(self, index: IndexInfo, restriction: Expr) -> float:
        """Selectivity of the conjuncts this index can scan by range."""
        terms = conjunction_terms(restriction)
        usable = [
            term
            for term in terms
            if referenced_columns(term) == {index.columns[0]}
        ]
        if not usable:
            return 1.0
        result = 1.0
        for term in usable:
            result *= self._term_selectivity(term)
        return result

    # -- plan choice -------------------------------------------------------------------

    def compile(
        self,
        restriction: Expr,
        needed_columns: frozenset[str] | None = None,
    ) -> StaticPlan:
        """Pick the single cheapest plan from compile-time estimates."""
        if needed_columns is None:
            needed_columns = frozenset(self.table.schema.names) | referenced_columns(
                restriction
            )
        rows = max(1, self.stats.row_count)
        pages = max(1, self.stats.page_count)
        best = StaticPlan(
            strategy="tscan",
            index_name=None,
            estimated_selectivity=self.estimate_selectivity(restriction),
            estimated_cost=float(pages),
        )
        for index in self.table.indexes.values():
            selectivity = self._index_selectivity(index, restriction)
            tree = index.btree
            leaf_pages = max(1, tree.leaf_count)
            if index.covers(needed_columns):
                cost = tree.height + selectivity * leaf_pages
                if cost < best.estimated_cost:
                    best = StaticPlan("sscan", index.name, selectivity, cost)
            else:
                # classic Fscan: traverse + leaf fraction + one fetch per RID
                cost = tree.height + selectivity * leaf_pages + selectivity * rows
                if cost < best.estimated_cost:
                    best = StaticPlan("fscan", index.name, selectivity, cost)
        return best

    # -- frozen-plan execution ------------------------------------------------------------

    def execute(
        self,
        plan: StaticPlan,
        restriction: Expr,
        host_vars: Mapping[str, Any] | None = None,
        limit: int | None = None,
    ) -> "StaticExecution":
        """Run a frozen plan. Only key-range *values* bind at run time; the
        strategy never changes — that is the point of this baseline."""
        host_vars = dict(host_vars or {})
        rows: list[tuple] = []
        rids: list[RID] = []

        def sink(rid: RID, row: tuple) -> bool:
            rows.append(row)
            rids.append(rid)
            return limit is None or len(rows) < limit

        trace = RetrievalTrace()
        table = self.table
        if plan.strategy == "tscan":
            process = TscanProcess(
                table.heap, table.schema, restriction, host_vars, sink, trace, table.config
            )
        else:
            index = table.indexes.get(plan.index_name or "")
            if index is None:
                raise RetrievalError(f"plan references unknown index {plan.index_name!r}")
            terms = conjunction_terms(restriction)
            key_range = extract_index_restriction(terms, index.columns, host_vars).key_range
            if plan.strategy == "sscan":
                process = SscanProcess(
                    index, key_range, table.schema, restriction, host_vars, sink,
                    trace, table.config,
                )
            else:
                process = FscanProcess(
                    index, key_range, table.heap, table.schema, restriction, host_vars,
                    sink, trace, table.config,
                )
        while process.active:
            if process.step():
                break
        return StaticExecution(
            plan=plan, rows=rows, rids=rids,
            cost=process.meter.total, io=process.meter.io_total, trace=trace,
        )


@dataclass
class StaticExecution:
    """Outcome of running a frozen static plan once."""

    plan: StaticPlan
    rows: list[tuple]
    rids: list[RID]
    cost: float
    io: int
    trace: RetrievalTrace

"""Jscan — the joint scan of fetch-needed indexes (Section 6, Figure 6).

Jscan scans the preselected indexes in ascending-selectivity order. Each
index scan builds a RID list (hybrid storage: static buffer, allocated
buffer, temp table + bitmap) filtered against the previously completed
list, so each completed list is the running intersection. Unproductive
scans are eliminated by a *two-stage competition*: during a scan, the cost
of retrieving by the projected final RID list is continuously compared
against the *guaranteed best* retrieval (Tscan, or retrieval by the last
complete list); the scan is terminated "a bit before the costs are
equalized". A direct criterion additionally bounds the scan's own cost by a
proportion of the guaranteed best.

Rdb/VMS also "can partially change the order of index scans by limited
simultaneous scanning of two adjacent indexes" — implemented here as pair
mode: the next index scans alongside the current one (within main memory
only); whichever completes first delivers the next filter, and the other's
partial list is refiltered in memory.

The result is either a complete RID list (possibly empty — an immediate
end-of-data), or the recommendation that Tscan is the best retrieval.

Setting ``dynamic_guaranteed_best=False``, ``projection_enabled=False`` and
a ``static_rid_threshold`` turns this class into the statically-controlled
Jscan of [MoHa90] used as a baseline (see
:mod:`repro.engine.mohan_jscan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.competition.process import Process
from repro.competition.two_stage import SwitchCriterion, SwitchDecision
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.engine.initial import JscanCandidate
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.obs.audit import DecisionKind
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.heap import HeapFile
from repro.storage.hybrid_list import HybridRidList, RidListRegion
from repro.storage.rid import RID, yao_pages_touched


@dataclass
class _IndexScan:
    """Live state of one index scan inside Jscan."""

    candidate: JscanCandidate
    cursor: object  # RangeCursor
    rid_list: HybridRidList
    position: int = 0
    scanned: int = 0
    kept: int = 0
    scan_cost: float = 0.0

    @property
    def name(self) -> str:
        return self.candidate.index.name


class JscanProcess(Process):
    """The joint-scan background process. One step == one index entry."""

    def __init__(
        self,
        candidates: list[JscanCandidate],
        heap: HeapFile,
        buffer_pool: BufferPool,
        trace: RetrievalTrace,
        config: EngineConfig = DEFAULT_CONFIG,
        dynamic_guaranteed_best: bool = True,
        projection_enabled: bool = True,
        static_rid_threshold: float | None = None,
        simultaneous: bool | None = None,
        on_keep: Callable[[RID, int], None] | None = None,
        name: str = "jscan",
    ) -> None:
        super().__init__(name)
        if not candidates:
            raise ValueError("Jscan needs at least one candidate index")
        self.heap = heap
        self.buffer_pool = buffer_pool
        self.trace = trace
        self.config = config
        self.criterion = SwitchCriterion(
            threshold=config.switch_threshold,
            scan_cost_limit_fraction=config.scan_cost_limit_fraction,
        )
        self._prob_criterion = None
        if config.probabilistic_switch:
            from repro.competition.probabilistic import BayesianSwitchCriterion

            self._prob_criterion = BayesianSwitchCriterion(
                heap_pages=heap.page_count,
                rows_per_page=heap.rows_per_page,
                scan_cost_limit_fraction=config.scan_cost_limit_fraction,
            )
        self.dynamic_guaranteed_best = dynamic_guaranteed_best
        self.projection_enabled = projection_enabled
        self.static_rid_threshold = static_rid_threshold
        self.simultaneous = (
            config.simultaneous_adjacent_scans if simultaneous is None else simultaneous
        )
        #: tap: called with (rid, scan_position) for every kept RID —
        #: the fast-first tactic "borrows" RIDs through this hook
        self.on_keep = on_keep

        self._queue: list[JscanCandidate] = list(candidates)
        self._started = 0  # scan position counter (0 == first index)
        self._active: _IndexScan | None = None
        self._partner: _IndexScan | None = None
        self._filter: HybridRidList | None = None
        self._turn = 0
        self.completed_scans = 0
        self.abandoned_scans = 0
        self.reorders = 0

        # results
        self.result_list: HybridRidList | None = None
        self.tscan_recommended = False
        self.empty = False
        self.span = trace.tracer.open(
            "scan",
            strategy="jscan",
            indexes=[candidate.index.name for candidate in candidates],
        )

    # -- cost model -----------------------------------------------------------

    def tscan_cost(self) -> float:
        """Cost of the fallback sequential scan."""
        return float(self.heap.page_count)

    def rid_fetch_cost(self, rid_count: float, rid_list: HybridRidList | None = None) -> float:
        """Estimated cost of the final stage for a RID list of given size.

        Yao's expected distinct pages for the sorted fetch, plus reading the
        spill pages back when the list lives in a temp table.
        """
        cost = yao_pages_touched(self.heap.page_count, self.heap.rows_per_page, int(rid_count))
        if rid_list is not None and rid_list.region is RidListRegion.SPILLED:
            cost += rid_count / 512.0  # temp-table page reads
        return cost

    def guaranteed_best_cost(self) -> float:
        """The cost of the best retrieval guaranteed available right now."""
        best = self.tscan_cost()
        if self.dynamic_guaranteed_best and self._filter is not None:
            best = min(best, self.rid_fetch_cost(len(self._filter), self._filter))
        return best

    def _projection(self, scan: _IndexScan) -> float | None:
        """Projected final-retrieval cost from the list being built."""
        if not self.projection_enabled or scan.scanned == 0:
            return None
        estimate = scan.candidate.estimated_rids
        if estimate is None:
            return None
        fraction = scan.scanned / max(estimate, float(scan.scanned))
        if fraction < self.config.min_projection_fraction:
            return None
        projected_size = scan.kept / fraction
        return self.rid_fetch_cost(projected_size, scan.rid_list)

    # -- scan lifecycle ----------------------------------------------------------

    def _start_scan(self, candidate: JscanCandidate) -> _IndexScan:
        position = self._started
        self._started += 1
        scan = _IndexScan(
            candidate=candidate,
            cursor=candidate.index.btree.range_cursor(candidate.key_range, self.meter),
            rid_list=HybridRidList(
                self.buffer_pool, f"{self.name}:{candidate.index.name}", self.config
            ),
            position=position,
        )
        self.trace.emit(
            EventKind.SCAN_START,
            strategy="jscan-index",
            index=candidate.index.name,
            position=position,
        )
        self.trace.counters.scans_started += 1
        return scan

    def _maybe_start_partner(self) -> None:
        if (
            self.simultaneous
            and self._partner is None
            and self._active is not None
            and self._queue
        ):
            self._partner = self._start_scan(self._queue.pop(0))
            self.trace.emit(
                EventKind.SIMULTANEOUS_PAIR,
                active=self._active.name,
                partner=self._partner.name,
            )

    def _abandon_scan(self, scan: _IndexScan, reason: str) -> None:
        scan.rid_list.discard()
        self.abandoned_scans += 1
        self.trace.counters.scans_abandoned += 1
        self.trace.emit(
            EventKind.SCAN_ABANDONED,
            index=scan.name,
            reason=reason,
            scanned=scan.scanned,
            kept=scan.kept,
            scan_cost=round(scan.scan_cost, 2),
        )
        if scan is self._active:
            self._active = self._partner
            self._partner = None
        elif scan is self._partner:
            self._partner = None

    def _complete_scan(self, scan: _IndexScan) -> None:
        """A cursor exhausted: its list is the new running intersection."""
        if (
            scan is self._partner
            and scan.kept > 0
            and self._active.rid_list.region is RidListRegion.SPILLED
        ):
            # defensive: accepting a partner win would require refiltering
            # the active's list out of memory, which the paper rules out
            # (the _choose_scan freeze makes this unreachable in practice,
            # but installing the filter without the refilter would corrupt
            # results). Drop the partner's work; the previous filter stands.
            scan.rid_list.discard()
            self.abandoned_scans += 1
            self.trace.counters.scans_abandoned += 1
            self.trace.emit(
                EventKind.SCAN_ABANDONED, index=scan.name,
                reason="active-spilled-no-refilter", scanned=scan.scanned,
                kept=scan.kept, scan_cost=round(scan.scan_cost, 2),
            )
            self._partner = None
            return
        self.completed_scans += 1
        # the exhausted cursor walked its whole range: record the true
        # cardinality so selectivity feedback can sharpen later estimates
        scan.candidate.observed = scan.scanned
        self.trace.emit(
            EventKind.SCAN_COMPLETE,
            index=scan.name,
            scanned=scan.scanned,
            kept=scan.kept,
        )
        old_filter = self._filter
        self._filter = scan.rid_list
        self.trace.emit(
            EventKind.FILTER_BUILT,
            index=scan.name,
            rids=scan.kept,
            region=scan.rid_list.region.value,
        )
        if old_filter is not None:
            old_filter.discard()
        if scan.kept == 0:
            # empty intersection: no record can satisfy the conjunction
            self.empty = True
            self.result_list = scan.rid_list
            self.finished = True
            self.trace.emit(EventKind.RID_LIST_COMPLETE, rids=0, empty=True)
            return
        if scan is self._partner:
            # the partner finished first: dynamic reorder. The active scan's
            # partial list is refiltered in memory against the new filter.
            self.reorders += 1
            self.trace.emit(
                EventKind.REORDERED, winner=scan.name, continuing=self._active.name
            )
            new_filter = self._filter
            dropped = self._active.rid_list.refilter(new_filter.may_contain)
            self._active.kept -= dropped
            self.meter.charge_cpu(self.config.cpu_cost_per_entry * (self._active.kept + dropped))
            self._partner = None
        else:
            # active finished; partner (if any) is promoted and refiltered
            if self._partner is not None:
                new_filter = self._filter
                dropped = self._partner.rid_list.refilter(new_filter.may_contain)
                self._partner.kept -= dropped
                self.meter.charge_cpu(
                    self.config.cpu_cost_per_entry * (self._partner.kept + dropped)
                )
            self._active = self._partner
            self._partner = None

    # -- the step ------------------------------------------------------------------

    def _choose_scan(self) -> _IndexScan | None:
        """Alternate between active and partner; the pair pauses at the
        memory-buffer boundary ("the simultaneous scan ... does not
        continue beyond the memory buffer"): the partner stops advancing
        when its own list would spill, and also once the *active* list has
        spilled — a partner win would then require refiltering the active
        list out of memory, which is exactly what the paper rules out."""
        if self._partner is not None:
            partner_frozen = (
                len(self._partner.rid_list) >= self.config.allocated_rid_buffer_size
                or self._active.rid_list.region is RidListRegion.SPILLED
            )
            self._turn ^= 1
            if self._turn and not partner_frozen:
                return self._partner
        return self._active

    def _do_step(self) -> bool:
        if self._active is None:
            if not self._queue:
                return self._finalize()
            self._active = self._start_scan(self._queue.pop(0))
            self._maybe_start_partner()
        scan = self._choose_scan()
        assert scan is not None
        before = self.meter.total
        entry = scan.cursor.next_entry()
        if entry is None:
            scan.scan_cost += self.meter.total - before
            self._complete_scan(scan)
            if self.finished:
                return True
            if self._active is None:
                if not self._queue:
                    return self._finalize()
                self._active = self._start_scan(self._queue.pop(0))
            self._maybe_start_partner()
            return False
        _, rid = entry
        scan.scanned += 1
        self.trace.counters.index_entries_scanned += 1
        if self._filter is not None and not self._filter.may_contain(rid):
            self.trace.counters.rids_filtered_out += 1
        else:
            spills_before = scan.rid_list.spills
            scan.rid_list.add(rid, self.meter)
            if scan.rid_list.spills != spills_before:
                self.trace.emit(
                    EventKind.SPILL,
                    index=scan.name,
                    rids=len(scan.rid_list),
                    region=scan.rid_list.region.value,
                )
            scan.kept += 1
            if self.on_keep is not None:
                self.on_keep(rid, scan.position)
        scan.scan_cost += self.meter.total - before
        self._evaluate_criterion(scan)
        return self.finished

    def _evaluate_criterion(self, scan: _IndexScan) -> None:
        if self.static_rid_threshold is not None:
            # [MoHa90]-style static control: abandon when the list exceeds a
            # precomputed threshold; no dynamic readjustment
            if scan.kept > self.static_rid_threshold:
                self._abandon_scan(scan, "static-threshold")
            return
        guaranteed = self.guaranteed_best_cost()
        if self._prob_criterion is not None:
            if scan.scanned % self.config.probabilistic_check_interval:
                return
            from repro.competition.probabilistic import ScanEvidence

            estimate = scan.candidate.estimated_rids
            evidence = ScanEvidence(
                scanned=scan.scanned,
                kept=scan.kept,
                estimated_total=estimate if estimate is not None else float(scan.scanned),
                scan_cost=scan.scan_cost,
            )
            decision = self._prob_criterion.evaluate(evidence, guaranteed)
        else:
            decision = self.criterion.evaluate(
                self._projection(scan), scan.scan_cost, guaranteed
            )
        if decision is SwitchDecision.CONTINUE:
            return
        reason = (
            "projected-cost" if decision is SwitchDecision.ABANDON_PROJECTED else "scan-cost"
        )
        audit = self.trace.audit
        if audit.enabled:
            # the switch-criterion's inputs at the moment it fired: what
            # the scan had cost, what the projection said it would cost,
            # and the guaranteed bound it lost to
            audit.decision(
                DecisionKind.STAGE_TRANSITION,
                chosen=f"abandon({scan.name})",
                reason=reason,
                scanned=scan.scanned,
                kept=scan.kept,
                scan_cost=round(scan.scan_cost, 2),
                guaranteed=round(guaranteed, 2),
                projection=round(self._projection(scan), 2),
            )
        self._abandon_scan(scan, reason)
        self._maybe_start_partner()

    def _finalize(self) -> bool:
        if self._filter is not None:
            self.result_list = self._filter
            self.trace.emit(
                EventKind.RID_LIST_COMPLETE,
                rids=len(self._filter),
                region=self._filter.region.value,
            )
        else:
            self.tscan_recommended = True
            self.trace.emit(EventKind.TSCAN_RECOMMENDED)
        return True

    def _on_abandon(self) -> None:
        for scan in (self._active, self._partner):
            if scan is not None:
                scan.rid_list.discard()
        if self._filter is not None and self._filter is not self.result_list:
            self._filter.discard()

    def next_batch(self, max_rids: int) -> list[tuple[RID, int]]:
        """Advance until up to ``max_rids`` new RIDs have been kept.

        Returns the newly kept ``(rid, scan_position)`` pairs, in keep
        order. Steps run through :meth:`run_batch`, so cost accounting and
        the two-stage switch decisions are identical to repeated
        :meth:`step` calls; an installed :attr:`on_keep` tap still fires for
        every kept RID. An empty list means the joint scan ended (finished,
        empty intersection, Tscan recommendation, or abandonment) without
        keeping more RIDs.
        """
        if max_rids < 1:
            raise ValueError("max_rids must be >= 1")
        kept: list[tuple[RID, int]] = []
        outer = self.on_keep

        def capture(rid: RID, position: int) -> None:
            kept.append((rid, position))
            if outer is not None:
                outer(rid, position)

        self.on_keep = capture
        try:
            while self.active and len(kept) < max_rids:
                self.run_batch(max_rids - len(kept))
        finally:
            self.on_keep = outer
        return kept

    # -- consuming the result ------------------------------------------------------

    def sorted_result(self, meter: CostMeter | None = None) -> list[RID]:
        """Materialize the final RID list, sorted for page-clustered fetch."""
        if self.result_list is None:
            raise RuntimeError("jscan produced no RID list")
        return self.result_list.sorted_rids(meter if meter is not None else self.meter)

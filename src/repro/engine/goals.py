"""Optimization goals and their inference from plan trees (Section 4).

    "Suppose that a query execution plan contains any of EXISTS, LIMIT TO n
    ROWS, SORT, COUNT or other aggregate nodes. For a given retrieval node,
    the static optimizer searches the plan to see what node from the above
    list immediately controls the retrieval node. If EXISTS or LIMIT TO node
    controls the retrieval node, the fast-first retrieval optimization is
    requested. A detection of the SORT or aggregate control sets the
    total-time optimization request. Otherwise, the user-defined or default
    optimization goal is used."

Inference is duck-typed over any tree whose nodes expose ``node_type``
(strings: ``retrieve``, ``exists``, ``limit``, ``sort``, ``aggregate``, or
anything else, treated as transparent) and ``children``. The SQL layer's
logical plan satisfies this protocol.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, Protocol, runtime_checkable


class OptimizationGoal(enum.Enum):
    """The two retrieval performance goals of Section 4."""

    FAST_FIRST = "fast-first"
    TOTAL_TIME = "total-time"
    #: defer to plan inference / system default
    DEFAULT = "default"


#: node types that request fast-first when controlling a retrieval
_FAST_FIRST_CONTROLLERS = frozenset({"exists", "limit"})
#: node types that request total-time when controlling a retrieval
_TOTAL_TIME_CONTROLLERS = frozenset({"sort", "aggregate", "distinct"})
#: all controller node types
_CONTROLLERS = _FAST_FIRST_CONTROLLERS | _TOTAL_TIME_CONTROLLERS


@runtime_checkable
class PlanNodeLike(Protocol):
    """Structural protocol for plan trees the inference can walk."""

    node_type: str
    children: tuple[Any, ...]


def _walk(node: PlanNodeLike, controller: str | None) -> Iterator[tuple[PlanNodeLike, str | None]]:
    """Yield (retrieval node, nearest controlling node type) pairs.

    The "immediately controlling" node is the nearest ancestor whose type is
    a controller; passing through another controller resets it.
    """
    if node.node_type in ("retrieve", "join"):
        yield node, controller
    next_controller = node.node_type if node.node_type in _CONTROLLERS else controller
    for child in node.children:
        yield from _walk(child, next_controller)


def goal_for_controller(controller: str | None, requested: OptimizationGoal) -> OptimizationGoal:
    """Resolve the effective goal of one retrieval node."""
    if controller in _FAST_FIRST_CONTROLLERS:
        return OptimizationGoal.FAST_FIRST
    if controller in _TOTAL_TIME_CONTROLLERS:
        return OptimizationGoal.TOTAL_TIME
    if requested is not OptimizationGoal.DEFAULT:
        return requested
    return OptimizationGoal.TOTAL_TIME


def infer_goals(
    root: PlanNodeLike, requested: OptimizationGoal = OptimizationGoal.DEFAULT
) -> dict[int, OptimizationGoal]:
    """Infer the optimization goal of every retrieval node in a plan tree.

    Returns ``{id(retrieval_node): goal}``; ``requested`` is the explicit
    user request (``OPTIMIZE FOR ...``) or DEFAULT. The user request applies
    only to retrievals not controlled by any listed node, exactly as in the
    paper's three-table example where the explicit ``total time`` request
    affects only table A.
    """
    goals: dict[int, OptimizationGoal] = {}
    for node, controller in _walk(root, None):
        goals[id(node)] = goal_for_controller(controller, requested)
    return goals

"""The dynamic single-table retrieval engine (Sections 4-7).

This is the paper's primary contribution: a retrieval component that picks,
races, and switches between Tscan / Sscan / Fscan / Jscan strategies at run
time, driven by dynamic estimation and competition.

Public entry point: :class:`repro.engine.retrieval.SingleTableRetrieval`,
normally reached through :meth:`repro.db.table.Table.select` or the SQL
layer.
"""

from repro.engine.goals import OptimizationGoal, infer_goals
from repro.engine.metrics import EventKind, RetrievalTrace, TraceEvent
from repro.engine.retrieval import RetrievalRequest, RetrievalResult, SingleTableRetrieval

__all__ = [
    "OptimizationGoal",
    "infer_goals",
    "EventKind",
    "RetrievalTrace",
    "TraceEvent",
    "RetrievalRequest",
    "RetrievalResult",
    "SingleTableRetrieval",
]

"""Step-wise execution of one candidate join order.

A :class:`JoinOrderProcess` is a :class:`~repro.competition.process.Process`
— the same resumable/abandonable unit the single-table competition races —
whose work is one left-deep join order. Each engine step processes one page
(a hash-build page, or a driving page probed through the full pipeline), so
the controller can compare orders mid-flight on identical footing and the
pilot budgets are denominated in pages touched.

Output rows are buffered on the process in the **canonical source order**
of the plan, so any two orders' outputs are literally comparable bags and a
winner chosen mid-flight simply keeps delivering from its own buffered
prefix — nothing re-executes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.btree.tree import KeyRange
from repro.competition.process import Process
from repro.config import EngineConfig
from repro.engine.join.order import JoinOrder, JoinSchema, JoinStep, JoinTableHandle
from repro.expr.ast import ALWAYS_TRUE
from repro.expr.eval import compile_predicate
from repro.sql.plan import JoinPlan
from repro.storage.buffer_pool import CostMeter


class TeeMeter:
    """Duck-typed cost meter forwarding every charge to two real meters.

    Lets a probe edge charge its own attribution meter while the process
    total stays authoritative, without double-charging the buffer pool.
    """

    __slots__ = ("first", "second")

    def __init__(self, first: CostMeter, second: CostMeter) -> None:
        self.first = first
        self.second = second

    def charge_read(self, kind) -> None:
        self.first.charge_read(kind)
        self.second.charge_read(kind)

    def charge_write(self) -> None:
        self.first.charge_write()
        self.second.charge_write()

    def charge_hit(self) -> None:
        self.first.charge_hit()
        self.second.charge_hit()

    def charge_cpu(self, amount: float) -> None:
        self.first.charge_cpu(amount)
        self.second.charge_cpu(amount)


class _HashBuild:
    """Build-side state of one hash-join step (pins pages across quanta).

    The build reads the probe side one page per engine step through the
    buffer pool, keeping every page of the *current* read run pinned until
    the next step replaces the run — so a scheduler quantum boundary (or an
    interference eviction) can never steal a page the build is mid-way
    through. The pins are released batch-by-batch, not page-by-page, which
    is exactly the window the ``evict_random`` pin regression test covers.
    """

    def __init__(self, handle: JoinTableHandle, key_columns: tuple[str, ...]) -> None:
        self.handle = handle
        self.key_positions = tuple(handle.schema.index_of(c) for c in key_columns)
        self.buckets: dict[tuple, list[tuple]] = {}
        self.next_page = 0
        self.done = handle.page_count == 0
        self.pinned: list[int] = []
        self.rows_kept = 0

    def pin_run(self, page_ids: list[int]) -> None:
        self.release_pins()
        for page_id in page_ids:
            self.handle.buffer_pool.pin(page_id)
        self.pinned = list(page_ids)

    def release_pins(self) -> None:
        for page_id in self.pinned:
            self.handle.buffer_pool.unpin(page_id)
        self.pinned = []

    def key_for(self, row: tuple) -> tuple | None:
        key = tuple(row[p] for p in self.key_positions)
        if any(v is None for v in key):
            return None
        return key


class JoinOrderProcess(Process):
    """Executes one left-deep join order page-step by page-step."""

    def __init__(
        self,
        order: JoinOrder,
        plan: JoinPlan,
        handles: Mapping[str, JoinTableHandle],
        host_vars: Mapping[str, Any],
        config: EngineConfig,
        schema: JoinSchema | None = None,
    ) -> None:
        super().__init__(f"join-order:{order.key}")
        self.order = order
        self.plan = plan
        self.handles = handles
        self.host_vars = dict(host_vars)
        self.config = config
        self.schema = schema if schema is not None else JoinSchema(plan, handles)
        #: combined output rows, canonical source order (the buffered prefix)
        self.rows: list[tuple] = []
        #: per-probe-step cost attribution (parallel to ``order.steps``)
        self.edge_meters = tuple(
            CostMeter(name=f"{self.name}:{step.alias}") for step in order.steps
        )
        #: per-step (probes, matches) counters for selectivity feedback
        self.edge_probes = [0] * len(order.steps)
        self.edge_matches = [0] * len(order.steps)

        driving_alias = order.aliases[0]
        driving = handles[driving_alias]
        self._driving = driving
        self._driving_alias = driving_alias
        self._driving_page = 0
        self._driving_pages = driving.page_count
        self._predicates = {
            alias: compile_predicate(
                expr, handles[alias].schema.position, self.host_vars
            )
            for alias, expr in plan.restrictions
        }
        #: hash builds pending completion, in step order
        self._builds: dict[int, _HashBuild] = {}
        self._build_queue: list[int] = []
        for position, step in enumerate(order.steps):
            if step.tactic == "hash":
                build = _HashBuild(
                    handles[step.alias],
                    tuple(c.probe_column for c in step.conditions),
                )
                self._builds[position] = build
                if not build.done:
                    self._build_queue.append(position)
        self._total_build_pages = sum(
            self._builds[i].handle.page_count for i in self._builds
        )
        #: source-order template positions for canonical row assembly
        self._assembly = tuple(source.alias for source in plan.sources)

    # -- progress / projection ----------------------------------------------

    @property
    def total_pages(self) -> int:
        return max(1, self._total_build_pages + self._driving_pages)

    @property
    def pages_done(self) -> int:
        build_done = sum(
            build.next_page for build in self._builds.values()
        )
        return build_done + self._driving_page

    @property
    def progress(self) -> float:
        """Fraction of page-steps completed (0..1)."""
        return min(1.0, self.pages_done / self.total_pages)

    @property
    def cost(self) -> float:
        """Total attributed cost so far (process meter is authoritative)."""
        return self.meter.total

    def projected_total(self) -> float | None:
        """Projected total cost, linear in page progress; None too early."""
        progress = self.progress
        if progress < max(1e-9, self.config.min_projection_fraction):
            return None
        return self.cost / progress

    # -- execution -----------------------------------------------------------

    def _do_step(self) -> bool:
        if self._build_queue:
            self._build_step(self._build_queue[0])
            return False
        return self._driving_step()

    def _build_step(self, position: int) -> None:
        build = self._builds[position]
        handle = build.handle
        meter = TeeMeter(self.meter, self.edge_meters[position])
        step = self.order.steps[position]
        predicate = self._predicates.get(step.alias)
        page_no = build.next_page
        # pin the page for the duration of the run so a quantum boundary
        # cannot evict it from under the build
        build.pin_run([handle.heap.page_id(page_no)])
        for _, row in handle.heap.scan_page(page_no, meter):
            meter.charge_cpu(self.config.cpu_cost_per_record)
            if predicate is not None and not predicate(row):
                continue
            key = build.key_for(row)
            if key is None:
                continue
            build.buckets.setdefault(key, []).append(row)
            build.rows_kept += 1
        build.next_page += 1
        if build.next_page >= handle.page_count:
            build.done = True
            build.release_pins()
            self._build_queue.pop(0)

    def _driving_step(self) -> bool:
        if self._driving_page >= self._driving_pages:
            return True
        meter = self.meter
        predicate = self._predicates.get(self._driving_alias)
        for _, row in self._driving.heap.scan_page(self._driving_page, meter):
            meter.charge_cpu(self.config.cpu_cost_per_record)
            if predicate is not None and not predicate(row):
                continue
            self._probe({self._driving_alias: row}, 0)
        self._driving_page += 1
        return self._driving_page >= self._driving_pages

    def _probe(self, partial: dict[str, tuple], position: int) -> None:
        if position >= len(self.order.steps):
            self.rows.append(self._assemble(partial))
            return
        step = self.order.steps[position]
        meter = TeeMeter(self.meter, self.edge_meters[position])
        self.edge_probes[position] += 1
        for row in self._matches(step, position, partial, meter):
            self.edge_matches[position] += 1
            partial[step.alias] = row
            self._probe(partial, position + 1)
        partial.pop(step.alias, None)

    def _matches(self, step: JoinStep, position: int, partial, meter):
        handle = self.handles[step.alias]
        values: list[Any] = []
        for condition in step.conditions:
            source = self.handles[condition.prefix_alias]
            value = partial[condition.prefix_alias][
                source.schema.index_of(condition.prefix_column)
            ]
            if value is None:
                return
            values.append(value)
        predicate = self._predicates.get(step.alias)
        if step.tactic == "hash":
            build = self._builds[position]
            key = tuple(values)
            for row in build.buckets.get(key, ()):
                meter.charge_cpu(self.config.cpu_cost_per_record)
                yield row
            return
        # index nested loop: descend on the leading equi-join columns, then
        # re-check the remaining conditions and the local restriction
        index = handle.indexes[step.index_name]
        by_column = dict(zip((c.probe_column for c in step.conditions), values))
        prefix_key = tuple(
            by_column[column] for column in index.columns[: step.index_prefix_len]
        )
        cursor = handle.indexes[step.index_name].btree.range_cursor(
            KeyRange.exact(prefix_key), meter
        )
        while True:
            entry = cursor.next_entry()
            if entry is None:
                break
            meter.charge_cpu(self.config.cpu_cost_per_entry)
            row = handle.heap.fetch(entry[1], meter)
            meter.charge_cpu(self.config.cpu_cost_per_record)
            if any(
                row[handle.schema.index_of(column)] != value
                for column, value in by_column.items()
            ):
                continue
            if predicate is not None and not predicate(row):
                continue
            yield row

    def _assemble(self, partial: Mapping[str, tuple]) -> tuple:
        combined: list[Any] = []
        for alias in self._assembly:
            combined.extend(partial[alias])
        return tuple(combined)

    # -- teardown ------------------------------------------------------------

    def _on_abandon(self) -> None:
        for build in self._builds.values():
            build.release_pins()
            build.buckets.clear()


def reference_nested_loop(
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    host_vars: Mapping[str, Any],
) -> list[tuple]:
    """Naive nested-loop reference executor (differential-test oracle).

    Materializes every source, then evaluates all edges and restrictions on
    the full cross product in plan source order. Costs nothing to the buffer
    pool meters (NULL_METER); exists purely to define the correct bag.
    """
    source_rows = []
    for source in plan.sources:
        handle = handles[source.alias]
        rows = [row for _, row in handle.heap.scan()]
        expr = plan.restriction_for(source.alias) or ALWAYS_TRUE
        predicate = compile_predicate(expr, handle.schema.position, dict(host_vars))
        source_rows.append((source.alias, [r for r in rows if predicate(r)]))

    results: list[tuple] = []

    def recurse(position: int, partial: dict[str, tuple]) -> None:
        if position == len(source_rows):
            for edge in plan.edges:
                left = partial[edge.left_alias][
                    handles[edge.left_alias].schema.index_of(edge.left_column)
                ]
                right = partial[edge.right_alias][
                    handles[edge.right_alias].schema.index_of(edge.right_column)
                ]
                if left is None or right is None or left != right:
                    return
            results.append(
                tuple(
                    value
                    for source in plan.sources
                    for value in partial[source.alias]
                )
            )
            return
        alias, rows = source_rows[position]
        for row in rows:
            partial[alias] = row
            recurse(position + 1, partial)
        partial.pop(alias, None)

    recurse(0, {})
    return results

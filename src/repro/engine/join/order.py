"""Join-order enumeration and cost estimation.

The competition model of the paper optimizes one decision — index choice —
at runtime. This module prepares the inputs for lifting that model one
level up: every *left-deep* order of a 2–4 table inner equi-join becomes a
candidate, each probe edge annotated with a tactic (index nested loop when
a usable index exists, build-side hash join otherwise or when cheaper), and
each candidate carries a cost estimate built from page counts, NDV-based
fanouts, and histogram selectivities. The estimates only have to *rank*
candidates — the pilot race and switch rule correct them at runtime, and
recorded per-edge feedback (:mod:`repro.cache.feedback`) sharpens the next
execution's estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Any, Mapping

from repro.config import EngineConfig
from repro.db.catalog import IndexInfo, TableSchema, TableStats
from repro.expr import ast
from repro.expr.ast import ALWAYS_TRUE, Expr
from repro.sql.plan import JoinEdge, JoinPlan
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap import HeapFile

#: default selectivity guess for a local restriction on an unanalyzed table
DEFAULT_LOCAL_SELECTIVITY = 0.3
#: B-tree descent I/O charged per index-nested-loop probe (estimate only)
PROBE_DESCENT_IO = 2.0
#: fraction of fanout fetches expected to miss the cache (estimate only)
PROBE_FETCH_MISS = 0.8


@dataclass
class JoinTableHandle:
    """Everything the join engine needs from one table (or its shadow).

    Decoupled from :class:`repro.db.table.Table` so counterfactual replay
    can rebuild handles over shadow buffer pools without touching the
    catalog.
    """

    name: str
    heap: HeapFile
    schema: TableSchema
    indexes: dict[str, IndexInfo]
    buffer_pool: BufferPool
    stats: TableStats | None = None

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    @property
    def page_count(self) -> int:
        return self.heap.page_count


class JoinSchema:
    """The combined-row schema of a join: qualified ``alias.column`` names.

    Rows are concatenations of the source tables' rows **in the plan's
    source order** regardless of which join order produced them — the
    canonical layout that makes every candidate order return literally
    comparable rows.
    """

    def __init__(self, plan: JoinPlan, handles: Mapping[str, JoinTableHandle]) -> None:
        names: list[str] = []
        self.offsets: dict[str, int] = {}
        for source in plan.sources:
            schema = handles[source.alias].schema
            self.offsets[source.alias] = len(names)
            names.extend(f"{source.alias}.{column}" for column in schema.names)
        self.names: tuple[str, ...] = tuple(names)
        self.position: dict[str, int] = {name: i for i, name in enumerate(names)}

    def __contains__(self, name: str) -> bool:
        return name in self.position

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        from repro.errors import CatalogError

        try:
            return self.position[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None


@dataclass(frozen=True)
class ProbeCondition:
    """One equi-join condition binding a prefix column to a probe column."""

    prefix_alias: str
    prefix_column: str
    probe_column: str


@dataclass(frozen=True)
class JoinStep:
    """One probe step of a left-deep order: join ``alias`` to the prefix."""

    alias: str
    table: str
    conditions: tuple[ProbeCondition, ...]
    tactic: str  # "index" | "hash"
    index_name: str | None = None
    #: leading index columns served by equi-join conditions (index tactic)
    index_prefix_len: int = 0

    def describe(self) -> str:
        via = f"ix:{self.index_name}" if self.tactic == "index" else "hash"
        return f"{self.alias}[{via}]"


@dataclass
class JoinOrder:
    """One candidate execution order (driving table first)."""

    key: str
    aliases: tuple[str, ...]
    steps: tuple[JoinStep, ...]
    estimated_cost: float = 0.0
    estimated_rows: float = 0.0
    #: per-step estimated output cardinalities (drives feedback recording)
    step_outputs: tuple[float, ...] = ()

    def describe(self) -> str:
        return self.key


def edge_signature(left_table: str, left_column: str, right_table: str, right_column: str) -> str:
    """Feedback key for one join edge, symmetric in its two sides and
    independent of aliases, so every query joining the same columns shares
    learned fanouts."""
    sides = sorted([(left_table, left_column), (right_table, right_column)])
    return "join:" + "=".join(f"{t}.{c}" for t, c in sides)


def literal_value(term: object, host_vars: Mapping[str, Any]) -> Any | None:
    if isinstance(term, ast.Literal):
        return term.value
    if isinstance(term, ast.HostVar):
        return host_vars.get(term.name)
    return None


def local_selectivity(
    handle: JoinTableHandle, expr: Expr | None, host_vars: Mapping[str, Any]
) -> float:
    """Estimated fraction of ``handle``'s rows passing ``expr``.

    Histogram/NDV-based when the table was analyzed; a flat default guess
    otherwise — deliberately coarse, because the race corrects it.
    """
    if expr is None or expr is ALWAYS_TRUE:
        return 1.0
    stats = handle.stats
    if isinstance(expr, ast.And):
        sel = 1.0
        for child in expr.children:
            sel *= local_selectivity(handle, child, host_vars)
        return sel
    if stats is not None:
        if (
            isinstance(expr, ast.Comparison)
            and expr.op == "="
            and isinstance(expr.left, ast.ColumnRef)
        ):
            column = stats.columns.get(expr.left.name)
            if column is not None:
                return column.eq_selectivity
        if isinstance(expr, ast.Between):
            column = stats.columns.get(expr.column.name)
            lo = literal_value(expr.lo, host_vars)
            hi = literal_value(expr.hi, host_vars)
            if column is not None and lo is not None and hi is not None:
                return column.histogram.selectivity_range(lo, hi)
        if (
            isinstance(expr, ast.Comparison)
            and expr.op in ("<", "<=", ">", ">=")
            and isinstance(expr.left, ast.ColumnRef)
        ):
            column = stats.columns.get(expr.left.name)
            bound = literal_value(expr.right, host_vars)
            if column is not None and bound is not None:
                if expr.op in ("<", "<="):
                    return column.histogram.selectivity_range(None, bound)
                return column.histogram.selectivity_range(bound, None)
    return DEFAULT_LOCAL_SELECTIVITY


def edge_fanout(handle: JoinTableHandle, probe_columns: tuple[str, ...]) -> float:
    """Expected matches in ``handle`` per probe key (NDV-based)."""
    rows = max(1, handle.row_count)
    distinct = 1.0
    if handle.stats is not None:
        for column in probe_columns:
            stats = handle.stats.columns.get(column)
            if stats is not None and stats.distinct:
                distinct *= stats.distinct
        distinct = min(distinct, rows)
        return rows / max(distinct, 1.0)
    # unanalyzed: assume a key-ish join (the race corrects bad guesses)
    return 1.0


def _conditions_for(
    prefix: tuple[str, ...], alias: str, edges: tuple[JoinEdge, ...]
) -> tuple[ProbeCondition, ...]:
    conditions = []
    for edge in edges:
        if edge.right_alias == alias and edge.left_alias in prefix:
            conditions.append(
                ProbeCondition(edge.left_alias, edge.left_column, edge.right_column)
            )
        elif edge.left_alias == alias and edge.right_alias in prefix:
            conditions.append(
                ProbeCondition(edge.right_alias, edge.right_column, edge.left_column)
            )
    return tuple(conditions)


def _pick_index(
    handle: JoinTableHandle, probe_columns: tuple[str, ...]
) -> tuple[str | None, int]:
    """Best index for probing on ``probe_columns``: the one whose leading
    columns cover the most equi-join conditions. Returns (name, prefix_len)."""
    best_name, best_len = None, 0
    wanted = set(probe_columns)
    for info in handle.indexes.values():
        length = 0
        for column in info.columns:
            if column in wanted:
                length += 1
            else:
                break
        if length > best_len:
            best_name, best_len = info.name, length
    return best_name, best_len


def _step_for(
    handle: JoinTableHandle,
    alias: str,
    conditions: tuple[ProbeCondition, ...],
    tactic: str,
) -> JoinStep:
    probe_columns = tuple(c.probe_column for c in conditions)
    if tactic == "index":
        index_name, prefix_len = _pick_index(handle, probe_columns)
        return JoinStep(
            alias=alias,
            table=handle.name,
            conditions=conditions,
            tactic="index",
            index_name=index_name,
            index_prefix_len=prefix_len,
        )
    return JoinStep(alias=alias, table=handle.name, conditions=conditions, tactic="hash")


def estimate_order(
    order: JoinOrder,
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    host_vars: Mapping[str, Any],
    config: EngineConfig,
    feedback: Any | None = None,
) -> JoinOrder:
    """Fill in ``estimated_cost`` / ``estimated_rows`` for one candidate."""
    driving = handles[order.aliases[0]]
    cost = float(driving.page_count)
    cost += driving.row_count * config.cpu_cost_per_record
    flowing = driving.row_count * local_selectivity(
        driving, plan.restriction_for(order.aliases[0]), host_vars
    )
    outputs: list[float] = []
    for step in order.steps:
        handle = handles[step.alias]
        restriction = plan.restriction_for(step.alias)
        sel = local_selectivity(handle, restriction, host_vars)
        fanout = edge_fanout(handle, tuple(c.probe_column for c in step.conditions))
        if step.tactic == "hash":
            # build: one full scan of the probe side, then O(1) probes
            cost += handle.page_count + handle.row_count * config.cpu_cost_per_record
            cost += flowing * config.cpu_cost_per_record
        else:
            # index nested loop: a descent plus fanout fetches per probe
            cost += flowing * (
                PROBE_DESCENT_IO + fanout * PROBE_FETCH_MISS + config.cpu_cost_per_entry
            )
        output = flowing * fanout * sel
        if feedback is not None and step.conditions:
            condition = step.conditions[0]
            prefix_handle = handles[condition.prefix_alias]
            signature = edge_signature(
                prefix_handle.name, condition.prefix_column,
                handle.name, condition.probe_column,
            )
            adjusted = feedback.adjust(
                handle.name, signature, restriction or ALWAYS_TRUE,
                max(1, round(output)),
            )
            if adjusted is not None:
                output = float(adjusted)
        outputs.append(output)
        cost += output * config.cpu_cost_per_record
        flowing = output
    order.estimated_cost = cost
    order.estimated_rows = flowing
    order.step_outputs = tuple(outputs)
    return order


def enumerate_orders(
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    host_vars: Mapping[str, Any],
    config: EngineConfig,
    feedback: Any | None = None,
) -> list[JoinOrder]:
    """All connected left-deep orders (≤ ``join_max_orders``, best first).

    For every left-deep permutation whose each next table connects to the
    prefix through at least one edge, two tactic variants are considered:
    index-where-available and all-hash. Candidates are ranked by estimated
    cost; the tail beyond ``join_max_orders`` is dropped (they can never
    enter the pilot race anyway).
    """
    aliases = tuple(source.alias for source in plan.sources)
    candidates: dict[str, JoinOrder] = {}
    for perm in permutations(aliases):
        steps_variants: list[list[JoinStep]] = [[], []]  # [greedy-index, all-hash]
        connected = True
        for position in range(1, len(perm)):
            prefix = perm[:position]
            alias = perm[position]
            conditions = _conditions_for(prefix, alias, plan.edges)
            if not conditions:
                connected = False
                break
            handle = handles[alias]
            index_step = _step_for(handle, alias, conditions, "index")
            if index_step.index_name is None:
                index_step = _step_for(handle, alias, conditions, "hash")
            steps_variants[0].append(index_step)
            steps_variants[1].append(_step_for(handle, alias, conditions, "hash"))
        if not connected:
            continue
        for steps in steps_variants:
            key = "→".join([perm[0]] + [step.describe() for step in steps])
            if key in candidates:
                continue
            order = JoinOrder(key=key, aliases=perm, steps=tuple(steps))
            estimate_order(order, plan, handles, host_vars, config, feedback)
            candidates[key] = order
    ranked = sorted(candidates.values(), key=lambda order: order.estimated_cost)
    return ranked[: max(1, config.join_max_orders)]

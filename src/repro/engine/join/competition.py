"""Join-order competition: race candidate orders, switch mid-flight.

The paper's two-stage competition picks an *index* at runtime. This module
lifts the identical machinery one level: the candidates are left-deep join
orders (:mod:`repro.engine.join.order`), each one a resumable
:class:`~repro.engine.join.process.JoinOrderProcess`, and the Section 6
switch rule (:class:`~repro.competition.two_stage.SwitchCriterion`) decides
*between orders*. The top estimated candidates run bounded pilot stages in
round-robin; a trailing order is abandoned the moment its projected
remaining cost approaches the leader's whole projected total ("we terminate
the scan a bit before the costs are equalized"); the surviving order simply
keeps extending its own buffered prefix — rows are canonical regardless of
order, so nothing re-executes after a switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping

from repro.competition.two_stage import SwitchCriterion, SwitchDecision
from repro.config import EngineConfig
from repro.engine.goals import OptimizationGoal
from repro.engine.join.order import (
    JoinOrder,
    JoinSchema,
    JoinTableHandle,
    edge_fanout,
    edge_signature,
    enumerate_orders,
)
from repro.engine.join.process import JoinOrderProcess
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.engine.retrieval import RetrievalResult
from repro.errors import RetrievalError
from repro.expr.ast import ALWAYS_TRUE
from repro.obs.audit import DecisionKind
from repro.obs.trace import Tracer
from repro.sql.plan import JoinPlan


@dataclass
class JoinReplayRequest:
    """The audit-side record of one join retrieval — enough to replay it.

    Stored as the ``request`` of the retrieval's audit entry so
    counterfactual replay (:mod:`repro.obs.regret`) can recognize a join
    retrieval and re-run any rejected order on shadow tables via
    ``force_order``.
    """

    plan: JoinPlan
    host_vars: dict[str, Any] = field(default_factory=dict)
    goal: OptimizationGoal = OptimizationGoal.TOTAL_TIME
    #: order key the competition committed to
    chosen_order: str = ""
    #: every enumerated candidate key, best-estimate first
    candidate_orders: tuple[str, ...] = ()
    #: marks this request as a join for duck-typed detection
    is_join: bool = True


def join_display_name(plan: JoinPlan) -> str:
    """The "table" name a join retrieval audits/traces under."""
    return "⋈(" + "+".join(source.alias for source in plan.sources) + ")"


def run_join_steps(
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    host_vars: Mapping[str, Any],
    goal: OptimizationGoal,
    config: EngineConfig,
    tracer: "Tracer | None" = None,
    feedback: Any | None = None,
    estimator: Any | None = None,
    force_order: str | None = None,
) -> Generator[RetrievalResult, None, RetrievalResult]:
    """Execute a 2–4 table join as a step generator.

    Yields the live :class:`RetrievalResult` once per scheduling quantum,
    exactly like ``SingleTableRetrieval.run_steps``; closing the generator
    abandons every racing order (sunk costs stay on the result). The result
    rows are combined tuples in the plan's canonical source order with
    qualified ``alias.column`` names (see :class:`JoinSchema`).
    """
    if goal is OptimizationGoal.DEFAULT:
        goal = OptimizationGoal.TOTAL_TIME
    trace = RetrievalTrace(tracer)
    display = join_display_name(plan)
    span = trace.tracer.begin(
        "retrieval",
        table=display,
        goal=goal.value,
        tables=len(plan.sources),
    )
    audit = trace.audit
    request = JoinReplayRequest(plan=plan, host_vars=dict(host_vars), goal=goal)
    if audit.enabled:
        audit.begin_retrieval(display, request)

    orders = enumerate_orders(plan, handles, host_vars, config, feedback)
    if not orders:
        raise RetrievalError("no connected left-deep join order exists")
    request.candidate_orders = tuple(order.key for order in orders)

    verdict = None
    if force_order is not None:
        candidates = [order for order in orders if order.key == force_order]
        if not candidates:
            raise RetrievalError(f"unknown join order {force_order!r}")
    elif config.join_competition:
        pilot = max(1, config.join_pilot_candidates)
        if estimator is not None and estimator.enabled and config.competition_gate:
            # the variance gate, join-order edition: the race shrinks as
            # edge-signature confidence rises — full trust runs only the
            # estimated-best order, partial confidence drops the tail
            pairs = _edge_pairs(orders[0], plan, handles)
            if pairs:
                verdict = estimator.combined_verdict(pairs)
                if verdict.trust:
                    pilot = 1
                elif verdict.score > 0.0:
                    pilot = max(1, round(pilot * (1.0 - verdict.score)))
        candidates = orders[:pilot]
        if verdict is not None:
            if verdict.trust and len(orders) > 1:
                estimator.trusted += 1
                if audit.enabled:
                    audit.decision(
                        DecisionKind.COMPETITION_SKIPPED,
                        candidates[0].key,
                        tuple(o.key for o in orders[1:]),
                        scope="join-order",
                        **verdict.inputs(),
                    )
            else:
                estimator.competed += 1
    else:
        candidates = orders[:1]

    if audit.enabled:
        audit.decision(
            DecisionKind.JOIN_ORDER,
            candidates[0].key,
            alternatives=tuple(o.key for o in orders if o.key != candidates[0].key),
            tables=len(plan.sources),
            racing=len(candidates),
            estimates={o.key: round(o.estimated_cost, 3) for o in orders},
        )

    schema = JoinSchema(plan, handles)
    processes = [
        JoinOrderProcess(order, plan, handles, host_vars, config, schema)
        for order in candidates
    ]
    for process in processes:
        process.span = trace.tracer.begin(
            "join-order", order=process.order.key,
            estimated=round(process.order.estimated_cost, 3),
        )
        trace.emit(
            EventKind.SCAN_START,
            strategy=f"join-order:{process.order.key}",
            estimated_cost=round(process.order.estimated_cost, 3),
        )
        trace.counters.scans_started += 1

    criterion = SwitchCriterion(
        threshold=config.join_switch_threshold,
        scan_cost_limit_fraction=config.scan_cost_limit_fraction,
    ).with_confidence(verdict.score if verdict is not None else None)
    quantum = max(1, min(config.batch_size, config.join_pilot_steps))
    current_choice = candidates[0].key

    result = RetrievalResult(
        rows=[], rids=[], trace=trace, description="", goal=goal,
    )

    def sunk_totals() -> tuple[float, int]:
        return (
            sum(p.meter.total for p in processes),
            sum(p.meter.io_total for p in processes),
        )

    try:
        winner: JoinOrderProcess | None = None
        while winner is None:
            active = [p for p in processes if p.active]
            if not active:
                raise RetrievalError("all join orders abandoned")  # pragma: no cover
            for process in active:
                if not process.active:
                    continue
                _, done = process.run_batch(quantum)
                if done:
                    winner = process
                    break
            yield result
            if winner is not None:
                break
            current_choice = _apply_switch_rule(
                processes, criterion, config, trace, audit, current_choice
            )

        # the race is over: every other still-active order is abandoned and
        # its cost stays sunk on the statement, as in the paper's model
        for process in processes:
            if process.active:
                _abandon(process, trace, reason="lost-competition")
        if winner.order.key != current_choice:
            _record_switch(
                trace, audit, current_choice, winner.order.key, "finished-first",
                projected=None, guaranteed=winner.meter.total,
            )
    except GeneratorExit:
        for process in processes:
            if process.active:
                _abandon(process, trace, reason="consumer-stopped")
        trace.emit(EventKind.CONSUMER_STOPPED, scope="join")
        result.execution_cost, result.execution_io = sunk_totals()
        trace.tracer.end(span, cancelled=True)
        raise

    result.rows.extend(winner.rows)
    result.description = "join-competition: " + winner.order.key if (
        force_order is None and len(candidates) > 1
    ) else "join-order: " + winner.order.key
    result.execution_cost, result.execution_io = sunk_totals()
    request.chosen_order = winner.order.key

    _record_feedback(winner, plan, handles, feedback, audit, estimator)

    trace.emit(EventKind.RETRIEVAL_COMPLETE, rows=len(result.rows))
    if audit.enabled:
        audit.end_retrieval(result)
    trace.tracer.end(span, rows=len(result.rows), order=winner.order.key)
    return result


def _apply_switch_rule(
    processes: list[JoinOrderProcess],
    criterion: SwitchCriterion,
    config: EngineConfig,
    trace: RetrievalTrace,
    audit: Any,
    current_choice: str,
) -> str:
    """Abandon trailing orders; returns the (possibly new) front-runner key.

    The guaranteed best is the leader's projected total; a trailing order is
    abandoned when its projected *remaining* work alone approaches that
    total, or when its sunk cost already exceeds the direct-competition
    fraction of it — the join-order reading of the Section 6 criteria.
    """
    active = [p for p in processes if p.active]
    if len(active) < 2:
        return _front_runner_key(processes, current_choice, trace, audit)
    pilots_done = all(p.steps_taken >= config.join_pilot_steps for p in active)
    projections = {p.order.key: p.projected_total() for p in active}
    ranked = sorted(
        (p for p in active if projections[p.order.key] is not None),
        key=lambda p: projections[p.order.key],
    )
    if not ranked:
        return current_choice
    leader = ranked[0]
    guaranteed = projections[leader.order.key]
    for process in ranked[1:]:
        if not pilots_done and process.steps_taken < config.join_pilot_steps:
            continue
        projected = projections[process.order.key]
        remaining = max(0.0, projected - process.meter.total)
        decision = criterion.evaluate(remaining, process.meter.total, guaranteed)
        if decision is SwitchDecision.CONTINUE:
            continue
        _abandon(process, trace, reason=decision.value, projected=round(projected, 3),
                 guaranteed=round(guaranteed, 3))
    return _front_runner_key(
        processes, current_choice, trace, audit,
        projected=projections.get(current_choice), guaranteed=guaranteed,
    )


def _front_runner_key(
    processes: list[JoinOrderProcess],
    current_choice: str,
    trace: RetrievalTrace,
    audit: Any,
    projected: float | None = None,
    guaranteed: float | None = None,
) -> str:
    """If the current choice got abandoned, switch to the best survivor."""
    by_key = {p.order.key: p for p in processes}
    chosen = by_key.get(current_choice)
    if chosen is not None and chosen.active or (chosen is not None and chosen.finished):
        return current_choice
    survivors = [p for p in processes if p.active or p.finished]
    if not survivors:
        return current_choice
    best = min(
        survivors,
        key=lambda p: p.projected_total() if p.projected_total() is not None
        else p.order.estimated_cost,
    )
    _record_switch(
        trace, audit, current_choice, best.order.key, "order-overtaken",
        projected=projected, guaranteed=guaranteed,
    )
    return best.order.key


def _record_switch(
    trace: RetrievalTrace,
    audit: Any,
    old: str,
    new: str,
    reason: str,
    projected: float | None,
    guaranteed: float | None,
) -> None:
    """One mid-flight join-order switch: trace event + JOIN_ORDER decision."""
    detail: dict[str, Any] = {"from": old, "to": new, "scope": "join-order",
                              "reason": reason}
    if projected is not None:
        detail["projected"] = round(projected, 3)
    if guaranteed is not None:
        detail["guaranteed"] = round(guaranteed, 3)
    trace.emit(EventKind.STRATEGY_SWITCH, **detail)
    trace.counters.strategy_switches += 1
    if audit.enabled:
        audit.decision(DecisionKind.JOIN_ORDER, new, alternatives=(old,), **{
            k: v for k, v in detail.items() if k not in ("from", "to")
        }, switched_from=old)


def _abandon(process: JoinOrderProcess, trace: RetrievalTrace, **detail: Any) -> None:
    process.abandon()
    trace.emit(
        EventKind.SCAN_ABANDONED,
        strategy=f"join-order:{process.order.key}",
        cost=round(process.meter.total, 3),
        **detail,
    )
    trace.counters.scans_abandoned += 1


def _edge_pairs(
    order: JoinOrder,
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
) -> list[tuple[str, str, Any]]:
    """The estimator keys of one order's edges — the same
    (table, edge-signature, restriction) triples ``_record_feedback``
    records under, so gate consultations hit the learned entries."""
    pairs: list[tuple[str, str, Any]] = []
    for step in order.steps:
        if not step.conditions:
            continue
        condition = step.conditions[0]
        handle = handles[step.alias]
        prefix_handle = handles[condition.prefix_alias]
        signature = edge_signature(
            prefix_handle.name, condition.prefix_column,
            handle.name, condition.probe_column,
        )
        pairs.append(
            (handle.name, signature, plan.restriction_for(step.alias) or ALWAYS_TRUE)
        )
    return pairs


def _record_feedback(
    winner: JoinOrderProcess,
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    feedback: Any | None,
    audit: Any,
    estimator: Any | None = None,
) -> None:
    """Record realized per-edge fanouts so the next execution's estimates
    (and PREPARE/EXECUTE re-runs) start from observed cardinalities."""
    if feedback is None and estimator is None:
        return
    for position, step in enumerate(winner.order.steps):
        probes = winner.edge_probes[position]
        if probes <= 0 or not step.conditions:
            continue
        matches = winner.edge_matches[position]
        handle = handles[step.alias]
        condition = step.conditions[0]
        prefix_handle = handles[condition.prefix_alias]
        signature = edge_signature(
            prefix_handle.name, condition.prefix_column,
            handle.name, condition.probe_column,
        )
        estimated_fanout = edge_fanout(
            handle, tuple(c.probe_column for c in step.conditions)
        )
        restriction = plan.restriction_for(step.alias) or ALWAYS_TRUE
        estimated = max(1, round(estimated_fanout * probes))
        if feedback is not None:
            feedback.record(handle.name, signature, restriction, estimated, matches)
        if estimator is not None and estimator.enabled:
            # the estimator scores the *effective* per-edge projection the
            # order was ranked on (feedback-corrected step output), since
            # that is the number the shrink gate trusts
            outputs = winner.order.step_outputs
            effective = (
                outputs[position] if position < len(outputs) else float(estimated)
            )
            estimator.record(handle.name, signature, restriction, effective, matches)
        if audit.enabled:
            audit.observe_estimate(signature, estimated, matches)


def candidate_orders(
    plan: JoinPlan,
    handles: Mapping[str, JoinTableHandle],
    host_vars: Mapping[str, Any],
    config: EngineConfig,
    feedback: Any | None = None,
) -> list[JoinOrder]:
    """The enumerated candidates, best-estimate first (EXPLAIN rendering)."""
    return enumerate_orders(plan, handles, host_vars, config, feedback)

"""Multi-table join execution: order enumeration, processes, competition."""

from repro.engine.join.competition import (
    JoinReplayRequest,
    candidate_orders,
    join_display_name,
    run_join_steps,
)
from repro.engine.join.order import (
    JoinOrder,
    JoinSchema,
    JoinStep,
    JoinTableHandle,
    edge_signature,
    enumerate_orders,
)
from repro.engine.join.process import JoinOrderProcess, reference_nested_loop

__all__ = [
    "JoinOrder",
    "JoinOrderProcess",
    "JoinReplayRequest",
    "JoinSchema",
    "JoinStep",
    "JoinTableHandle",
    "candidate_orders",
    "edge_signature",
    "enumerate_orders",
    "join_display_name",
    "reference_nested_loop",
    "run_join_steps",
]

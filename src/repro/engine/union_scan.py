"""Union joint scan — the OR extension of Jscan.

The paper's Section 6 Jscan handles restrictions whose "index-bound
portions [are] connected by ANDs"; Section 8 names OR coverage as the
natural extension. This module implements it in the same competition
style:

* every top-level disjunct gets a covering index range
  (:func:`repro.expr.disjunction.cover_disjuncts`);
* the ranges are scanned in ascending estimated size, their RIDs unioned
  (deduplicated — a record satisfying several disjuncts is fetched once);
* a two-stage competition projects the final fetch cost of the *union*
  while scanning; when the projection approaches the Tscan cost, the whole
  arrangement is abandoned in favour of Tscan (a disjunct covering most of
  the table makes every index plan useless — unlike AND, OR can only grow).

The result mirrors Jscan's: a sorted RID list for the final stage, or a
Tscan recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.btree.estimate import estimate_range
from repro.btree.tree import RangeCursor
from repro.competition.process import Process
from repro.competition.two_stage import SwitchCriterion, SwitchDecision
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.expr.disjunction import DisjunctRange
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.rid import RID, yao_pages_touched


@dataclass
class _DisjunctScan:
    """Live state of one disjunct's range scan."""

    ranged: DisjunctRange
    cursor: RangeCursor
    estimate: float
    scanned: int = 0


class UnionScanProcess(Process):
    """Scan every disjunct's range, unioning RIDs. One step == one entry."""

    def __init__(
        self,
        disjuncts: list[DisjunctRange],
        heap: HeapFile,
        buffer_pool: BufferPool,
        trace: RetrievalTrace,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str = "union-scan",
    ) -> None:
        super().__init__(name)
        if not disjuncts:
            raise ValueError("union scan needs at least one disjunct")
        self.heap = heap
        self.buffer_pool = buffer_pool
        self.trace = trace
        self.config = config
        self.criterion = SwitchCriterion(
            threshold=config.switch_threshold,
            scan_cost_limit_fraction=config.scan_cost_limit_fraction,
        )
        # estimate every range up front (cheap descents), scan small first:
        # a huge disjunct then triggers the switch before much work is sunk
        self._scans: list[_DisjunctScan] = []
        for ranged in disjuncts:
            estimate = estimate_range(ranged.index.btree, ranged.key_range, self.meter)
            self._scans.append(
                _DisjunctScan(
                    ranged=ranged,
                    cursor=ranged.index.btree.range_cursor(ranged.key_range, self.meter),
                    estimate=max(estimate.rids, 0.0),
                )
            )
        self._scans.sort(key=lambda scan: scan.estimate)
        self._current = 0
        self._rids: set[RID] = set()
        #: tap: called with each RID newly added to the union (duplicates
        #: are skipped); :meth:`next_batch` captures through it
        self.on_keep: "Callable[[RID], None] | None" = None
        self.duplicates_skipped = 0
        self.total_estimate = sum(scan.estimate for scan in self._scans)
        self.tscan_recommended = False
        self.span = trace.tracer.open(
            "scan",
            strategy="union",
            disjuncts=len(self._scans),
        )
        trace.emit(
            EventKind.SCAN_START,
            strategy="union-scan",
            disjuncts=len(self._scans),
            order=[scan.ranged.index.name for scan in self._scans],
        )
        self.trace.counters.scans_started += 1

    # -- cost model ---------------------------------------------------------

    def tscan_cost(self) -> float:
        """The guaranteed alternative: a full sequential scan."""
        return float(self.heap.page_count)

    def projected_final_cost(self) -> float | None:
        """Projected fetch cost of the completed union."""
        scanned = sum(scan.scanned for scan in self._scans)
        if scanned == 0 or self.total_estimate <= 0:
            return None
        fraction = scanned / max(self.total_estimate, float(scanned))
        if fraction < self.config.min_projection_fraction:
            return None
        projected_unique = len(self._rids) / fraction
        return yao_pages_touched(
            self.heap.page_count, self.heap.rows_per_page, int(projected_unique)
        )

    # -- stepping ----------------------------------------------------------------

    def _do_step(self) -> bool:
        while self._current < len(self._scans):
            scan = self._scans[self._current]
            entry = scan.cursor.next_entry()
            if entry is None:
                self.trace.emit(
                    EventKind.SCAN_COMPLETE,
                    index=scan.ranged.index.name,
                    scanned=scan.scanned,
                    kept=len(self._rids),
                )
                self._current += 1
                continue
            _, rid = entry
            scan.scanned += 1
            self.trace.counters.index_entries_scanned += 1
            if rid in self._rids:
                self.duplicates_skipped += 1
            else:
                self._rids.add(rid)
                if self.on_keep is not None:
                    self.on_keep(rid)
            decision = self.criterion.evaluate(
                self.projected_final_cost(), self.meter.total, self.tscan_cost()
            )
            if decision is not SwitchDecision.CONTINUE:
                reason = (
                    "projected-cost"
                    if decision is SwitchDecision.ABANDON_PROJECTED
                    else "scan-cost"
                )
                self.trace.emit(
                    EventKind.SCAN_ABANDONED,
                    index="union-scan",
                    reason=reason,
                    kept=len(self._rids),
                )
                self.trace.counters.scans_abandoned += 1
                self.tscan_recommended = True
                self._rids.clear()
                return True
            return False
        self.trace.emit(EventKind.RID_LIST_COMPLETE, rids=len(self._rids), union=True)
        return True

    def next_batch(self, max_rids: int) -> list[RID]:
        """Advance until up to ``max_rids`` RIDs joined the union.

        Returns the newly unioned RIDs in arrival order (duplicates never
        appear). Steps run through :meth:`run_batch` with accounting and
        switch decisions identical to repeated :meth:`step` calls. An empty
        list means the scan ended (union complete or Tscan recommended).
        """
        if max_rids < 1:
            raise ValueError("max_rids must be >= 1")
        fresh: list[RID] = []
        outer = self.on_keep

        def capture(rid: RID) -> None:
            fresh.append(rid)
            if outer is not None:
                outer(rid)

        self.on_keep = capture
        try:
            while self.active and len(fresh) < max_rids:
                self.run_batch(max_rids - len(fresh))
        finally:
            self.on_keep = outer
        return fresh

    # -- result -------------------------------------------------------------------

    def sorted_result(self) -> list[RID]:
        """The deduplicated union, sorted for page-clustered fetching."""
        return sorted(self._rids)

    @property
    def empty(self) -> bool:
        """True when the completed union is empty (no row can satisfy)."""
        return self.finished and not self.tscan_recommended and not self._rids

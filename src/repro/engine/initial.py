"""The initial retrieval stage (Section 5).

Runs at start-retrieval time, with host variables bound: classify the
available indexes (order-needed / self-sufficient / fetch-needed), derive
their key ranges, estimate range sizes by descent to split node, and arrange
the fetch-needed indexes in ascending estimated-RID order for Jscan.

Cost-containment techniques from the paper, all implemented here:

* indexes are prearranged in "the most probable ascending RID quantity
  order" — the previous execution's optimal order when the query is
  iterated (:class:`IterationContext`), a static heuristic otherwise;
* a very short range discovered early terminates estimation immediately
  (the OLTP shortcut);
* an empty range cancels all retrieval stages and delivers end-of-data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.btree.estimate import RangeEstimate, estimate_range
from repro.btree.tree import KeyRange
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import IndexInfo
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.expr.ast import Expr
from repro.expr.normalize import conjunction_terms
from repro.expr.ranges import extract_index_restriction
from repro.obs.audit import DecisionKind
from repro.storage.buffer_pool import CostMeter


@dataclass
class IterationContext:
    """Cross-execution memory for one (table, query-shape) pair.

    "The freshly (and optimally) reordered indexes are used for the next
    retrieval estimates as a starting point."
    """

    last_order: list[str] = field(default_factory=list)
    last_estimates: dict[str, float] = field(default_factory=dict)
    executions: int = 0

    def record(self, order: Sequence[str], estimates: Mapping[str, float]) -> None:
        """Store the order/estimates that this execution settled on."""
        self.last_order = list(order)
        self.last_estimates = dict(estimates)
        self.executions += 1


@dataclass
class JscanCandidate:
    """One fetch-needed index arranged for Jscan."""

    index: IndexInfo
    key_range: KeyRange
    #: descent-to-split estimate; None when estimation was shortcut
    estimate: RangeEstimate | None = None
    #: feedback-corrected RID count (None = no correction known); when set
    #: it overrides the raw estimate everywhere a tactic or Jscan projection
    #: reads :attr:`estimated_rids`
    adjusted_rids: float | None = None
    #: where the correction came from: "feedback" (signature-keyed store)
    #: or "histogram" (the estimator's self-tuning histogram)
    correction_source: str | None = None
    #: entries the executed scan actually found in this range (recorded
    #: back into the feedback store after the retrieval)
    observed: int | None = None

    @property
    def estimated_rids(self) -> float | None:
        """Effective RID count: feedback-adjusted when known, the raw
        descent estimate otherwise (None when not estimated)."""
        if self.adjusted_rids is not None:
            return self.adjusted_rids
        return self.estimate.rids if self.estimate is not None else None


@dataclass
class SscanCandidate:
    """One self-sufficient index with its scannable range."""

    index: IndexInfo
    key_range: KeyRange
    estimate: RangeEstimate | None = None
    #: feedback-corrected RID count (see :class:`JscanCandidate`)
    adjusted_rids: float | None = None
    #: correction provenance (see :class:`JscanCandidate`)
    correction_source: str | None = None
    #: entries the executed scan actually consumed (completed scans only)
    observed: int | None = None

    @property
    def estimated_rids(self) -> float | None:
        """Effective RID count (feedback-adjusted when known)."""
        if self.adjusted_rids is not None:
            return self.adjusted_rids
        return self.estimate.rids if self.estimate is not None else None


@dataclass
class InitialArrangement:
    """Everything the tactics need, decided at start-retrieval time."""

    #: True when an empty range proved the result empty (end of data)
    empty: bool = False
    #: fetch-needed indexes in scan order (ascending estimated RIDs)
    jscan_candidates: list[JscanCandidate] = field(default_factory=list)
    #: the cheapest self-sufficient index, if any
    best_sscan: SscanCandidate | None = None
    #: all self-sufficient candidates (cheapest first)
    sscan_candidates: list[SscanCandidate] = field(default_factory=list)
    #: index delivering the requested order, if one exists
    order_index: JscanCandidate | None = None
    #: cost charged for estimation descents
    estimation_cost: float = 0.0
    #: whether the small-range shortcut fired
    shortcut: bool = False


def _static_preorder(candidates: list[JscanCandidate]) -> list[JscanCandidate]:
    """Heuristic prearrangement before any estimation has run.

    More equality-pinned leading columns and more closed bounds usually mean
    fewer RIDs; unique indexes with full equality come first.
    """

    def rank(candidate: JscanCandidate) -> tuple:
        key_range = candidate.key_range
        exact_unique = (
            key_range.lo is not None
            and key_range.lo == key_range.hi
            and candidate.index.unique
            and len(key_range.lo) == len(candidate.index.columns)
        )
        closed_bounds = (key_range.lo is not None) + (key_range.hi is not None)
        equality = key_range.lo == key_range.hi and key_range.lo is not None
        prefix_length = len(key_range.lo or key_range.hi or ())
        return (
            0 if exact_unique else 1,
            0 if equality else 1,
            -closed_bounds,
            -prefix_length,
            candidate.index.name,
        )

    return sorted(candidates, key=rank)


def _context_preorder(
    candidates: list[JscanCandidate], context: IterationContext
) -> list[JscanCandidate]:
    """Start from the order the previous execution settled on."""
    position = {name: i for i, name in enumerate(context.last_order)}
    return sorted(
        candidates,
        key=lambda candidate: position.get(candidate.index.name, len(position)),
    )


def _apply_feedback(
    candidate: JscanCandidate | SscanCandidate,
    feedback: Any,
    table_name: str,
    restriction: Expr,
    estimator: Any = None,
) -> None:
    """Sharpen one inexact estimate from previously observed cardinality.

    Exact estimates (descent reached the range on one split level) are
    already the truth and are never second-guessed; the raw estimate stays
    in ``candidate.estimate`` so the correction never compounds across
    executions. Signature-keyed feedback wins when present; otherwise the
    estimator's self-tuning histogram — refined from *every* observed scan
    of this index, not just this predicate shape — backs up cold
    signatures.
    """
    estimate = candidate.estimate
    if estimate is None or estimate.exact:
        return
    if feedback is not None:
        adjusted = feedback.adjust(
            table_name, candidate.index.name, restriction, estimate.rids
        )
        if adjusted is not None:
            candidate.adjusted_rids = float(adjusted)
            candidate.correction_source = "feedback"
            return
    if estimator is not None and estimator.enabled:
        key_range = candidate.key_range
        learned = estimator.estimate_range(
            table_name,
            candidate.index.name,
            key_range.lo[0] if key_range.lo else None,
            key_range.hi[0] if key_range.hi else None,
        )
        if learned is not None:
            candidate.adjusted_rids = float(learned)
            candidate.correction_source = "histogram"


def run_initial_stage(
    indexes: Sequence[IndexInfo],
    restriction: Expr,
    host_vars: Mapping[str, Any],
    needed_columns: frozenset[str],
    order_by: Sequence[str],
    meter: CostMeter,
    trace: RetrievalTrace,
    config: EngineConfig = DEFAULT_CONFIG,
    context: IterationContext | None = None,
    feedback: Any = None,
    table_name: str = "",
    estimator: Any = None,
) -> InitialArrangement:
    """Classify, estimate, and arrange the available indexes."""
    terms = conjunction_terms(restriction)
    arrangement = InitialArrangement()
    fetch_needed: list[JscanCandidate] = []
    before = meter.total

    for index in indexes:
        index_restriction = extract_index_restriction(terms, index.columns, host_vars)
        key_range = index_restriction.key_range
        if index.provides_order(order_by) and arrangement.order_index is None:
            arrangement.order_index = JscanCandidate(index=index, key_range=key_range)
        if index.covers(needed_columns):
            arrangement.sscan_candidates.append(
                SscanCandidate(index=index, key_range=key_range)
            )
        elif index_restriction.matched:
            fetch_needed.append(JscanCandidate(index=index, key_range=key_range))

    # prearrange: iteration context first, static heuristic otherwise
    if context is not None and context.last_order:
        fetch_needed = _context_preorder(fetch_needed, context)
    else:
        fetch_needed = _static_preorder(fetch_needed)

    # estimate in prearranged order, with shortcut and empty detection
    if config.dynamic_estimation:
        for position, candidate in enumerate(fetch_needed):
            candidate.estimate = estimate_range(
                candidate.index.btree, candidate.key_range, meter
            )
            _apply_feedback(candidate, feedback, table_name, restriction, estimator)
            detail: dict[str, Any] = dict(
                index=candidate.index.name,
                range=candidate.key_range.describe(),
                rids=round(candidate.estimate.rids, 1),
                exact=candidate.estimate.exact,
            )
            if candidate.adjusted_rids is not None:
                label = (
                    "learned_rids"
                    if candidate.correction_source == "histogram"
                    else "feedback_rids"
                )
                detail[label] = round(candidate.adjusted_rids, 1)
            trace.emit(EventKind.INITIAL_ESTIMATE, **detail)
            if candidate.estimate.is_empty:
                trace.emit(EventKind.SHORTCUT_EMPTY, index=candidate.index.name)
                arrangement.empty = True
                arrangement.estimation_cost = meter.total - before
                return arrangement
            if candidate.estimated_rids <= config.shortcut_rid_count:
                trace.emit(
                    EventKind.SHORTCUT_SMALL_RANGE,
                    index=candidate.index.name,
                    rids=round(candidate.estimated_rids, 1),
                    skipped_estimates=len(fetch_needed) - position - 1,
                )
                arrangement.shortcut = True
                break

    # final order: estimated candidates ascending, unestimated after in
    # prearranged order
    estimated = [c for c in fetch_needed if c.estimate is not None]
    unestimated = [c for c in fetch_needed if c.estimate is None]
    estimated.sort(key=lambda candidate: candidate.estimated_rids)
    arrangement.jscan_candidates = estimated + unestimated
    trace.emit(
        EventKind.INDEXES_ORDERED,
        order=[candidate.index.name for candidate in arrangement.jscan_candidates],
    )
    audit = trace.audit
    if audit.enabled and arrangement.jscan_candidates:
        audit.decision(
            DecisionKind.INDEX_ORDERING,
            chosen=arrangement.jscan_candidates[0].index.name,
            alternatives=tuple(
                candidate.index.name
                for candidate in arrangement.jscan_candidates[1:]
            ),
            estimates={
                candidate.index.name: (
                    round(candidate.estimated_rids, 1)
                    if candidate.estimate is not None
                    else None
                )
                for candidate in arrangement.jscan_candidates
            },
            shortcut=arrangement.shortcut,
        )

    # estimate self-sufficient candidates (scan cost ~ range size)
    for candidate in arrangement.sscan_candidates:
        if config.dynamic_estimation:
            candidate.estimate = estimate_range(
                candidate.index.btree, candidate.key_range, meter
            )
            _apply_feedback(candidate, feedback, table_name, restriction, estimator)
    arrangement.sscan_candidates.sort(
        key=lambda candidate: (
            candidate.estimated_rids
            if candidate.estimate is not None
            else float("inf")
        )
    )
    if arrangement.sscan_candidates:
        arrangement.best_sscan = arrangement.sscan_candidates[0]
        best = arrangement.best_sscan
        if (
            config.dynamic_estimation
            and best.estimate is not None
            and best.estimate.is_empty
        ):
            # a provably empty range proves the whole conjunction empty
            # (an empty *full* range just means the table itself is empty)
            trace.emit(EventKind.SHORTCUT_EMPTY, index=best.index.name)
            arrangement.empty = True

    arrangement.estimation_cost = meter.total - before
    return arrangement

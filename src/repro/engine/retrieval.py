"""The single-table retrieval executor (Figure 4).

Entry point of the dynamic optimizer: classify and estimate the available
indexes (initial stage), resolve the clear cases statically, and dispatch
the uncertain ones to a competition tactic. Foreground processes deliver
records immediately; background processes work toward the shortest RID list
or a Tscan recommendation; the final stage runs only on background
completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Sequence

from repro.competition.process import advance, drain
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import IndexInfo, TableSchema
from repro.engine.goals import OptimizationGoal
from repro.engine.initial import (
    InitialArrangement,
    IterationContext,
    run_initial_stage,
)
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.engine.scans import SscanProcess, TscanProcess
from repro.engine.tactics import (
    StepOutcome,
    TacticContext,
    TacticOutcome,
    background_only_steps,
    fast_first_steps,
    index_only_steps,
    sorted_tactic_steps,
    union_or_steps,
)
from repro.expr.disjunction import cover_disjuncts
from repro.errors import RetrievalError
from repro.expr.ast import ALWAYS_TRUE, Expr
from repro.expr.eval import compile_predicate, referenced_columns
from repro.obs.audit import AuditLog, DecisionKind
from repro.obs.trace import Tracer
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


@dataclass
class RetrievalRequest:
    """One retrieval to execute against a single table."""

    restriction: Expr = ALWAYS_TRUE
    host_vars: Mapping[str, Any] = field(default_factory=dict)
    #: columns the caller will read (None = all table columns)
    output_columns: tuple[str, ...] | None = None
    #: requested delivery order (column names, ascending)
    order_by: tuple[str, ...] = ()
    #: stop after this many delivered records (None = all)
    limit: int | None = None
    goal: OptimizationGoal = OptimizationGoal.DEFAULT
    #: per-plan compiled-predicate cache (``repro.cache.PredicateCache``);
    #: None compiles the restriction once for this retrieval only
    predicate_cache: Any | None = None
    #: adaptive selectivity feedback store (``repro.cache.FeedbackStore``);
    #: None leaves raw descent estimates untouched
    feedback: Any | None = None
    #: estimation-quality subsystem (``repro.estimate.Estimator``); when
    #: attached, every completed scan's effective estimated-vs-actual pair
    #: is ring-buffered at retirement, its per-index histogram backs up
    #: cold feedback signatures, and its confidence verdicts gate whether
    #: a competition is staged at all
    estimator: Any | None = None
    #: bypass the dispatcher and run one named strategy — used by
    #: counterfactual replay (:mod:`repro.obs.regret`) to execute a
    #: rejected alternative. Vocabulary: ``tscan``, ``sscan``,
    #: ``sorted-sscan``, ``sorted``, ``index-only``, ``fast-first``,
    #: ``background-only``, ``union-or``. None (the default) keeps the
    #: normal dynamic dispatch.
    force_strategy: str | None = None


@dataclass
class RetrievalResult:
    """Rows plus the dynamic execution metrics of how they were obtained."""

    rows: list[tuple]
    rids: list[RID]
    trace: RetrievalTrace
    description: str
    goal: OptimizationGoal
    stopped_early: bool = False
    estimation_cost: float = 0.0
    execution_cost: float = 0.0
    execution_io: int = 0
    #: how a partitioned retrieval was scattered and merged
    #: (:class:`repro.partition.scatter.ScatterInfo`; None for ordinary
    #: single-table retrievals)
    scatter: Any = None

    @property
    def total_cost(self) -> float:
        """Estimation plus execution cost, in page-I/O units."""
        return self.estimation_cost + self.execution_cost

    def summary(self) -> str:
        """One-paragraph account of what the optimizer did — the
        user-facing face of the paper's "dynamic execution metrics"."""
        counters = self.trace.counters
        lines = [
            f"strategy : {self.description}",
            f"goal     : {self.goal.value}"
            + ("  (stopped early by consumer)" if self.stopped_early else ""),
            f"rows     : {len(self.rows)} delivered, "
            f"{counters.records_fetched} records fetched, "
            f"{counters.fetches_rejected} fetches rejected",
            f"index    : {counters.index_entries_scanned} entries scanned, "
            f"{counters.rids_filtered_out} RIDs filtered out",
            f"scans    : {counters.scans_started} started, "
            f"{counters.scans_abandoned} abandoned, "
            f"{counters.strategy_switches} strategy switches",
            f"cost     : {self.total_cost:.1f} "
            f"({self.estimation_cost:.1f} estimation + "
            f"{self.execution_cost:.1f} execution; {self.execution_io} physical I/O)",
        ]
        return "\n".join(lines)


class SingleTableRetrieval:
    """The retrieval subsystem for one table."""

    def __init__(
        self,
        heap: HeapFile,
        schema: TableSchema,
        indexes: Sequence[IndexInfo],
        buffer_pool: BufferPool,
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.heap = heap
        self.schema = schema
        self.indexes = list(indexes)
        self.buffer_pool = buffer_pool
        self.config = config

    # -- public API ---------------------------------------------------------

    def run(
        self,
        request: RetrievalRequest,
        context: IterationContext | None = None,
        tracer: "Tracer | None" = None,
    ) -> RetrievalResult:
        """Execute one retrieval, dynamically choosing/racing strategies."""
        return drain(self.run_steps(request, context, tracer))

    def run_steps(
        self,
        request: RetrievalRequest,
        context: IterationContext | None = None,
        tracer: "Tracer | None" = None,
    ) -> Generator[RetrievalResult, None, RetrievalResult]:
        """Execute one retrieval as a step generator.

        Yields the live (partially filled) :class:`RetrievalResult` once per
        scheduling quantum — up to ``config.batch_size`` engine steps — so a
        server-level scheduler can interleave many retrievals over the
        shared buffer pool without paying a generator suspension per step
        (``batch_size=1`` restores one yield per step). Closing the
        generator mid-flight cancels the retrieval: every still-active
        process is abandoned (releasing its buffers and temp structures) and
        the trace records ``SCAN_ABANDONED`` / ``CONSUMER_STOPPED`` events.

        When a :class:`~repro.obs.trace.Tracer` is supplied, the whole
        retrieval runs inside a ``retrieval`` span: initial-stage events,
        tactic spans, and scan spans all nest under it in the timeline.
        """
        trace = RetrievalTrace(tracer)
        span = trace.tracer.begin(
            "retrieval", table=self.heap.name, goal=request.goal.value
        )
        audit = trace.audit
        if audit.enabled:
            audit.begin_retrieval(self.heap.name, request)
        estimation_meter = CostMeter(name="initial-stage")
        goal = request.goal
        if goal is OptimizationGoal.DEFAULT:
            goal = OptimizationGoal.TOTAL_TIME

        needs_post_sort = bool(request.order_by)
        rows: list[tuple] = []
        rids: list[RID] = []
        limit = request.limit

        output = request.output_columns or self.schema.names
        needed = frozenset(referenced_columns(request.restriction)) | set(output) | set(
            request.order_by
        )
        unknown = [name for name in needed if name not in self.schema]
        if unknown:
            raise RetrievalError(f"unknown columns {sorted(unknown)}")

        arrangement = run_initial_stage(
            self.indexes,
            request.restriction,
            request.host_vars,
            needed,
            request.order_by,
            estimation_meter,
            trace,
            self.config,
            context,
            feedback=request.feedback,
            table_name=self.heap.name,
            estimator=request.estimator,
        )
        if arrangement.order_index is not None and request.order_by:
            needs_post_sort = False

        # a SORT node controls the retrieval when we must post-sort: the
        # paper's rule forces total-time in that case
        if needs_post_sort:
            goal = OptimizationGoal.TOTAL_TIME

        collect_limit = None if needs_post_sort else limit

        def sink(rid: RID, row: tuple) -> bool:
            rows.append(row)
            rids.append(rid)
            return collect_limit is None or len(rows) < collect_limit

        result = RetrievalResult(
            rows=rows, rids=rids, trace=trace, description="", goal=goal,
            estimation_cost=estimation_meter.total,
        )

        if arrangement.empty:
            result.description = "shortcut: provably empty result"
            trace.emit(EventKind.RETRIEVAL_COMPLETE, rows=0)
            self._record_context(context, arrangement)
            if audit.enabled:
                audit.end_retrieval(result)
            trace.tracer.end(span, rows=0, shortcut="empty")
            return result

        # compile the restriction once for the whole retrieval — or fetch
        # the plan's cached compilation when executing a cached plan
        if request.predicate_cache is not None:
            predicate = request.predicate_cache.get(
                request.restriction, self.schema.position, request.host_vars
            )
        else:
            predicate = compile_predicate(
                request.restriction, self.schema.position, request.host_vars
            )

        ctx = TacticContext(
            heap=self.heap,
            schema=self.schema,
            restriction=request.restriction,
            host_vars=request.host_vars,
            buffer_pool=self.buffer_pool,
            arrangement=arrangement,
            sink=sink,
            trace=trace,
            config=self.config,
            predicate=predicate,
        )
        if request.force_strategy is not None:
            inner = self._dispatch_forced(ctx, arrangement, request.force_strategy)
        else:
            inner = self._dispatch_steps(
                ctx, arrangement, goal, bool(request.order_by),
                estimator=request.estimator,
            )
        try:
            while True:
                try:
                    next(inner)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                yield result
        except GeneratorExit:
            # cancellation: the scheduler closed us mid-retrieval; closing
            # ``inner`` ends the tactic span first, keeping strict nesting
            inner.close()
            self._abandon_spawned(ctx, trace)
            # the sunk cost of the abandoned processes still belongs to the
            # retrieval: cancelled (and budget-truncated replay) results
            # report the work they actually did
            result.execution_cost = sum(p.meter.total for p in ctx.spawned)
            result.execution_io = sum(p.meter.io_total for p in ctx.spawned)
            trace.tracer.end(span, cancelled=True)
            raise

        result.description = outcome.description
        result.stopped_early = outcome.stopped_by_consumer
        result.execution_cost = outcome.total_cost
        result.execution_io = outcome.total_io

        if needs_post_sort:
            self._post_sort(rows, rids, request.order_by)
            if limit is not None and len(rows) > limit:
                del rows[limit:]
                del rids[limit:]
            result.description += " -> sort"
        trace.emit(EventKind.RETRIEVAL_COMPLETE, rows=len(rows))
        self._record_context(context, arrangement)
        self._record_feedback(request, arrangement)
        self._record_estimator(request, arrangement)
        if audit.enabled:
            self._record_audit_estimates(audit, arrangement)
            audit.end_retrieval(result)
        trace.tracer.end(
            span,
            rows=len(rows),
            cost=round(result.total_cost, 3),
            io=result.execution_io,
            strategy=result.description,
        )
        return result

    # -- dispatch ---------------------------------------------------------------

    def _dispatch_steps(
        self,
        ctx: TacticContext,
        arrangement: InitialArrangement,
        goal: OptimizationGoal,
        order_requested: bool,
        estimator: Any | None = None,
    ) -> StepOutcome:
        audit = ctx.trace.audit

        def record(chosen: str, alternatives: tuple[str, ...], **inputs: Any) -> None:
            # the explicit tactic-selection decision: names the rejected
            # strategies in the replayable force_strategy vocabulary and
            # carries the estimates the dispatch was decided on
            if audit.enabled:
                best = arrangement.best_sscan
                audit.decision(
                    DecisionKind.TACTIC_SELECTION,
                    chosen,
                    alternatives,
                    goal=goal.value,
                    tscan_pages=self.heap.page_count,
                    jscan_candidates=len(arrangement.jscan_candidates),
                    best_jscan_rids=(
                        arrangement.jscan_candidates[0].estimated_rids
                        if arrangement.jscan_candidates
                        else None
                    ),
                    best_sscan_rids=(
                        best.estimated_rids if best is not None else None
                    ),
                    **inputs,
                )

        if order_requested and arrangement.order_index is not None:
            order_index = arrangement.order_index.index
            covering = next(
                (
                    candidate
                    for candidate in arrangement.sscan_candidates
                    if candidate.index is order_index
                ),
                None,
            )
            if covering is not None:
                # the order index is also self-sufficient: an ordered Sscan
                # delivers sorted results with zero record fetches — a clear
                # case, no competition needed
                record("sorted-sscan", ("sorted",), index=covering.index.name)
                return (yield from self._run_sscan_steps(ctx, covering, ordered=True))
            record("sorted", ("tscan",), order_index=order_index.name)
            return (yield from sorted_tactic_steps(ctx))
        has_jscan = bool(arrangement.jscan_candidates)
        has_sscan = arrangement.best_sscan is not None
        if has_sscan and has_jscan:
            winner = self._gate_competition(ctx, arrangement, estimator, audit)
            if winner == "sscan":
                best = arrangement.best_sscan
                assert best is not None
                return (yield from self._run_sscan_steps(ctx, best))
            if winner == "background-only":
                return (yield from background_only_steps(ctx))
            record("index-only", ("sscan", "background-only"))
            return (yield from index_only_steps(ctx))
        if has_sscan:
            # clear case: "the only optimization task to be resolved is to
            # pick the one whose scan is the cheapest"
            best = arrangement.best_sscan
            assert best is not None
            record("sscan", ("tscan",), index=best.index.name)
            return (yield from self._run_sscan_steps(ctx, best))
        if has_jscan:
            if goal is OptimizationGoal.FAST_FIRST:
                record("fast-first", ("tscan",))
                return (yield from fast_first_steps(ctx))
            record("background-only", ("tscan",))
            return (yield from background_only_steps(ctx))
        # OR extension (Section 8): a disjunctive restriction whose every
        # top-level disjunct is covered by some index range can be resolved
        # by a union joint scan
        covered = cover_disjuncts(ctx.restriction, self.indexes, ctx.host_vars)
        if covered:
            record("union-or", ("tscan",), disjuncts=len(covered))
            return (yield from union_or_steps(ctx, covered))
        # clear case: no useful index at all
        record("tscan", ())
        return (yield from self._run_tscan_steps(ctx))

    def _dispatch_forced(
        self, ctx: TacticContext, arrangement: InitialArrangement, strategy: str
    ) -> StepOutcome:
        """Run one named strategy, bypassing the dynamic dispatch.

        Counterfactual replay (:mod:`repro.obs.regret`) uses this to
        execute a rejected alternative against the (shadow) arrangement.
        Raises :class:`~repro.errors.RetrievalError` when the arrangement
        cannot support the strategy.
        """
        if strategy == "tscan":
            return (yield from self._run_tscan_steps(ctx))
        if strategy in ("sscan", "sorted-sscan"):
            if strategy == "sorted-sscan" and arrangement.order_index is not None:
                order_index = arrangement.order_index.index
                covering = next(
                    (
                        candidate
                        for candidate in arrangement.sscan_candidates
                        if candidate.index is order_index
                    ),
                    None,
                )
                if covering is not None:
                    return (
                        yield from self._run_sscan_steps(ctx, covering, ordered=True)
                    )
            best = arrangement.best_sscan
            if best is None:
                raise RetrievalError(
                    f"cannot force {strategy!r}: no self-sufficient index"
                )
            return (yield from self._run_sscan_steps(ctx, best))
        if strategy == "sorted":
            if arrangement.order_index is None:
                raise RetrievalError("cannot force 'sorted': no order index")
            return (yield from sorted_tactic_steps(ctx))
        if strategy == "index-only":
            if arrangement.best_sscan is None:
                raise RetrievalError(
                    "cannot force 'index-only': no self-sufficient index"
                )
            return (yield from index_only_steps(ctx))
        if strategy in ("fast-first", "background-only"):
            if not arrangement.jscan_candidates:
                raise RetrievalError(
                    f"cannot force {strategy!r}: no fetch-needed index"
                )
            if strategy == "fast-first":
                return (yield from fast_first_steps(ctx))
            return (yield from background_only_steps(ctx))
        if strategy == "union-or":
            covered = cover_disjuncts(ctx.restriction, self.indexes, ctx.host_vars)
            if not covered:
                raise RetrievalError(
                    "cannot force 'union-or': disjuncts not index-covered"
                )
            return (yield from union_or_steps(ctx, covered))
        raise RetrievalError(f"unknown forced strategy {strategy!r}")

    def _gate_competition(
        self,
        ctx: TacticContext,
        arrangement: InitialArrangement,
        estimator: Any | None,
        audit: AuditLog,
    ) -> str | None:
        """The variance gate: skip the index-only race when estimates are
        demonstrably trustworthy.

        Competition exists because initial estimates are untrusted. Once
        the estimator has seen this (table, index, signature) enough times
        with stable, near-1 q-errors on *both* competing candidates, the
        corrected estimates decide the race's outcome just as reliably as
        running it — so pick the winner statically, audit the skip with
        its confidence inputs, and save the loser's wasted steps. Returns
        the strategy to run directly (``"sscan"`` / ``"background-only"``)
        or None to compete as usual.
        """
        if estimator is None or not self.config.competition_gate:
            return None
        best = arrangement.best_sscan
        lead = arrangement.jscan_candidates[0]
        assert best is not None
        if best.estimated_rids is None or any(
            candidate.estimated_rids is None
            for candidate in arrangement.jscan_candidates
        ):
            # an unestimated candidate (estimation shortcut or disabled
            # dynamic estimation) has no projection to trust — compete
            estimator.competed += 1
            return None
        verdict = estimator.combined_verdict(
            [
                (self.heap.name, best.index.name, ctx.restriction),
                (self.heap.name, lead.index.name, ctx.restriction),
            ]
        )
        # even a non-trusting score informs the switch criteria downstream
        ctx.confidence = verdict.score
        if not verdict.trust:
            estimator.competed += 1
            return None
        config = self.config
        # trusted corrected projections of both arms: the sscan walks its
        # whole range entry by entry; the jscan walks every candidate's
        # range and then random-fetches the (at most) shortest RID list
        sscan_cost = best.estimated_rids * config.cpu_cost_per_entry
        jscan_entries = sum(
            candidate.estimated_rids for candidate in arrangement.jscan_candidates
        )
        fetch_rids = min(
            candidate.estimated_rids for candidate in arrangement.jscan_candidates
        )
        jscan_cost = jscan_entries * config.cpu_cost_per_entry + fetch_rids * 1.0
        winner = "sscan" if sscan_cost <= jscan_cost else "background-only"
        estimator.trusted += 1
        if audit.enabled:
            audit.decision(
                DecisionKind.COMPETITION_SKIPPED,
                winner,
                ("index-only",),
                sscan_cost=round(sscan_cost, 3),
                jscan_cost=round(jscan_cost, 3),
                **verdict.inputs(),
            )
        ctx.trace.emit(
            EventKind.COMPETITION_SKIPPED,
            winner=winner,
            confidence=round(verdict.score, 4),
        )
        return winner

    @staticmethod
    def _record_audit_estimates(
        audit: AuditLog, arrangement: InitialArrangement
    ) -> None:
        """Feed estimated-vs-observed cardinalities into the audit log.

        These pairs drive the estimate-error-ratio histogram — the live
        capture of the paper's Figure 2.1/2.2 L-shapes."""
        candidates = list(arrangement.jscan_candidates) + list(
            arrangement.sscan_candidates
        )
        for candidate in candidates:
            estimate = candidate.estimate
            if estimate is None or candidate.observed is None:
                continue
            audit.observe_estimate(
                candidate.index.name, estimate.rids, candidate.observed
            )

    def _run_sscan_steps(
        self, ctx: TacticContext, candidate, ordered: bool = False
    ) -> StepOutcome:
        label = "sorted-sscan" if ordered else "sscan"
        span = ctx.trace.tracer.begin("tactic", tactic=label)
        try:
            ctx.trace.emit(
                EventKind.TACTIC_SELECTED,
                tactic=label,
                index=candidate.index.name,
            )
            ctx.trace.emit(
                EventKind.SCAN_START, strategy="sscan", index=candidate.index.name
            )
            sscan = ctx.spawn(SscanProcess(
                candidate.index, candidate.key_range, ctx.schema, ctx.restriction,
                ctx.host_vars, ctx.sink, ctx.trace, ctx.config,
                predicate=ctx.predicate,
            ))
            yield from advance(sscan, ctx.config.batch_size)
            if sscan.finished and not sscan.stopped_by_consumer:
                # whole range walked: true cardinality for the feedback loop
                candidate.observed = sscan.cursor.consumed
        finally:
            ctx.trace.tracer.end(span)
        return TacticOutcome(
            processes=[sscan],
            description=f"{label}({candidate.index.name})",
            stopped_by_consumer=sscan.stopped_by_consumer,
        )

    def _run_tscan_steps(self, ctx: TacticContext) -> StepOutcome:
        span = ctx.trace.tracer.begin("tactic", tactic="tscan")
        try:
            ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="tscan")
            ctx.trace.emit(EventKind.SCAN_START, strategy="tscan")
            tscan = ctx.spawn(TscanProcess(
                ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars, ctx.sink,
                ctx.trace, ctx.config, predicate=ctx.predicate,
            ))
            yield from advance(tscan, ctx.config.batch_size)
        finally:
            ctx.trace.tracer.end(span)
        return TacticOutcome(
            processes=[tscan],
            description="tscan",
            stopped_by_consumer=tscan.stopped_by_consumer,
        )

    @staticmethod
    def _abandon_spawned(ctx: TacticContext, trace: RetrievalTrace) -> None:
        """Cancellation cleanup: abandon every still-active process.

        ``Process.abandon`` releases held resources (Jscan discards its
        hybrid RID lists, freeing spilled temp-table pages) — the cancelled
        query must leave nothing behind in the shared pool.
        """
        for process in ctx.spawned:
            if process.active:
                process.abandon()
                trace.counters.scans_abandoned += 1
                trace.emit(
                    EventKind.SCAN_ABANDONED, index=process.name, reason="cancelled"
                )
        trace.emit(EventKind.CONSUMER_STOPPED, by="cancellation")

    # -- helpers -------------------------------------------------------------------

    def _post_sort(
        self, rows: list[tuple], rids: list[RID], order_by: tuple[str, ...]
    ) -> None:
        positions = [self.schema.index_of(name) for name in order_by]
        paired = sorted(
            zip(rows, rids),
            key=lambda pair: tuple(pair[0][position] for position in positions),
        )
        rows[:] = [row for row, _ in paired]
        rids[:] = [rid for _, rid in paired]

    def _record_feedback(
        self, request: RetrievalRequest, arrangement: InitialArrangement
    ) -> None:
        """Record estimated-vs-actual cardinality for every completed scan.

        The raw descent estimate (never the adjusted one) is compared to
        the observed entry count, so corrections converge instead of
        compounding across executions. Exact estimates are already the
        truth and produce no feedback.
        """
        feedback = request.feedback
        if feedback is None:
            return
        candidates = list(arrangement.jscan_candidates) + list(
            arrangement.sscan_candidates
        )
        for candidate in candidates:
            estimate = candidate.estimate
            if estimate is None or estimate.exact or candidate.observed is None:
                continue
            feedback.record(
                self.heap.name,
                candidate.index.name,
                request.restriction,
                estimate.rids,
                candidate.observed,
            )

    def _record_estimator(
        self, request: RetrievalRequest, arrangement: InitialArrangement
    ) -> None:
        """Ring-buffer every completed scan's *effective* estimate q-error.

        Unlike :meth:`_record_feedback` (which must record raw estimates
        so corrections converge), the estimator scores the estimate the
        engine actually *acted on* — ``estimated_rids`` with feedback
        applied — because that is the number whose trustworthiness the
        competition gate rides on. The scanned key range tags along so the
        per-(table, index) self-tuning histogram can refine itself.
        """
        estimator = request.estimator
        if estimator is None or not estimator.enabled:
            return
        candidates = list(arrangement.jscan_candidates) + list(
            arrangement.sscan_candidates
        )
        for candidate in candidates:
            if candidate.estimate is None or candidate.observed is None:
                continue
            key_range = candidate.key_range
            estimator.record(
                self.heap.name,
                candidate.index.name,
                request.restriction,
                candidate.estimated_rids,
                candidate.observed,
                lo=key_range.lo[0] if key_range.lo else None,
                hi=key_range.hi[0] if key_range.hi else None,
            )

    def _record_context(
        self, context: IterationContext | None, arrangement: InitialArrangement
    ) -> None:
        if context is None:
            return
        order = [candidate.index.name for candidate in arrangement.jscan_candidates]
        estimates = {
            candidate.index.name: candidate.estimate.rids
            for candidate in arrangement.jscan_candidates
            if candidate.estimate is not None
        }
        context.record(order, estimates)

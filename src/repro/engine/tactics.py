"""The four competition tactics of Section 7.

* **Background-only** — total-time, fetch-needed indexes only: Jscan, then
  the final stage (or Tscan when Jscan recommends it).
* **Fast-first** — fast-first, fetch-needed indexes only: Jscan in the
  background while a foreground process "borrows" RIDs from Jscan's first
  index scan, fetches and delivers immediately; a direct
  foreground/background competition decides when the foreground stops.
* **Sorted** — fast-first with an order-needed index: foreground Fscan in
  the requested order, background Jscan over the remaining indexes builds a
  filter that, once complete, suppresses useless foreground fetches.
* **Index-only** — a self-sufficient index exists: foreground Sscan races
  background Jscan; buffer overflow kills Jscan (Sscan is safer), a small
  complete RID list kills Sscan.

Each tactic is a *step generator* taking a :class:`TacticContext` and
yielding control once per *batch* of process steps
(``config.batch_size``, default 64) until it returns a
:class:`TacticOutcome` — the yield points are where the multi-query
scheduler (:mod:`repro.server`) interleaves concurrent retrievals and where
cancellation lands. Batching changes only the yield frequency: inside a
batch the competition still interleaves foreground/background one step at
a time and evaluates every switch criterion after every step, so switch
points and cost accounting are identical at any batch size
(``batch_size=1`` restores one yield per step exactly). The plain-named
functions (``fast_first`` etc.) are synchronous wrappers that drain their
``*_steps`` generator; the dispatcher lives in
:mod:`repro.engine.retrieval`.
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping

from repro.competition.process import Process, advance, drain
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import TableSchema
from repro.engine.final_stage import FinalStageProcess
from repro.engine.initial import InitialArrangement
from repro.engine.jscan import JscanProcess
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.engine.scans import (
    FscanProcess,
    Predicate,
    Sink,
    SscanProcess,
    TscanProcess,
)
from repro.expr.ast import Expr
from repro.expr.eval import compile_predicate
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


@dataclass
class TacticContext:
    """Everything a tactic needs to run one retrieval."""

    heap: HeapFile
    schema: TableSchema
    restriction: Expr
    host_vars: Mapping[str, Any]
    buffer_pool: BufferPool
    arrangement: InitialArrangement
    sink: Sink
    trace: RetrievalTrace
    config: EngineConfig = DEFAULT_CONFIG
    #: the restriction compiled once per retrieval (or shared across
    #: executions through a plan's predicate cache); every scan a tactic
    #: spawns reuses this callable instead of compiling its own
    predicate: Predicate | None = None
    #: every process a tactic created, active or not — the cancellation path
    #: abandons whatever is still running so scans release their buffers and
    #: temp structures mid-flight
    spawned: list[Process] = field(default_factory=list)
    #: estimate-confidence score for this retrieval's candidates, set by
    #: the dispatcher's variance gate (None = no estimator attached).
    #: Tactics that apply switch criteria scale their thresholds with it:
    #: trustworthy projections justify abandoning laggards earlier.
    confidence: float | None = None

    def spawn(self, process: Process) -> Process:
        """Register a process for cancellation tracking and return it."""
        self.spawned.append(process)
        return process

    def switch_fraction(self) -> float:
        """``scan_cost_limit_fraction`` tightened by estimate confidence
        (up to 20% at full confidence; unchanged with no estimator)."""
        fraction = self.config.scan_cost_limit_fraction
        if self.confidence is not None and self.confidence > 0.0:
            fraction *= 1.0 - 0.2 * min(1.0, self.confidence)
        return fraction


@dataclass
class TacticOutcome:
    """What a tactic did: the processes it ran (for cost accounting) and a
    human-readable account of the strategy that delivered the result."""

    processes: list[Process] = field(default_factory=list)
    description: str = ""
    stopped_by_consumer: bool = False

    @property
    def total_cost(self) -> float:
        """Cost summed over every process the tactic ran (sunk costs included)."""
        return sum(process.meter.total for process in self.processes)

    @property
    def total_io(self) -> int:
        """Physical I/O summed over every process."""
        return sum(process.meter.io_total for process in self.processes)


class ForegroundBuffer:
    """Bounded buffer of RIDs delivered by a foreground process.

    Used by the final stage to filter out already-delivered records. The
    bound matters: overflowing it forces the foreground to terminate
    (fast-first) or the background to be abandoned (index-only).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._rids: set[RID] = set()

    def __len__(self) -> int:
        return len(self._rids)

    def add(self, rid: RID) -> bool:
        """Record a delivered RID; returns False on overflow."""
        if len(self._rids) >= self.capacity:
            return False
        self._rids.add(rid)
        return True

    def __contains__(self, rid: RID) -> bool:
        return rid in self._rids


class BorrowingFetchProcess(Process):
    """The fast-first foreground: fetches RIDs borrowed from Jscan.

    "Fgr may borrow RIDs from Bgr in order to satisfy a fast-first request."
    One step == one borrowed RID: fetch, evaluate the full restriction,
    deliver, and remember the RID in the foreground buffer.
    """

    def __init__(
        self,
        queue: deque[RID],
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        fgr_buffer: ForegroundBuffer,
        trace: RetrievalTrace,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str = "foreground-borrow",
        predicate: Predicate | None = None,
    ) -> None:
        super().__init__(name)
        self.queue = queue
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.predicate = predicate if predicate is not None else compile_predicate(
            restriction, schema.position, self.host_vars
        )
        self.sink = sink
        self.fgr_buffer = fgr_buffer
        self.trace = trace
        self.config = config
        self.stopped_by_consumer = False
        self.buffer_overflow = False
        self.delivered = 0
        self.rejected = 0
        self.span = trace.tracer.open("scan", strategy="foreground-borrow")

    @property
    def has_work(self) -> bool:
        """True when a borrowed RID is waiting."""
        return bool(self.queue)

    def _do_step(self) -> bool:
        if not self.queue:
            return False  # idle step; the tactic loop avoids calling these
        rid = self.queue.popleft()
        row = self.heap.fetch(rid, self.meter)
        self.meter.charge_cpu(self.config.cpu_cost_per_record)
        self.trace.counters.records_fetched += 1
        if self.predicate(row):
            if not self.fgr_buffer.add(rid):
                self.buffer_overflow = True
                return True  # overflow terminates the foreground run
            self.delivered += 1
            self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        else:
            self.rejected += 1
            self.trace.counters.fetches_rejected += 1
        return False


#: a tactic written as a step generator: yields after every process step,
#: returns the outcome when the retrieval is resolved
StepOutcome = Generator[None, None, TacticOutcome]


def _traced(name: str):
    """Wrap a tactic step generator in a ``tactic`` timeline span.

    The span opens when the tactic generator first runs and closes in a
    ``finally`` — so cancellation (GeneratorExit) still closes it, keeping
    the tracer's span stack strictly nested. An abandoned tactic is marked
    ``abandoned``; a completed one records its outcome description.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(ctx: TacticContext, *args: Any, **kwargs: Any) -> StepOutcome:
            span = ctx.trace.tracer.begin("tactic", tactic=name)
            outcome: TacticOutcome | None = None
            try:
                outcome = yield from fn(ctx, *args, **kwargs)
                return outcome
            finally:
                if outcome is not None:
                    ctx.trace.tracer.end(span, outcome=outcome.description)
                else:
                    ctx.trace.tracer.end(span, abandoned=True)

        return wrapper

    return decorate


def _finish_background(
    ctx: TacticContext,
    jscan: JscanProcess,
    outcome: TacticOutcome,
    skip: Callable[[RID], bool] | None,
) -> Generator[None, None, None]:
    """Run the final stage appropriate to how Jscan ended."""
    if jscan.empty:
        outcome.description += " -> empty-intersection shortcut"
        return
    if jscan.tscan_recommended:
        ctx.trace.emit(EventKind.STRATEGY_SWITCH, to="tscan", reason="jscan-recommended")
        ctx.trace.counters.strategy_switches += 1
        tscan = ctx.spawn(TscanProcess(
            ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars, ctx.sink,
            ctx.trace, ctx.config, skip_rids=skip, predicate=ctx.predicate,
        ))
        ctx.trace.emit(EventKind.SCAN_START, strategy="tscan")
        yield from advance(tscan, ctx.config.batch_size)
        outcome.processes.append(tscan)
        outcome.stopped_by_consumer |= tscan.stopped_by_consumer
        outcome.description += " -> tscan"
        return
    rids = jscan.sorted_result()
    ctx.trace.emit(EventKind.FINAL_STAGE_START, rids=len(rids))
    final = ctx.spawn(FinalStageProcess(
        rids, ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars, ctx.sink,
        ctx.trace, ctx.config, skip_rids=skip, predicate=ctx.predicate,
    ))
    yield from advance(final, ctx.config.batch_size)
    outcome.processes.append(final)
    outcome.stopped_by_consumer |= final.stopped_by_consumer
    outcome.description += f" -> final-stage({len(rids)} rids)"


# ---------------------------------------------------------------------------
# Union (OR) tactic — the Section 8 extension
# ---------------------------------------------------------------------------


def union_or(ctx: TacticContext, covered) -> TacticOutcome:
    """Synchronous wrapper over :func:`union_or_steps`."""
    return drain(union_or_steps(ctx, covered))


@_traced("union-or")
def union_or_steps(ctx: TacticContext, covered) -> StepOutcome:
    """Union joint scan over covered disjuncts, then the final stage.

    ``covered`` is the list of
    :class:`repro.expr.disjunction.DisjunctRange` proving every top-level
    OR term is covered by some index range.
    """
    from repro.engine.union_scan import UnionScanProcess

    ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="union-or", disjuncts=len(covered))
    outcome = TacticOutcome(description=f"union-or: {len(covered)} disjunct scans")
    union = ctx.spawn(
        UnionScanProcess(covered, ctx.heap, ctx.buffer_pool, ctx.trace, ctx.config)
    )
    yield from advance(union, ctx.config.batch_size)
    outcome.processes.append(union)
    if union.tscan_recommended:
        ctx.trace.emit(EventKind.STRATEGY_SWITCH, to="tscan", reason="union-too-big")
        ctx.trace.counters.strategy_switches += 1
        tscan = ctx.spawn(TscanProcess(
            ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars, ctx.sink,
            ctx.trace, ctx.config, predicate=ctx.predicate,
        ))
        ctx.trace.emit(EventKind.SCAN_START, strategy="tscan")
        yield from advance(tscan, ctx.config.batch_size)
        outcome.processes.append(tscan)
        outcome.stopped_by_consumer |= tscan.stopped_by_consumer
        outcome.description += " -> tscan"
        return outcome
    rids = union.sorted_result()
    if not rids:
        outcome.description += " -> empty union"
        return outcome
    ctx.trace.emit(EventKind.FINAL_STAGE_START, rids=len(rids))
    final = ctx.spawn(FinalStageProcess(
        rids, ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars, ctx.sink,
        ctx.trace, ctx.config, predicate=ctx.predicate,
    ))
    yield from advance(final, ctx.config.batch_size)
    outcome.processes.append(final)
    outcome.stopped_by_consumer |= final.stopped_by_consumer
    outcome.description += f" -> final-stage({len(rids)} rids)"
    return outcome


# ---------------------------------------------------------------------------
# Background-only tactic
# ---------------------------------------------------------------------------


def background_only(ctx: TacticContext) -> TacticOutcome:
    """Synchronous wrapper over :func:`background_only_steps`."""
    return drain(background_only_steps(ctx))


@_traced("background-only")
def background_only_steps(ctx: TacticContext) -> StepOutcome:
    """Jscan to completion, then the final stage (Section 7)."""
    ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="background-only")
    outcome = TacticOutcome(description="background-only: jscan")
    jscan = ctx.spawn(JscanProcess(
        ctx.arrangement.jscan_candidates, ctx.heap, ctx.buffer_pool, ctx.trace, ctx.config
    ))
    yield from advance(jscan, ctx.config.batch_size)
    outcome.processes.append(jscan)
    yield from _finish_background(ctx, jscan, outcome, skip=None)
    return outcome


# ---------------------------------------------------------------------------
# Fast-first tactic
# ---------------------------------------------------------------------------


def fast_first(ctx: TacticContext) -> TacticOutcome:
    """Synchronous wrapper over :func:`fast_first_steps`."""
    return drain(fast_first_steps(ctx))


@_traced("fast-first")
def fast_first_steps(ctx: TacticContext) -> StepOutcome:
    """Jscan in background; foreground borrows, fetches, delivers (Section 7)."""
    ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="fast-first")
    outcome = TacticOutcome(description="fast-first: fgr-borrow || jscan")
    borrow_queue: deque[RID] = deque()

    def tap(rid: RID, position: int) -> None:
        if position == 0:
            borrow_queue.append(rid)

    jscan = ctx.spawn(JscanProcess(
        ctx.arrangement.jscan_candidates, ctx.heap, ctx.buffer_pool, ctx.trace,
        ctx.config, on_keep=tap,
    ))
    fgr_buffer = ForegroundBuffer(ctx.config.foreground_buffer_size)
    fgr = ctx.spawn(BorrowingFetchProcess(
        borrow_queue, ctx.heap, ctx.schema, ctx.restriction, ctx.host_vars,
        ctx.sink, fgr_buffer, ctx.trace, ctx.config, predicate=ctx.predicate,
    ))
    outcome.processes = [jscan, fgr]
    fgr_weight = ctx.config.foreground_speed
    bgr_weight = ctx.config.background_speed
    # competition checks run after every step; only the yield is batched
    quantum = max(1, ctx.config.batch_size)
    pending = 0

    while True:
        # consumer satisfied: the fast-first goal is met, stop everything
        if fgr.stopped_by_consumer:
            jscan.abandon()
            if fgr.active:
                fgr.abandon()
            outcome.stopped_by_consumer = True
            outcome.description += " -> consumer-stop (fast success)"
            ctx.trace.emit(EventKind.CONSUMER_STOPPED, by="foreground")
            return outcome
        if fgr.finished and fgr.buffer_overflow:
            ctx.trace.emit(EventKind.FOREGROUND_BUFFER_OVERFLOW)
            ctx.trace.emit(EventKind.FOREGROUND_TERMINATED, reason="buffer-overflow")
            break
        # direct fgr/bgr competition: foreground cost must stay a fraction
        # of the guaranteed best or fast-first "becomes less realistic"
        if (
            fgr.active
            and fgr.meter.total
            >= ctx.switch_fraction() * jscan.guaranteed_best_cost()
        ):
            fgr.abandon()
            ctx.trace.emit(EventKind.FOREGROUND_TERMINATED, reason="competition")
            ctx.trace.counters.strategy_switches += 1
        if not jscan.active:
            # the background resolved the retrieval; remaining borrowed RIDs
            # are cheaper to deliver through Fin/Tscan than by random fetch
            if fgr.active:
                ctx.trace.emit(EventKind.FOREGROUND_TERMINATED, reason="background-complete")
            break
        # proportional interleave via virtual time
        fgr_ready = fgr.active and fgr.has_work
        if fgr_ready and (
            not jscan.active
            or fgr.meter.total / fgr_weight <= jscan.meter.total / bgr_weight
        ):
            fgr.step()
        elif jscan.active:
            jscan.step()
        elif fgr_ready:
            fgr.step()
        else:
            break
        pending += 1
        if pending >= quantum:
            pending = 0
            yield

    if fgr.active:
        fgr.abandon()
    if not jscan.active and not jscan.finished:
        # jscan was abandoned — nothing more to do
        return outcome
    if jscan.active:
        yield from advance(jscan, ctx.config.batch_size)
    skip = lambda rid: rid in fgr_buffer  # noqa: E731 - tiny closure
    yield from _finish_background(ctx, jscan, outcome, skip=skip)
    return outcome


# ---------------------------------------------------------------------------
# Sorted tactic
# ---------------------------------------------------------------------------


def sorted_tactic(ctx: TacticContext) -> TacticOutcome:
    """Synchronous wrapper over :func:`sorted_tactic_steps`."""
    return drain(sorted_tactic_steps(ctx))


@_traced("sorted")
def sorted_tactic_steps(ctx: TacticContext) -> StepOutcome:
    """Order-delivering Fscan cooperating with a filter-building Jscan."""
    ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="sorted")
    order = ctx.arrangement.order_index
    if order is None:
        raise ValueError("sorted tactic requires an order-needed index")
    outcome = TacticOutcome(description=f"sorted: fscan({order.index.name}) || jscan-filter")
    fscan = ctx.spawn(FscanProcess(
        order.index, order.key_range, ctx.heap, ctx.schema, ctx.restriction,
        ctx.host_vars, ctx.sink, ctx.trace, ctx.config, predicate=ctx.predicate,
    ))
    ctx.trace.emit(EventKind.SCAN_START, strategy="fscan", index=order.index.name)
    others = [
        candidate
        for candidate in ctx.arrangement.jscan_candidates
        if candidate.index.name != order.index.name
    ]
    jscan: JscanProcess | None = None
    if others:
        jscan = ctx.spawn(
            JscanProcess(others, ctx.heap, ctx.buffer_pool, ctx.trace, ctx.config)
        )
        outcome.processes = [fscan, jscan]
    else:
        outcome.processes = [fscan]

    fgr_weight = ctx.config.foreground_speed
    bgr_weight = ctx.config.background_speed
    filter_installed = False
    quantum = max(1, ctx.config.batch_size)
    pending = 0
    while fscan.active:
        if jscan is not None and jscan.finished and not filter_installed:
            if jscan.empty:
                # no record can satisfy the other indexes' conjuncts
                fscan.abandon()
                outcome.description += " -> empty-intersection shortcut"
                ctx.trace.emit(EventKind.STRATEGY_SWITCH, to="empty", reason="jscan-empty")
                return outcome
            if jscan.result_list is not None:
                fscan.filter = jscan.result_list
                filter_installed = True
                ctx.trace.emit(
                    EventKind.STRATEGY_SWITCH,
                    to="filtered-fscan",
                    filter_rids=len(jscan.result_list),
                )
                ctx.trace.counters.strategy_switches += 1
            # tscan_recommended: the filter would not help; fscan continues
        if jscan is not None and jscan.active and (
            jscan.meter.total / bgr_weight < fscan.meter.total / fgr_weight
        ):
            jscan.step()
        else:
            fscan.step()
        pending += 1
        if pending >= quantum:
            pending = 0
            yield
        if fscan.stopped_by_consumer:
            outcome.stopped_by_consumer = True
            ctx.trace.emit(EventKind.CONSUMER_STOPPED, by="foreground")
            break
    if jscan is not None and jscan.active:
        jscan.abandon()  # "a quick Fscan completion eliminates a potentially
        # big Jscan overhead"
    outcome.description += " -> fscan-delivered-all" if not outcome.stopped_by_consumer else ""
    return outcome


# ---------------------------------------------------------------------------
# Index-only tactic
# ---------------------------------------------------------------------------


def index_only(ctx: TacticContext) -> TacticOutcome:
    """Synchronous wrapper over :func:`index_only_steps`."""
    return drain(index_only_steps(ctx))


@_traced("index-only")
def index_only_steps(ctx: TacticContext) -> StepOutcome:
    """Sscan (foreground) racing Jscan (background)."""
    ctx.trace.emit(EventKind.TACTIC_SELECTED, tactic="index-only")
    best = ctx.arrangement.best_sscan
    if best is None:
        raise ValueError("index-only tactic requires a self-sufficient index")
    outcome = TacticOutcome(description=f"index-only: sscan({best.index.name}) || jscan")
    fgr_buffer = ForegroundBuffer(ctx.config.foreground_buffer_size)
    delivered_rids: list[RID] = []

    def recording_sink(rid: RID, row: tuple) -> bool:
        # on buffer overflow the row is still delivered — the buffer only
        # exists to dedupe against a final stage, and overflow kills Jscan
        # (so no final stage will run)
        fgr_buffer.add(rid)
        delivered_rids.append(rid)
        return ctx.sink(rid, row)

    sscan = ctx.spawn(SscanProcess(
        best.index, best.key_range, ctx.schema, ctx.restriction, ctx.host_vars,
        recording_sink, ctx.trace, ctx.config, predicate=ctx.predicate,
    ))
    ctx.trace.emit(EventKind.SCAN_START, strategy="sscan", index=best.index.name)
    jscan: JscanProcess | None = None
    if ctx.arrangement.jscan_candidates:
        jscan = ctx.spawn(JscanProcess(
            ctx.arrangement.jscan_candidates, ctx.heap, ctx.buffer_pool,
            ctx.trace, ctx.config,
        ))
        outcome.processes = [sscan, jscan]
    else:
        outcome.processes = [sscan]

    fgr_weight = ctx.config.foreground_speed
    bgr_weight = ctx.config.background_speed
    quantum = max(1, ctx.config.batch_size)
    pending = 0
    while sscan.active:
        if jscan is not None and len(fgr_buffer) >= fgr_buffer.capacity:
            # overflow: "Jscan terminates and Sscan continues because it is
            # a safer strategy"
            if jscan.active:
                jscan.abandon()
                ctx.trace.emit(EventKind.FOREGROUND_BUFFER_OVERFLOW)
                ctx.trace.emit(EventKind.SCAN_ABANDONED, index="jscan", reason="fgr-overflow")
            jscan = None
        if jscan is not None and jscan.finished:
            if jscan.empty:
                sscan.abandon()
                outcome.description += " -> empty-intersection shortcut"
                return outcome
            if jscan.result_list is not None:
                fin_cost = jscan.rid_fetch_cost(len(jscan.result_list), jscan.result_list)
                remaining = _estimated_remaining_cost(sscan, best)
                if fin_cost < remaining:
                    # "Sscan is abandoned in favor of a 'sure' final stage"
                    sscan.abandon()
                    ctx.trace.emit(
                        EventKind.STRATEGY_SWITCH, to="final-stage",
                        reason="jscan-won", fin_cost=round(fin_cost, 1),
                        sscan_remaining=round(remaining, 1),
                    )
                    ctx.trace.counters.strategy_switches += 1
                    skip = lambda rid: rid in fgr_buffer  # noqa: E731
                    yield from _finish_background(ctx, jscan, outcome, skip=skip)
                    return outcome
            jscan = None  # tscan recommended or not competitive: sscan continues
        if jscan is not None and jscan.active and (
            jscan.meter.total / bgr_weight < sscan.meter.total / fgr_weight
        ):
            jscan.step()
        else:
            sscan.step()
        pending += 1
        if pending >= quantum:
            pending = 0
            yield
        if sscan.stopped_by_consumer:
            outcome.stopped_by_consumer = True
            ctx.trace.emit(EventKind.CONSUMER_STOPPED, by="foreground")
            break
    if jscan is not None and jscan.active:
        jscan.abandon()
    if sscan.finished and not sscan.stopped_by_consumer:
        # the scan covered the whole range: its consumed-entry count is the
        # true cardinality, fed back to sharpen the next execution's estimate
        best.observed = sscan.cursor.consumed
    outcome.description += " -> sscan-delivered-all" if not outcome.stopped_by_consumer else ""
    return outcome


def _estimated_remaining_cost(sscan: SscanProcess, candidate) -> float:
    """Extrapolate the remaining Sscan cost from its progress so far.

    Uses the candidate's *effective* RID count, so selectivity feedback
    from earlier executions sharpens the stage-switch projection too.
    """
    consumed = sscan.cursor.consumed
    estimate = candidate.estimated_rids if candidate.estimate is not None else None
    if not consumed or estimate is None:
        return float("inf")
    per_entry = sscan.meter.total / consumed
    return max(0.0, (estimate - consumed)) * per_entry
